//! A tour of all six algorithms over one dataset: Table 1.1 brought to
//! life, with per-algorithm cost breakdowns from the simulated cluster.
//!
//! ```text
//! cargo run --release --example cluster_tour
//! ```

use icecube::cluster::ClusterConfig;
use icecube::core::{run_parallel_with, AlgoError, Algorithm, IcebergQuery, RunOptions};
use icecube::data::presets;

fn main() {
    // A mid-size skewed workload: 30,000 tuples over 9 weather dimensions.
    let mut spec = presets::baseline();
    spec.tuples = 30_000;
    let relation = spec.generate().expect("preset is valid");
    let query = IcebergQuery::count_cube(relation.arity(), 2);
    let cluster = ClusterConfig::fast_ethernet(8);

    println!(
        "{} tuples x {} dims, minsup {}, {} simulated nodes\n",
        relation.len(),
        relation.arity(),
        query.minsup,
        cluster.len()
    );
    println!(
        "{:<9} {:<14} {:<7} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "algo", "writing", "data", "wall(s)", "cpu(s)", "io(s)", "cells", "imbal."
    );

    let opts = RunOptions::counting();
    for alg in Algorithm::all() {
        match run_parallel_with(alg, &relation, &query, &cluster, &opts) {
            Ok(out) => {
                let f = alg.features();
                let cpu: u64 = out.stats.nodes().iter().map(|s| s.cpu_ns).sum();
                println!(
                    "{:<9} {:<14} {:<7} {:>8.3} {:>8.3} {:>8.3} {:>9} {:>9.2}",
                    f.name,
                    f.writing,
                    f.decomposition,
                    out.stats.makespan_secs(),
                    cpu as f64 / 1e9,
                    out.stats.total_io_ns() as f64 / 1e9,
                    out.total_cells,
                    out.stats.imbalance(),
                );
            }
            Err(AlgoError::MemoryExhausted {
                node,
                required_bytes,
                available_bytes,
            }) => {
                // The hash-tree algorithm fails exactly as the paper
                // reports once candidates outgrow memory.
                println!(
                    "{:<9} failed: out of memory on node {node} \
                     (needed {required_bytes} bytes, had {available_bytes})",
                    alg.to_string()
                );
            }
            Err(e) => println!("{:<9} failed: {e}", alg.to_string()),
        }
    }

    println!(
        "\nNote: every successful run emits the same iceberg cells; what differs is \
         scheduling, writing order, and data movement — Table 1.1 of the paper."
    );
}
