//! A tour of `icecube-serve`: shard a precomputed iceberg cube, start a
//! worker pool, navigate it through typed requests from several client
//! threads, and read the latency histogram back.
//!
//! ```text
//! cargo run --example serve_tour
//! ```

use icecube::cluster::ClusterConfig;
use icecube::core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
use icecube::data::SyntheticSpec;
use icecube::lattice::CuboidMask;
use icecube::serve::{
    run_closed_loop, CubeServer, NavigationWorkload, Request, Response, ShardedCube,
};

fn main() {
    // Precompute an iceberg cube once (PT over 4 simulated nodes)…
    let rel = SyntheticSpec::uniform(20_000, vec![10, 8, 6, 4], 7)
        .generate()
        .expect("valid spec");
    let query = IcebergQuery::count_cube(rel.arity(), 1);
    let outcome = run_parallel(
        Algorithm::Pt,
        &rel,
        &query,
        &ClusterConfig::fast_ethernet(4),
    )
    .expect("valid query");
    let store = CubeStore::from_outcome(rel.arity(), 1, outcome);

    // …then range-partition it into 4 shards and start 4 workers over it.
    let sharded = ShardedCube::new(&store, 4);
    println!(
        "sharded cube: {} cells over {} cuboids, per shard {:?}",
        sharded.len(),
        sharded.materialized_cuboids().len(),
        sharded.shard_cell_counts()
    );
    let server = CubeServer::start(sharded, 4).expect("worker pool starts");
    let handle = server.handle().expect("server is running");
    let ask = |req| handle.call(req).expect("server is running");

    // A point lookup routes to exactly one shard.
    let g = CuboidMask::from_dims(&[0, 1]);
    if let Response::Point(agg) = ask(Request::Point {
        cuboid: g,
        key: vec![0, 0],
    }) {
        println!("point (0,0) over {g}: {agg:?}");
    }

    // A slice fans out to every shard and merges in key order.
    if let Response::Cells(cells) = ask(Request::Slice {
        cuboid: g,
        dim: 1,
        value: 3,
    }) {
        println!("slice dim1=3 over {g}: {} cells", cells.len());
    }

    // Roll-ups report which plan answered them.
    if let Response::RolledUp { cell, plan, exact } = ask(Request::RollUp {
        cuboid: g,
        key: vec![0, 3],
        dim: 1,
    }) {
        println!("roll-up (0,3) minus dim1: {cell:?} via {plan:?} (exact: {exact})");
    }

    // Malformed requests come back as typed errors, not panics.
    if let Response::Error(e) = ask(Request::Point {
        cuboid: g,
        key: vec![0],
    }) {
        println!("malformed request answered with: {e}");
    }
    drop(handle);

    // Replay a deterministic navigation workload from 8 closed-loop clients.
    let workload = NavigationWorkload::generate(&store, 2_000, 42);
    let report = run_closed_loop(&server, &workload, 8).expect("server stays up");
    let s = &report.stats;
    println!(
        "\nworkload: {} leaf requests in {:.1} ms → {:.0} req/s",
        report.requests,
        report.elapsed.as_secs_f64() * 1e3,
        report.throughput
    );
    println!(
        "latency: mean {:.1} us, p50 {:.1} us, p95 {:.1} us, p99 {:.1} us",
        s.mean_ns as f64 / 1e3,
        s.p50_ns as f64 / 1e3,
        s.p95_ns as f64 / 1e3,
        s.p99_ns as f64 / 1e3
    );
    println!(
        "plans: {} roll-ups from stored cuboids, {} aggregated on the fly; errors: {}",
        s.rollup_stored, s.rollup_aggregated, s.errors
    );
    println!("per-shard routed lookups: {:?}", s.shard_routed);
}
