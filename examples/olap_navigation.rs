//! OLAP navigation over a precomputed iceberg cube: the drill-down /
//! roll-up workflow the paper's Section 2.1 motivates, served from a
//! [`CubeStore`](icecube::core::CubeStore).
//!
//! ```text
//! cargo run --example olap_navigation
//! ```

use icecube::cluster::ClusterConfig;
use icecube::core::fixtures::sales;
use icecube::core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
use icecube::lattice::CuboidMask;

fn main() {
    // Precompute the iceberg cube once (PT, 4 simulated nodes, minsup 2)…
    let relation = sales();
    let minsup = 2;
    let query = IcebergQuery::count_cube(relation.arity(), minsup);
    let outcome = run_parallel(
        Algorithm::Pt,
        &relation,
        &query,
        &ClusterConfig::fast_ethernet(4),
    )
    .expect("valid query");
    let store = CubeStore::from_outcome(relation.arity(), minsup, outcome);
    println!(
        "precomputed cube: {} cells at minimum support {} (can answer thresholds >= {})",
        store.len(),
        store.minsup(),
        store.minsup()
    );

    let models = ["Chevy", "Ford"];
    let years = ["1990", "1991", "1992"];
    let colors = ["red", "white", "blue"];

    // The analyst starts coarse: sales by model.
    let by_model = CuboidMask::from_dims(&[0]);
    println!("\nGROUP BY model:");
    for (key, agg) in store.query(by_model, minsup).expect("in range") {
        println!(
            "  {:6} sum={} count={}",
            models[key[0] as usize], agg.sum, agg.count
        );
    }

    // Too coarse → drill down Chevy by year ("GROUP BY on more attributes").
    println!("\ndrill-down: Chevy by year:");
    for (key, agg) in store.drill_down(by_model, &[0], 1).expect("in range") {
        println!(
            "  Chevy {}  sum={} count={}",
            years[key[1] as usize], agg.sum, agg.count
        );
    }

    // Still curious → drill 1991 down by color.
    let model_year = CuboidMask::from_dims(&[0, 1]);
    println!("\ndrill-down: Chevy 1991 by color:");
    let fine = store.drill_down(model_year, &[0, 1], 2).expect("in range");
    if fine.is_empty() {
        // The iceberg cut in action: every (model, year, color) combination
        // occurs exactly once, below the support threshold of 2.
        println!("  (nothing qualifies — the iceberg cut removed all support-1 cells)");
    }
    for (key, agg) in fine {
        println!(
            "  Chevy 1991 {:5}  sum={} count={}",
            colors[key[2] as usize], agg.sum, agg.count
        );
    }

    // Too detailed → roll back up ("GROUP BY on fewer attributes").
    let (key, agg) = store
        .roll_up(CuboidMask::from_dims(&[0, 1, 2]), &[0, 1, 1], 2)
        .expect("in range")
        .expect("parent cell qualifies");
    println!(
        "\nroll-up of (Chevy, 1991, white) over color → (Chevy, {}): sum={} count={}",
        years[key[1] as usize], agg.sum, agg.count
    );

    // And a slice: all white cells across the (model, color) cuboid.
    let mc = CuboidMask::from_dims(&[0, 2]);
    let white = store.slice(mc, 2, 1).expect("in range");
    println!("\nslice color=white over (model, color):");
    for (key, agg) in white {
        println!(
            "  {:6} white  sum={} count={}",
            models[key[0] as usize], agg.sum, agg.count
        );
    }

    // A query below the precomputed threshold must go back to the engines
    // (Chapter 5's motivation for online aggregation).
    println!(
        "\ncan this store answer minsup 1? {} — that is what POL/recomputation are for.",
        store.can_answer(1)
    );
}
