//! Retail analytics end to end: ingest CSV, profile the cube, let the
//! paper's recipe (Figure 4.7) pick the algorithm, run it, report.
//!
//! This is the market-basket-flavoured scenario the paper's introduction
//! motivates (iceberg queries over sales facts; frequent behaviour is what
//! analysts act on).
//!
//! ```text
//! cargo run --example retail_recipe
//! ```

use icecube::cluster::ClusterConfig;
use icecube::core::recipe::{recommend, Choice, CubeProfile};
use icecube::core::{run_parallel, IcebergQuery};
use icecube::data::csv::read_csv;

/// A small point-of-sale extract (store, category, brand, payment, total).
const POS_CSV: &str = "\
store,category,brand,payment,total
downtown,beverages,Acme,card,12
downtown,beverages,Acme,cash,9
downtown,snacks,Crispy,card,5
uptown,beverages,Acme,card,11
uptown,beverages,Fresh,card,14
uptown,snacks,Crispy,cash,4
uptown,snacks,Crispy,card,6
harbour,beverages,Acme,card,13
harbour,produce,Farm,cash,22
harbour,produce,Farm,card,18
harbour,beverages,Fresh,card,10
downtown,produce,Farm,card,25
downtown,beverages,Fresh,cash,8
uptown,produce,Farm,card,19
harbour,snacks,Crispy,card,7
";

fn main() {
    // 1. Ingest: dictionary-encode the dimension columns.
    let table = read_csv(
        POS_CSV.as_bytes(),
        &["store", "category", "brand", "payment"],
        Some("total"),
    )
    .expect("embedded CSV is well-formed");
    let relation = &table.relation;
    println!(
        "ingested {} transactions over {} dimensions (cardinalities {:?})",
        relation.len(),
        relation.arity(),
        relation.schema().cardinalities()
    );

    // 2. Profile and consult the recipe.
    let profile = CubeProfile::from_relation(relation);
    let choices = recommend(&profile);
    println!(
        "cube profile: {} dims, ~{:.0} potential cells → recipe says {:?}",
        profile.dims,
        profile.expected_total_cells,
        choices.iter().map(|c| format!("{c:?}")).collect::<Vec<_>>()
    );
    let algorithm = match choices[0] {
        Choice::Algo(a) => a,
        Choice::OnlinePol => unreachable!("offline profile"),
    };

    // 3. Run the iceberg cube: combinations bought at least 3 times.
    let query = IcebergQuery::count_cube(relation.arity(), 3);
    let outcome = run_parallel(
        algorithm,
        relation,
        &query,
        &ClusterConfig::fast_ethernet(4),
    )
    .expect("valid query");
    println!(
        "\n{} ran in {:.4} virtual seconds; {} frequent combinations:\n",
        algorithm,
        outcome.wall_secs(),
        outcome.cells.len()
    );

    // 4. Decode and rank the cells by support.
    let mut cells = outcome.cells;
    cells.sort_by_key(|c| std::cmp::Reverse(c.agg.count));
    let col_names = ["store", "category", "brand", "payment"];
    for cell in cells.iter().take(12) {
        let described: Vec<String> = cell
            .key
            .iter()
            .zip(cell.cuboid.iter_dims())
            .map(|(v, d)| {
                format!(
                    "{}={}",
                    col_names[d],
                    table.dictionaries[d].decode(*v).unwrap_or("?")
                )
            })
            .collect();
        println!(
            "  {:45}  count={} total=${}",
            described.join(" "),
            cell.agg.count,
            cell.agg.sum
        );
    }
}
