//! Online aggregation over a large weather table: POL's progressive
//! refinement (Chapter 5).
//!
//! A 12-dimension iceberg group-by over a 200,000-tuple weather-like
//! dataset (scaled down from the paper's 1M for a snappy example): the
//! first snapshot arrives after one block per node, then the estimate
//! sharpens step by step until it is exact.
//!
//! ```text
//! cargo run --release --example weather_online
//! ```

use icecube::cluster::ClusterConfig;
use icecube::lattice::CuboidMask;
use icecube::online::{run_pol, PolQuery};

fn main() {
    let mut spec = icecube::data::presets::online();
    spec.tuples = 200_000;
    let relation = spec.generate().expect("preset is valid");
    println!(
        "raw data: {} tuples x {} dimensions (streamed in blocks — assumed too large for memory)",
        relation.len(),
        relation.arity()
    );

    // GROUP BY the paper's 12 query dimensions HAVING COUNT(*) >= 2.
    let dims = icecube::data::presets::pol_query_dims();
    let mut query = PolQuery::new(CuboidMask::from_dims(&dims), 2);
    query.buffer_tuples = 8000;
    query.snapshot_every = 2;

    let cluster = ClusterConfig::slow_myrinet(8);
    let outcome = run_pol(&relation, &query, &cluster).expect("valid query");

    println!("\nprogressive refinement (8 nodes, Myrinet):");
    println!(
        "{:>6} {:>9} {:>10} {:>12} {:>16}",
        "step", "data %", "time (s)", "est. minsup", "cells qualifying"
    );
    for s in &outcome.snapshots {
        println!(
            "{:>6} {:>8.1}% {:>10.3} {:>12} {:>16}",
            s.step,
            s.fraction * 100.0,
            s.time_ns as f64 / 1e9,
            s.estimated_threshold,
            s.qualifying_cells
        );
    }
    println!(
        "\nfinal: {} exact iceberg cells; skip list held {} groups; {} tasks were \
         executed by work stealing",
        outcome.cells.len(),
        outcome.total_list_nodes,
        outcome.stolen_tasks
    );
    println!(
        "wall clock {:.3} virtual seconds; communication was {:.1}% of busy time",
        outcome.stats.makespan_secs(),
        100.0 * outcome.stats.nodes().iter().map(|s| s.net_ns).sum::<u64>() as f64
            / outcome
                .stats
                .nodes()
                .iter()
                .map(|s| s.busy_ns())
                .sum::<u64>()
                .max(1) as f64
    );
}
