//! Quickstart: compute an iceberg cube on a simulated 4-node PC cluster.
//!
//! Uses the paper's running example — the SALES(Model, Year, Color, Sales)
//! relation of Figure 2.2 — and the PT algorithm the paper recommends as
//! the default.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use icecube::cluster::ClusterConfig;
use icecube::core::fixtures::sales;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};

fn main() {
    // The 18-row SALES relation, dictionary-encoded:
    // Model {Chevy, Ford}, Year {1990..1992}, Color {red, white, blue}.
    let relation = sales();
    println!(
        "relation: {} rows, {} dimensions, cardinalities {:?}",
        relation.len(),
        relation.arity(),
        relation.schema().cardinalities()
    );

    // CUBE BY Model, Year, Color HAVING COUNT(*) >= 3.
    let query = IcebergQuery::count_cube(relation.arity(), 3);
    let cluster = ClusterConfig::fast_ethernet(4);
    let outcome = run_parallel(Algorithm::Pt, &relation, &query, &cluster)
        .expect("valid query over a non-empty relation");

    println!(
        "\n{} iceberg cells (support >= {}), computed in {:.3} virtual seconds on {} nodes:\n",
        outcome.cells.len(),
        query.minsup,
        outcome.wall_secs(),
        cluster.len(),
    );
    let models = ["Chevy", "Ford"];
    let years = ["1990", "1991", "1992"];
    let colors = ["red", "white", "blue"];
    for cell in &outcome.cells {
        // Decode the key back through the dimension order of the cuboid.
        let mut parts = vec!["ALL".to_string(); 3];
        for (value, dim) in cell.key.iter().zip(cell.cuboid.iter_dims()) {
            parts[dim] = match dim {
                0 => models[*value as usize].to_string(),
                1 => years[*value as usize].to_string(),
                _ => colors[*value as usize].to_string(),
            };
        }
        println!(
            "  {:8} {:5} {:6}  SUM(sales) = {:4}  COUNT = {}",
            parts[0], parts[1], parts[2], cell.agg.sum, cell.agg.count
        );
    }

    // Per-node accounting from the simulated cluster.
    println!("\nper-node load (virtual seconds busy):");
    for (i, load) in outcome.stats.loads_ns().iter().enumerate() {
        println!("  node {i}: {:.4}", *load as f64 / 1e9);
    }
    println!(
        "load imbalance: {:.2} (1.0 = perfect)",
        outcome.stats.imbalance()
    );
}
