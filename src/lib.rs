#![warn(missing_docs)]

//! # icecube — parallel iceberg-cube computation on simulated PC clusters
//!
//! A production-quality Rust reproduction of *Iceberg-cube computation with
//! PC clusters* (SIGMOD 2001; full text: Yu Yin's UBC MSc thesis, 2001).
//!
//! An **iceberg cube** is the CUBE operator restricted to cells whose
//! support (`COUNT(*)`) meets a user threshold. The paper parallelizes its
//! computation over a cluster of commodity PCs, contributing five cube
//! algorithms (RP, BPP, ASL, PT, AHT) plus a parallel online-aggregation
//! algorithm (POL), and an empirical "recipe" for choosing among them.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`data`] — relations, dictionary encoding, synthetic workloads,
//! * [`skiplist`] — the arena-based skip list behind ASL and POL,
//! * [`lattice`] — cuboid masks, BUC processing trees, PT's binary division,
//! * [`cluster`] — the simulated PC cluster (virtual time, disk and network
//!   cost models, demand scheduling),
//! * [`trace`] — deterministic virtual-time tracing (per-node event
//!   buffers, Chrome `trace_event` and phase-cost CSV exporters) and the
//!   unified metrics registry,
//! * [`core`] — sequential BUC plus the five parallel cube algorithms and
//!   the algorithm-selection recipe,
//! * [`exec`] — pluggable execution backends: the same task
//!   decompositions on the simulated cluster or a native work-stealing
//!   thread pool, with byte-identical cells either way,
//! * [`online`] — POL online aggregation and selective materialization,
//! * [`serve`] — sharded, concurrent serving of a precomputed cube: a
//!   worker-pool request loop, roll-up planning, and latency metrics.
//!
//! ## Quickstart
//!
//! ```
//! use icecube::core::{run_parallel, Algorithm, IcebergQuery};
//! use icecube::cluster::ClusterConfig;
//! use icecube::data::presets;
//!
//! let relation = presets::tiny(7).generate().unwrap();
//! let query = IcebergQuery::count_cube(relation.arity(), 2);
//! let outcome = run_parallel(
//!     Algorithm::Pt,
//!     &relation,
//!     &query,
//!     &ClusterConfig::fast_ethernet(4),
//! ).unwrap();
//! assert!(outcome.cells.len() > 0);
//! ```

pub use icecube_cluster as cluster;
pub use icecube_core as core;
pub use icecube_data as data;
pub use icecube_exec as exec;
pub use icecube_lattice as lattice;
pub use icecube_online as online;
pub use icecube_serve as serve;
pub use icecube_skiplist as skiplist;
pub use icecube_trace as trace;
