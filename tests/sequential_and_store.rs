//! Integration: the sequential baselines and the cube store compose with
//! the parallel algorithms.

use icecube::cluster::ClusterConfig;
use icecube::core::{
    run_parallel, run_sequential, Algorithm, CubeStore, IcebergQuery, SeqAlgorithm,
};
use icecube::data::presets;
use icecube::lattice::{CuboidMask, Lattice};

#[test]
fn sequential_and_parallel_agree() {
    let rel = presets::tiny(61).generate().unwrap();
    for minsup in [1u64, 3] {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(1);
        let reference = run_sequential(SeqAlgorithm::Naive, &rel, &q, &cfg).unwrap();
        for seq in SeqAlgorithm::all() {
            let out = run_sequential(seq, &rel, &q, &cfg).unwrap();
            assert_eq!(out.cells, reference.cells, "{seq} at minsup {minsup}");
        }
        for par in Algorithm::evaluated() {
            let out = run_parallel(par, &rel, &q, &ClusterConfig::fast_ethernet(4)).unwrap();
            assert_eq!(out.cells, reference.cells, "{par} at minsup {minsup}");
        }
    }
}

#[test]
fn store_built_from_any_algorithm_answers_identically() {
    let rel = presets::tiny(62).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let cfg = ClusterConfig::fast_ethernet(3);
    let stores: Vec<CubeStore> = [Algorithm::Pt, Algorithm::Asl, Algorithm::Aht]
        .into_iter()
        .map(|a| {
            let out = run_parallel(a, &rel, &q, &cfg).unwrap();
            CubeStore::from_outcome(rel.arity(), 2, out)
        })
        .collect();
    let lattice = Lattice::new(rel.arity());
    for g in lattice.cuboids() {
        let first = stores[0].query(g, 2).unwrap();
        for s in &stores[1..] {
            assert_eq!(s.query(g, 2).unwrap(), first, "cuboid {g}");
        }
    }
}

#[test]
fn drill_down_and_roll_up_are_inverse_navigations() {
    let rel = presets::tiny(63).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 1);
    let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
    let store = CubeStore::from_outcome(rel.arity(), 1, out);
    let a = CuboidMask::from_dims(&[0]);
    for (key, agg) in store.query(a, 1).unwrap() {
        // Drill down by dimension 2, then roll every child back up.
        let children = store.drill_down(a, &key, 2).unwrap();
        let child_sum: u64 = children.iter().map(|(_, a)| a.count).sum();
        assert_eq!(child_sum, agg.count, "drill-down partitions the cell");
        for (ckey, _) in &children {
            let (rkey, ragg) = store
                .roll_up(a.with_dim(2), ckey, 2)
                .unwrap()
                .expect("parent exists");
            assert_eq!(rkey, key);
            assert_eq!(ragg, agg);
        }
    }
}

#[test]
fn pipesort_pipelines_cover_every_cuboid_once() {
    // Planning-level integration: the PipeSort plan assigns every cuboid
    // to exactly one pipeline and the pipeline count is far below the
    // cuboid count (sort sharing).
    let cards = presets::tiny(0).cardinalities;
    let plan = icecube::core::pipesort::plan(4, &cards, 300);
    let lattice = Lattice::new(4);
    for g in lattice.cuboids() {
        assert!(plan.order_of(g).is_some(), "cuboid {g} missing from plan");
    }
    assert!(plan.pipeline_count() < 15);
    assert!(
        plan.pipeline_count() >= 6,
        "at least C(4,2) pipelines needed"
    );
}
