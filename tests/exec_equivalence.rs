//! Backend equivalence: the native thread-pool executor must be
//! observationally indistinguishable — byte-identical cells — from the
//! simulated cluster, for every algorithm, at any worker count, under
//! any stealing interleaving. The contract that makes this testable is
//! the deterministic merge rule: executors return per-task outputs in
//! task-id order, and the plans themselves never depend on the worker
//! count, so the merged cube is a pure function of (relation, query,
//! options). Eight seeded workload shapes × five algorithms × two
//! minsups, against the simulator driver, the `SimExecutor` adapter,
//! the brute-force reference, and repeated native runs at 1, 2, and 8
//! workers.

use icecube::cluster::ClusterConfig;
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::verify::assert_same_cells;
use icecube::core::{run_parallel, run_parallel_exec, Algorithm, IcebergQuery, RunOptions};
use icecube::data::{Relation, SyntheticSpec};
use icecube::exec::{Backend, NativeExecutor, SimExecutor};

const SEEDS: [u64; 8] = [3, 11, 29, 47, 101, 211, 499, 997];

fn workload(seed: u64) -> Relation {
    // Vary the shape with the seed so the sweep covers skew, width, and
    // density rather than eight draws of one distribution.
    let (cards, skews) = match seed % 4 {
        0 => (vec![8u32, 6, 4], vec![0.0, 0.0, 0.0]),
        1 => (vec![20, 10, 5, 3], vec![1.2, 0.0, 0.5, 0.0]),
        2 => (vec![4, 4, 4, 4, 4], vec![0.0, 1.5, 0.0, 1.5, 0.0]),
        _ => (vec![30, 2, 12], vec![0.8, 0.0, 1.0]),
    };
    SyntheticSpec::uniform(300, cards, seed)
        .with_skews(skews)
        .generate()
        .unwrap()
}

/// The tentpole guarantee: native cells are byte-identical to the
/// simulator driver's and the reference evaluator's, for all five
/// algorithms, independent of worker count; repeated runs (different
/// stealing interleavings) never disagree.
#[test]
fn native_matches_simulator_driver_and_naive() {
    for seed in SEEDS {
        let rel = workload(seed);
        for minsup in [1u64, 3] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let want = naive_iceberg_cube(&rel, &q);
            let opts = RunOptions::default();
            for alg in Algorithm::evaluated() {
                let ctx = format!("{alg}, seed {seed}, minsup {minsup}");
                let driver = run_parallel(alg, &rel, &q, &ClusterConfig::fast_ethernet(4)).unwrap();
                assert_same_cells(want.clone(), driver.cells.clone(), &format!("driver {ctx}"));
                let mut reference: Option<Vec<icecube::core::Cell>> = None;
                for workers in [1usize, 2, 8] {
                    let mut exec = NativeExecutor::new(workers);
                    let out = run_parallel_exec(&mut exec, alg, &rel, &q, &opts)
                        .unwrap_or_else(|e| panic!("{ctx}, {workers} workers: {e}"));
                    assert_eq!(out.report.backend, Backend::Native);
                    assert_eq!(out.report.workers, workers);
                    assert_eq!(
                        out.cells, driver.cells,
                        "native vs driver: {ctx}, {workers} workers"
                    );
                    assert_eq!(out.total_cells, driver.total_cells, "{ctx}");
                    match &reference {
                        None => reference = Some(out.cells),
                        Some(first) => assert_eq!(
                            &out.cells, first,
                            "worker-count drift: {ctx}, {workers} workers"
                        ),
                    }
                }
            }
        }
    }
}

/// The `SimExecutor` adapter routes the same plans through the simulated
/// cluster's demand scheduler; cells must match the native backend
/// exactly (a slice of the full sweep — the adapter shares all the
/// plan-building code the previous test exercises in full).
#[test]
fn sim_executor_matches_native() {
    for seed in [SEEDS[0], SEEDS[3], SEEDS[6]] {
        let rel = workload(seed);
        let q = IcebergQuery::count_cube(rel.arity(), 2);
        let opts = RunOptions::default();
        for alg in Algorithm::evaluated() {
            let ctx = format!("{alg}, seed {seed}");
            let mut sim = SimExecutor::fast_ethernet(4);
            let a = run_parallel_exec(&mut sim, alg, &rel, &q, &opts).unwrap();
            assert_eq!(a.report.backend, Backend::Sim);
            assert!(a.report.wall_ns > 0, "sim reports virtual time: {ctx}");
            let mut native = NativeExecutor::new(4);
            let b = run_parallel_exec(&mut native, alg, &rel, &q, &opts).unwrap();
            assert_eq!(a.cells, b.cells, "sim vs native: {ctx}");
            assert_eq!(a.total_cells, b.total_cells, "{ctx}");
        }
    }
}

/// Stealing is live at high worker counts: with far more workers than
/// tasks the pool still terminates, produces the same bytes, and
/// reports a full per-worker task breakdown.
#[test]
fn oversubscribed_pool_is_deterministic() {
    let rel = workload(47);
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let opts = RunOptions::default();
    for alg in Algorithm::evaluated() {
        let mut exec = NativeExecutor::new(32);
        let a = run_parallel_exec(&mut exec, alg, &rel, &q, &opts).unwrap();
        let b = run_parallel_exec(&mut exec, alg, &rel, &q, &opts).unwrap();
        assert_eq!(a.cells, b.cells, "{alg}: repeated oversubscribed runs");
        assert_eq!(
            a.report.tasks_per_worker.iter().sum::<u64>(),
            a.report.tasks as u64,
            "{alg}: every task accounted to a worker"
        );
    }
}

/// Counting mode (cells discarded, counts kept) agrees across backends —
/// the mode every benchmark row runs in.
#[test]
fn counting_mode_totals_agree() {
    let rel = workload(211);
    let q = IcebergQuery::count_cube(rel.arity(), 1);
    let opts = RunOptions::counting();
    for alg in Algorithm::evaluated() {
        let driver = run_parallel(alg, &rel, &q, &ClusterConfig::fast_ethernet(4)).unwrap();
        let mut native = NativeExecutor::new(8);
        let out = run_parallel_exec(&mut native, alg, &rel, &q, &opts).unwrap();
        assert!(out.cells.is_empty(), "{alg}: counting mode retained cells");
        assert_eq!(out.total_cells, driver.total_cells, "{alg}");
    }
}
