//! Property-based integration tests: cube invariants hold for random
//! relations, and all algorithms agree on them.

use icecube::cluster::ClusterConfig;
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::verify::diff_cells;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};
use icecube::data::{Relation, Schema};
use icecube::lattice::{CuboidMask, Lattice};
use proptest::prelude::*;

/// Strategy: a random relation with 2–4 dimensions of small cardinality
/// (small domains force heavy aggregation and pruning edge cases).
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (2usize..=4)
        .prop_flat_map(|d| {
            let cards = proptest::collection::vec(2u32..6, d);
            (Just(d), cards)
        })
        .prop_flat_map(|(d, cards)| {
            let rows = proptest::collection::vec(
                (proptest::collection::vec(0u32..6, d), -50i64..50),
                1..120,
            );
            (Just(cards), rows)
        })
        .prop_map(|(cards, rows)| {
            let schema = Schema::from_cardinalities(&cards).expect("valid cards");
            let mut rel = Relation::new(schema);
            for (mut dims, m) in rows {
                for (v, &c) in dims.iter_mut().zip(&cards) {
                    *v %= c;
                }
                rel.push_row(&dims, m).expect("in range");
            }
            rel
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_matches_naive(rel in relation_strategy(), minsup in 1u64..5) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let want = naive_iceberg_cube(&rel, &q);
        for alg in [Algorithm::Rp, Algorithm::Bpp, Algorithm::Asl, Algorithm::Pt,
                    Algorithm::Aht, Algorithm::HashTree] {
            let out = run_parallel(alg, &rel, &q, &ClusterConfig::fast_ethernet(3))
                .expect("small inputs never exhaust memory");
            let mut expected = want.clone();
            let mut actual = out.cells;
            let diff = diff_cells(&mut expected, &mut actual);
            prop_assert!(diff.is_empty(), "{alg}: {diff}");
        }
    }

    #[test]
    fn rollup_sums_are_consistent(rel in relation_strategy()) {
        // Invariant: within every cuboid of the FULL cube, the cells
        // partition the rows — counts sum to |R| and sums to SUM(measure).
        let q = IcebergQuery::count_cube(rel.arity(), 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2))
            .expect("valid");
        let lattice = Lattice::new(rel.arity());
        for cuboid in lattice.cuboids() {
            let cells: Vec<_> = out.cells.iter().filter(|c| c.cuboid == cuboid).collect();
            let count: u64 = cells.iter().map(|c| c.agg.count).sum();
            let sum: i64 = cells.iter().map(|c| c.agg.sum).sum();
            prop_assert_eq!(count, rel.len() as u64, "cuboid {}", cuboid);
            prop_assert_eq!(sum, rel.total_measure(), "cuboid {}", cuboid);
        }
    }

    #[test]
    fn iceberg_is_monotone_in_minsup(rel in relation_strategy()) {
        // Raising the threshold can only remove cells, never change one.
        let loose = run_parallel(
            Algorithm::Pt,
            &rel,
            &IcebergQuery::count_cube(rel.arity(), 1),
            &ClusterConfig::fast_ethernet(2),
        ).expect("valid");
        let tight = run_parallel(
            Algorithm::Pt,
            &rel,
            &IcebergQuery::count_cube(rel.arity(), 3),
            &ClusterConfig::fast_ethernet(2),
        ).expect("valid");
        prop_assert!(tight.cells.len() <= loose.cells.len());
        let loose_set: std::collections::HashMap<_, _> = loose
            .cells
            .iter()
            .map(|c| ((c.cuboid, c.key.clone()), c.agg))
            .collect();
        for c in &tight.cells {
            prop_assert_eq!(
                loose_set.get(&(c.cuboid, c.key.clone())).copied(),
                Some(c.agg),
                "tight cell must exist identically in the loose cube"
            );
        }
    }

    #[test]
    fn anti_monotonicity_of_support(rel in relation_strategy()) {
        // A cell's support never exceeds any of its projections' — the
        // property BUC's pruning and Apriori's candidate pruning rely on.
        let q = IcebergQuery::count_cube(rel.arity(), 1);
        let cells = naive_iceberg_cube(&rel, &q);
        let index: std::collections::HashMap<_, _> =
            cells.iter().map(|c| ((c.cuboid, c.key.clone()), c.agg.count)).collect();
        for c in &cells {
            for drop_dim in c.cuboid.iter_dims() {
                let parent = c.cuboid.without_dim(drop_dim);
                if parent.is_all() {
                    continue;
                }
                let pos = c.cuboid.iter_dims().position(|d| d == drop_dim).expect("present");
                let mut pkey = c.key.clone();
                pkey.remove(pos);
                let pcount = index[&(parent, pkey)];
                prop_assert!(pcount >= c.agg.count);
            }
        }
    }
}

#[test]
fn all_mask_projections_are_consistent() {
    // Deterministic spot check of the projection helper used everywhere.
    let mask = CuboidMask::from_dims(&[1, 3]);
    let mut out = [0u32; 2];
    mask.project_row(&[9, 8, 7, 6], &mut out);
    assert_eq!(out, [8, 6]);
}
