//! Property test: a sharded, served cube is observationally identical to
//! the plain `CubeStore` it was built from — bit-for-bit, for every
//! request type, at shard counts 1, 2, 3 and 8.

use icecube::cluster::ClusterConfig;
use icecube::core::{run_parallel, Algorithm, CubeStore, IcebergQuery, MaintainedCube};
use icecube::data::{Relation, Schema};
use icecube::lattice::CuboidMask;
use icecube::serve::{CubeServer, NavigationWorkload, Request, Response, RollUpPlan, ShardedCube};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Strategy: a random relation with 2–4 dimensions of small cardinality
/// (small domains force shared keys and non-trivial shard boundaries).
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (2usize..=4)
        .prop_flat_map(|d| {
            let cards = proptest::collection::vec(2u32..6, d);
            (Just(d), cards)
        })
        .prop_flat_map(|(d, cards)| {
            let rows = proptest::collection::vec(
                (proptest::collection::vec(0u32..6, d), -50i64..50),
                1..100,
            );
            (Just(cards), rows)
        })
        .prop_map(|(cards, rows)| {
            let schema = Schema::from_cardinalities(&cards).expect("valid cards");
            let mut rel = Relation::new(schema);
            for (mut dims, m) in rows {
                for (v, &c) in dims.iter_mut().zip(&cards) {
                    *v %= c;
                }
                rel.push_row(&dims, m).expect("in range");
            }
            rel
        })
}

fn build_store(rel: &Relation, minsup: u64) -> CubeStore {
    let q = IcebergQuery::count_cube(rel.arity(), minsup);
    let out = run_parallel(Algorithm::Pt, rel, &q, &ClusterConfig::fast_ethernet(2))
        .expect("small inputs never exhaust memory");
    CubeStore::from_outcome(rel.arity(), minsup, out)
}

/// The ground-truth answer a plain, unsharded `CubeStore` gives.
fn oracle(store: &CubeStore, req: &Request) -> Response {
    match req {
        Request::Point { cuboid, key } => Response::Point(store.get(*cuboid, key).copied()),
        Request::Slice { cuboid, dim, value } => {
            Response::Cells(store.slice(*cuboid, *dim, *value).expect("valid"))
        }
        Request::DrillDown { cuboid, key, dim } => {
            Response::Cells(store.drill_down(*cuboid, key, *dim).expect("valid"))
        }
        Request::Cuboid { cuboid, minsup } => {
            Response::Cells(store.query(*cuboid, *minsup).expect("valid"))
        }
        Request::RollUp { cuboid, key, dim } => {
            let parent = cuboid.without_dim(*dim);
            if parent.is_all() {
                Response::RolledUp {
                    cell: None,
                    plan: RollUpPlan::Stored,
                    exact: true,
                }
            } else {
                Response::RolledUp {
                    cell: store.roll_up(*cuboid, key, *dim).expect("valid"),
                    plan: RollUpPlan::Stored,
                    exact: true,
                }
            }
        }
        Request::Batch(reqs) => Response::Batch(reqs.iter().map(|r| oracle(store, r)).collect()),
        Request::EstimatePoint { .. } | Request::EstimateCuboid { .. } => {
            unreachable!("navigation workloads never generate estimates")
        }
    }
}

#[test]
fn queries_racing_a_streaming_refresh_answer_from_exactly_one_epoch() {
    // End-to-end streaming path: a MaintainedCube ingests batches while a
    // CubeServer serves; each ingest is published with an epoch-swap
    // refresh. Clients hammer the server throughout, and every answer
    // must match the oracle of the epoch it is tagged with — never a
    // blend of two generations, batches included.
    let schema = Schema::from_cardinalities(&[3, 3, 2]).expect("valid cards");
    let mut base = Relation::new(schema.clone());
    for i in 0..30u32 {
        base.push_row(&[i % 3, (i / 3) % 3, i % 2], i64::from(i) - 15)
            .expect("in range");
    }
    let mut maintained = MaintainedCube::from_relation(&base, 1).expect("dims > 0");

    // Precompute every generation and its oracle before serving starts.
    let mut generations = vec![maintained.visible()];
    let mut staged = maintained.clone();
    let batches: Vec<Relation> = (0..4)
        .map(|b| {
            let mut batch = Relation::new(schema.clone());
            for i in 0..10u32 {
                let v = i + 7 * b;
                batch
                    .push_row(&[v % 3, v % 2, (v / 2) % 2], i64::from(v))
                    .expect("in range");
            }
            staged.ingest(&batch).expect("batch ingests");
            generations.push(staged.visible());
            batch
        })
        .collect();
    let g = CuboidMask::from_dims(&[0, 1]);
    let oracles: Vec<_> = generations
        .iter()
        .map(|s| s.query(g, 1).expect("valid cuboid"))
        .collect();

    let server = CubeServer::start(ShardedCube::new(&generations[0], 2), 4).expect("workers > 0");
    let req = Request::Batch(vec![
        Request::Cuboid {
            cuboid: g,
            minsup: 1,
        },
        Request::Cuboid {
            cuboid: g,
            minsup: 1,
        },
    ]);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let h = server.handle().expect("running");
            let (req, oracles) = (&req, &oracles);
            scope.spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..25 {
                    let got = h.call_tagged(req.clone()).expect("running");
                    assert!(
                        got.epoch >= last_epoch,
                        "epochs moved backwards: {last} then {now}",
                        last = last_epoch,
                        now = got.epoch
                    );
                    last_epoch = got.epoch;
                    let want = &oracles[(got.epoch - 1) as usize];
                    match got.response {
                        Response::Batch(parts) => {
                            // Both halves of the batch come from the same
                            // snapshot — a refresh can never tear them.
                            for part in parts {
                                match part {
                                    Response::Cells(cells) => assert_eq!(
                                        &cells,
                                        want,
                                        "epoch {epoch} answered another epoch's cube",
                                        epoch = got.epoch
                                    ),
                                    other => panic!("unexpected {other:?}"),
                                }
                            }
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
        // The ingest loop races the clients: ingest, publish, repeat.
        for batch in &batches {
            maintained.ingest(batch).expect("batch ingests");
            let epoch = server.refresh(&maintained.visible()).expect("same dims");
            assert_eq!(epoch, maintained.epoch(), "server and cube epochs align");
        }
    });
    assert_eq!(server.epoch(), 5, "four refreshes after the initial epoch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_queries_match_unsharded_bit_for_bit(
        rel in relation_strategy(),
        minsup in 1u64..4,
    ) {
        let store = build_store(&rel, minsup);
        for n in SHARD_COUNTS {
            let sharded = ShardedCube::new(&store, n);
            prop_assert_eq!(sharded.len(), store.len());
            for g in store.cuboid_masks() {
                prop_assert_eq!(
                    sharded.query(g, minsup).expect("valid"),
                    store.query(g, minsup).expect("valid"),
                    "cuboid {} at {} shards", g, n
                );
            }
            for cell in store.iter() {
                prop_assert_eq!(
                    sharded.get(cell.cuboid, &cell.key).expect("valid"),
                    Some(cell.agg),
                    "cell {:?} of {} at {} shards", cell.key, cell.cuboid, n
                );
            }
        }
    }

    #[test]
    fn served_responses_match_the_oracle_for_every_request_type(
        rel in relation_strategy(),
        minsup in 1u64..3,
        seed in 0u64..1_000_000,
    ) {
        let store = build_store(&rel, minsup);
        if !store.is_empty() {
            // Seeded walk over real cells: covers Point, Slice, DrillDown,
            // RollUp, Cuboid and Batch (workload::walk_mixes_request_kinds
            // proves all six kinds appear in streams this long).
            let workload = NavigationWorkload::generate(&store, 48, seed);
            for n in SHARD_COUNTS {
                let server =
                    CubeServer::start(ShardedCube::new(&store, n), 3).expect("workers > 0");
                let handle = server.handle().expect("running");
                for req in &workload.requests {
                    let got = handle.call(req.clone()).expect("running");
                    let want = oracle(&store, req);
                    prop_assert_eq!(&got, &want, "{:?} at {} shards", req, n);
                }
                let stats = server.stats();
                prop_assert_eq!(stats.errors, 0);
                prop_assert_eq!(stats.requests, workload.leaf_count() as u64);
            }
        }
    }
}
