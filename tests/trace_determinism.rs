//! Tracing determinism and counter/event lockstep.
//!
//! The trace layer stamps events with the cluster's virtual clock, so two
//! runs with the same seed must export **byte-identical** Chrome traces
//! and phase-cost CSVs — for every algorithm, with and without faults.
//! The suite also pins the lockstep invariants between the event stream
//! and the run statistics: task spans sum to `stats.tasks`, crash events
//! fire exactly once per crashed node, and lost/recovered events match
//! their counters.

use icecube::cluster::{ClusterConfig, FaultPlan};
use icecube::core::{run_parallel, Algorithm, IcebergQuery, RunOutcome};
use icecube::data::presets;
use icecube::trace::{chrome_trace_json, phase_cost_csv, EventKind, TraceLog};

const NODES: usize = 4;

fn traced_run(alg: Algorithm, plan: Option<FaultPlan>) -> RunOutcome {
    let rel = presets::tiny(13).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let mut cfg = ClusterConfig::fast_ethernet(NODES).with_trace();
    if let Some(plan) = plan {
        cfg = cfg.with_faults(plan);
    }
    run_parallel(alg, &rel, &q, &cfg).unwrap()
}

fn chaos_plan() -> FaultPlan {
    FaultPlan::seeded_severity(0x7ace, NODES, 4_000_000, 200)
}

#[test]
fn same_seed_exports_are_byte_identical_for_every_algorithm() {
    for alg in Algorithm::all() {
        let a = traced_run(alg, None);
        let b = traced_run(alg, None);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(
            chrome_trace_json(&ta),
            chrome_trace_json(&tb),
            "{alg} chrome export differs between same-seed runs"
        );
        let csv = phase_cost_csv(&ta);
        assert_eq!(csv, phase_cost_csv(&tb), "{alg} cost CSV differs");
        assert!(csv.lines().count() > 1, "{alg} cost CSV has no rows");
    }
}

#[test]
fn same_seed_exports_are_byte_identical_under_faults() {
    for alg in Algorithm::evaluated() {
        let a = traced_run(alg, Some(chaos_plan()));
        let b = traced_run(alg, Some(chaos_plan()));
        assert_eq!(a.cells, b.cells, "{alg} cells differ");
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        assert_eq!(
            chrome_trace_json(&ta),
            chrome_trace_json(&tb),
            "{alg} faulted chrome export differs"
        );
        assert_eq!(
            phase_cost_csv(&ta),
            phase_cost_csv(&tb),
            "{alg} faulted cost CSV differs"
        );
    }
}

#[test]
fn untraced_runs_carry_no_trace() {
    let rel = presets::tiny(13).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let out = run_parallel(
        Algorithm::Pt,
        &rel,
        &q,
        &ClusterConfig::fast_ethernet(NODES),
    )
    .unwrap();
    assert!(out.trace.is_none(), "tracing must be opt-in");
}

/// Counter/event lockstep: per node, TaskStart events sum to the
/// scheduler's `stats.tasks`, and every span that completes closes.
fn assert_task_spans_match(alg: Algorithm, out: &RunOutcome, log: &TraceLog) {
    let spans = log.task_spans_per_node();
    let stats = out.stats.nodes();
    assert_eq!(spans.len(), stats.len());
    for (node, (&got, s)) in spans.iter().zip(stats).enumerate() {
        assert_eq!(
            got, s.tasks,
            "{alg} node {node}: TaskStart events {got} != stats.tasks {}",
            s.tasks
        );
    }
    let starts: u64 = spans.iter().sum();
    let ends = log.count_total(|e| matches!(e, EventKind::TaskEnd { .. }));
    assert!(
        ends <= starts,
        "{alg}: more TaskEnd ({ends}) than TaskStart ({starts})"
    );
}

#[test]
fn task_spans_sum_to_per_node_task_counts() {
    for alg in Algorithm::evaluated() {
        let out = traced_run(alg, None);
        let log = out.trace.clone().unwrap();
        assert_task_spans_match(alg, &out, &log);
        // Fault-free: every started task also ends.
        let starts: u64 = log.task_spans_per_node().iter().sum();
        let ends = log.count_total(|e| matches!(e, EventKind::TaskEnd { .. }));
        assert_eq!(starts, ends, "{alg}: unclosed spans in a fault-free run");
        assert!(starts > 0, "{alg}: no task spans recorded");
    }
}

#[test]
fn fault_events_fire_exactly_once_and_match_counters() {
    for alg in Algorithm::evaluated() {
        let out = traced_run(alg, Some(chaos_plan()));
        let log = out.trace.clone().unwrap();
        assert_task_spans_match(alg, &out, &log);
        for (node, s) in out.stats.nodes().iter().enumerate() {
            let crashes = log.node(node).iter().fold(0u64, |acc, e| {
                acc + u64::from(matches!(e.kind, EventKind::Crash))
            });
            assert_eq!(
                crashes, s.crashed,
                "{alg} node {node}: Crash events must match the counter exactly"
            );
            assert!(crashes <= 1, "{alg} node {node}: a node dies at most once");
            let lost = log.node(node).iter().fold(0u64, |acc, e| {
                acc + u64::from(matches!(e.kind, EventKind::TaskLost))
            });
            let recovered = log.node(node).iter().fold(0u64, |acc, e| {
                acc + u64::from(matches!(e.kind, EventKind::TaskRecovered))
            });
            assert_eq!(lost, s.tasks_lost, "{alg} node {node}: TaskLost events");
            assert_eq!(
                recovered, s.tasks_recovered,
                "{alg} node {node}: TaskRecovered events"
            );
        }
    }
}

#[test]
fn wire_events_account_for_the_message_counter() {
    // Every control round trip counts two messages (request + reply) and
    // records one Rpc event; every data attempt counts one message and
    // records one MsgSend — with and without faults, dead nodes included.
    for plan in [None, Some(chaos_plan())] {
        for alg in Algorithm::evaluated() {
            let out = traced_run(alg, plan.clone());
            let log = out.trace.clone().unwrap();
            for (node, s) in out.stats.nodes().iter().enumerate() {
                let (mut rpcs, mut sends) = (0u64, 0u64);
                for e in log.node(node) {
                    match e.kind {
                        EventKind::Rpc { .. } => rpcs += 1,
                        EventKind::MsgSend { .. } => sends += 1,
                        _ => {}
                    }
                }
                assert_eq!(
                    2 * rpcs + sends,
                    s.messages,
                    "{alg} node {node}: wire events out of lockstep with stats.messages"
                );
            }
            // Demand-scheduled algorithms talk to the manager; their
            // control traffic must be visible as communication volume.
            // RP and BPP are statically assigned and legitimately silent.
            if matches!(alg, Algorithm::Asl | Algorithm::Pt | Algorithm::Aht) {
                assert!(
                    out.trace.unwrap().comm_volume_bytes() > 0,
                    "{alg}: scheduling traffic must be visible as communication volume"
                );
            }
        }
    }
}

#[test]
fn traced_and_untraced_runs_have_identical_statistics() {
    // Tracing must charge nothing: attach a collector, the virtual-time
    // outcome is bit-identical to the untraced run.
    let rel = presets::tiny(13).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    for alg in Algorithm::evaluated() {
        let plain = run_parallel(alg, &rel, &q, &ClusterConfig::fast_ethernet(NODES)).unwrap();
        let traced = traced_run(alg, None);
        assert_eq!(plain.stats, traced.stats, "{alg}: tracing changed a run");
        assert_eq!(plain.cells, traced.cells, "{alg}: tracing changed cells");
    }
}

#[test]
fn phase_cost_rows_cover_load_and_compute_for_every_node() {
    let out = traced_run(Algorithm::Pt, None);
    let csv = phase_cost_csv(&out.trace.unwrap());
    for node in 0..NODES {
        assert!(
            csv.contains(&format!("\n{node},load,")) || csv.starts_with(&format!("{node},load,")),
            "node {node} has no load phase row:\n{csv}"
        );
        assert!(
            csv.contains(&format!("\n{node},compute,")),
            "node {node} has no compute phase row:\n{csv}"
        );
    }
}
