//! The progressive-serving contract (DESIGN §14), end to end:
//!
//! 1. **Soundness** — at every fold, for every cell of every probed
//!    group-by, the deterministic bound derived from the published floor
//!    and its `Progress` contains the exact batch aggregate.
//! 2. **Monotonicity** — folding only ever tightens a cell's bound,
//!    component-wise.
//! 3. **Convergence** — once every chunk is folded the floor is
//!    byte-identical to the batch build and the server's estimates *are*
//!    the batch iceberg answer.
//! 4. **Epoch consistency** — estimate answers racing a publish storm
//!    match the oracle of exactly the epoch they are tagged with.

use icecube::cluster::ClusterConfig;
use icecube::core::{run_sequential, Aggregate, CubeStore, IcebergQuery, SeqAlgorithm};
use icecube::data::presets;
use icecube::lattice::CuboidMask;
use icecube::online::{AggBound, ProgressiveBuild};
use icecube::serve::{CubeServer, Request, Response, ShardedCube};
use std::collections::HashMap;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const NODES: usize = 3;
const BUFFER: usize = 25;
const SAMPLE: usize = 64;

/// The batch minimum-support-1 floor: every partial cell, exactly.
fn batch_floor(rel: &icecube::data::Relation, cfg: &ClusterConfig) -> CubeStore {
    let q = IcebergQuery::count_cube(rel.arity(), 1);
    let out = run_sequential(SeqAlgorithm::BppBuc, rel, &q, cfg).expect("batch build runs");
    CubeStore::from_cells(rel.arity(), 1, out.cells)
}

/// Group-bys probed at every fold: the anchor (per-range envelopes), a
/// coarse roll-up and a mid lattice node (global envelope).
fn probes(dims: usize) -> Vec<CuboidMask> {
    vec![
        CuboidMask::full(dims),
        CuboidMask::from_dims(&[0]),
        CuboidMask::from_dims(&[1, dims - 1]),
    ]
}

#[test]
fn bounds_contain_the_exact_aggregate_and_only_tighten() {
    for seed in SEEDS {
        for minsup in [2u64, 5] {
            let rel = presets::tiny(seed).generate().expect("valid preset");
            let cfg = ClusterConfig::fast_ethernet(NODES);
            let exact = batch_floor(&rel, &cfg);
            let probes = probes(rel.arity());
            let mut build = ProgressiveBuild::new(&rel, minsup, NODES, BUFFER, SAMPLE, &cfg)
                .expect("non-empty relation");
            let mut prev: HashMap<(CuboidMask, Vec<u32>), AggBound> = HashMap::new();
            loop {
                let progress = build.progress();
                for &g in &probes {
                    for (key, want) in exact.query(g, 1).expect("floor answers anything") {
                        let partial = build
                            .floor()
                            .get(g, &key)
                            .copied()
                            .unwrap_or_else(Aggregate::empty);
                        let bound = AggBound::over(&partial, &progress.envelope_for(g, &key));
                        assert!(
                            bound.contains(&want),
                            "seed {seed} minsup {minsup} {g:?} {key:?}: \
                             exact {want:?} escaped {bound:?}"
                        );
                        if let Some(old) = prev.insert((g, key.clone()), bound) {
                            assert!(
                                old.tightens_to(&bound),
                                "seed {seed} {g:?} {key:?}: bound widened"
                            );
                        }
                    }
                }
                if build.step().expect("chunks fold cleanly").is_none() {
                    break;
                }
            }
            assert!(build.converged());
            // Converged: every bound is the exact point.
            for &g in &probes {
                let progress = build.progress();
                for (key, want) in exact.query(g, 1).expect("floor answers anything") {
                    let partial = build.floor().get(g, &key).copied().expect("converged");
                    let bound = AggBound::over(&partial, &progress.envelope_for(g, &key));
                    assert!(bound.is_exact());
                    assert_eq!(bound, AggBound::exact(&want));
                }
            }
        }
    }
}

#[test]
fn converged_server_estimates_are_the_batch_answer_byte_for_byte() {
    let rel = presets::tiny(21).generate().expect("valid preset");
    let cfg = ClusterConfig::fast_ethernet(NODES);
    let exact = batch_floor(&rel, &cfg);
    let minsup = 3u64;
    let mut build =
        ProgressiveBuild::new(&rel, minsup, NODES, BUFFER, SAMPLE, &cfg).expect("rows > 0");
    let srv =
        CubeServer::start_progressive(ShardedCube::new(build.floor(), 2), 2, build.progress())
            .expect("floor is minsup 1");
    while build.step().expect("chunks fold cleanly").is_some() {
        srv.publish_progressive(build.floor(), build.progress())
            .expect("floor stays minsup 1");
    }

    // Byte identity of the converged floor against the batch build.
    let (mut got, mut want) = (Vec::new(), Vec::new());
    build.floor().write_to(&mut got).expect("in-memory write");
    exact.write_to(&mut want).expect("in-memory write");
    assert_eq!(got, want, "converged floor diverged from the batch build");

    // Every estimate at every probed group-by and threshold is the batch
    // iceberg answer: same keys, point bounds, estimates equal to exact.
    let h = srv.handle().expect("running");
    for g in probes(rel.arity()) {
        for m in [1u64, minsup, 2 * minsup] {
            let resp = h
                .call(Request::EstimateCuboid {
                    cuboid: g,
                    minsup: m,
                })
                .expect("running");
            let Response::Estimate {
                cells, converged, ..
            } = resp
            else {
                panic!("unexpected response");
            };
            assert!(converged);
            let batch = exact.query(g, m).expect("floor answers anything");
            assert_eq!(cells.len(), batch.len(), "{g:?} at {m}");
            for (cell, (key, agg)) in cells.iter().zip(&batch) {
                assert_eq!(&cell.key, key);
                assert!(cell.definite);
                assert_eq!(cell.bound, AggBound::exact(agg));
                assert_eq!(cell.est_count, agg.count);
                assert_eq!(cell.est_sum, agg.sum);
            }
        }
    }
}

#[test]
fn estimates_racing_a_publish_storm_match_their_epochs_oracle() {
    let rel = presets::tiny(5).generate().expect("valid preset");
    let cfg = ClusterConfig::fast_ethernet(NODES);
    let minsup = 3u64;
    let anchor = CuboidMask::full(rel.arity());
    let req = Request::EstimateCuboid {
        cuboid: anchor,
        minsup,
    };

    // Precompute every published state (floor + progress) and, through a
    // quiet single-worker server, the exact answer each epoch must give.
    let mut build =
        ProgressiveBuild::new(&rel, minsup, NODES, BUFFER, SAMPLE, &cfg).expect("rows > 0");
    let mut states = vec![(build.floor().clone(), build.progress())];
    while build.step().expect("chunks fold cleanly").is_some() {
        states.push((build.floor().clone(), build.progress()));
    }
    let oracles: Vec<Response> = states
        .iter()
        .map(|(floor, progress)| {
            let srv =
                CubeServer::start_progressive(ShardedCube::new(floor, 2), 1, progress.clone())
                    .expect("floor is minsup 1");
            let h = srv.handle().expect("running");
            h.call(req.clone()).expect("running")
        })
        .collect();

    // Race clients against the full publish sequence: every answer must
    // be the oracle of exactly the epoch it is tagged with.
    let (floor0, progress0) = states.first().expect("at least the initial state");
    let srv = CubeServer::start_progressive(ShardedCube::new(floor0, 2), 4, progress0.clone())
        .expect("floor is minsup 1");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let h = srv.handle().expect("running");
            let (req, oracles) = (&req, &oracles);
            scope.spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..25 {
                    let got = h.call_tagged(req.clone()).expect("running");
                    assert!(got.epoch >= last_epoch, "epochs moved backwards");
                    last_epoch = got.epoch;
                    let want = &oracles[(got.epoch - 1) as usize];
                    assert_eq!(
                        &got.response,
                        want,
                        "epoch {epoch} answered another epoch's build",
                        epoch = got.epoch
                    );
                }
            });
        }
        for (floor, progress) in &states[1..] {
            srv.publish_progressive(floor, progress.clone())
                .expect("floor stays minsup 1");
        }
    });
    assert_eq!(srv.epoch() as usize, states.len());
    // The storm's final epoch is converged: its oracle is the batch
    // iceberg answer.
    let exact = batch_floor(&rel, &cfg);
    let Response::Estimate { cells, .. } = oracles.last().expect("non-empty") else {
        panic!("unexpected oracle response");
    };
    let batch = exact.query(anchor, minsup).expect("floor answers anything");
    assert_eq!(cells.len(), batch.len());
    for (cell, (key, agg)) in cells.iter().zip(&batch) {
        assert_eq!(&cell.key, key);
        assert_eq!(cell.bound, AggBound::exact(agg));
    }
}
