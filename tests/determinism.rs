//! Reproducibility: the whole stack — generator, algorithms, cluster
//! simulation, online aggregation — is a pure function of its seeds.
//! Every figure in `EXPERIMENTS.md` depends on this.

use icecube::cluster::ClusterConfig;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};
use icecube::data::presets;
use icecube::lattice::CuboidMask;
use icecube::online::{run_pol, PolQuery};

#[test]
fn generator_is_bitwise_reproducible() {
    let a = presets::tiny(5).generate().unwrap();
    let b = presets::tiny(5).generate().unwrap();
    assert_eq!(a, b);
    let c = presets::tiny(6).generate().unwrap();
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn parallel_runs_are_bitwise_reproducible() {
    let rel = presets::tiny(42).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let cfg = ClusterConfig::heterogeneous_16();
    for alg in Algorithm::all() {
        let a = run_parallel(alg, &rel, &q, &cfg).unwrap();
        let b = run_parallel(alg, &rel, &q, &cfg).unwrap();
        assert_eq!(a.cells, b.cells, "{alg} cells");
        assert_eq!(
            a.stats, b.stats,
            "{alg} stats (schedules must be deterministic)"
        );
        assert_eq!(a.stats.makespan_ns(), b.stats.makespan_ns());
    }
}

#[test]
fn pol_runs_are_bitwise_reproducible() {
    let rel = presets::tiny(43).generate().unwrap();
    let mut q = PolQuery::new(CuboidMask::from_dims(&[0, 1, 2]), 2);
    q.buffer_tuples = 29;
    let cfg = ClusterConfig::slow_myrinet(4);
    let a = run_pol(&rel, &q, &cfg).unwrap();
    let b = run_pol(&rel, &q, &cfg).unwrap();
    assert_eq!(a.cells, b.cells);
    assert_eq!(a.snapshots, b.snapshots);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stolen_tasks, b.stolen_tasks);
}

#[test]
fn cluster_seed_changes_schedules_not_answers() {
    let rel = presets::tiny(44).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let mut cfg = ClusterConfig::fast_ethernet(4);
    let a = run_parallel(Algorithm::Asl, &rel, &q, &cfg).unwrap();
    cfg.seed ^= 0xdead_beef;
    let b = run_parallel(Algorithm::Asl, &rel, &q, &cfg).unwrap();
    assert_eq!(a.cells, b.cells, "answers are seed-independent");
}
