//! End-to-end CSV pipeline: the paper's own iceberg-query example
//! (Section 2.1, Table 2.1) from raw text to the published answer.

use icecube::cluster::ClusterConfig;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};
use icecube::data::csv::{read_csv, write_csv};
use icecube::lattice::CuboidMask;

const TABLE_2_1: &str = "\
item,location,customer,sales
Sony 25in TV,Seattle,joe,700
JVC 21in TV,Vancouver,fred,400
Sony 25in TV,Seattle,sally,700
JVC 21in TV,LA,sally,400
Sony 25in TV,Seattle,bob,700
Panasonic Hi-Fi VCR,Vancouver,tom,250
";

#[test]
fn the_papers_iceberg_query_end_to_end() {
    // SELECT item, location, SUM(sales) FROM R
    // GROUP BY item, location HAVING COUNT(*) >= 2
    let table = read_csv(
        TABLE_2_1.as_bytes(),
        &["item", "location", "customer"],
        Some("sales"),
    )
    .expect("well-formed CSV");
    let q = IcebergQuery::count_cube(3, 2);
    let out = run_parallel(
        Algorithm::Pt,
        &table.relation,
        &q,
        &ClusterConfig::fast_ethernet(2),
    )
    .expect("valid query");
    let il = CuboidMask::from_dims(&[0, 1]);
    let answers: Vec<_> = out.cells.iter().filter(|c| c.cuboid == il).collect();
    // "the result would be the tuple <Sony 25\" TV, Seattle, 2100>"
    assert_eq!(answers.len(), 1);
    let cell = answers[0];
    assert_eq!(
        table.dictionaries[0].decode(cell.key[0]),
        Some("Sony 25in TV")
    );
    assert_eq!(table.dictionaries[1].decode(cell.key[1]), Some("Seattle"));
    assert_eq!(cell.agg.sum, 2100);
    assert_eq!(cell.agg.count, 3);
}

#[test]
fn csv_roundtrip_preserves_the_relation() {
    let table = read_csv(TABLE_2_1.as_bytes(), &["item", "location"], Some("sales"))
        .expect("well-formed CSV");
    let mut buf = Vec::new();
    write_csv(&mut buf, &table.relation, Some(&table.dictionaries)).expect("writable");
    let again =
        read_csv(buf.as_slice(), &["item", "location"], Some("sales")).expect("roundtrip parses");
    assert_eq!(again.relation, table.relation);
}

#[test]
fn every_algorithm_answers_the_example_identically() {
    let table = read_csv(
        TABLE_2_1.as_bytes(),
        &["item", "location", "customer"],
        Some("sales"),
    )
    .expect("well-formed CSV");
    let q = IcebergQuery::count_cube(3, 2);
    let reference = run_parallel(
        Algorithm::Rp,
        &table.relation,
        &q,
        &ClusterConfig::fast_ethernet(2),
    )
    .expect("valid")
    .cells;
    for alg in Algorithm::all() {
        let out = run_parallel(alg, &table.relation, &q, &ClusterConfig::fast_ethernet(2))
            .expect("valid");
        assert_eq!(out.cells, reference, "{alg}");
    }
}
