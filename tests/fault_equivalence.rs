//! Seeded chaos suite: fault injection must never change the cube.
//!
//! Every algorithm runs under a battery of seeded fault plans — crashes,
//! transient slowdowns, dropped and delayed messages — and the surviving
//! cube is compared bit-for-bit against the fault-free naive reference.
//! A companion regression pins determinism: the same fault seed must
//! reproduce the same schedule, counters and CSV bytes every time.

use icecube::cluster::{ClusterConfig, FaultPlan};
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::verify::assert_same_cells;
use icecube::core::{run_parallel, AlgoError, Algorithm, IcebergQuery, MaintainedCube, RunOptions};
use icecube::data::presets;
use icecube_bench::experiments::fault_free_baseline;

const ALGS: [Algorithm; 5] = [
    Algorithm::Rp,
    Algorithm::Bpp,
    Algorithm::Asl,
    Algorithm::Pt,
    Algorithm::Aht,
];

/// Eight chaos seeds; each yields a different pattern of crashes,
/// slowdowns and message faults.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

const NODES: usize = 4;

#[test]
fn chaos_cubes_equal_the_fault_free_reference() {
    let rel = presets::tiny(3).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let want = naive_iceberg_cube(&rel, &q);
    let mut crashes = 0u64;
    let mut lost = 0u64;
    let mut recovered = 0u64;
    let mut net_faults = 0u64;
    let mut slowdown_ns = 0u64;
    for alg in ALGS {
        // The same quiet reference the `fault` experiment measures
        // against (shared helper in icecube-bench).
        let quiet = fault_free_baseline(alg, &rel, &q, NODES, &RunOptions::default());
        let horizon = quiet.stats.makespan_ns();
        for seed in SEEDS {
            let plan = FaultPlan::seeded_severity(seed, NODES, horizon, 200);
            let cfg = ClusterConfig::fast_ethernet(NODES).with_faults(plan);
            let out = run_parallel(alg, &rel, &q, &cfg)
                .unwrap_or_else(|e| panic!("{alg} seed {seed}: {e}"));
            assert_same_cells(
                want.clone(),
                out.cells,
                &format!("{alg} under fault seed {seed}"),
            );
            crashes += out.stats.total_crashes();
            lost += out.stats.total_tasks_lost();
            recovered += out.stats.total_tasks_recovered();
            net_faults += out.stats.total_retransmits() + out.stats.total_rpc_retries();
            slowdown_ns += out.stats.nodes().iter().map(|s| s.slowdown_ns).sum::<u64>();
        }
    }
    // Non-vacuity: the battery actually exercised every fault class.
    assert!(crashes > 0, "no crashes fired across {} runs", 5 * 8);
    assert!(lost > 0, "no task was ever lost mid-run");
    assert!(recovered > 0, "no task was ever recovered");
    assert!(net_faults > 0, "no message was ever dropped");
    assert!(slowdown_ns > 0, "no slowdown window ever applied");
}

#[test]
fn same_fault_seed_reproduces_the_run_exactly() {
    let rel = presets::tiny(7).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    for alg in ALGS {
        let run = || {
            let plan = FaultPlan::seeded_severity(0xc4a05, NODES, 4_000_000, 200);
            let cfg = ClusterConfig::fast_ethernet(NODES).with_faults(plan);
            run_parallel(alg, &rel, &q, &cfg).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.cells, b.cells, "{alg} cells");
        assert_eq!(a.stats, b.stats, "{alg} stats and recovery counters");
        assert_eq!(a.stats.makespan_ns(), b.stats.makespan_ns(), "{alg} time");
        assert_eq!(
            (
                a.stats.total_crashes(),
                a.stats.total_tasks_lost(),
                a.stats.total_tasks_recovered(),
            ),
            (
                b.stats.total_crashes(),
                b.stats.total_tasks_lost(),
                b.stats.total_tasks_recovered(),
            ),
            "{alg} recovery counters"
        );
    }
}

/// Serialized bytes of a store — the refresh contract is *byte* identity,
/// not just equal cell sets.
fn store_bytes(store: &icecube::core::CubeStore) -> Vec<u8> {
    let mut buf = Vec::new();
    store.write_to(&mut buf).expect("in-memory write");
    buf
}

#[test]
fn crash_mid_refresh_lands_bit_identical_to_a_fault_free_refresh() {
    // The incremental-maintenance dimension of the chaos suite: the delta
    // pass of a refresh runs on the cluster under every seeded fault plan,
    // and the floor it merges must be byte-identical to the one a quiet
    // refresh produces — TaskGuard rollback and the recovery sweeps make
    // the collected delta cells deterministic, and merge-on-Ok makes the
    // refresh atomic.
    let whole = presets::tiny(3).generate().unwrap();
    let base = whole.slice(0, whole.len() / 2);
    let batch = whole.slice(whole.len() / 2, whole.len());
    let q = IcebergQuery::count_cube(whole.arity(), 1);
    let mut crashes = 0u64;
    let mut recovered = 0u64;
    for alg in ALGS {
        let mut quiet = MaintainedCube::from_relation(&base, 2).unwrap();
        quiet
            .ingest_on_cluster(alg, &batch, &ClusterConfig::fast_ethernet(NODES))
            .unwrap_or_else(|e| panic!("{alg} fault-free refresh: {e}"));
        let want_floor = store_bytes(quiet.floor());
        let want_visible = store_bytes(&quiet.visible());
        let horizon = fault_free_baseline(alg, &batch, &q, NODES, &RunOptions::default())
            .stats
            .makespan_ns();
        for seed in SEEDS {
            let plan = FaultPlan::seeded_severity(seed, NODES, horizon, 200);
            let cfg = ClusterConfig::fast_ethernet(NODES).with_faults(plan);
            let mut chaotic = MaintainedCube::from_relation(&base, 2).unwrap();
            chaotic
                .ingest_on_cluster(alg, &batch, &cfg)
                .unwrap_or_else(|e| panic!("{alg} seed {seed} refresh: {e}"));
            assert_eq!(
                store_bytes(chaotic.floor()),
                want_floor,
                "{alg} seed {seed}: floor diverged after crash-mid-refresh"
            );
            assert_eq!(
                store_bytes(&chaotic.visible()),
                want_visible,
                "{alg} seed {seed}: visible snapshot diverged"
            );
            assert_eq!(chaotic.epoch(), quiet.epoch(), "{alg} seed {seed}: epoch");
            // The simulator is deterministic, so replaying the identical
            // run surfaces its recovery counters for non-vacuity.
            let replay = run_parallel(alg, &batch, &q, &cfg)
                .unwrap_or_else(|e| panic!("{alg} seed {seed} replay: {e}"));
            crashes += replay.stats.total_crashes();
            recovered += replay.stats.total_tasks_recovered();
        }
    }
    assert!(crashes > 0, "no refresh ever saw a crash — vacuous battery");
    assert!(recovered > 0, "no refresh ever recovered a task");
}

#[test]
fn a_totally_lost_refresh_leaves_the_previous_epoch_intact() {
    // When every node dies the refresh fails typed — and merges nothing:
    // the maintained cube still serves the pre-refresh epoch, and simply
    // retrying on a healthy cluster lands the batch exactly.
    let whole = presets::tiny(5).generate().unwrap();
    let base = whole.slice(0, whole.len() / 2);
    let batch = whole.slice(whole.len() / 2, whole.len());
    let mut maintained = MaintainedCube::from_relation(&base, 2).unwrap();
    let epoch = maintained.epoch();
    let before = store_bytes(maintained.floor());

    let mut total_loss = FaultPlan::none();
    for node in 0..NODES {
        total_loss = total_loss.crash(node, 0);
    }
    let dead = ClusterConfig::fast_ethernet(NODES).with_faults(total_loss);
    match maintained.ingest_on_cluster(Algorithm::Bpp, &batch, &dead) {
        Err(AlgoError::ClusterExhausted { nodes: NODES }) => {}
        other => panic!("expected ClusterExhausted, got {other:?}"),
    }
    assert_eq!(
        maintained.epoch(),
        epoch,
        "a failed refresh publishes nothing"
    );
    assert_eq!(store_bytes(maintained.floor()), before, "floor untouched");

    // The retry converges to the fault-free result.
    maintained
        .ingest_on_cluster(Algorithm::Bpp, &batch, &ClusterConfig::fast_ethernet(NODES))
        .expect("healthy retry succeeds");
    let mut quiet = MaintainedCube::from_relation(&base, 2).unwrap();
    quiet
        .ingest_on_cluster(Algorithm::Bpp, &batch, &ClusterConfig::fast_ethernet(NODES))
        .expect("fault-free refresh succeeds");
    assert_eq!(store_bytes(maintained.floor()), store_bytes(quiet.floor()));
}

#[test]
fn fault_experiment_csv_bytes_are_identical_across_runs() {
    let ctx = |dir: &str| icecube_bench::Ctx {
        scale: 0.01,
        max_dims: 7,
        out_dir: std::env::temp_dir().join(dir),
        smoke: true,
        backend: icecube_bench::BackendSel::Both,
    };
    let save = |dir: &str| {
        let ctx = ctx(dir);
        let report = icecube_bench::experiments::run_by_id("fault", &ctx).expect("fault is known");
        std::fs::create_dir_all(&ctx.out_dir).unwrap();
        let path = report.save_csv(&ctx.out_dir).unwrap();
        std::fs::read(path).unwrap()
    };
    let a = save("icecube-fault-csv-a");
    let b = save("icecube-fault-csv-b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "results/fault.csv must be byte-identical per seed");
}
