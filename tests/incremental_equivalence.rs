//! Tier-1 oracle for streaming ingest: an incrementally maintained cube
//! must be **byte-identical** to a from-scratch recompute over the
//! concatenated relation — after every batch, at every serving minsup,
//! across seeds and relation sizes, and through minsup crossings in both
//! directions. The serialized `CubeStore` bytes are compared, not just
//! the cell sets, so ordering, strides and aggregates are all pinned.

use icecube::core::naive::naive_iceberg_cube;
use icecube::core::{CubeStore, IcebergQuery, MaintainedCube};
use icecube::data::{DeltaBatch, Relation, Schema};

/// The chaos-suite seed convention (see `tests/fault_equivalence.rs`).
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// (base rows, rows per batch, batches) — small enough for the naive
/// oracle, large enough for shared keys and multi-cuboid deltas.
const SIZES: [(usize, usize, usize); 3] = [(8, 4, 2), (40, 16, 3), (120, 45, 3)];

const MINSUPS: [u64; 3] = [1, 2, 4];

/// Dimension cardinalities every generated relation uses: small domains
/// force duplicate keys, which is what exercises merge-vs-insert paths.
const CARDS: [u32; 3] = [3, 4, 2];

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn random_relation(state: &mut u64, rows: usize) -> Relation {
    let schema = Schema::from_cardinalities(&CARDS).expect("valid cards");
    let mut rel = Relation::new(schema);
    for _ in 0..rows {
        let dims: Vec<u32> = CARDS
            .iter()
            .map(|&c| (xorshift(state) % u64::from(c)) as u32)
            .collect();
        let measure = (xorshift(state) % 201) as i64 - 100;
        rel.push_row(&dims, measure).expect("codes in range");
    }
    rel
}

/// The from-scratch oracle: a naive recompute over the whole relation.
fn scratch(rel: &Relation, minsup: u64) -> CubeStore {
    let q = IcebergQuery::count_cube(rel.arity(), minsup);
    CubeStore::from_cells(rel.arity(), minsup, naive_iceberg_cube(rel, &q))
}

fn bytes(store: &CubeStore) -> Vec<u8> {
    let mut buf = Vec::new();
    store.write_to(&mut buf).expect("in-memory write");
    buf
}

#[test]
fn incremental_equals_scratch_across_seeds_sizes_and_minsups() {
    for seed in SEEDS {
        for (base_rows, batch_rows, batches) in SIZES {
            for minsup in MINSUPS {
                let mut state = seed | 1;
                let base = random_relation(&mut state, base_rows);
                let mut maintained =
                    MaintainedCube::from_relation(&base, minsup).expect("dims > 0");
                let mut concat = base.clone();
                for b in 0..batches {
                    let batch = random_relation(&mut state, batch_rows);
                    let report = maintained.ingest(&batch).expect("batch ingests");
                    concat.extend_from(&batch).expect("same schema");
                    assert!(
                        report.touched_cuboids > 0,
                        "a non-empty batch must touch the lattice"
                    );
                    let ctx = format!(
                        "seed {seed}, base {base_rows}, batch {b} of {batches}, \
                         minsup {minsup}"
                    );
                    assert_eq!(
                        bytes(&maintained.visible()),
                        bytes(&scratch(&concat, minsup)),
                        "visible snapshot diverged from scratch: {ctx}"
                    );
                    assert_eq!(
                        bytes(maintained.floor()),
                        bytes(&scratch(&concat, 1)),
                        "floor diverged from the full minsup-1 cube: {ctx}"
                    );
                }
            }
        }
    }
}

#[test]
fn minsup_crossings_promote_and_retire_in_both_directions() {
    for seed in SEEDS {
        let mut state = seed.wrapping_mul(0x9e37_79b9).max(1);
        let rel = random_relation(&mut state, 60);
        let mut maintained = MaintainedCube::from_relation(&rel, 1).expect("dims > 0");
        let full = maintained.visible().len();

        // Raising the threshold retires cells (downward crossing) ...
        let up = maintained.set_minsup(4);
        assert!(up.retired > 0, "seed {seed}: nothing retired at minsup 4");
        assert_eq!(up.promoted, 0, "a raise can only retire");
        assert_eq!(
            bytes(&maintained.visible()),
            bytes(&scratch(&rel, 4)),
            "seed {seed}: visible snapshot after a raise"
        );
        assert_eq!(
            maintained.floor().len(),
            full,
            "seed {seed}: the floor never loses cells — no tombstones"
        );

        // ... and lowering it back promotes exactly the same cells.
        let down = maintained.set_minsup(1);
        assert_eq!(
            down.promoted, up.retired,
            "seed {seed}: the crossing must be symmetric"
        );
        assert_eq!(down.retired, 0, "a lower can only promote");
        assert_eq!(
            bytes(&maintained.visible()),
            bytes(&scratch(&rel, 1)),
            "seed {seed}: visible snapshot after lowering back"
        );
    }
}

#[test]
fn ingest_promotes_cells_across_the_serving_threshold() {
    // An upward crossing caused by *data*, not by re-thresholding: a key
    // below minsup gains support from a batch and must appear.
    let schema = Schema::from_cardinalities(&CARDS).expect("valid cards");
    let mut base = Relation::new(schema.clone());
    base.push_row(&[0, 0, 0], 7).expect("in range");
    let mut maintained = MaintainedCube::from_relation(&base, 2).expect("dims > 0");
    assert!(maintained.visible().is_empty(), "support 1 < minsup 2");

    let mut batch = Relation::new(schema);
    batch.push_row(&[0, 0, 0], 3).expect("in range");
    let report = maintained.ingest(&batch).expect("batch ingests");
    assert!(report.promoted > 0, "the duplicate key must cross upward");

    let mut concat = base.clone();
    concat.extend_from(&batch).expect("same schema");
    assert_eq!(bytes(&maintained.visible()), bytes(&scratch(&concat, 2)));
}

#[test]
fn dictionary_extending_delta_batches_match_apply_delta() {
    // The DeltaBatch path: new dictionary codes extend (never reshuffle)
    // the encoding, and the maintained cube still matches a scratch build
    // over the relation with the delta applied.
    for seed in SEEDS {
        let mut state = seed.wrapping_mul(0x5851_f42d).max(1);
        let base = random_relation(&mut state, 30);
        let mut maintained = MaintainedCube::from_relation(&base, 2).expect("dims > 0");

        let mut batch = DeltaBatch::against(base.schema());
        for _ in 0..10 {
            // Half the rows reuse base codes, half extend a dimension.
            let grow = xorshift(&mut state).is_multiple_of(2);
            let dims: Vec<u32> = CARDS
                .iter()
                .map(|&c| {
                    let span = if grow { c + 2 } else { c };
                    (xorshift(&mut state) % u64::from(span)) as u32
                })
                .collect();
            let measure = (xorshift(&mut state) % 41) as i64 - 20;
            batch.push_row(&dims, measure).expect("no sentinel codes");
        }
        maintained.ingest_batch(&batch).expect("batch ingests");

        let mut concat = base.clone();
        concat.apply_delta(&batch).expect("fresh batch applies");
        assert_eq!(
            bytes(&maintained.visible()),
            bytes(&scratch(&concat, 2)),
            "seed {seed}: dictionary growth broke equivalence"
        );
    }
}

#[test]
fn the_whole_suite_is_byte_deterministic() {
    // The CI `ingest` job runs the suite twice and diffs artifacts; this
    // pins the property locally: same seed, same bytes, same reports.
    let run = |seed: u64| {
        let mut state = seed;
        let base = random_relation(&mut state, 50);
        let batch = random_relation(&mut state, 25);
        let mut maintained = MaintainedCube::from_relation(&base, 2).expect("dims > 0");
        let report = maintained.ingest(&batch).expect("batch ingests");
        (
            bytes(&maintained.visible()),
            bytes(maintained.floor()),
            report,
        )
    };
    for seed in SEEDS {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.0, b.0, "seed {seed}: visible bytes");
        assert_eq!(a.1, b.1, "seed {seed}: floor bytes");
        assert_eq!(a.2, b.2, "seed {seed}: merge report");
    }
}
