//! Cross-crate integration: every algorithm — sequential engines, the five
//! parallel algorithms, the hash-tree attempt, the top-down baseline, POL
//! and selective materialization — produces the same iceberg cells.

use icecube::cluster::{ClusterConfig, SimCluster};
use icecube::core::cell::{sort_cells, Cell, CellBuf};
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::topdown::topdown_shared;
use icecube::core::verify::assert_same_cells;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};
use icecube::data::{presets, SyntheticSpec};
use icecube::lattice::CuboidMask;
use icecube::online::{run_pol, PolQuery, SelectiveMaterialization};

fn workloads() -> Vec<(&'static str, icecube::data::Relation)> {
    vec![
        ("sales", icecube::core::fixtures::sales()),
        (
            "iceberg-example",
            icecube::core::fixtures::iceberg_example(),
        ),
        ("tiny-skewed", presets::tiny(77).generate().unwrap()),
        (
            "wide-sparse",
            SyntheticSpec::uniform(400, vec![40, 30, 20, 10, 5], 9)
                .with_skews(vec![1.0, 0.2, 0.8, 0.0, 1.5])
                .generate()
                .unwrap(),
        ),
        (
            "dense-binary",
            SyntheticSpec::uniform(600, vec![2, 2, 2, 2, 2, 2], 4)
                .generate()
                .unwrap(),
        ),
    ]
}

#[test]
fn all_algorithms_agree_with_the_reference() {
    for (name, rel) in workloads() {
        for minsup in [1u64, 2, 4] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let want = naive_iceberg_cube(&rel, &q);
            for alg in Algorithm::all() {
                for nodes in [1usize, 3, 8] {
                    let cfg = ClusterConfig::fast_ethernet(nodes);
                    let out = run_parallel(alg, &rel, &q, &cfg)
                        .unwrap_or_else(|e| panic!("{alg} on {name}: {e}"));
                    assert_same_cells(
                        want.clone(),
                        out.cells,
                        &format!("{alg} on {name}, minsup {minsup}, {nodes} nodes"),
                    );
                    assert_eq!(out.total_cells, want.len() as u64);
                }
            }
        }
    }
}

#[test]
fn heterogeneous_cluster_changes_nothing_but_time() {
    let rel = presets::tiny(55).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let want = naive_iceberg_cube(&rel, &q);
    for alg in Algorithm::evaluated() {
        let het = run_parallel(alg, &rel, &q, &ClusterConfig::heterogeneous_16()).unwrap();
        assert_same_cells(
            want.clone(),
            het.cells,
            &format!("{alg} on heterogeneous_16"),
        );
    }
}

#[test]
fn topdown_baseline_agrees_too() {
    for (name, rel) in workloads() {
        let q = IcebergQuery::count_cube(rel.arity(), 2);
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        topdown_shared(&rel, &q, &mut cluster.nodes[0], &mut sink);
        let mut got = sink.into_cells();
        sort_cells(&mut got);
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            got,
            &format!("topdown on {name}"),
        );
    }
}

#[test]
fn pol_matches_the_cube_slice() {
    // POL answers one group-by; that group-by's cells must equal the
    // corresponding cuboid of the offline cube.
    let rel = presets::tiny(88).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 2);
    let cube = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(4)).unwrap();
    for dims in [&[0usize, 1][..], &[2, 3], &[0, 1, 2, 3]] {
        let mask = CuboidMask::from_dims(dims);
        let mut query = PolQuery::new(mask, 2);
        query.buffer_tuples = 37; // force multiple steps
        let pol = run_pol(&rel, &query, &ClusterConfig::fast_ethernet(4)).unwrap();
        let slice: Vec<Cell> = cube
            .cells
            .iter()
            .filter(|c| c.cuboid == mask)
            .cloned()
            .collect();
        assert_eq!(pol.cells, slice, "POL vs cube slice for {mask}");
    }
}

#[test]
fn materialization_answers_match_the_cube() {
    let rel = presets::tiny(99).generate().unwrap();
    let q = IcebergQuery::count_cube(rel.arity(), 3);
    let cube = run_parallel(Algorithm::Asl, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
    let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
    let m = SelectiveMaterialization::precompute(&rel, &mut cluster.nodes[0], 5).unwrap();
    for dims in [&[0usize][..], &[1, 2], &[0, 3], &[0, 1, 2, 3]] {
        let mask = CuboidMask::from_dims(dims);
        let mut sink = CellBuf::collecting();
        m.query(mask, 3, &mut cluster.nodes[0], &mut sink).unwrap();
        let mut got = sink.into_cells();
        sort_cells(&mut got);
        let slice: Vec<Cell> = cube
            .cells
            .iter()
            .filter(|c| c.cuboid == mask)
            .cloned()
            .collect();
        assert_eq!(got, slice, "materialized roll-up vs cube slice for {mask}");
    }
}
