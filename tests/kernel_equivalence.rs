//! Cross-kernel equivalence: the zero-clone arena kernel must be
//! observationally indistinguishable from a freshly specified BUC — same
//! cells as the brute-force reference, and bit-identical simulated cost
//! statistics run to run. The cells check catches wrong answers; the
//! stats check catches any drift in the charge sequence (the arena
//! rewrite must not add, drop, merge, or reorder a single `charge_*`
//! call, because fault injection keys off exact virtual times).

use icecube::cluster::{ClusterConfig, SimCluster};
use icecube::core::buc::{bpp_buc, bpp_buc_with, BucScratch};
use icecube::core::cell::CellBuf;
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::sequential::{run_sequential, SeqAlgorithm};
use icecube::core::verify::assert_same_cells;
use icecube::core::{run_parallel, Algorithm, IcebergQuery};
use icecube::data::{Relation, SyntheticSpec};
use icecube::lattice::TreeTask;

const SEEDS: [u64; 8] = [3, 11, 29, 47, 101, 211, 499, 997];

fn workload(seed: u64) -> Relation {
    // Vary the shape with the seed so the sweep covers skew, width, and
    // density rather than eight draws of one distribution.
    let (cards, skews) = match seed % 4 {
        0 => (vec![8u32, 6, 4], vec![0.0, 0.0, 0.0]),
        1 => (vec![20, 10, 5, 3], vec![1.2, 0.0, 0.5, 0.0]),
        2 => (vec![4, 4, 4, 4, 4], vec![0.0, 1.5, 0.0, 1.5, 0.0]),
        _ => (vec![30, 2, 12], vec![0.8, 0.0, 1.0]),
    };
    SyntheticSpec::uniform(300, cards, seed)
        .with_skews(skews)
        .generate()
        .unwrap()
}

#[test]
fn every_algorithm_matches_naive_with_deterministic_stats() {
    for seed in SEEDS {
        let rel = workload(seed);
        for minsup in [1u64, 3] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let want = naive_iceberg_cube(&rel, &q);
            for alg in Algorithm::all() {
                let cfg = ClusterConfig::fast_ethernet(4);
                let ctx = format!("{alg}, seed {seed}, minsup {minsup}");
                let a = run_parallel(alg, &rel, &q, &cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let b = run_parallel(alg, &rel, &q, &cfg).unwrap();
                assert_same_cells(want.clone(), a.cells.clone(), &ctx);
                // Two identical runs must agree on every counter and every
                // final virtual clock, bit for bit.
                assert_eq!(a.stats, b.stats, "stats drift: {ctx}");
                assert_eq!(a.cells, b.cells, "cell drift: {ctx}");
            }
        }
    }
}

#[test]
fn sequential_kernels_match_naive_with_deterministic_stats() {
    for seed in SEEDS {
        let rel = workload(seed);
        let q = IcebergQuery::count_cube(rel.arity(), 2);
        let want = naive_iceberg_cube(&rel, &q);
        let cfg = ClusterConfig::fast_ethernet(1);
        for alg in [SeqAlgorithm::Buc, SeqAlgorithm::BppBuc] {
            let ctx = format!("{alg:?}, seed {seed}");
            let a = run_sequential(alg, &rel, &q, &cfg).unwrap();
            let b = run_sequential(alg, &rel, &q, &cfg).unwrap();
            assert_same_cells(want.clone(), a.cells.clone(), &ctx);
            assert_eq!(a.stats, b.stats, "stats drift: {ctx}");
            assert_eq!(a.clock_ns, b.clock_ns, "clock drift: {ctx}");
        }
    }
}

#[test]
fn scratch_reuse_is_invisible_to_cells_and_charges() {
    // Running many kernels through one reused scratch must be
    // indistinguishable from giving each its own fresh scratch: the arena
    // is host-side memory, invisible to the simulated cost model.
    let mut scratch = BucScratch::new();
    for seed in SEEDS {
        let rel = workload(seed);
        let task = TreeTask::whole_lattice(rel.arity());

        let mut fresh_cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut fresh_sink = CellBuf::collecting();
        bpp_buc(&rel, 2, task, &mut fresh_cluster.nodes[0], &mut fresh_sink);

        let mut reused_cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut reused_sink = CellBuf::collecting();
        bpp_buc_with(
            &mut scratch,
            &rel,
            2,
            task,
            &mut reused_cluster.nodes[0],
            &mut reused_sink,
        );

        assert_eq!(
            fresh_sink.into_cells(),
            reused_sink.into_cells(),
            "seed {seed}: reused scratch changed the cells"
        );
        assert_eq!(
            fresh_cluster.nodes[0].stats, reused_cluster.nodes[0].stats,
            "seed {seed}: reused scratch changed the charges"
        );
        assert_eq!(
            fresh_cluster.nodes[0].clock_ns(),
            reused_cluster.nodes[0].clock_ns(),
            "seed {seed}: reused scratch changed the clock"
        );
    }
}
