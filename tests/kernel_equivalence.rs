//! Cross-kernel equivalence: the zero-clone arena kernel must be
//! observationally indistinguishable from a freshly specified BUC — same
//! cells as the brute-force reference, and bit-identical simulated cost
//! statistics run to run. The cells check catches wrong answers; the
//! stats check catches any drift in the charge sequence (the arena
//! rewrite must not add, drop, merge, or reorder a single `charge_*`
//! call, because fault injection keys off exact virtual times).

use icecube::cluster::{ClusterConfig, SimCluster};
use icecube::core::aht::{run_aht_with, AhtRunScratch};
use icecube::core::asl::{run_asl_with, AslRunScratch};
use icecube::core::buc::{bpp_buc, bpp_buc_with, BucScratch};
use icecube::core::cell::CellBuf;
use icecube::core::naive::naive_iceberg_cube;
use icecube::core::sequential::{run_sequential, SeqAlgorithm};
use icecube::core::verify::assert_same_cells;
use icecube::core::{run_parallel, Algorithm, IcebergQuery, RunOptions};
use icecube::data::{Relation, SyntheticSpec};
use icecube::lattice::TreeTask;

const SEEDS: [u64; 8] = [3, 11, 29, 47, 101, 211, 499, 997];

fn workload(seed: u64) -> Relation {
    // Vary the shape with the seed so the sweep covers skew, width, and
    // density rather than eight draws of one distribution.
    let (cards, skews) = match seed % 4 {
        0 => (vec![8u32, 6, 4], vec![0.0, 0.0, 0.0]),
        1 => (vec![20, 10, 5, 3], vec![1.2, 0.0, 0.5, 0.0]),
        2 => (vec![4, 4, 4, 4, 4], vec![0.0, 1.5, 0.0, 1.5, 0.0]),
        _ => (vec![30, 2, 12], vec![0.8, 0.0, 1.0]),
    };
    SyntheticSpec::uniform(300, cards, seed)
        .with_skews(skews)
        .generate()
        .unwrap()
}

#[test]
fn every_algorithm_matches_naive_with_deterministic_stats() {
    for seed in SEEDS {
        let rel = workload(seed);
        for minsup in [1u64, 3] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let want = naive_iceberg_cube(&rel, &q);
            for alg in Algorithm::all() {
                let cfg = ClusterConfig::fast_ethernet(4);
                let ctx = format!("{alg}, seed {seed}, minsup {minsup}");
                let a = run_parallel(alg, &rel, &q, &cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let b = run_parallel(alg, &rel, &q, &cfg).unwrap();
                assert_same_cells(want.clone(), a.cells.clone(), &ctx);
                // Two identical runs must agree on every counter and every
                // final virtual clock, bit for bit.
                assert_eq!(a.stats, b.stats, "stats drift: {ctx}");
                assert_eq!(a.cells, b.cells, "cell drift: {ctx}");
            }
        }
    }
}

#[test]
fn sequential_kernels_match_naive_with_deterministic_stats() {
    for seed in SEEDS {
        let rel = workload(seed);
        let q = IcebergQuery::count_cube(rel.arity(), 2);
        let want = naive_iceberg_cube(&rel, &q);
        let cfg = ClusterConfig::fast_ethernet(1);
        for alg in [SeqAlgorithm::Buc, SeqAlgorithm::BppBuc] {
            let ctx = format!("{alg:?}, seed {seed}");
            let a = run_sequential(alg, &rel, &q, &cfg).unwrap();
            let b = run_sequential(alg, &rel, &q, &cfg).unwrap();
            assert_same_cells(want.clone(), a.cells.clone(), &ctx);
            assert_eq!(a.stats, b.stats, "stats drift: {ctx}");
            assert_eq!(a.clock_ns, b.clock_ns, "clock drift: {ctx}");
        }
    }
}

#[test]
fn scratch_reuse_is_invisible_to_cells_and_charges() {
    // Running many kernels through one reused scratch must be
    // indistinguishable from giving each its own fresh scratch: the arena
    // is host-side memory, invisible to the simulated cost model.
    let mut scratch = BucScratch::new();
    for seed in SEEDS {
        let rel = workload(seed);
        let task = TreeTask::whole_lattice(rel.arity());

        let mut fresh_cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut fresh_sink = CellBuf::collecting();
        bpp_buc(&rel, 2, task, &mut fresh_cluster.nodes[0], &mut fresh_sink);

        let mut reused_cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut reused_sink = CellBuf::collecting();
        bpp_buc_with(
            &mut scratch,
            &rel,
            2,
            task,
            &mut reused_cluster.nodes[0],
            &mut reused_sink,
        );

        assert_eq!(
            fresh_sink.into_cells(),
            reused_sink.into_cells(),
            "seed {seed}: reused scratch changed the cells"
        );
        assert_eq!(
            fresh_cluster.nodes[0].stats, reused_cluster.nodes[0].stats,
            "seed {seed}: reused scratch changed the charges"
        );
        assert_eq!(
            fresh_cluster.nodes[0].clock_ns(),
            reused_cluster.nodes[0].clock_ns(),
            "seed {seed}: reused scratch changed the clock"
        );
    }
}

/// FNV-1a over the debug rendering of a run's cells and statistics — the
/// repo's canonical bit-identity fingerprint for a full simulated run.
fn fingerprint(cells: &[icecube::core::Cell], stats: &impl std::fmt::Debug) -> u64 {
    let rendered = format!("{cells:?}|{stats:?}");
    let mut h = 0xcbf29ce484222325u64;
    for b in rendered.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Golden fingerprints of every (algorithm, seed, minsup) configuration,
/// recorded from the pre-arena ASL/AHT kernels (boxed skiplist nodes,
/// per-cell `Box` hash keys). The arena rewrite must reproduce each run
/// bit for bit: same cells in the same order, same charge counters, same
/// virtual clocks, same skiplist RNG draws.
const GOLDEN_FPS: [(Algorithm, u64, u64, u64); 32] = [
    (Algorithm::Asl, 3, 1, 0xf8dd6d97d19f81bd),
    (Algorithm::Asl, 3, 3, 0x665f1980c5a43f3e),
    (Algorithm::Asl, 11, 1, 0x4673d81728fb9c26),
    (Algorithm::Asl, 11, 3, 0xd615866b1ddb6c70),
    (Algorithm::Asl, 29, 1, 0x482f2632461a055c),
    (Algorithm::Asl, 29, 3, 0x554443fd656b488c),
    (Algorithm::Asl, 47, 1, 0x649f3cb4f82be3cc),
    (Algorithm::Asl, 47, 3, 0x0733b6f2eba60ab4),
    (Algorithm::Asl, 101, 1, 0x325fed83b20f48e3),
    (Algorithm::Asl, 101, 3, 0xef8f7d014233d765),
    (Algorithm::Asl, 211, 1, 0x0ef616f175aacd71),
    (Algorithm::Asl, 211, 3, 0xb97d857458d61aba),
    (Algorithm::Asl, 499, 1, 0xb3bec201bf26ba4c),
    (Algorithm::Asl, 499, 3, 0x4c59979b1bb44e98),
    (Algorithm::Asl, 997, 1, 0x19ec7ce37049561d),
    (Algorithm::Asl, 997, 3, 0x2beb7fb263544568),
    (Algorithm::Aht, 3, 1, 0x33997f43485088db),
    (Algorithm::Aht, 3, 3, 0xd645d65d25cb14d1),
    (Algorithm::Aht, 11, 1, 0xfe596569c163435e),
    (Algorithm::Aht, 11, 3, 0x1faa902cf96377f2),
    (Algorithm::Aht, 29, 1, 0x28aede27dafdd3f6),
    (Algorithm::Aht, 29, 3, 0xc4da188bc615f99b),
    (Algorithm::Aht, 47, 1, 0xb776ac29e6f11367),
    (Algorithm::Aht, 47, 3, 0x7d313947b84e0986),
    (Algorithm::Aht, 101, 1, 0x12e8e4cfe8605cbd),
    (Algorithm::Aht, 101, 3, 0xb412ebefadce7218),
    (Algorithm::Aht, 211, 1, 0xa6e033db22c32166),
    (Algorithm::Aht, 211, 3, 0x91ca02cf091005e7),
    (Algorithm::Aht, 499, 1, 0x6672027e9f18b574),
    (Algorithm::Aht, 499, 3, 0xff822ecb30e407e6),
    (Algorithm::Aht, 997, 1, 0x4b267da3fbb67d82),
    (Algorithm::Aht, 997, 3, 0x80a97d688d46ab2e),
];

#[test]
fn asl_aht_scratch_reuse_is_invisible_and_matches_pre_arena_goldens() {
    // One scratch per algorithm is threaded through all 16 of its runs
    // back to back (the executor `Workload` prologue contract): the pools
    // carry arenas from workload to workload, across dimensionalities and
    // minsups. Every run must match the brute-force cells, reproduce the
    // fresh-scratch run bit for bit, and hash to the fingerprint recorded
    // before the arena rewrite.
    let mut asl_scratch = AslRunScratch::new();
    let mut aht_scratch = AhtRunScratch::new();
    for (alg, seed, minsup, golden) in GOLDEN_FPS {
        let rel = workload(seed);
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(4);
        let opts = RunOptions::default();
        let ctx = format!("{alg}, seed {seed}, minsup {minsup}");
        let fresh = run_parallel(alg, &rel, &q, &cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        let reused = match alg {
            Algorithm::Asl => run_asl_with(&mut asl_scratch, &rel, &q, &cfg, &opts),
            Algorithm::Aht => run_aht_with(&mut aht_scratch, &rel, &q, &cfg, &opts),
            other => panic!("unexpected algorithm {other}"),
        }
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            reused.cells.clone(),
            &format!("{ctx} (reused scratch)"),
        );
        assert_eq!(fresh.cells, reused.cells, "cell drift: {ctx}");
        assert_eq!(fresh.stats, reused.stats, "stats drift: {ctx}");
        let fp = fingerprint(&reused.cells, &reused.stats);
        assert_eq!(
            fp, golden,
            "{ctx}: fingerprint 0x{fp:016x} != pre-arena golden 0x{golden:016x}"
        );
    }
}
