//! Range-sharding a [`CubeStore`] across N shards by key.
//!
//! Every cuboid of the source store is split independently at even key
//! quantiles (via [`CubeStore::split_points`], the same convention
//! `icecube-core::partition` and POL's `Boundaries` use: range `j` owns
//! keys `k` with `splits[j-1] <= k < splits[j]`). Routing is therefore
//! deterministic and shared by writer and reader: a point lookup computes
//! its shard from the routing table and touches exactly one shard, while
//! slices, drill-downs and full-cuboid queries fan out to every shard and
//! concatenate — shard ranges are contiguous and each shard keeps its
//! cells key-sorted, so the merged answer is bit-for-bit the order an
//! unsharded [`CubeStore`] produces.

use crate::request::RequestError;
use icecube_core::{Aggregate, CubeStore};
use icecube_lattice::CuboidMask;
use std::collections::HashMap;

/// A cube range-partitioned into independently queryable shards.
#[derive(Debug, Clone)]
pub struct ShardedCube {
    dims: usize,
    minsup: u64,
    shards: Vec<CubeStore>,
    /// Per-cuboid split keys (at most `shards.len() - 1` each, ascending).
    routes: HashMap<CuboidMask, Vec<Vec<u32>>>,
    /// Cuboids the source store materialized, ascending.
    materialized: Vec<CuboidMask>,
}

impl ShardedCube {
    /// Range-partitions `store` into `shard_count` shards.
    ///
    /// # Panics
    /// Panics if `shard_count` is zero.
    pub fn new(store: &CubeStore, shard_count: usize) -> Self {
        // check:allow(panic-in-lib): construction-time contract spelled
        // out in the `# Panics` section above — a zero-shard cube is a
        // programming error at deployment, not request-time input, and
        // no worker thread ever runs this path.
        // check:allow(panic-path): same construction-time contract.
        assert!(shard_count > 0, "need at least one shard");
        let dims = store.dims();
        let minsup = store.minsup();
        let materialized = store.cuboid_masks();
        let mut routes = HashMap::with_capacity(materialized.len());
        let mut per_shard: Vec<Vec<icecube_core::Cell>> = vec![Vec::new(); shard_count];
        for &mask in &materialized {
            let splits = store.split_points(mask, shard_count);
            for (key, agg) in store.cells_of(mask) {
                // partition_point over at most shard_count − 1 splits is
                // always a valid shard index, so the lookup cannot miss.
                let r = splits.partition_point(|sp| sp.as_slice() <= key);
                if let Some(bucket) = per_shard.get_mut(r) {
                    bucket.push(icecube_core::Cell {
                        cuboid: mask,
                        key: key.to_vec(),
                        agg,
                    });
                }
            }
            routes.insert(mask, splits);
        }
        let shards = per_shard
            .into_iter()
            .map(|cells| CubeStore::from_cells(dims, minsup, cells))
            .collect();
        ShardedCube {
            dims,
            minsup,
            shards,
            routes,
            materialized,
        }
    }

    /// Number of cube dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The minimum support the source cube was computed at.
    pub fn minsup(&self) -> u64 {
        self.minsup
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total cells across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(CubeStore::len).sum()
    }

    /// True when the cube held no qualifying cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cells stored per shard (the sharding balance experiments plot this).
    pub fn shard_cell_counts(&self) -> Vec<usize> {
        self.shards.iter().map(CubeStore::len).collect()
    }

    /// Cuboids the source store materialized, ascending.
    pub fn materialized_cuboids(&self) -> &[CuboidMask] {
        &self.materialized
    }

    /// Whether the source store materialized cuboid `g`.
    pub fn has_cuboid(&self, g: CuboidMask) -> bool {
        self.materialized.binary_search(&g).is_ok()
    }

    /// The shard owning `key` within cuboid `g` — the deterministic routing
    /// step point lookups take.
    pub fn shard_of(&self, g: CuboidMask, key: &[u32]) -> usize {
        match self.routes.get(&g) {
            Some(splits) => splits.partition_point(|sp| sp.as_slice() <= key),
            // Unmaterialized cuboids have no cells anywhere; route to 0 so
            // lookups still resolve (to "absent") without a special case.
            None => 0,
        }
    }

    fn check_dim(&self, dim: usize) -> Result<(), RequestError> {
        if dim >= self.dims {
            return Err(RequestError::UnknownDimension {
                dim,
                dims: self.dims,
            });
        }
        Ok(())
    }

    fn check_cuboid(&self, g: CuboidMask) -> Result<(), RequestError> {
        if let Some(max) = g.max_dim() {
            self.check_dim(max)?;
        }
        Ok(())
    }

    fn check_key(&self, g: CuboidMask, key: &[u32]) -> Result<(), RequestError> {
        if key.len() != g.dim_count() {
            return Err(RequestError::KeyArityMismatch {
                expected: g.dim_count(),
                got: key.len(),
            });
        }
        Ok(())
    }

    /// Point lookup: routed to exactly one shard.
    pub fn get(&self, g: CuboidMask, key: &[u32]) -> Result<Option<Aggregate>, RequestError> {
        self.check_cuboid(g)?;
        self.check_key(g, key)?;
        let shard = self.shard_of(g, key);
        Ok(self.shards.get(shard).and_then(|s| s.get(g, key)).copied())
    }

    /// All qualifying cells of one group-by at threshold `minsup`: fans out
    /// to every shard and concatenates in shard order (ascending keys).
    pub fn query(
        &self,
        g: CuboidMask,
        minsup: u64,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, RequestError> {
        self.check_cuboid(g)?;
        if minsup < self.minsup {
            return Err(RequestError::ThresholdTooLow {
                stored: self.minsup,
                requested: minsup,
            });
        }
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.query(g, minsup)?);
        }
        Ok(out)
    }

    /// Slice: fans out to every shard and concatenates in shard order.
    pub fn slice(
        &self,
        g: CuboidMask,
        dim: usize,
        value: u32,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, RequestError> {
        self.check_cuboid(g)?;
        self.check_dim(dim)?;
        if !g.contains(dim) {
            return Err(RequestError::DimensionNotInCuboid { dim });
        }
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.slice(g, dim, value)?);
        }
        Ok(out)
    }

    /// Drill-down: fans out over the shards of the finer cuboid and
    /// concatenates in shard order.
    pub fn drill_down(
        &self,
        g: CuboidMask,
        key: &[u32],
        dim: usize,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, RequestError> {
        self.check_cuboid(g)?;
        self.check_dim(dim)?;
        if g.contains(dim) {
            return Err(RequestError::DimensionAlreadyInCuboid { dim });
        }
        self.check_key(g, key)?;
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.drill_down(g, key, dim)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_cluster::ClusterConfig;
    use icecube_core::fixtures::sales;
    use icecube_core::{run_parallel, Algorithm, IcebergQuery};

    fn store(minsup: u64) -> CubeStore {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, minsup);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        CubeStore::from_outcome(3, minsup, out)
    }

    #[test]
    fn sharding_preserves_every_cell() {
        let s = store(1);
        for n in [1, 2, 3, 8] {
            let sharded = ShardedCube::new(&s, n);
            assert_eq!(sharded.shard_count(), n);
            assert_eq!(sharded.len(), s.len(), "{n} shards");
            assert_eq!(sharded.shard_cell_counts().iter().sum::<usize>(), s.len());
        }
    }

    #[test]
    fn point_lookups_route_to_one_shard_and_agree() {
        let s = store(1);
        let sharded = ShardedCube::new(&s, 3);
        for cell in s.iter() {
            let shard = sharded.shard_of(cell.cuboid, &cell.key);
            assert!(shard < 3);
            // The owning shard has the cell; every other shard does not.
            assert_eq!(sharded.get(cell.cuboid, &cell.key).unwrap(), Some(cell.agg));
        }
    }

    #[test]
    fn fanout_order_matches_unsharded() {
        let s = store(1);
        let g = CuboidMask::from_dims(&[0, 1]);
        for n in [1, 2, 3, 8] {
            let sharded = ShardedCube::new(&s, n);
            assert_eq!(sharded.query(g, 1).unwrap(), s.query(g, 1).unwrap());
            assert_eq!(sharded.slice(g, 1, 2).unwrap(), s.slice(g, 1, 2).unwrap());
            assert_eq!(
                sharded
                    .drill_down(CuboidMask::from_dims(&[0]), &[0], 1)
                    .unwrap(),
                s.drill_down(CuboidMask::from_dims(&[0]), &[0], 1).unwrap()
            );
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        let sharded = ShardedCube::new(&store(2), 2);
        let g = CuboidMask::from_dims(&[0, 1]);
        assert_eq!(
            sharded.get(CuboidMask::from_dims(&[9]), &[0]),
            Err(RequestError::UnknownDimension { dim: 9, dims: 3 })
        );
        assert_eq!(
            sharded.get(g, &[0]),
            Err(RequestError::KeyArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            sharded.query(g, 1),
            Err(RequestError::ThresholdTooLow {
                stored: 2,
                requested: 1
            })
        );
        assert_eq!(
            sharded.slice(g, 2, 0),
            Err(RequestError::DimensionNotInCuboid { dim: 2 })
        );
        assert_eq!(
            sharded.drill_down(g, &[0, 2], 1),
            Err(RequestError::DimensionAlreadyInCuboid { dim: 1 })
        );
    }

    #[test]
    fn absent_cuboids_answer_empty_not_error() {
        // A store materializing only one cuboid still answers queries
        // against the others (empty / None), which the roll-up planner's
        // fallback path relies on.
        let s = store(1);
        let only: Vec<icecube_core::Cell> = s
            .iter()
            .filter(|c| c.cuboid == CuboidMask::from_dims(&[0, 1]))
            .collect();
        let partial = CubeStore::from_cells(3, 1, only);
        let sharded = ShardedCube::new(&partial, 4);
        let absent = CuboidMask::from_dims(&[0]);
        assert!(!sharded.has_cuboid(absent));
        assert_eq!(sharded.get(absent, &[0]).unwrap(), None);
        assert!(sharded.query(absent, 1).unwrap().is_empty());
    }
}
