//! Serving observability: lock-free counters and fixed-bucket latency
//! histograms, snapshotted into [`ServerStats`].
//!
//! Workers record into shared [`Metrics`] with lock-free atomics — no
//! lock sits on the request path. Independent event counters use
//! `Relaxed` (each justified at its use site); the histogram's
//! `total_ns`/`count` pair uses Release/Acquire so a snapshot never
//! counts a sample whose nanoseconds it cannot see. Latency uses a
//! fixed array of
//! power-of-two nanosecond buckets (bucket `i` holds samples in
//! `[2^i, 2^(i+1))` ns), so a histogram is 48 `AtomicU64`s covering
//! 1 ns to ~4.7 minutes and quantiles are a single array walk. The
//! reported p50/p95/p99 are bucket upper bounds — at most 2x the true
//! value, which is plenty for the serving experiments' scaling curves.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (covers up to `2^48` ns).
pub const BUCKETS: usize = 48;

/// A fixed-bucket latency histogram with relaxed-atomic recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one latency sample.
    pub fn record(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(bucket) = self.buckets.get(idx) {
            // relaxed: each bucket is an independent tally; quantiles are
            // approximate by design and never pair a bucket with other state.
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        // Publish the sample's nanoseconds *before* the sample becomes
        // countable: `mean_ns` reads `count` with Acquire, so every
        // sample it counts has its total already visible and the mean's
        // numerator can never miss a counted sample's contribution.
        self.total_ns.fetch_add(ns, Ordering::Release);
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // Acquire pairs with the Release in `record`: a sample visible
        // here has its `total_ns` contribution visible too.
        self.count.load(Ordering::Acquire)
    }

    /// Mean latency in nanoseconds (0 when empty).
    ///
    /// Reads `count` before `total_ns` (both Acquire, paired with the
    /// Release writes in [`LatencyHistogram::record`] which go in the
    /// opposite order), so a concurrent recorder can only make the
    /// numerator *larger* than the denominator accounts for — the mean
    /// may transiently overestimate but never drops a counted sample.
    pub fn mean_ns(&self) -> u64 {
        let count = self.count.load(Ordering::Acquire);
        let total = self.total_ns.load(Ordering::Acquire);
        total.checked_div(count).unwrap_or(0)
    }

    /// Upper bound of bucket `i` in nanoseconds: `2^(i+1)`, saturating the
    /// shift at the top of `u64`. Both the in-loop hit and the defensive
    /// fallthrough in [`LatencyHistogram::quantile_ns`] go through here, so
    /// the final bucket reports one bound no matter which path returns it
    /// (they used to disagree in spirit: the loop clamped its shift while
    /// the fallthrough computed `1 << BUCKETS` raw, which only matched
    /// because `BUCKETS` happens to be 48).
    fn bucket_upper_bound(i: usize) -> u64 {
        1u64 << (i + 1).min(63)
    }

    /// The upper bound of the bucket containing quantile `q`, in
    /// nanoseconds (0 when empty). `q` is interpreted on `[0, 1]`;
    /// out-of-range or NaN values clamp to the nearest valid quantile.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            // relaxed: buckets are independent tallies and the quantile
            // is a bucket upper bound anyway — a sample racing this walk
            // moves the answer by at most one in-flight request.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Clamp explicitly rather than leaning on float-to-int cast
        // saturation (`f64::clamp` propagates NaN, so catch that first).
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Rank of the sample answering quantile q, 1-based.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(BUCKETS - 1)
    }
}

/// Per-shard request counters.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Requests routed to exactly this shard (point lookups, stored
    /// roll-ups).
    pub routed: AtomicU64,
    /// Fan-out visits (slices, drill-downs, cuboid scans touch every
    /// shard once each).
    pub scanned: AtomicU64,
}

/// Shared, lock-free serving metrics. One instance per [`CubeServer`],
/// cloned into every worker via `Arc`.
///
/// [`CubeServer`]: crate::server::CubeServer
#[derive(Debug)]
pub struct Metrics {
    /// End-to-end request latency (enqueue to reply), leaf requests only.
    pub latency: LatencyHistogram,
    /// Leaf requests completed (batch members count individually).
    pub requests: AtomicU64,
    /// Requests answered with a typed error.
    pub errors: AtomicU64,
    /// Cells returned across all multi-cell answers.
    pub cells_returned: AtomicU64,
    /// Roll-ups answered from a stored coarser cuboid.
    pub rollup_stored: AtomicU64,
    /// Roll-ups answered by aggregating the finer cuboid.
    pub rollup_aggregated: AtomicU64,
    /// Per-shard routing counters, indexed by shard.
    pub shards: Vec<ShardCounters>,
}

impl Metrics {
    /// Creates zeroed metrics for a cube with `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        Metrics {
            latency: LatencyHistogram::new(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            cells_returned: AtomicU64::new(0),
            rollup_stored: AtomicU64::new(0),
            rollup_aggregated: AtomicU64::new(0),
            shards: (0..shard_count).map(|_| ShardCounters::default()).collect(),
        }
    }

    /// Bumps a counter by one (relaxed).
    pub fn bump(counter: &AtomicU64) {
        // relaxed: event counters are independent — nothing is published
        // under them and no reader infers cross-counter ordering.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (relaxed).
    pub fn add(counter: &AtomicU64, n: u64) {
        // relaxed: same contract as `bump` — an independent tally.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter (relaxed).
    pub fn read(counter: &AtomicU64) -> u64 {
        // relaxed: snapshots are advisory; each counter is internally
        // consistent and no pair of counters promises atomicity.
        counter.load(Ordering::Relaxed)
    }

    /// Snapshots every counter and quantile into a plain struct.
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: Metrics::read(&self.requests),
            errors: Metrics::read(&self.errors),
            cells_returned: Metrics::read(&self.cells_returned),
            rollup_stored: Metrics::read(&self.rollup_stored),
            rollup_aggregated: Metrics::read(&self.rollup_aggregated),
            mean_ns: self.latency.mean_ns(),
            p50_ns: self.latency.quantile_ns(0.50),
            p95_ns: self.latency.quantile_ns(0.95),
            p99_ns: self.latency.quantile_ns(0.99),
            shard_routed: self
                .shards
                .iter()
                .map(|s| Metrics::read(&s.routed))
                .collect(),
            shard_scanned: self
                .shards
                .iter()
                .map(|s| Metrics::read(&s.scanned))
                .collect(),
        }
    }
}

impl ServerStats {
    /// Publishes every field into a unified [`icecube_trace::Registry`]
    /// under `prefix` (e.g. `serve.requests`, `serve.shard00.routed`), so
    /// serving counters and cluster statistics can be exported side by
    /// side from one snapshot.
    pub fn register_into(&self, prefix: &str, registry: &mut icecube_trace::Registry) {
        registry.set(&format!("{prefix}.requests"), self.requests);
        registry.set(&format!("{prefix}.errors"), self.errors);
        registry.set(&format!("{prefix}.cells_returned"), self.cells_returned);
        registry.set(&format!("{prefix}.rollup_stored"), self.rollup_stored);
        registry.set(
            &format!("{prefix}.rollup_aggregated"),
            self.rollup_aggregated,
        );
        registry.set(&format!("{prefix}.latency.mean_ns"), self.mean_ns);
        registry.set(&format!("{prefix}.latency.p50_ns"), self.p50_ns);
        registry.set(&format!("{prefix}.latency.p95_ns"), self.p95_ns);
        registry.set(&format!("{prefix}.latency.p99_ns"), self.p99_ns);
        for (i, &routed) in self.shard_routed.iter().enumerate() {
            registry.set(&format!("{prefix}.shard{i:02}.routed"), routed);
        }
        for (i, &scanned) in self.shard_scanned.iter().enumerate() {
            registry.set(&format!("{prefix}.shard{i:02}.scanned"), scanned);
        }
    }
}

/// A point-in-time snapshot of a server's counters and latency quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Leaf requests completed.
    pub requests: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Cells returned across all multi-cell answers.
    pub cells_returned: u64,
    /// Roll-ups answered from a stored coarser cuboid.
    pub rollup_stored: u64,
    /// Roll-ups answered by aggregating the finer cuboid.
    pub rollup_aggregated: u64,
    /// Mean end-to-end latency, nanoseconds.
    pub mean_ns: u64,
    /// Median end-to-end latency (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile latency (bucket upper bound), nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile latency (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Per-shard single-shard-routed request counts.
    pub shard_routed: Vec<u64>,
    /// Per-shard fan-out visit counts.
    pub shard_scanned: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::new();
        for ns in [1, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_ns(), (1 + 2 + 3 + 1000 + 1_000_000) / 5);
        // p50 of {1,2,3,1000,1_000_000} is 3 → bucket [2,4) → bound 4.
        assert_eq!(h.quantile_ns(0.50), 4);
        // p99 lands on the slowest sample's bucket [2^19, 2^20).
        assert_eq!(h.quantile_ns(0.99), 1 << 20);
        assert_eq!(h.quantile_ns(0.0), 2);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn min_bucket_sample_reports_its_bucket_bound() {
        let h = LatencyHistogram::new();
        h.record(0); // clamps to 1 ns → bucket [1, 2)
        h.record(1);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_ns(q), 2, "q={q}");
        }
    }

    #[test]
    fn max_bucket_sample_agrees_with_the_fallthrough_bound() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX); // lands in the final catch-all bucket
        let top = h.quantile_ns(1.0);
        assert_eq!(top, 1u64 << BUCKETS);
        // The in-loop bound for the last bucket and the defensive
        // fallthrough must be the same number.
        assert_eq!(top, LatencyHistogram::bucket_upper_bound(BUCKETS - 1));
    }

    #[test]
    fn out_of_range_quantiles_clamp() {
        let h = LatencyHistogram::new();
        h.record(3); // bucket [2, 4)
        h.record(1000); // bucket [512, 1024)
        assert_eq!(h.quantile_ns(1.5), h.quantile_ns(1.0));
        assert_eq!(h.quantile_ns(-0.5), h.quantile_ns(0.0));
        assert_eq!(h.quantile_ns(f64::NAN), h.quantile_ns(0.0));
        assert_eq!(h.quantile_ns(0.0), 4);
        assert_eq!(h.quantile_ns(1.0), 1024);
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000 + 1);
        }
        let (p50, p95, p99) = (
            h.quantile_ns(0.50),
            h.quantile_ns(0.95),
            h.quantile_ns(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn register_into_publishes_every_counter() {
        let m = Metrics::new(2);
        Metrics::bump(&m.requests);
        Metrics::add(&m.cells_returned, 7);
        Metrics::bump(&m.shards[1].routed);
        let mut reg = icecube_trace::Registry::new();
        m.snapshot().register_into("serve", &mut reg);
        assert_eq!(reg.get("serve.requests"), Some(1));
        assert_eq!(reg.get("serve.cells_returned"), Some(7));
        assert_eq!(reg.get("serve.shard00.routed"), Some(0));
        assert_eq!(reg.get("serve.shard01.routed"), Some(1));
        assert_eq!(reg.get("serve.errors"), Some(0));
        // 9 scalar fields + 2 shards × 2 counters.
        assert_eq!(reg.len(), 13);
        let csv = reg.to_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("serve.requests,1\n"));
    }

    #[test]
    fn snapshot_reflects_counters() {
        let m = Metrics::new(2);
        Metrics::bump(&m.requests);
        Metrics::add(&m.cells_returned, 7);
        Metrics::bump(&m.shards[1].routed);
        m.latency.record(100);
        let s = m.snapshot();
        assert_eq!(s.requests, 1);
        assert_eq!(s.cells_returned, 7);
        assert_eq!(s.shard_routed, vec![0, 1]);
        assert_eq!(s.errors, 0);
        assert!(s.p50_ns >= 100);
    }
}
