//! The roll-up planner: answer "GROUP BY on fewer attributes" from the
//! cheapest materialized cuboid.
//!
//! Rolling `(g, key)` up by removing `dim` targets the coarser cuboid
//! `g \ {dim}`. When the store materialized that cuboid, one routed point
//! lookup answers the request ([`RollUpPlan::Stored`]) — this is HaCube's
//! "reuse what the cube already holds" discipline applied to serving.
//! When it did not (selective materialization, Section 5.1, keeps only a
//! subset of the lattice), the planner falls back to aggregating the finer
//! cuboid's matching cells on the fly ([`RollUpPlan::Aggregated`]) — a
//! fan-out drill-down from the coarser key re-aggregated into one cell.
//! The fallback is exact only when the store kept every cell
//! (`minsup == 1`); over a pruned iceberg cube it can undercount, which
//! the response reports via its `exact` flag rather than hiding.

use crate::request::{RequestError, RollUpPlan};
use crate::shard::ShardedCube;
use icecube_core::Aggregate;
use icecube_lattice::CuboidMask;

/// A planned roll-up answer: the coarser cell (if it exists), the plan
/// that produced it, and whether the answer is exact.
pub type RollUpAnswer = (Option<(Vec<u32>, Aggregate)>, RollUpPlan, bool);

/// Rolls `(g, key)` up by removing `dim`, choosing between the stored
/// coarser cuboid and on-the-fly aggregation of the finer one.
pub fn roll_up(
    cube: &ShardedCube,
    g: CuboidMask,
    key: &[u32],
    dim: usize,
) -> Result<RollUpAnswer, RequestError> {
    if dim >= cube.dims() {
        return Err(RequestError::UnknownDimension {
            dim,
            dims: cube.dims(),
        });
    }
    if g.max_dim().is_some_and(|m| m >= cube.dims()) {
        return Err(RequestError::UnknownDimension {
            dim: g.max_dim().unwrap_or(0),
            dims: cube.dims(),
        });
    }
    if !g.contains(dim) {
        return Err(RequestError::DimensionNotInCuboid { dim });
    }
    if key.len() != g.dim_count() {
        return Err(RequestError::KeyArityMismatch {
            expected: g.dim_count(),
            got: key.len(),
        });
    }
    let parent = g.without_dim(dim);
    if parent.is_all() {
        // The "all" node is never stored; count-based iceberg supports only
        // grow upward, so this is a definitional absence, not pruning.
        return Ok((None, RollUpPlan::Stored, true));
    }
    let Some(pos) = g.iter_dims().position(|d| d == dim) else {
        return Err(RequestError::DimensionNotInCuboid { dim });
    };
    let mut pkey = key.to_vec();
    pkey.remove(pos);
    if cube.has_cuboid(parent) {
        let cell = cube.get(parent, &pkey)?.map(|agg| (pkey, agg));
        return Ok((cell, RollUpPlan::Stored, true));
    }
    // Fallback: aggregate the finer cuboid's refinements of the coarser
    // key. `drill_down(parent, pkey, dim)` scans exactly the cells of `g`
    // matching `pkey` on every retained dimension.
    let fine = cube.drill_down(parent, &pkey, dim)?;
    if fine.is_empty() {
        return Ok((None, RollUpPlan::Aggregated, cube.minsup() == 1));
    }
    let mut agg = Aggregate::empty();
    for (_, a) in &fine {
        agg.merge(a);
    }
    Ok((
        Some((pkey, agg)),
        RollUpPlan::Aggregated,
        cube.minsup() == 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_cluster::ClusterConfig;
    use icecube_core::fixtures::sales;
    use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};

    fn store(minsup: u64) -> CubeStore {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, minsup);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        CubeStore::from_outcome(3, minsup, out)
    }

    #[test]
    fn stored_plan_matches_cubestore_rollup() {
        let s = store(1);
        let cube = ShardedCube::new(&s, 3);
        let g = CuboidMask::from_dims(&[0, 1]);
        let (cell, plan, exact) = roll_up(&cube, g, &[0, 2], 1).unwrap();
        assert_eq!(plan, RollUpPlan::Stored);
        assert!(exact);
        assert_eq!(cell, s.roll_up(g, &[0, 2], 1).unwrap());
        assert_eq!(cell.as_ref().map(|(_, a)| a.sum), Some(508));
    }

    #[test]
    fn rolling_up_to_all_is_none_and_exact() {
        let cube = ShardedCube::new(&store(1), 2);
        let (cell, plan, exact) = roll_up(&cube, CuboidMask::from_dims(&[0]), &[0], 0).unwrap();
        assert_eq!(cell, None);
        assert_eq!(plan, RollUpPlan::Stored);
        assert!(exact);
    }

    #[test]
    fn aggregated_plan_reconstructs_missing_cuboids() {
        // Keep only the finest cuboid; roll-ups must aggregate it.
        let s = store(1);
        let fine_mask = CuboidMask::from_dims(&[0, 1, 2]);
        let only: Vec<icecube_core::Cell> = s.iter().filter(|c| c.cuboid == fine_mask).collect();
        let partial = CubeStore::from_cells(3, 1, only);
        let cube = ShardedCube::new(&partial, 3);
        let (cell, plan, exact) = roll_up(&cube, fine_mask, &[0, 2, 1], 2).unwrap();
        assert_eq!(plan, RollUpPlan::Aggregated);
        assert!(exact, "minsup 1 keeps every cell, so aggregation is exact");
        // Must equal the cell the full store materialized for (model, year).
        let want = s.roll_up(fine_mask, &[0, 2, 1], 2).unwrap();
        assert_eq!(cell, want);
    }

    #[test]
    fn aggregated_plan_over_pruned_cube_reports_inexact() {
        let s = store(2);
        let fine_mask = CuboidMask::from_dims(&[0, 1, 2]);
        let only: Vec<icecube_core::Cell> = s.iter().filter(|c| c.cuboid == fine_mask).collect();
        let partial = CubeStore::from_cells(3, 2, only);
        let cube = ShardedCube::new(&partial, 2);
        let g = CuboidMask::from_dims(&[0, 1]);
        // (model=0, year=2) exists in the full store; the pruned fine
        // cuboid kept nothing at minsup 2, so the fallback sees no cells.
        let (cell, plan, exact) =
            roll_up(&cube, fine_mask, &[0, 2, 1], 2).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(plan, RollUpPlan::Aggregated);
        assert!(!exact, "aggregating a pruned cube can undercount");
        let _ = (cell, g);
    }

    #[test]
    fn malformed_rollups_are_typed_errors() {
        let cube = ShardedCube::new(&store(1), 2);
        let g = CuboidMask::from_dims(&[0, 1]);
        assert_eq!(
            roll_up(&cube, g, &[0, 2], 2),
            Err(RequestError::DimensionNotInCuboid { dim: 2 })
        );
        assert_eq!(
            roll_up(&cube, g, &[0], 1),
            Err(RequestError::KeyArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            roll_up(&cube, g, &[0, 2], 17),
            Err(RequestError::UnknownDimension { dim: 17, dims: 3 })
        );
    }
}
