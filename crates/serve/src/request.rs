//! The typed request/response protocol between clients and a
//! [`CubeServer`](crate::server::CubeServer).
//!
//! The five navigation primitives mirror Section 2.1's analyst workflow
//! (point lookups, slices, drill-downs, roll-ups) plus the iceberg query
//! itself (`Cuboid`, a full group-by at a threshold) and `Batch` for
//! pipelining. Responses carry typed errors instead of panics: a malformed
//! request must never unwind a worker thread.

use icecube_core::error::AlgoError;
use icecube_core::Aggregate;
use icecube_lattice::CuboidMask;
use icecube_online::AggBound;
use std::fmt;

/// One client request against a served cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The aggregate of a single cell.
    Point {
        /// Group-by the cell belongs to.
        cuboid: CuboidMask,
        /// The cell's key (one value per cuboid dimension, ascending).
        key: Vec<u32>,
    },
    /// Cells of one group-by whose value on `dim` equals `value`.
    Slice {
        /// Group-by to filter.
        cuboid: CuboidMask,
        /// Dimension to fix (must belong to `cuboid`).
        dim: usize,
        /// Required value on `dim`.
        value: u32,
    },
    /// The refinements of one cell when adding `dim` to its group-by
    /// ("GROUP BY on more attributes").
    DrillDown {
        /// Group-by of the starting cell.
        cuboid: CuboidMask,
        /// The starting cell's key.
        key: Vec<u32>,
        /// Dimension to add (must not belong to `cuboid`).
        dim: usize,
    },
    /// The coarser cell obtained by removing `dim` ("GROUP BY on fewer
    /// attributes"). The planner answers from the stored coarser cuboid
    /// when it was materialized, aggregating the finer one otherwise.
    RollUp {
        /// Group-by of the starting cell.
        cuboid: CuboidMask,
        /// The starting cell's key.
        key: Vec<u32>,
        /// Dimension to remove (must belong to `cuboid`).
        dim: usize,
    },
    /// All qualifying cells of one group-by at an iceberg threshold.
    Cuboid {
        /// Group-by to enumerate.
        cuboid: CuboidMask,
        /// Minimum support; must be at least the store's `minsup`.
        minsup: u64,
    },
    /// Progressive estimate of a single cell: its partial aggregate so
    /// far plus the deterministic bound the unfolded chunks leave open.
    /// Only answerable on an epoch published with progressive state.
    EstimatePoint {
        /// Group-by the cell belongs to.
        cuboid: CuboidMask,
        /// The cell's key (one value per cuboid dimension, ascending).
        key: Vec<u32>,
    },
    /// Progressive estimate of one group-by at an iceberg threshold:
    /// every cell *seen so far* that could still qualify at `minsup`
    /// (its count upper bound reaches the threshold), with per-cell
    /// bounds. On convergence this is exactly the batch iceberg answer.
    EstimateCuboid {
        /// Group-by to enumerate.
        cuboid: CuboidMask,
        /// Minimum support the client ultimately wants.
        minsup: u64,
    },
    /// Several requests answered in order by one worker.
    Batch(Vec<Request>),
}

impl Request {
    /// Number of leaf (non-batch) requests this request expands to.
    pub fn leaf_count(&self) -> usize {
        match self {
            Request::Batch(reqs) => reqs.iter().map(Request::leaf_count).sum(),
            _ => 1,
        }
    }
}

/// How a roll-up was answered (the planner's decision, reported back so
/// clients and experiments can observe reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollUpPlan {
    /// The coarser cuboid was materialized; one point lookup answered it.
    Stored,
    /// The coarser cuboid was absent; the finer cuboid's matching cells
    /// were aggregated on the fly.
    Aggregated,
}

/// One cell of a progressive estimate: the folded partial extrapolated
/// to a point estimate, plus the deterministic interval the exact value
/// must lie in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellEstimate {
    /// The cell's key.
    pub key: Vec<u32>,
    /// Deterministic bound containing the exact aggregate (DESIGN §14).
    pub bound: AggBound,
    /// Linear extrapolation of the partial count to the full relation,
    /// clamped into `bound` so the estimate can never leave its interval.
    pub est_count: u64,
    /// Linear extrapolation of the partial sum, clamped into `bound`.
    pub est_sum: i64,
    /// For [`Request::EstimateCuboid`]: the count *lower* bound already
    /// reaches the requested threshold, so the cell is guaranteed in the
    /// final answer. For [`Request::EstimatePoint`]: the bound is exact.
    pub definite: bool,
}

/// A server's answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Point`]: the aggregate, if the cell qualified.
    Point(Option<Aggregate>),
    /// Answer to [`Request::Slice`], [`Request::DrillDown`] and
    /// [`Request::Cuboid`]: qualifying cells in ascending key order —
    /// bit-for-bit the order an unsharded [`icecube_core::CubeStore`]
    /// returns.
    Cells(Vec<(Vec<u32>, Aggregate)>),
    /// Answer to [`Request::RollUp`].
    RolledUp {
        /// The coarser cell, when it exists (`None` when rolled up to the
        /// unstored "all" node or the cell was pruned).
        cell: Option<(Vec<u32>, Aggregate)>,
        /// Which plan answered it.
        plan: RollUpPlan,
        /// Whether the answer is exact. An `Aggregated` plan over an
        /// iceberg cube computed at `minsup > 1` can undercount (the finer
        /// cuboid's sub-threshold cells were pruned), so it is only exact
        /// when the store kept every cell.
        exact: bool,
    },
    /// Answer to [`Request::EstimatePoint`] and
    /// [`Request::EstimateCuboid`]: estimated cells plus how far the
    /// progressive build behind this epoch has come.
    Estimate {
        /// Estimated cells in ascending key order (exactly one for a
        /// point estimate, possibly with an empty partial).
        cells: Vec<CellEstimate>,
        /// Chunks folded into the epoch's floor.
        chunks_folded: usize,
        /// Chunks the build plans in total.
        chunks_total: usize,
        /// Rows folded into the epoch's floor.
        rows_folded: u64,
        /// Rows the build covers in total.
        rows_total: u64,
        /// Every chunk is folded: bounds are points and cuboid estimates
        /// equal the batch iceberg answer.
        converged: bool,
    },
    /// Answers to a [`Request::Batch`], in request order.
    Batch(Vec<Response>),
    /// The request was malformed or unanswerable; no worker unwound.
    Error(RequestError),
}

/// Why a request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A named dimension is outside the cube's dimensionality.
    UnknownDimension {
        /// The offending dimension.
        dim: usize,
        /// The cube's dimensionality.
        dims: usize,
    },
    /// Slice/roll-up named a dimension the cuboid does not contain.
    DimensionNotInCuboid {
        /// The offending dimension.
        dim: usize,
    },
    /// Drill-down named a dimension the cuboid already contains.
    DimensionAlreadyInCuboid {
        /// The offending dimension.
        dim: usize,
    },
    /// A key's length does not match its cuboid's arity.
    KeyArityMismatch {
        /// Arity the cuboid requires.
        expected: usize,
        /// Arity the request supplied.
        got: usize,
    },
    /// An iceberg threshold below what the store was computed at.
    ThresholdTooLow {
        /// Minimum support the store was computed at.
        stored: u64,
        /// The (lower) requested threshold.
        requested: u64,
    },
    /// An estimate request reached an epoch that carries no progressive
    /// state (the server was started or refreshed with a finished cube).
    NotProgressive,
    /// The store reported an error the serving layer has no specific
    /// mapping for. Reaching this indicates a bug in request validation
    /// (the shard router should have rejected the request first), but it
    /// is answered, not panicked over.
    Internal {
        /// The underlying error, rendered.
        detail: String,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::UnknownDimension { dim, dims } => {
                write!(f, "dimension {dim} outside the cube's {dims} dimensions")
            }
            RequestError::DimensionNotInCuboid { dim } => {
                write!(f, "dimension {dim} does not belong to the cuboid")
            }
            RequestError::DimensionAlreadyInCuboid { dim } => {
                write!(f, "dimension {dim} already belongs to the cuboid")
            }
            RequestError::KeyArityMismatch { expected, got } => {
                write!(
                    f,
                    "key has {got} values but the cuboid has {expected} dimensions"
                )
            }
            RequestError::ThresholdTooLow { stored, requested } => write!(
                f,
                "store computed at minsup {stored} cannot answer threshold {requested}"
            ),
            RequestError::NotProgressive => write!(
                f,
                "the served epoch carries no progressive state to bound \
                 an estimate with"
            ),
            RequestError::Internal { detail } => {
                write!(f, "internal serving error: {detail}")
            }
        }
    }
}

impl std::error::Error for RequestError {}

impl From<AlgoError> for RequestError {
    fn from(e: AlgoError) -> Self {
        match e {
            AlgoError::ThresholdTooLow { stored, requested } => {
                RequestError::ThresholdTooLow { stored, requested }
            }
            AlgoError::DimensionMismatch {
                query_dims,
                relation_dims,
            } => RequestError::UnknownDimension {
                dim: query_dims.saturating_sub(1),
                dims: relation_dims,
            },
            AlgoError::DimensionNotInGroupBy { dim } => RequestError::DimensionNotInCuboid { dim },
            AlgoError::DimensionAlreadyInGroupBy { dim } => {
                RequestError::DimensionAlreadyInCuboid { dim }
            }
            // The remaining AlgoError variants concern cube *computation*
            // and should not come out of a CubeStore read path; if one
            // ever does, answer with it rather than unwinding a worker.
            other => RequestError::Internal {
                detail: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_counts_flatten_batches() {
        let p = Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![1],
        };
        assert_eq!(p.leaf_count(), 1);
        let b = Request::Batch(vec![p.clone(), Request::Batch(vec![p.clone(), p])]);
        assert_eq!(b.leaf_count(), 3);
    }

    #[test]
    fn errors_display_and_convert() {
        let e: RequestError = AlgoError::ThresholdTooLow {
            stored: 4,
            requested: 2,
        }
        .into();
        assert_eq!(
            e,
            RequestError::ThresholdTooLow {
                stored: 4,
                requested: 2
            }
        );
        assert!(e.to_string().contains("cannot answer threshold 2"));
        let e = RequestError::KeyArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("3 values"));
        let e: RequestError = AlgoError::DimensionNotInGroupBy { dim: 4 }.into();
        assert_eq!(e, RequestError::DimensionNotInCuboid { dim: 4 });
        let e: RequestError = AlgoError::DimensionAlreadyInGroupBy { dim: 4 }.into();
        assert_eq!(e, RequestError::DimensionAlreadyInCuboid { dim: 4 });
        assert!(RequestError::NotProgressive
            .to_string()
            .contains("no progressive state"));
        // Computation-side errors map to Internal instead of unwinding.
        let e: RequestError = AlgoError::EmptyInput.into();
        match e {
            RequestError::Internal { ref detail } => assert!(detail.contains("empty")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(e.to_string().contains("internal serving error"));
    }
}
