//! Deterministic load generation: a seeded analyst "navigation walk" over
//! a real cube, and a closed-loop driver measuring served throughput.
//!
//! The walk mirrors Section 2.1's workflow — mostly point lookups with
//! interleaved slices, roll-ups, drill-downs, full-cuboid scans and small
//! pipelined batches — but every choice comes from a seeded PRNG over the
//! cube's *actual* cells, so the same `(store, count, seed)` always yields
//! the same request stream. That determinism is what lets the `serve`
//! experiment rerun identical workloads while sweeping shard and worker
//! counts.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::error::ServeError;
use crate::metrics::ServerStats;
use crate::request::{Request, Response};
use crate::server::CubeServer;
use icecube_core::CubeStore;
use icecube_lattice::CuboidMask;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// A pre-generated, deterministic stream of navigation requests.
#[derive(Debug, Clone)]
pub struct NavigationWorkload {
    /// The request stream, in submission order.
    pub requests: Vec<Request>,
}

impl NavigationWorkload {
    /// Generates `count` requests over the cells `store` actually holds.
    /// Same `(store, count, seed)` → same stream.
    /// # Panics
    /// Panics if `store` holds no cells (there is nothing to navigate).
    pub fn generate(store: &CubeStore, count: usize, seed: u64) -> Self {
        // check:allow(panic-in-lib): documented precondition of a
        // test/bench harness entry point — an empty cube has no cells to
        // walk, and returning an empty stream would silently void every
        // experiment that asked for `count` requests.
        assert!(!store.is_empty(), "cannot navigate an empty cube");
        let mut rng = SmallRng::seed_from_u64(seed);
        let masks = store.cuboid_masks();
        let keys: Vec<Vec<Vec<u32>>> = masks
            .iter()
            .map(|&g| store.cells_of(g).map(|(k, _)| k.to_vec()).collect())
            .collect();
        let mut gen = Generator {
            store,
            masks,
            keys,
            rng: &mut rng,
        };
        let requests = (0..count).map(|_| gen.step(true)).collect();
        NavigationWorkload { requests }
    }

    /// Total leaf requests in the stream (batch members count).
    pub fn leaf_count(&self) -> usize {
        self.requests.iter().map(Request::leaf_count).sum()
    }
}

struct Generator<'a> {
    store: &'a CubeStore,
    masks: Vec<CuboidMask>,
    keys: Vec<Vec<Vec<u32>>>,
    rng: &'a mut SmallRng,
}

impl Generator<'_> {
    /// Picks a random materialized cell: (cuboid, key).
    fn cell(&mut self) -> (CuboidMask, Vec<u32>) {
        loop {
            let m = self.rng.gen_range(0..self.masks.len());
            if let Some(key) = pick(self.rng, &self.keys[m]) {
                return (self.masks[m], key.clone());
            }
        }
    }

    fn step(&mut self, allow_batch: bool) -> Request {
        let (cuboid, key) = self.cell();
        match self.rng.gen_range(0..100u32) {
            // Point lookups dominate an analyst session.
            0..=34 => Request::Point { cuboid, key },
            35..=54 => {
                let dims: Vec<usize> = cuboid.iter_dims().collect();
                // Stored cuboids always have at least one dimension; fall
                // back to a point lookup rather than panicking if not.
                match pick(self.rng, &dims).copied() {
                    Some(dim) => match dims.iter().position(|&d| d == dim) {
                        Some(pos) => Request::Slice {
                            cuboid,
                            dim,
                            value: key[pos],
                        },
                        None => Request::Point { cuboid, key },
                    },
                    None => Request::Point { cuboid, key },
                }
            }
            55..=69 => {
                let dims: Vec<usize> = cuboid.iter_dims().collect();
                match pick(self.rng, &dims).copied() {
                    Some(dim) => Request::RollUp { cuboid, key, dim },
                    None => Request::Point { cuboid, key },
                }
            }
            70..=79 => {
                let absent: Vec<usize> = (0..self.store.dims())
                    .filter(|&d| !cuboid.contains(d))
                    .collect();
                match pick(self.rng, &absent) {
                    Some(&dim) => Request::DrillDown { cuboid, key, dim },
                    // Finest cuboid: nothing to drill into, look up instead.
                    None => Request::Point { cuboid, key },
                }
            }
            80..=89 => Request::Cuboid {
                cuboid,
                minsup: self.store.minsup(),
            },
            _ if allow_batch => {
                let n = self.rng.gen_range(2..5usize);
                Request::Batch((0..n).map(|_| self.step(false)).collect())
            }
            _ => Request::Point { cuboid, key },
        }
    }
}

fn pick<'s, T>(rng: &mut SmallRng, items: &'s [T]) -> Option<&'s T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.gen_range(0..items.len())])
    }
}

/// What one closed-loop run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Wall-clock time from first submission to last answer.
    pub elapsed: Duration,
    /// Leaf requests answered.
    pub requests: u64,
    /// Leaf requests answered per second.
    pub throughput: f64,
    /// The server's counters and latency quantiles after the run.
    pub stats: ServerStats,
}

/// Drives `workload` through `server` with `clients` closed-loop client
/// threads (each submits its next request only after the previous answer
/// arrives). Requests are dealt round-robin, so the per-client streams —
/// and the aggregate mix — are deterministic for a given client count.
/// Zero clients is treated as one.
///
/// # Errors
/// [`ServeError::ShutDown`] when the server shuts down mid-run (no
/// client gets an answer for an accepted job).
pub fn run_closed_loop(
    server: &CubeServer,
    workload: &NavigationWorkload,
    clients: usize,
) -> Result<LoadReport, ServeError> {
    let clients = clients.max(1);
    let before = server.stats().requests;
    let start = Instant::now();
    std::thread::scope(|scope| -> Result<(), ServeError> {
        let mut joins = Vec::with_capacity(clients);
        for c in 0..clients {
            let handle = server.handle()?;
            let requests = &workload.requests;
            // check:allow(spawn-site): scoped benchmark clients driving the
            // server; they cannot outlive this function, unlike worker pools.
            joins.push(scope.spawn(move || -> Result<(), ServeError> {
                for req in requests.iter().skip(c).step_by(clients) {
                    let resp = handle.call(req.clone())?;
                    debug_assert!(
                        !matches!(resp, Response::Error(_)),
                        "workloads over real cells never err: {resp:?}"
                    );
                }
                Ok(())
            }));
        }
        for j in joins {
            match j.join() {
                Ok(client_result) => client_result?,
                // A client thread can only unwind via its debug_assert;
                // surface that verbatim instead of masking it.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        Ok(())
    })?;
    let elapsed = start.elapsed();
    let stats = server.stats();
    let requests = stats.requests - before;
    Ok(LoadReport {
        elapsed,
        requests,
        throughput: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedCube;
    use icecube_cluster::ClusterConfig;
    use icecube_core::fixtures::sales;
    use icecube_core::{run_parallel, Algorithm, IcebergQuery};

    fn store() -> CubeStore {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        CubeStore::from_outcome(3, 1, out)
    }

    #[test]
    fn same_seed_same_stream() {
        let s = store();
        let a = NavigationWorkload::generate(&s, 64, 7);
        let b = NavigationWorkload::generate(&s, 64, 7);
        assert_eq!(a.requests, b.requests);
        let c = NavigationWorkload::generate(&s, 64, 8);
        assert_ne!(a.requests, c.requests, "different seeds diverge");
        assert!(a.leaf_count() >= 64);
    }

    #[test]
    fn walk_mixes_request_kinds() {
        let s = store();
        let w = NavigationWorkload::generate(&s, 256, 42);
        let mut kinds = [0usize; 6];
        fn tally(req: &Request, kinds: &mut [usize; 6]) {
            match req {
                Request::Point { .. } => kinds[0] += 1,
                Request::Slice { .. } => kinds[1] += 1,
                Request::RollUp { .. } => kinds[2] += 1,
                Request::DrillDown { .. } => kinds[3] += 1,
                Request::Cuboid { .. } => kinds[4] += 1,
                Request::EstimatePoint { .. } | Request::EstimateCuboid { .. } => {
                    panic!("navigation workloads never generate estimates")
                }
                Request::Batch(rs) => {
                    kinds[5] += 1;
                    rs.iter().for_each(|r| tally(r, kinds));
                }
            }
        }
        w.requests.iter().for_each(|r| tally(r, &mut kinds));
        assert!(kinds.iter().all(|&k| k > 0), "all kinds present: {kinds:?}");
    }

    #[test]
    fn closed_loop_answers_everything() {
        let s = store();
        let w = NavigationWorkload::generate(&s, 40, 3);
        let server = CubeServer::start(ShardedCube::new(&s, 2), 2).expect("workers > 0");
        let report = run_closed_loop(&server, &w, 3).expect("server stays up");
        assert_eq!(report.requests, w.leaf_count() as u64);
        assert_eq!(report.stats.errors, 0);
        assert!(report.throughput > 0.0);
        assert!(report.stats.p99_ns >= report.stats.p50_ns);
    }
}
