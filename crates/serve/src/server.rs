//! The concurrent request loop: a fixed pool of worker threads answering
//! typed requests against a shared [`ShardedCube`].
//!
//! Clients hold cloneable [`ClientHandle`]s and submit [`Request`]s; each
//! request becomes a job on an MPMC queue (an `mpsc` channel whose
//! receiver the workers share behind a mutex — only the *dequeue* is
//! serialized, the cube reads themselves run fully in parallel since the
//! cube is immutable). Every worker records end-to-end latency
//! (enqueue to answer) and routing counters into shared [`Metrics`].
//! A malformed request is answered with [`Response::Error`], never a
//! worker panic, so one bad client cannot take down the pool; lifecycle
//! problems (zero workers, a closed queue) come back as typed
//! [`ServeError`]s rather than panics.
//!
//! All blocking primitives come from [`crate::sync`], so building with
//! the `icecube_loom` feature puts the whole submit/steal/shutdown
//! protocol under the deterministic model checker's scheduler.

use crate::error::ServeError;
use crate::metrics::{Metrics, ServerStats};
use crate::planner;
use crate::request::{Request, Response, RollUpPlan};
use crate::shard::ShardedCube;
use crate::sync::mpsc::{self, Receiver, Sender};
use crate::sync::{thread, Arc, Instant, Mutex};

/// What a dequeued job asks of the worker: answer a request, or die.
enum Work {
    Serve(Request),
    /// Injected worker death (see [`ClientHandle::kill_worker`]): the
    /// worker that dequeues this exits cleanly without answering.
    Crash,
}

/// One queued job plus everything needed to answer and account it.
struct Job {
    work: Work,
    enqueued: Instant,
    reply: Sender<Response>,
}

/// A pool of worker threads serving one immutable sharded cube.
///
/// Dropping the server (or calling [`CubeServer::shutdown`]) closes the
/// queue and joins every worker.
pub struct CubeServer {
    cube: Arc<ShardedCube>,
    metrics: Arc<Metrics>,
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl CubeServer {
    /// Starts `workers` threads serving `cube`.
    ///
    /// # Errors
    /// [`ServeError::NoWorkers`] when `workers` is zero;
    /// [`ServeError::Spawn`] when the OS refuses a worker thread (any
    /// workers already started are joined first).
    pub fn start(cube: ShardedCube, workers: usize) -> Result<Self, ServeError> {
        if workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        let cube = Arc::new(cube);
        let metrics = Arc::new(Metrics::new(cube.shard_count()));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let cube = Arc::clone(&cube);
            let metrics = Arc::clone(&metrics);
            let rx = Arc::clone(&rx);
            let spawned = thread::Builder::new()
                .name(format!("icecube-serve-{i}"))
                .spawn(move || worker_loop(&cube, &metrics, rx));
            match spawned {
                Ok(handle) => pool.push(handle),
                Err(e) => {
                    // Close the queue so the workers that did start see
                    // disconnection and exit before we report failure.
                    drop(tx);
                    for w in pool {
                        let _ = w.join();
                    }
                    return Err(ServeError::Spawn(e));
                }
            }
        }
        Ok(CubeServer {
            cube,
            metrics,
            tx: Some(tx),
            workers: pool,
        })
    }

    /// The served cube.
    pub fn cube(&self) -> &ShardedCube {
        &self.cube
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A cloneable handle clients submit requests through.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] once [`CubeServer::shutdown`] has closed
    /// the queue.
    pub fn handle(&self) -> Result<ClientHandle, ServeError> {
        match &self.tx {
            Some(tx) => Ok(ClientHandle { tx: tx.clone() }),
            None => Err(ServeError::ShutDown),
        }
    }

    /// Snapshot of the server's counters and latency quantiles.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Closes the queue and joins every worker. In-flight requests are
    /// answered; handles created earlier keep the queue open until dropped.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CubeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's sending side of the server queue. Cloning is cheap; every
/// clone holds the queue open until dropped.
#[derive(Clone)]
pub struct ClientHandle {
    tx: Sender<Job>,
}

impl ClientHandle {
    /// Enqueues a request, returning the channel its answer arrives on.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when every worker is gone (the queue's
    /// receiving side disconnected), so the job can never be answered.
    pub fn submit(&self, req: Request) -> Result<Receiver<Response>, ServeError> {
        let (reply, answer) = mpsc::channel();
        let job = Job {
            work: Work::Serve(req),
            enqueued: Instant::now(),
            reply,
        };
        match self.tx.send(job) {
            Ok(()) => Ok(answer),
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Injects a worker death: the worker that dequeues this job exits
    /// cleanly without answering, so its reply sender drops and `recv` on
    /// the returned channel erroring confirms the death. A chaos hook for
    /// tests and the `icecube-check` concurrency scenarios. Surviving
    /// workers keep serving; once every worker is gone, later submissions
    /// fail with [`ServeError::ShutDown`] instead of hanging.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when no worker is left to kill.
    pub fn kill_worker(&self) -> Result<Receiver<Response>, ServeError> {
        let (reply, observer) = mpsc::channel();
        let job = Job {
            work: Work::Crash,
            enqueued: Instant::now(),
            reply,
        };
        match self.tx.send(job) {
            Ok(()) => Ok(observer),
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Enqueues a request and blocks for its answer.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when the server shut down before the
    /// answer arrived.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.recv().map_err(|_| ServeError::ShutDown)
    }
}

fn worker_loop(cube: &ShardedCube, metrics: &Metrics, rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only for the dequeue, never while answering. A
        // poisoned lock means a sibling worker panicked mid-dequeue; the
        // receiver it guards is still sound, so keep serving.
        let job = match rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => return, // every sender dropped: shutdown
        };
        let Job {
            work,
            enqueued,
            reply,
        } = job;
        let req = match work {
            Work::Serve(req) => req,
            Work::Crash => {
                // Release our share of the queue *before* the reply
                // sender drops: a client observing the last worker's
                // death must find the queue already disconnected, never
                // a receiver-less queue that accepts jobs forever.
                drop(rx);
                return;
            }
        };
        let leaves = req.leaf_count() as u64;
        let resp = execute(cube, metrics, &req);
        let ns = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        for _ in 0..leaves.max(1) {
            metrics.latency.record(ns);
        }
        // The client may have given up waiting; that is not a server error.
        let _ = reply.send(resp);
    }
}

/// Answers one request, recording counters. Batches recurse.
fn execute(cube: &ShardedCube, metrics: &Metrics, req: &Request) -> Response {
    if let Request::Batch(reqs) = req {
        return Response::Batch(reqs.iter().map(|r| execute(cube, metrics, r)).collect());
    }
    Metrics::bump(&metrics.requests);
    let resp = execute_leaf(cube, metrics, req);
    if matches!(resp, Response::Error(_)) {
        Metrics::bump(&metrics.errors);
    }
    resp
}

/// Answers one non-batch request. (The batch arm recurses through
/// [`execute`] for exhaustiveness, but `execute` intercepts batches
/// before calling here.)
fn execute_leaf(cube: &ShardedCube, metrics: &Metrics, req: &Request) -> Response {
    match req {
        Request::Point { cuboid, key } => match cube.get(*cuboid, key) {
            Ok(agg) => {
                let shard = cube.shard_of(*cuboid, key);
                if let Some(s) = metrics.shards.get(shard) {
                    Metrics::bump(&s.routed);
                }
                Response::Point(agg)
            }
            Err(e) => Response::Error(e),
        },
        Request::Slice { cuboid, dim, value } => {
            fan_out(metrics, cube.slice(*cuboid, *dim, *value))
        }
        Request::DrillDown { cuboid, key, dim } => {
            fan_out(metrics, cube.drill_down(*cuboid, key, *dim))
        }
        Request::Cuboid { cuboid, minsup } => fan_out(metrics, cube.query(*cuboid, *minsup)),
        Request::RollUp { cuboid, key, dim } => match planner::roll_up(cube, *cuboid, key, *dim) {
            Ok((cell, plan, exact)) => {
                match plan {
                    RollUpPlan::Stored => {
                        Metrics::bump(&metrics.rollup_stored);
                        // The planner validated `dim ∈ cuboid`, so the
                        // parent key is re-derivable for routing; if the
                        // position were somehow absent we'd only skip the
                        // routing counter, never the answer.
                        let parent = cuboid.without_dim(*dim);
                        if !parent.is_all() {
                            if let Some(pos) = cuboid.iter_dims().position(|d| d == *dim) {
                                let mut pkey = key.clone();
                                pkey.remove(pos);
                                let shard = cube.shard_of(parent, &pkey);
                                if let Some(s) = metrics.shards.get(shard) {
                                    Metrics::bump(&s.routed);
                                }
                            }
                        }
                    }
                    RollUpPlan::Aggregated => {
                        Metrics::bump(&metrics.rollup_aggregated);
                        for s in &metrics.shards {
                            Metrics::bump(&s.scanned);
                        }
                    }
                }
                Response::RolledUp { cell, plan, exact }
            }
            Err(e) => Response::Error(e),
        },
        Request::Batch(_) => execute(cube, metrics, req),
    }
}

/// Wraps a fan-out result, counting shard visits and returned cells.
fn fan_out(
    metrics: &Metrics,
    result: Result<Vec<(Vec<u32>, icecube_core::Aggregate)>, crate::request::RequestError>,
) -> Response {
    match result {
        Ok(cells) => {
            for s in &metrics.shards {
                Metrics::bump(&s.scanned);
            }
            Metrics::add(&metrics.cells_returned, cells.len() as u64);
            Response::Cells(cells)
        }
        Err(e) => Response::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestError;
    use icecube_cluster::ClusterConfig;
    use icecube_core::fixtures::sales;
    use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
    use icecube_lattice::CuboidMask;

    fn server(shards: usize, workers: usize) -> CubeServer {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        let store = CubeStore::from_outcome(3, 1, out);
        CubeServer::start(ShardedCube::new(&store, shards), workers).expect("workers > 0")
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        let store = CubeStore::from_outcome(3, 1, out);
        match CubeServer::start(ShardedCube::new(&store, 2), 0) {
            Err(ServeError::NoWorkers) => {}
            other => panic!("unexpected {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn serves_every_request_kind() {
        let srv = server(3, 4);
        let h = srv.handle().expect("running");
        let g01 = CuboidMask::from_dims(&[0, 1]);
        let g0 = CuboidMask::from_dims(&[0]);

        match h
            .call(Request::Point {
                cuboid: g0,
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(Some(agg)) => assert!(agg.count > 0),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Cuboid {
                cuboid: g01,
                minsup: 1,
            })
            .expect("running")
        {
            Response::Cells(cells) => assert!(!cells.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::RollUp {
                cuboid: g01,
                key: vec![0, 2],
                dim: 1,
            })
            .expect("running")
        {
            Response::RolledUp { cell, plan, exact } => {
                assert!(cell.is_some());
                assert_eq!(plan, RollUpPlan::Stored);
                assert!(exact);
            }
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Batch(vec![
                Request::Slice {
                    cuboid: g01,
                    dim: 1,
                    value: 2,
                },
                Request::DrillDown {
                    cuboid: g0,
                    key: vec![0],
                    dim: 1,
                },
            ]))
            .expect("running")
        {
            Response::Batch(answers) => {
                assert_eq!(answers.len(), 2);
                assert!(matches!(answers[0], Response::Cells(_)));
                assert!(matches!(answers[1], Response::Cells(_)));
            }
            other => panic!("unexpected {other:?}"),
        }

        let stats = srv.stats();
        assert_eq!(stats.requests, 5, "batch members count individually");
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.rollup_stored, 1);
        assert!(stats.p50_ns > 0);
        assert_eq!(stats.shard_routed.len(), 3);
    }

    #[test]
    fn malformed_requests_answer_errors_without_killing_workers() {
        let srv = server(2, 2);
        let h = srv.handle().expect("running");
        let bad = Request::Point {
            cuboid: CuboidMask::from_dims(&[30]),
            key: vec![0],
        };
        match h.call(bad).expect("running") {
            Response::Error(RequestError::UnknownDimension { dim: 30, dims: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The pool still answers after the error.
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(Some(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        let stats = srv.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let srv = server(4, 4);
        let g = CuboidMask::from_dims(&[0, 1, 2]);
        let want = srv.cube().query(g, 1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = srv.handle().expect("running");
                let want = &want;
                scope.spawn(move || {
                    for _ in 0..10 {
                        match h
                            .call(Request::Cuboid {
                                cuboid: g,
                                minsup: 1,
                            })
                            .expect("running")
                        {
                            Response::Cells(cells) => assert_eq!(&cells, want),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(srv.stats().requests, 80);
    }

    #[test]
    fn shutdown_joins_workers_and_surfaces_typed_errors_after() {
        let mut srv = server(1, 3);
        let h = srv.handle().expect("running");
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        drop(h); // handles must drop before shutdown can observe closure
        srv.shutdown();
        assert_eq!(srv.worker_count(), 0);
        assert!(matches!(srv.handle(), Err(ServeError::ShutDown)));
    }

    #[test]
    fn a_dead_worker_leaves_survivors_serving() {
        let srv = server(2, 2);
        let h = srv.handle().expect("running");
        let observer = h.kill_worker().expect("running");
        assert!(
            observer.recv().is_err(),
            "the killed worker must exit without answering"
        );
        // The survivor still answers correctly.
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("survivor serves")
        {
            Response::Point(Some(agg)) => assert!(agg.count > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(srv.stats().requests, 1, "deaths are not requests");
    }

    #[test]
    fn killing_every_worker_turns_calls_into_shutdown_errors() {
        let srv = server(1, 1);
        let h = srv.handle().expect("running");
        let observer = h.kill_worker().expect("running");
        assert!(observer.recv().is_err(), "sole worker exited");
        // The queue disconnected with the last worker: a typed error,
        // never a hang or a panic.
        match h.call(Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![0],
        }) {
            Err(ServeError::ShutDown) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(h.kill_worker(), Err(ServeError::ShutDown)));
    }

    #[test]
    fn submitting_into_a_dead_queue_is_a_typed_error() {
        // When every worker is gone the queue's receiving side is
        // dropped and a surviving client handle must get a typed error,
        // never a panic. The receiver cannot disconnect while any sender
        // lives, so the dead pool is modelled directly by dropping the
        // receiving side of a fresh queue.
        let (tx, rx) = mpsc::channel::<Job>();
        drop(rx);
        let h = ClientHandle { tx };
        let probe = Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![0],
        };
        match h.call(probe) {
            Err(ServeError::ShutDown) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
