//! The concurrent request loop: a fixed pool of worker threads answering
//! typed requests against the current epoch of a refreshable
//! [`ShardedCube`].
//!
//! Clients hold cloneable [`ClientHandle`]s and submit [`Request`]s; each
//! request becomes a job on an MPMC queue (an `mpsc` channel whose
//! receiver the workers share behind a mutex — only the *dequeue* is
//! serialized, the cube reads themselves run fully in parallel since each
//! epoch's cube is immutable). Every worker records end-to-end latency
//! (enqueue to answer) and routing counters into shared [`Metrics`].
//! A malformed request is answered with [`Response::Error`], never a
//! worker panic, so one bad client cannot take down the pool; lifecycle
//! problems (zero workers, a closed queue) come back as typed
//! [`ServeError`]s rather than panics.
//!
//! **Epoch-swap refresh.** The served cube lives inside an
//! [`EpochSnapshot`] behind `Mutex<Arc<…>>`. A worker clones the `Arc`
//! exactly once per dequeued job and answers the *whole* job — every leaf
//! of a batch included — from that snapshot, so a concurrent
//! [`CubeServer::refresh`] can never tear a response across epochs. The
//! refresh itself builds the replacement shards off-thread and holds the
//! lock only for the pointer swap; queries in flight keep serving from
//! the epoch they started on, and the old cube is freed when the last
//! such query drops its `Arc`. Every [`Answer`] carries the epoch it was
//! answered from, which is what the equivalence and concurrency suites
//! pin their no-torn-reads property on.
//!
//! All blocking primitives come from [`crate::sync`], so building with
//! the `icecube_loom` feature puts the whole submit/steal/refresh/
//! shutdown protocol under the deterministic model checker's scheduler.

use crate::error::ServeError;
use crate::metrics::{Metrics, ServerStats};
use crate::planner;
use crate::request::{CellEstimate, Request, RequestError, Response, RollUpPlan};
use crate::shard::ShardedCube;
use crate::sync::mpsc::{self, Receiver, Sender};
use crate::sync::{thread, Arc, Instant, Mutex};
use icecube_core::progressive::Progress;
use icecube_core::{Aggregate, CubeStore};
use icecube_online::{scaled_count, scaled_sum, AggBound};

/// One immutable published generation of the served cube.
///
/// Workers answer each job entirely from one snapshot; refreshing the
/// server publishes a new snapshot with the next epoch number. An epoch
/// published by a progressive build additionally carries the build's
/// [`Progress`] — the slack accounting estimate requests bound their
/// answers with; finished cubes carry `None` and answer estimate
/// requests with a typed error.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    cube: ShardedCube,
    progress: Option<Progress>,
}

impl EpochSnapshot {
    /// The epoch number (starts at 1, +1 per refresh).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The sharded cube this epoch serves.
    pub fn cube(&self) -> &ShardedCube {
        &self.cube
    }

    /// The progressive build state behind this epoch, when it has one.
    pub fn progress(&self) -> Option<&Progress> {
        self.progress.as_ref()
    }
}

/// A worker's reply: the response plus the epoch it was answered from.
///
/// The epoch makes consistency *observable*: a response produced while a
/// refresh raced it is still attributable to exactly one published
/// snapshot, batches included.
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// Epoch of the snapshot that produced the response.
    pub epoch: u64,
    /// The response itself.
    pub response: Response,
}

/// What a dequeued job asks of the worker: answer a request, or die.
enum Work {
    Serve(Request),
    /// Injected worker death (see [`ClientHandle::kill_worker`]): the
    /// worker that dequeues this exits cleanly without answering.
    Crash,
}

/// One queued job plus everything needed to answer and account it.
struct Job {
    work: Work,
    enqueued: Instant,
    reply: Sender<Answer>,
}

/// A pool of worker threads serving the current epoch of a sharded cube.
///
/// Dropping the server (or calling [`CubeServer::shutdown`]) closes the
/// queue and joins every worker.
pub struct CubeServer {
    current: Arc<Mutex<Arc<EpochSnapshot>>>,
    metrics: Arc<Metrics>,
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl CubeServer {
    /// Starts `workers` threads serving `cube`.
    ///
    /// # Errors
    /// [`ServeError::NoWorkers`] when `workers` is zero;
    /// [`ServeError::Spawn`] when the OS refuses a worker thread (any
    /// workers already started are joined first).
    pub fn start(cube: ShardedCube, workers: usize) -> Result<Self, ServeError> {
        CubeServer::start_with(cube, workers, None)
    }

    /// Starts `workers` threads serving the floor of a progressive build
    /// alongside its [`Progress`], enabling the estimate requests.
    ///
    /// `cube` must be sharded from the build's minimum-support-1 *floor*:
    /// bound arithmetic needs every sub-threshold partial cell, and
    /// serving a thresholded store would silently drop the cells whose
    /// bounds still straddle the threshold.
    ///
    /// # Errors
    /// [`ServeError::ProgressiveFloor`] when `cube` was thresholded above
    /// minimum support 1, plus everything [`CubeServer::start`] returns.
    pub fn start_progressive(
        cube: ShardedCube,
        workers: usize,
        progress: Progress,
    ) -> Result<Self, ServeError> {
        if cube.minsup() != 1 {
            return Err(ServeError::ProgressiveFloor {
                minsup: cube.minsup(),
            });
        }
        CubeServer::start_with(cube, workers, Some(progress))
    }

    fn start_with(
        cube: ShardedCube,
        workers: usize,
        progress: Option<Progress>,
    ) -> Result<Self, ServeError> {
        if workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        let metrics = Arc::new(Metrics::new(cube.shard_count()));
        let current = Arc::new(Mutex::new(Arc::new(EpochSnapshot {
            epoch: 1,
            cube,
            progress,
        })));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let current = Arc::clone(&current);
            let metrics = Arc::clone(&metrics);
            let rx = Arc::clone(&rx);
            let spawned = thread::Builder::new()
                .name(format!("icecube-serve-{i}"))
                .spawn(move || worker_loop(&current, &metrics, rx));
            match spawned {
                Ok(handle) => pool.push(handle),
                Err(e) => {
                    // Close the queue so the workers that did start see
                    // disconnection and exit before we report failure.
                    drop(tx);
                    for w in pool {
                        let _ = w.join();
                    }
                    return Err(ServeError::Spawn(e));
                }
            }
        }
        Ok(CubeServer {
            current,
            metrics,
            tx: Some(tx),
            workers: pool,
        })
    }

    /// The currently published snapshot (cube + epoch). The returned
    /// `Arc` stays valid across refreshes — it is *that* epoch, frozen.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(
            &self
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }

    /// Publishes `store` as the next epoch, re-sharded at the current
    /// shard count, and returns the new epoch number.
    ///
    /// The replacement shards are built before the swap; the publication
    /// itself is a single pointer exchange under the snapshot lock, so
    /// every job dequeued before the swap finishes on the old epoch and
    /// every job after it sees the new one — no request is ever torn
    /// across both. The shard count is preserved so routing metrics stay
    /// comparable across refreshes.
    ///
    /// # Errors
    /// [`ServeError::RefreshDims`] when `store`'s dimensionality differs
    /// from the served cube's (an incremental refresh extends dictionary
    /// *cardinalities*, never the dimension count).
    pub fn refresh(&self, store: &CubeStore) -> Result<u64, ServeError> {
        self.publish(store, None)
    }

    /// Publishes a progressive build's floor and its [`Progress`] as the
    /// next epoch, and returns the new epoch number.
    ///
    /// The same single-pointer-swap discipline as [`CubeServer::refresh`]
    /// applies, so a floor and its progress are always published
    /// *together*: no job can ever pair one epoch's cells with another
    /// epoch's slack, which is what keeps every bound sound under a
    /// publish storm.
    ///
    /// # Errors
    /// [`ServeError::ProgressiveFloor`] when `store` was thresholded
    /// above minimum support 1; [`ServeError::RefreshDims`] as for
    /// [`CubeServer::refresh`].
    pub fn publish_progressive(
        &self,
        store: &CubeStore,
        progress: Progress,
    ) -> Result<u64, ServeError> {
        if store.minsup() != 1 {
            return Err(ServeError::ProgressiveFloor {
                minsup: store.minsup(),
            });
        }
        self.publish(store, Some(progress))
    }

    fn publish(&self, store: &CubeStore, progress: Option<Progress>) -> Result<u64, ServeError> {
        let (dims, shards) = {
            let cur = self
                .current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            (cur.cube.dims(), cur.cube.shard_count())
        };
        if store.dims() != dims {
            return Err(ServeError::RefreshDims {
                served: dims,
                offered: store.dims(),
            });
        }
        // The expensive part — resharding — happens outside the lock.
        let cube = ShardedCube::new(store, shards);
        let mut cur = self
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let epoch = cur.epoch + 1;
        *cur = Arc::new(EpochSnapshot {
            epoch,
            cube,
            progress,
        });
        Ok(epoch)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A cloneable handle clients submit requests through.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] once [`CubeServer::shutdown`] has closed
    /// the queue.
    pub fn handle(&self) -> Result<ClientHandle, ServeError> {
        match &self.tx {
            Some(tx) => Ok(ClientHandle { tx: tx.clone() }),
            None => Err(ServeError::ShutDown),
        }
    }

    /// Snapshot of the server's counters and latency quantiles.
    pub fn stats(&self) -> ServerStats {
        self.metrics.snapshot()
    }

    /// Closes the queue and joins every worker. In-flight requests are
    /// answered; handles created earlier keep the queue open until dropped.
    pub fn shutdown(&mut self) {
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CubeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A client's sending side of the server queue. Cloning is cheap; every
/// clone holds the queue open until dropped.
#[derive(Clone)]
pub struct ClientHandle {
    tx: Sender<Job>,
}

impl ClientHandle {
    /// Enqueues a request, returning the channel its epoch-tagged answer
    /// arrives on.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when every worker is gone (the queue's
    /// receiving side disconnected), so the job can never be answered.
    pub fn submit(&self, req: Request) -> Result<Receiver<Answer>, ServeError> {
        let (reply, answer) = mpsc::channel();
        let job = Job {
            work: Work::Serve(req),
            enqueued: Instant::now(),
            reply,
        };
        match self.tx.send(job) {
            Ok(()) => Ok(answer),
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Injects a worker death: the worker that dequeues this job exits
    /// cleanly without answering, so its reply sender drops and `recv` on
    /// the returned channel erroring confirms the death. A chaos hook for
    /// tests and the `icecube-check` concurrency scenarios. Surviving
    /// workers keep serving; once every worker is gone, later submissions
    /// fail with [`ServeError::ShutDown`] instead of hanging.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when no worker is left to kill.
    pub fn kill_worker(&self) -> Result<Receiver<Answer>, ServeError> {
        let (reply, observer) = mpsc::channel();
        let job = Job {
            work: Work::Crash,
            enqueued: Instant::now(),
            reply,
        };
        match self.tx.send(job) {
            Ok(()) => Ok(observer),
            Err(_) => Err(ServeError::ShutDown),
        }
    }

    /// Enqueues a request and blocks for its answer, discarding the epoch
    /// tag (use [`ClientHandle::call_tagged`] to observe it).
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when the server shut down before the
    /// answer arrived.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.call_tagged(req).map(|a| a.response)
    }

    /// Enqueues a request and blocks for its epoch-tagged answer.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when the server shut down before the
    /// answer arrived.
    pub fn call_tagged(&self, req: Request) -> Result<Answer, ServeError> {
        self.submit(req)?.recv().map_err(|_| ServeError::ShutDown)
    }
}

fn worker_loop(
    current: &Mutex<Arc<EpochSnapshot>>,
    metrics: &Metrics,
    rx: Arc<Mutex<Receiver<Job>>>,
) {
    loop {
        // Hold the lock only for the dequeue, never while answering. A
        // poisoned lock means a sibling worker panicked mid-dequeue; the
        // receiver it guards is still sound, so keep serving.
        let job = match rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => return, // every sender dropped: shutdown
        };
        let Job {
            work,
            enqueued,
            reply,
        } = job;
        let req = match work {
            Work::Serve(req) => req,
            Work::Crash => {
                // Release our share of the queue *before* the reply
                // sender drops: a client observing the last worker's
                // death must find the queue already disconnected, never
                // a receiver-less queue that accepts jobs forever.
                drop(rx);
                return;
            }
        };
        // Pin the epoch exactly once per job: the whole request — every
        // leaf of a batch — is answered from this snapshot, however many
        // refreshes land while it runs.
        let snapshot = Arc::clone(
            &current
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let leaves = req.leaf_count() as u64;
        let resp = execute(snapshot.cube(), snapshot.progress(), metrics, &req);
        let ns = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        for _ in 0..leaves.max(1) {
            metrics.latency.record(ns);
        }
        // The client may have given up waiting; that is not a server error.
        let _ = reply.send(Answer {
            epoch: snapshot.epoch(),
            response: resp,
        });
    }
}

/// Answers one request, recording counters. Batches recurse.
fn execute(
    cube: &ShardedCube,
    progress: Option<&Progress>,
    metrics: &Metrics,
    req: &Request,
) -> Response {
    if let Request::Batch(reqs) = req {
        return Response::Batch(
            reqs.iter()
                .map(|r| execute(cube, progress, metrics, r))
                .collect(),
        );
    }
    Metrics::bump(&metrics.requests);
    let resp = execute_leaf(cube, progress, metrics, req);
    if matches!(resp, Response::Error(_)) {
        Metrics::bump(&metrics.errors);
    }
    resp
}

/// Answers one non-batch request. (The batch arm recurses through
/// [`execute`] for exhaustiveness, but `execute` intercepts batches
/// before calling here.)
fn execute_leaf(
    cube: &ShardedCube,
    progress: Option<&Progress>,
    metrics: &Metrics,
    req: &Request,
) -> Response {
    match req {
        Request::Point { cuboid, key } => match cube.get(*cuboid, key) {
            Ok(agg) => {
                let shard = cube.shard_of(*cuboid, key);
                if let Some(s) = metrics.shards.get(shard) {
                    Metrics::bump(&s.routed);
                }
                Response::Point(agg)
            }
            Err(e) => Response::Error(e),
        },
        Request::Slice { cuboid, dim, value } => {
            fan_out(metrics, cube.slice(*cuboid, *dim, *value))
        }
        Request::DrillDown { cuboid, key, dim } => {
            fan_out(metrics, cube.drill_down(*cuboid, key, *dim))
        }
        Request::Cuboid { cuboid, minsup } => fan_out(metrics, cube.query(*cuboid, *minsup)),
        Request::RollUp { cuboid, key, dim } => match planner::roll_up(cube, *cuboid, key, *dim) {
            Ok((cell, plan, exact)) => {
                match plan {
                    RollUpPlan::Stored => {
                        Metrics::bump(&metrics.rollup_stored);
                        // The planner validated `dim ∈ cuboid`, so the
                        // parent key is re-derivable for routing; if the
                        // position were somehow absent we'd only skip the
                        // routing counter, never the answer.
                        let parent = cuboid.without_dim(*dim);
                        if !parent.is_all() {
                            if let Some(pos) = cuboid.iter_dims().position(|d| d == *dim) {
                                let mut pkey = key.clone();
                                pkey.remove(pos);
                                let shard = cube.shard_of(parent, &pkey);
                                if let Some(s) = metrics.shards.get(shard) {
                                    Metrics::bump(&s.routed);
                                }
                            }
                        }
                    }
                    RollUpPlan::Aggregated => {
                        Metrics::bump(&metrics.rollup_aggregated);
                        for s in &metrics.shards {
                            Metrics::bump(&s.scanned);
                        }
                    }
                }
                Response::RolledUp { cell, plan, exact }
            }
            Err(e) => Response::Error(e),
        },
        Request::EstimatePoint { cuboid, key } => {
            let Some(p) = progress else {
                return Response::Error(RequestError::NotProgressive);
            };
            match cube.get(*cuboid, key) {
                Ok(partial) => {
                    let shard = cube.shard_of(*cuboid, key);
                    if let Some(s) = metrics.shards.get(shard) {
                        Metrics::bump(&s.routed);
                    }
                    // An unseen key is a legal progressive answer: the
                    // bound starts from the empty aggregate and the
                    // region's full slack.
                    let partial = partial.unwrap_or_else(Aggregate::empty);
                    let bound = AggBound::over(&partial, &p.envelope_for(*cuboid, key));
                    let cell = estimate_cell(key.clone(), &partial, bound, p, bound.is_exact());
                    progress_response(vec![cell], p)
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::EstimateCuboid { cuboid, minsup } => {
            let Some(p) = progress else {
                return Response::Error(RequestError::NotProgressive);
            };
            // Progressive epochs serve the minimum-support-1 floor, so
            // this enumerates every partial cell seen so far.
            match cube.query(*cuboid, cube.minsup()) {
                Ok(partials) => {
                    for s in &metrics.shards {
                        Metrics::bump(&s.scanned);
                    }
                    let mut cells = Vec::new();
                    for (key, agg) in partials {
                        let bound = AggBound::over(&agg, &p.envelope_for(*cuboid, &key));
                        // Keep every cell whose count can still reach the
                        // threshold; flag the ones already guaranteed in.
                        if bound.count_hi >= *minsup {
                            let definite = bound.count_lo >= *minsup;
                            cells.push(estimate_cell(key, &agg, bound, p, definite));
                        }
                    }
                    Metrics::add(&metrics.cells_returned, cells.len() as u64);
                    progress_response(cells, p)
                }
                Err(e) => Response::Error(e),
            }
        }
        Request::Batch(_) => execute(cube, progress, metrics, req),
    }
}

/// Builds one estimated cell: the extrapolated point estimate, clamped
/// into the bound so an estimate can never leave its own interval.
fn estimate_cell(
    key: Vec<u32>,
    partial: &Aggregate,
    bound: AggBound,
    p: &Progress,
    definite: bool,
) -> CellEstimate {
    CellEstimate {
        key,
        bound,
        est_count: bound.clamp_count(scaled_count(partial.count, p.rows_folded(), p.rows_total())),
        est_sum: bound.clamp_sum(scaled_sum(partial.sum, p.rows_folded(), p.rows_total())),
        definite,
    }
}

/// Wraps estimated cells with the epoch's progress summary.
fn progress_response(cells: Vec<CellEstimate>, p: &Progress) -> Response {
    Response::Estimate {
        cells,
        chunks_folded: p.chunks_folded(),
        chunks_total: p.chunks_total(),
        rows_folded: p.rows_folded(),
        rows_total: p.rows_total(),
        converged: p.converged(),
    }
}

/// Wraps a fan-out result, counting shard visits and returned cells.
fn fan_out(
    metrics: &Metrics,
    result: Result<Vec<(Vec<u32>, icecube_core::Aggregate)>, crate::request::RequestError>,
) -> Response {
    match result {
        Ok(cells) => {
            for s in &metrics.shards {
                Metrics::bump(&s.scanned);
            }
            Metrics::add(&metrics.cells_returned, cells.len() as u64);
            Response::Cells(cells)
        }
        Err(e) => Response::Error(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestError;
    use icecube_cluster::ClusterConfig;
    use icecube_core::fixtures::sales;
    use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
    use icecube_lattice::CuboidMask;

    fn server(shards: usize, workers: usize) -> CubeServer {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        let store = CubeStore::from_outcome(3, 1, out);
        CubeServer::start(ShardedCube::new(&store, shards), workers).expect("workers > 0")
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        let store = CubeStore::from_outcome(3, 1, out);
        match CubeServer::start(ShardedCube::new(&store, 2), 0) {
            Err(ServeError::NoWorkers) => {}
            other => panic!("unexpected {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn serves_every_request_kind() {
        let srv = server(3, 4);
        let h = srv.handle().expect("running");
        let g01 = CuboidMask::from_dims(&[0, 1]);
        let g0 = CuboidMask::from_dims(&[0]);

        match h
            .call(Request::Point {
                cuboid: g0,
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(Some(agg)) => assert!(agg.count > 0),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Cuboid {
                cuboid: g01,
                minsup: 1,
            })
            .expect("running")
        {
            Response::Cells(cells) => assert!(!cells.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::RollUp {
                cuboid: g01,
                key: vec![0, 2],
                dim: 1,
            })
            .expect("running")
        {
            Response::RolledUp { cell, plan, exact } => {
                assert!(cell.is_some());
                assert_eq!(plan, RollUpPlan::Stored);
                assert!(exact);
            }
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::Batch(vec![
                Request::Slice {
                    cuboid: g01,
                    dim: 1,
                    value: 2,
                },
                Request::DrillDown {
                    cuboid: g0,
                    key: vec![0],
                    dim: 1,
                },
            ]))
            .expect("running")
        {
            Response::Batch(answers) => {
                assert_eq!(answers.len(), 2);
                assert!(matches!(answers[0], Response::Cells(_)));
                assert!(matches!(answers[1], Response::Cells(_)));
            }
            other => panic!("unexpected {other:?}"),
        }

        let stats = srv.stats();
        assert_eq!(stats.requests, 5, "batch members count individually");
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.rollup_stored, 1);
        assert!(stats.p50_ns > 0);
        assert_eq!(stats.shard_routed.len(), 3);
    }

    #[test]
    fn malformed_requests_answer_errors_without_killing_workers() {
        let srv = server(2, 2);
        let h = srv.handle().expect("running");
        let bad = Request::Point {
            cuboid: CuboidMask::from_dims(&[30]),
            key: vec![0],
        };
        match h.call(bad).expect("running") {
            Response::Error(RequestError::UnknownDimension { dim: 30, dims: 3 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The pool still answers after the error.
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(Some(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
        let stats = srv.stats();
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn concurrent_clients_get_consistent_answers() {
        let srv = server(4, 4);
        let g = CuboidMask::from_dims(&[0, 1, 2]);
        let snap = srv.snapshot();
        let want = snap.cube().query(g, 1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = srv.handle().expect("running");
                let want = &want;
                scope.spawn(move || {
                    for _ in 0..10 {
                        match h
                            .call(Request::Cuboid {
                                cuboid: g,
                                minsup: 1,
                            })
                            .expect("running")
                        {
                            Response::Cells(cells) => assert_eq!(&cells, want),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
        });
        assert_eq!(srv.stats().requests, 80);
    }

    #[test]
    fn shutdown_joins_workers_and_surfaces_typed_errors_after() {
        let mut srv = server(1, 3);
        let h = srv.handle().expect("running");
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("running")
        {
            Response::Point(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        drop(h); // handles must drop before shutdown can observe closure
        srv.shutdown();
        assert_eq!(srv.worker_count(), 0);
        assert!(matches!(srv.handle(), Err(ServeError::ShutDown)));
    }

    #[test]
    fn a_dead_worker_leaves_survivors_serving() {
        let srv = server(2, 2);
        let h = srv.handle().expect("running");
        let observer = h.kill_worker().expect("running");
        assert!(
            observer.recv().is_err(),
            "the killed worker must exit without answering"
        );
        // The survivor still answers correctly.
        match h
            .call(Request::Point {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("survivor serves")
        {
            Response::Point(Some(agg)) => assert!(agg.count > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(srv.stats().requests, 1, "deaths are not requests");
    }

    #[test]
    fn killing_every_worker_turns_calls_into_shutdown_errors() {
        let srv = server(1, 1);
        let h = srv.handle().expect("running");
        let observer = h.kill_worker().expect("running");
        assert!(observer.recv().is_err(), "sole worker exited");
        // The queue disconnected with the last worker: a typed error,
        // never a hang or a panic.
        match h.call(Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![0],
        }) {
            Err(ServeError::ShutDown) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(h.kill_worker(), Err(ServeError::ShutDown)));
    }

    /// The sales cube, and the cube of sales ingested twice — same
    /// dimensionality, every count doubled, so the two epochs are
    /// distinguishable from any point answer.
    fn two_generations() -> (CubeStore, CubeStore) {
        let rel = sales();
        let mut doubled = sales();
        doubled.extend_from(&rel).expect("same schema");
        let q = IcebergQuery::count_cube(3, 1);
        let cfg = ClusterConfig::fast_ethernet(2);
        let out1 = run_parallel(Algorithm::Pt, &rel, &q, &cfg).unwrap();
        let out2 = run_parallel(Algorithm::Pt, &doubled, &q, &cfg).unwrap();
        (
            CubeStore::from_outcome(3, 1, out1),
            CubeStore::from_outcome(3, 1, out2),
        )
    }

    #[test]
    fn refresh_bumps_the_epoch_and_serves_the_new_store() {
        let (gen1, gen2) = two_generations();
        let srv = CubeServer::start(ShardedCube::new(&gen1, 2), 2).expect("workers > 0");
        let h = srv.handle().expect("running");
        let probe = Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![0],
        };
        assert_eq!(srv.epoch(), 1);
        let before = h.call_tagged(probe.clone()).expect("running");
        assert_eq!(before.epoch, 1);
        let old_count = match before.response {
            Response::Point(Some(agg)) => agg.count,
            other => panic!("unexpected {other:?}"),
        };

        assert_eq!(srv.refresh(&gen2).expect("same dims"), 2);
        assert_eq!(srv.epoch(), 2);
        let after = h.call_tagged(probe).expect("running");
        assert_eq!(after.epoch, 2);
        match after.response {
            Response::Point(Some(agg)) => assert_eq!(agg.count, 2 * old_count),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn refresh_rejects_a_store_of_different_dimensionality() {
        let (gen1, _) = two_generations();
        let srv = CubeServer::start(ShardedCube::new(&gen1, 2), 1).expect("workers > 0");
        let flat = CubeStore::from_cells(2, 1, Vec::new());
        match srv.refresh(&flat) {
            Err(ServeError::RefreshDims {
                served: 3,
                offered: 2,
            }) => {}
            other => panic!("unexpected {other:?}", other = other.map(|_| ())),
        }
        assert_eq!(srv.epoch(), 1, "a rejected refresh publishes nothing");
    }

    #[test]
    fn a_snapshot_taken_before_a_refresh_stays_on_its_epoch() {
        let (gen1, gen2) = two_generations();
        let srv = CubeServer::start(ShardedCube::new(&gen1, 3), 1).expect("workers > 0");
        let pinned = srv.snapshot();
        srv.refresh(&gen2).expect("same dims");
        assert_eq!(pinned.epoch(), 1, "the Arc is that epoch, frozen");
        assert_eq!(srv.snapshot().epoch(), 2);
        let g = CuboidMask::from_dims(&[0, 1, 2]);
        let old = pinned.cube().query(g, 1).unwrap();
        let new = srv.snapshot().cube().query(g, 1).unwrap();
        assert_ne!(old, new, "the generations must be distinguishable");
    }

    #[test]
    fn every_answer_during_a_refresh_storm_matches_its_epochs_oracle() {
        let (gen1, gen2) = two_generations();
        let srv = CubeServer::start(ShardedCube::new(&gen1, 2), 4).expect("workers > 0");
        let g = CuboidMask::from_dims(&[0, 1]);
        let want1 = ShardedCube::new(&gen1, 2).query(g, 1).unwrap();
        let want2 = ShardedCube::new(&gen2, 2).query(g, 1).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = srv.handle().expect("running");
                let (want1, want2) = (&want1, &want2);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let got = h
                            .call_tagged(Request::Cuboid {
                                cuboid: g,
                                minsup: 1,
                            })
                            .expect("running");
                        let want = if got.epoch % 2 == 1 { want1 } else { want2 };
                        match got.response {
                            Response::Cells(cells) => assert_eq!(
                                &cells,
                                want,
                                "epoch {epoch} answered another epoch's cube",
                                epoch = got.epoch
                            ),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                });
            }
            // Race refreshes against the queries, alternating generations
            // so every odd epoch serves gen1 and every even epoch gen2.
            for round in 0..10 {
                let next = if round % 2 == 0 { &gen2 } else { &gen1 };
                srv.refresh(next).expect("same dims");
            }
        });
        assert_eq!(srv.epoch(), 11);
    }

    #[test]
    fn estimates_on_a_plain_epoch_are_typed_errors() {
        let srv = server(2, 2);
        let h = srv.handle().expect("running");
        let g = CuboidMask::from_dims(&[0]);
        match h
            .call(Request::EstimatePoint {
                cuboid: g,
                key: vec![0],
            })
            .expect("running")
        {
            Response::Error(RequestError::NotProgressive) => {}
            other => panic!("unexpected {other:?}"),
        }
        match h
            .call(Request::EstimateCuboid {
                cuboid: g,
                minsup: 2,
            })
            .expect("running")
        {
            Response::Error(RequestError::NotProgressive) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(srv.stats().errors, 2);
    }

    #[test]
    fn progressive_serving_requires_the_floor() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 2);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        let thresholded = CubeStore::from_outcome(3, 2, out);
        let build = icecube_online::ProgressiveBuild::new(
            &rel,
            2,
            2,
            8,
            64,
            &ClusterConfig::fast_ethernet(2),
        )
        .unwrap();
        match CubeServer::start_progressive(ShardedCube::new(&thresholded, 2), 1, build.progress())
        {
            Err(ServeError::ProgressiveFloor { minsup: 2 }) => {}
            other => panic!("unexpected {other:?}", other = other.map(|_| ())),
        }
        let srv =
            CubeServer::start_progressive(ShardedCube::new(build.floor(), 2), 1, build.progress())
                .expect("floor is minsup 1");
        match srv.publish_progressive(&thresholded, build.progress()) {
            Err(ServeError::ProgressiveFloor { minsup: 2 }) => {}
            other => panic!("unexpected {other:?}", other = other.map(|_| ())),
        }
        assert_eq!(srv.epoch(), 1, "a rejected publish changes nothing");
        // A plain refresh drops the progressive state: estimates on the
        // new epoch answer the typed error again.
        srv.refresh(&thresholded).expect("same dims");
        let h = srv.handle().expect("running");
        match h
            .call(Request::EstimatePoint {
                cuboid: CuboidMask::from_dims(&[0]),
                key: vec![0],
            })
            .expect("running")
        {
            Response::Error(RequestError::NotProgressive) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn progressive_bounds_tighten_and_converge_to_the_batch_answer() {
        let rel = icecube_data::presets::tiny(9).generate().unwrap();
        let dims = rel.arity();
        let minsup = 3u64;
        let cfg = ClusterConfig::fast_ethernet(3);
        let q = IcebergQuery::count_cube(dims, 1);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &cfg).unwrap();
        let exact_floor = CubeStore::from_outcome(dims, 1, out);
        let oracle = ShardedCube::new(&exact_floor, 1);

        let mut build = icecube_online::ProgressiveBuild::new(&rel, minsup, 3, 40, 64, &cfg)
            .expect("non-empty relation");
        let srv =
            CubeServer::start_progressive(ShardedCube::new(build.floor(), 2), 2, build.progress())
                .expect("workers > 0");
        let h = srv.handle().expect("running");

        // Track a coarse cell (global envelope: inexact until the end)
        // and assert its bound tightens monotonically and always
        // contains the exact aggregate.
        let g0 = CuboidMask::from_dims(&[0]);
        let anchor = CuboidMask::full(dims);
        let tracked = vec![0u32];
        let exact_cell = oracle
            .get(g0, &tracked)
            .expect("valid request")
            .expect("value 0 occurs in the preset");
        let mut prev_bound: Option<AggBound> = None;
        let mut saw_inexact = false;
        loop {
            let answer = h
                .call_tagged(Request::EstimatePoint {
                    cuboid: g0,
                    key: tracked.clone(),
                })
                .expect("running");
            assert_eq!(answer.epoch, srv.epoch());
            let Response::Estimate {
                cells, converged, ..
            } = answer.response
            else {
                panic!("unexpected response");
            };
            let cell = cells.first().expect("point estimates return one cell");
            assert!(cell.bound.contains(&exact_cell), "bound lost the exact");
            assert!(cell.bound.clamp_count(cell.est_count) == cell.est_count);
            if let Some(prev) = prev_bound {
                assert!(prev.tightens_to(&cell.bound), "bound widened");
            }
            prev_bound = Some(cell.bound);
            saw_inexact |= !cell.bound.is_exact();
            assert_eq!(converged, build.converged());
            if build.step().expect("fold succeeds").is_none() {
                break;
            }
            srv.publish_progressive(build.floor(), build.progress())
                .expect("floor stays minsup 1");
        }
        assert!(saw_inexact, "pre-convergence bounds must be open");
        assert!(build.converged());

        // Converged: the estimate is the batch iceberg answer, cell for
        // cell, with point bounds and definite flags everywhere.
        let est = h
            .call(Request::EstimateCuboid {
                cuboid: anchor,
                minsup,
            })
            .expect("running");
        let batch = h
            .call(Request::Cuboid {
                cuboid: anchor,
                minsup,
            })
            .expect("running");
        let Response::Estimate {
            cells, converged, ..
        } = est
        else {
            panic!("unexpected response");
        };
        assert!(converged);
        let Response::Cells(want) = batch else {
            panic!("unexpected response");
        };
        assert!(!want.is_empty(), "the preset qualifies cells at minsup 3");
        assert_eq!(cells.len(), want.len());
        for (got, (key, agg)) in cells.iter().zip(&want) {
            assert_eq!(&got.key, key);
            assert!(got.definite);
            assert!(got.bound.is_exact());
            assert_eq!(got.bound, AggBound::exact(agg));
            assert_eq!(got.est_count, agg.count);
            assert_eq!(got.est_sum, agg.sum);
        }
    }

    #[test]
    fn submitting_into_a_dead_queue_is_a_typed_error() {
        // When every worker is gone the queue's receiving side is
        // dropped and a surviving client handle must get a typed error,
        // never a panic. The receiver cannot disconnect while any sender
        // lives, so the dead pool is modelled directly by dropping the
        // receiving side of a fresh queue.
        let (tx, rx) = mpsc::channel::<Job>();
        drop(rx);
        let h = ClientHandle { tx };
        let probe = Request::Point {
            cuboid: CuboidMask::from_dims(&[0]),
            key: vec![0],
        };
        match h.call(probe) {
            Err(ServeError::ShutDown) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
