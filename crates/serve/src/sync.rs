//! Synchronization facade for the server's blocking protocol.
//!
//! Every primitive the worker pool blocks on — the job queue's mutex and
//! channels, worker threads, the latency clock — is imported from here
//! rather than from `std` directly. Normally these re-exports *are* the
//! `std` types. Built with the `icecube_loom` feature they become the
//! vendored `loom` shims instead, which behave identically outside a
//! model run (pass-through) but, inside `loom::explore`, yield to a
//! deterministic scheduler at every operation so `icecube-check
//! concurrency` can enumerate interleavings of submit/steal/shutdown.
//!
//! The [`Metrics`](crate::metrics::Metrics) atomics are deliberately
//! *not* routed through this facade: the counters are independent and
//! never participate in the blocking protocol, and instrumenting them
//! would blow up the model's schedule space without testing anything
//! the `relaxed-ordering` lint does not already cover.

#[cfg(feature = "icecube_loom")]
pub use loom::sync::{mpsc, Arc, Mutex};
#[cfg(feature = "icecube_loom")]
pub use loom::thread;
#[cfg(feature = "icecube_loom")]
pub use loom::time::Instant;

#[cfg(not(feature = "icecube_loom"))]
pub use std::sync::{mpsc, Arc, Mutex};
#[cfg(not(feature = "icecube_loom"))]
pub use std::thread;
#[cfg(not(feature = "icecube_loom"))]
pub use std::time::Instant;
