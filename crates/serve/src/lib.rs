//! `icecube-serve`: sharded, concurrent serving of precomputed iceberg
//! cubes.
//!
//! The computation crates build an iceberg cube once; this crate answers
//! analyst navigation against it at high request rates:
//!
//! - [`ShardedCube`] range-partitions every cuboid of a
//!   [`CubeStore`](icecube_core::CubeStore) across N shards by key.
//!   Routing is deterministic: point lookups touch exactly one shard,
//!   slices/drill-downs/cuboid scans fan out and concatenate in shard
//!   order — bit-for-bit the unsharded answer.
//! - [`CubeServer`] runs a fixed worker pool over a shared request queue;
//!   clients submit typed [`Request`]s through cloneable
//!   [`ClientHandle`]s and get typed [`Response`]s, never panics.
//! - [`planner::roll_up`] answers "GROUP BY on fewer attributes" from the
//!   stored coarser cuboid when materialized, aggregating the finer one
//!   on the fly otherwise (flagging inexactness over pruned cubes).
//! - [`Metrics`]/[`ServerStats`] expose lock-free counters and
//!   fixed-bucket latency histograms (p50/p95/p99).
//! - [`NavigationWorkload`]/[`run_closed_loop`] generate seeded,
//!   reproducible request streams and measure closed-loop throughput —
//!   the engine behind `experiments serve`.

#![warn(missing_docs)]

pub mod error;
pub mod metrics;
pub mod planner;
pub mod request;
pub mod server;
pub mod shard;
pub mod sync;
pub mod workload;

pub use error::ServeError;
pub use metrics::{LatencyHistogram, Metrics, ServerStats};
pub use request::{CellEstimate, Request, RequestError, Response, RollUpPlan};
pub use server::{Answer, ClientHandle, CubeServer, EpochSnapshot};
pub use shard::ShardedCube;
pub use workload::{run_closed_loop, LoadReport, NavigationWorkload};
