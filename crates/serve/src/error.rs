//! The server lifecycle error type: what [`CubeServer`] operations
//! return instead of panicking.
//!
//! Request-shaped problems (bad dimension, wrong arity, …) stay
//! [`RequestError`](crate::request::RequestError)s carried inside
//! [`Response::Error`](crate::request::Response::Error); `ServeError`
//! covers the *transport*: a pool that could not start, or a queue that
//! is no longer open because the server shut down.
//!
//! [`CubeServer`]: crate::server::CubeServer

use std::fmt;

/// Why a server operation could not be carried out.
#[derive(Debug)]
pub enum ServeError {
    /// [`CubeServer::start`](crate::server::CubeServer::start) was asked
    /// for a pool of zero workers.
    NoWorkers,
    /// The OS refused to spawn a worker thread; any workers already
    /// started were joined before this was returned.
    Spawn(std::io::Error),
    /// The request queue is closed: the server has shut down (or its
    /// workers are gone), so no answer will ever arrive.
    ShutDown,
    /// A refresh offered a store whose dimensionality differs from the
    /// cube the server was started with; swapping it in would invalidate
    /// every in-flight navigation, so the old epoch stays live.
    RefreshDims {
        /// Dimensions of the cube the server is serving.
        served: usize,
        /// Dimensions of the store the refresh offered.
        offered: usize,
    },
    /// A progressive publish offered a store thresholded above minimum
    /// support 1. Progressive epochs must serve the *floor*: bound
    /// arithmetic needs every sub-threshold partial cell, and the sharded
    /// cube refuses queries below its stored threshold.
    ProgressiveFloor {
        /// The offending store's minimum support.
        minsup: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NoWorkers => write!(f, "a server needs at least one worker"),
            ServeError::Spawn(e) => write!(f, "could not spawn a worker thread: {e}"),
            ServeError::ShutDown => write!(f, "the server has shut down"),
            ServeError::RefreshDims { served, offered } => write!(
                f,
                "refresh offered a {offered}-dimensional store to a \
                 {served}-dimensional server"
            ),
            ServeError::ProgressiveFloor { minsup } => write!(
                f,
                "progressive serving needs the minimum-support-1 floor, \
                 not a store thresholded at {minsup}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spawn(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_every_variant() {
        assert!(ServeError::NoWorkers.to_string().contains("one worker"));
        assert!(ServeError::ShutDown.to_string().contains("shut down"));
        let e = ServeError::Spawn(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "rlimit",
        ));
        assert!(e.to_string().contains("rlimit"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ServeError::RefreshDims {
            served: 3,
            offered: 5,
        };
        assert!(e.to_string().contains("5-dimensional store"));
        assert!(e.to_string().contains("3-dimensional server"));
        let e = ServeError::ProgressiveFloor { minsup: 4 };
        assert!(e.to_string().contains("thresholded at 4"));
    }
}
