//! Run statistics: per-node accounting and cluster-level summaries.

use icecube_trace::Registry;

/// Counters accumulated by one node over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Virtual CPU time.
    pub cpu_ns: u64,
    /// Virtual time spent writing cells.
    pub disk_write_ns: u64,
    /// Virtual time spent reading input.
    pub disk_read_ns: u64,
    /// Virtual time on the interconnect (sends + RPC).
    pub net_ns: u64,
    /// Virtual time spent waiting (messages, barriers, manager).
    pub idle_ns: u64,
    /// Bytes written to the local disk.
    pub bytes_written: u64,
    /// Bytes read from the local disk.
    pub bytes_read: u64,
    /// Bytes shipped to other nodes.
    pub bytes_sent: u64,
    /// Output cells written.
    pub cells_written: u64,
    /// Output-file switches (the scattered-write penalty count).
    pub file_switches: u64,
    /// Messages sent (including RPC halves).
    pub messages: u64,
    /// Tasks executed.
    pub tasks: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Peak of the node's tracked memory.
    pub peak_mem_bytes: u64,
    /// 1 when the node crashed during the run (its clock froze there).
    pub crashed: u64,
    /// Extra virtual time lost to injected slowdown windows.
    pub slowdown_ns: u64,
    /// Tasks this node was running (or assigned) when it died.
    pub tasks_lost: u64,
    /// Lost tasks this node re-ran on behalf of a dead peer.
    pub tasks_recovered: u64,
    /// Manager RPCs to this node that timed out and were retried.
    pub rpc_retries: u64,
    /// Data-message transfer attempts that were dropped and resent.
    pub retransmits: u64,
}

impl NodeStats {
    /// Busy time: everything except idling.
    pub fn busy_ns(&self) -> u64 {
        self.cpu_ns + self.disk_write_ns + self.disk_read_ns + self.net_ns
    }

    /// Total I/O time (the y-axis of Figure 3.6).
    pub fn io_ns(&self) -> u64 {
        self.disk_write_ns + self.disk_read_ns
    }

    /// Merges another node's counters into this one (used when a logical
    /// node is simulated in phases).
    pub fn merge(&mut self, other: &NodeStats) {
        self.cpu_ns += other.cpu_ns;
        self.disk_write_ns += other.disk_write_ns;
        self.disk_read_ns += other.disk_read_ns;
        self.net_ns += other.net_ns;
        self.idle_ns += other.idle_ns;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.bytes_sent += other.bytes_sent;
        self.cells_written += other.cells_written;
        self.file_switches += other.file_switches;
        self.messages += other.messages;
        self.tasks += other.tasks;
        self.barriers += other.barriers;
        self.peak_mem_bytes = self.peak_mem_bytes.max(other.peak_mem_bytes);
        self.crashed = self.crashed.max(other.crashed);
        self.slowdown_ns += other.slowdown_ns;
        self.tasks_lost += other.tasks_lost;
        self.tasks_recovered += other.tasks_recovered;
        self.rpc_retries += other.rpc_retries;
        self.retransmits += other.retransmits;
    }
}

/// Cluster-level summary of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    nodes: Vec<NodeStats>,
    clocks_ns: Vec<u64>,
}

impl RunStats {
    /// Builds a summary from per-node stats and final clocks.
    pub fn new(nodes: Vec<NodeStats>, clocks_ns: Vec<u64>) -> Self {
        // check:allow(panic-path): both vectors come from the same cluster's
        // node list; a length mismatch is a simulator bug, not input.
        assert_eq!(nodes.len(), clocks_ns.len());
        RunStats { nodes, clocks_ns }
    }

    /// Per-node counters.
    pub fn nodes(&self) -> &[NodeStats] {
        &self.nodes
    }

    /// Final virtual clock of node `i`.
    pub fn clock_ns(&self, i: usize) -> u64 {
        self.clocks_ns[i]
    }

    /// The paper's "wall clock": the maximum time taken by any processor,
    /// CPU and I/O included.
    pub fn makespan_ns(&self) -> u64 {
        self.clocks_ns.iter().copied().max().unwrap_or(0)
    }

    /// Makespan in (fractional) seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan_ns() as f64 / 1e9
    }

    /// Per-node busy times ("load" in Figure 4.1).
    pub fn loads_ns(&self) -> Vec<u64> {
        self.nodes.iter().map(NodeStats::busy_ns).collect()
    }

    /// Load imbalance: max busy time over mean busy time (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let loads = self.loads_ns();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let sum: u64 = loads.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / loads.len() as f64;
        max / mean
    }

    /// Total I/O time summed over nodes (Figure 3.6 compares this between
    /// writing strategies).
    pub fn total_io_ns(&self) -> u64 {
        self.nodes.iter().map(NodeStats::io_ns).sum()
    }

    /// Total bytes of cells written across the cluster (the paper reports
    /// output sizes per minimum support in Figure 4.5).
    pub fn total_bytes_written(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_written).sum()
    }

    /// Total cells emitted across the cluster.
    pub fn total_cells(&self) -> u64 {
        self.nodes.iter().map(|n| n.cells_written).sum()
    }

    /// Nodes that crashed during the run.
    pub fn total_crashes(&self) -> u64 {
        self.nodes.iter().map(|n| n.crashed).sum()
    }

    /// Tasks lost to crashes, cluster-wide.
    pub fn total_tasks_lost(&self) -> u64 {
        self.nodes.iter().map(|n| n.tasks_lost).sum()
    }

    /// Lost tasks successfully re-run on survivors, cluster-wide.
    pub fn total_tasks_recovered(&self) -> u64 {
        self.nodes.iter().map(|n| n.tasks_recovered).sum()
    }

    /// Manager RPC retries, cluster-wide.
    pub fn total_rpc_retries(&self) -> u64 {
        self.nodes.iter().map(|n| n.rpc_retries).sum()
    }

    /// Dropped-and-resent data messages, cluster-wide.
    pub fn total_retransmits(&self) -> u64 {
        self.nodes.iter().map(|n| n.retransmits).sum()
    }

    /// Largest peak memory across nodes.
    pub fn peak_mem_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.peak_mem_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Pours this run's counters into a [`Registry`] under `prefix`
    /// (conventionally `"cluster"`): cluster-level totals plus every
    /// per-node counter as `<prefix>.node<NN>.<counter>`. Gives cluster
    /// statistics the same snapshot/CSV surface as the serving metrics.
    pub fn register_into(&self, prefix: &str, registry: &mut Registry) {
        registry.set(&format!("{prefix}.makespan_ns"), self.makespan_ns());
        registry.set(&format!("{prefix}.total_io_ns"), self.total_io_ns());
        registry.set(
            &format!("{prefix}.total_bytes_written"),
            self.total_bytes_written(),
        );
        registry.set(&format!("{prefix}.total_cells"), self.total_cells());
        registry.set(&format!("{prefix}.total_crashes"), self.total_crashes());
        registry.set(
            &format!("{prefix}.total_tasks_lost"),
            self.total_tasks_lost(),
        );
        registry.set(
            &format!("{prefix}.total_tasks_recovered"),
            self.total_tasks_recovered(),
        );
        registry.set(&format!("{prefix}.peak_mem_bytes"), self.peak_mem_bytes());
        for (i, (n, clock)) in self.nodes.iter().zip(&self.clocks_ns).enumerate() {
            let node = format!("{prefix}.node{i:02}");
            registry.set(&format!("{node}.clock_ns"), *clock);
            registry.set(&format!("{node}.cpu_ns"), n.cpu_ns);
            registry.set(&format!("{node}.disk_write_ns"), n.disk_write_ns);
            registry.set(&format!("{node}.disk_read_ns"), n.disk_read_ns);
            registry.set(&format!("{node}.net_ns"), n.net_ns);
            registry.set(&format!("{node}.idle_ns"), n.idle_ns);
            registry.set(&format!("{node}.bytes_written"), n.bytes_written);
            registry.set(&format!("{node}.bytes_read"), n.bytes_read);
            registry.set(&format!("{node}.bytes_sent"), n.bytes_sent);
            registry.set(&format!("{node}.cells_written"), n.cells_written);
            registry.set(&format!("{node}.file_switches"), n.file_switches);
            registry.set(&format!("{node}.messages"), n.messages);
            registry.set(&format!("{node}.tasks"), n.tasks);
            registry.set(&format!("{node}.barriers"), n.barriers);
            registry.set(&format!("{node}.peak_mem_bytes"), n.peak_mem_bytes);
            registry.set(&format!("{node}.crashed"), n.crashed);
            registry.set(&format!("{node}.slowdown_ns"), n.slowdown_ns);
            registry.set(&format!("{node}.tasks_lost"), n.tasks_lost);
            registry.set(&format!("{node}.tasks_recovered"), n.tasks_recovered);
            registry.set(&format!("{node}.rpc_retries"), n.rpc_retries);
            registry.set(&format!("{node}.retransmits"), n.retransmits);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cpu: u64, io: u64) -> NodeStats {
        NodeStats {
            cpu_ns: cpu,
            disk_write_ns: io,
            ..NodeStats::default()
        }
    }

    #[test]
    fn busy_and_io_compose() {
        let s = NodeStats {
            cpu_ns: 10,
            disk_write_ns: 20,
            disk_read_ns: 5,
            net_ns: 7,
            idle_ns: 100,
            ..NodeStats::default()
        };
        assert_eq!(s.busy_ns(), 42);
        assert_eq!(s.io_ns(), 25);
    }

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = stats(10, 5);
        a.peak_mem_bytes = 100;
        let mut b = stats(1, 2);
        b.peak_mem_bytes = 300;
        a.merge(&b);
        assert_eq!(a.cpu_ns, 11);
        assert_eq!(a.disk_write_ns, 7);
        assert_eq!(a.peak_mem_bytes, 300);
    }

    #[test]
    fn makespan_and_imbalance() {
        let rs = RunStats::new(vec![stats(100, 0), stats(300, 0)], vec![120, 310]);
        assert_eq!(rs.makespan_ns(), 310);
        // loads 100 and 300, mean 200, max 300 → 1.5
        assert!((rs.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_run_has_imbalance_one() {
        let rs = RunStats::new(vec![stats(5, 5); 4], vec![10; 4]);
        assert!((rs.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_work_is_not_a_division_by_zero() {
        let rs = RunStats::new(vec![NodeStats::default(); 2], vec![0, 0]);
        assert_eq!(rs.imbalance(), 1.0);
        assert_eq!(rs.makespan_ns(), 0);
    }
}
