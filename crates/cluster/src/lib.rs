// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

#![warn(missing_docs)]

//! A deterministic simulated PC cluster.
//!
//! The paper runs on a heterogeneous cluster of eight 500 MHz PIII and
//! eight 266 MHz PII machines, each with its own disk, connected by
//! 100 Mbit Ethernet (and, for Chapter 5, Myrinet), programmed with MPI.
//! This crate substitutes that testbed with a **virtual-time simulation**
//! (see `DESIGN.md` §2):
//!
//! * every node owns a [`SimNode`] with a virtual clock in nanoseconds;
//! * CPU work is charged from *deterministic operation counts* (tuples
//!   scanned, comparisons made, cells hashed) priced by [`CpuCosts`] and
//!   scaled by the node's clock speed;
//! * disk writes go through a seek-penalty model ([`DiskModel`]) that
//!   reproduces the paper's breadth- vs depth-first writing gap
//!   (Figure 3.6): switching output files costs a seek, sequential bytes
//!   cost bandwidth;
//! * messages advance the receiver's clock to `max(receiver, sender +
//!   latency + bytes/bandwidth)` ([`NetModel`]), which is all the paper's
//!   manager/worker RPC, chunk shipping and barriers need;
//! * dynamic (demand) scheduling is simulated by a greedy event loop that
//!   always serves the node with the smallest clock — exactly the behaviour
//!   of a demand-driven manager, and bit-for-bit reproducible.
//!
//! Because every cost is derived from deterministic counters, all of the
//! paper's figures regenerate identically on every run.

pub mod config;
pub mod fault;
pub mod node;
pub mod schedule;
pub mod stats;

pub use config::{ClusterConfig, CpuCosts, DiskModel, NetModel, NodeSpec};
pub use fault::{Crash, FaultPlan, NetFate, NetFaults, RecoveryPolicy, Slowdown};
pub use icecube_trace::{CostSnapshot, EventKind, TraceLog};
pub use node::SimNode;
pub use schedule::{run_demand, run_demand_steps, run_demand_steps_healing, StepEvent, TaskSource};
pub use stats::{NodeStats, RunStats};

/// A simulated cluster: node states plus the shared cost model.
#[derive(Debug, Clone)]
pub struct SimCluster {
    /// Per-node simulation state.
    pub nodes: Vec<SimNode>,
    /// The cost model and node roster this cluster was built from.
    pub config: ClusterConfig,
}

impl SimCluster {
    /// Builds the cluster described by `config`, arming any fault plan it
    /// carries.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let mut n = SimNode::new(id, *spec, config.disk, config.net, config.cpu);
                if config.trace {
                    // Attach before arming faults so an immediate crash
                    // (scheduled at or before t=0) is still recorded.
                    n.attach_trace();
                }
                n.set_faults(&config.faults);
                n
            })
            .collect();
        SimCluster { nodes, config }
    }

    /// Drains every node's trace buffer into one [`TraceLog`] (index =
    /// node id). `None` unless the config enabled tracing. Draining twice
    /// yields an empty log the second time.
    pub fn take_trace(&mut self) -> Option<TraceLog> {
        if !self.config.trace {
            return None;
        }
        Some(TraceLog::from_buffers(
            self.nodes
                .iter_mut()
                .map(SimNode::take_trace_buffer)
                .collect(),
        ))
    }

    /// Opens a named phase span on every node at its current clock.
    pub fn phase_start(&mut self, name: &'static str) {
        for n in &mut self.nodes {
            n.phase_start(name);
        }
    }

    /// Closes the named phase span on every node, capturing each node's
    /// cumulative cost counters for per-phase delta reporting.
    pub fn phase_end(&mut self, name: &'static str) {
        for n in &mut self.nodes {
            n.phase_end(name);
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never valid for algorithms).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of nodes that have not crashed.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_dead()).count()
    }

    /// The surviving node with the smallest `(clock, id)` — the one a
    /// demand manager would hand work to next. `None` if all are dead.
    pub fn min_clock_live(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter(|n| !n.is_dead())
            .min_by_key(|n| (n.clock_ns(), n.id()))
            .map(|n| n.id())
    }

    /// Ships `bytes` from node `from` to node `to`: the sender is busy for
    /// the transfer, the receiver cannot proceed before the data arrives.
    ///
    /// # Panics
    /// Panics if `from == to` — local data needs no transfer and callers
    /// are expected to branch on that (the cost asymmetry is the point of
    /// POL's wrap-around task order).
    /// Message faults (if the fault plan injects any) apply *per transfer
    /// attempt*: a dropped attempt costs the sender the transfer plus an
    /// ack-timeout backoff and is retried, and the attempt after the last
    /// allowed retry always delivers — so drops perturb timing, never
    /// data. A sender that dies mid-send loses the message (the receiver
    /// is not advanced); a dead sender is a no-op.
    pub fn send(&mut self, from: usize, to: usize, bytes: u64) {
        assert_ne!(from, to, "no self-sends; local access is free");
        if self.nodes[from].is_dead() {
            return;
        }
        let plan = self.config.faults.clone();
        let cost = self.config.net.transfer_ns(bytes);
        let mut attempt: u32 = 0;
        loop {
            // The sender's running message count is the attempt's identity:
            // the fate of attempt k of this message is a pure hash of it.
            let fate = if attempt >= plan.policy.max_retries {
                fault::NetFate::Deliver
            } else {
                plan.net_fate(from, to, self.nodes[from].stats.messages)
            };
            let sender = &mut self.nodes[from];
            let actual = sender.advance(cost);
            sender.stats.net_ns += actual;
            if sender.is_dead() {
                return;
            }
            sender.stats.messages += 1;
            // One send event per wire attempt: retransmits of a dropped
            // message show up as repeated sends, which is what the wire saw.
            sender.trace_event(icecube_trace::EventKind::MsgSend { to, bytes });
            match fate {
                fault::NetFate::Drop => {
                    sender.stats.retransmits += 1;
                    let waited = sender.advance(plan.policy.retry_backoff_ns);
                    sender.stats.net_ns += waited;
                    if sender.is_dead() {
                        return;
                    }
                    attempt += 1;
                }
                fault::NetFate::Delay(extra) => {
                    sender.stats.bytes_sent += bytes;
                    let arrival = self.nodes[from].clock_ns() + extra;
                    self.nodes[to].wait_until(arrival);
                    self.record_recv(from, to, bytes);
                    return;
                }
                fault::NetFate::Deliver => {
                    sender.stats.bytes_sent += bytes;
                    let arrival = self.nodes[from].clock_ns();
                    self.nodes[to].wait_until(arrival);
                    self.record_recv(from, to, bytes);
                    return;
                }
            }
        }
    }

    /// Stamps a receive event on a delivery's receiver — unless it died
    /// waiting for the data, in which case nothing was received.
    fn record_recv(&mut self, from: usize, to: usize, bytes: u64) {
        if !self.nodes[to].is_dead() {
            self.nodes[to].trace_event(icecube_trace::EventKind::MsgRecv { from, bytes });
        }
    }

    /// Synchronizes all nodes (an MPI-style barrier): every clock advances
    /// to the cluster maximum plus a latency term logarithmic in the node
    /// count; the gap each node waited is accounted as idle time.
    /// Dead nodes neither hold the barrier back nor participate; a node
    /// whose crash instant lies inside the wait dies at the barrier.
    pub fn barrier(&mut self) {
        let max = self
            .nodes
            .iter()
            .filter(|n| !n.is_dead())
            .map(|n| n.clock_ns())
            .max()
            .unwrap_or(0);
        // A tree barrier costs ~ceil(log2 n) latency rounds.
        let rounds = if self.len() <= 1 {
            0
        } else {
            (usize::BITS - (self.len() - 1).leading_zeros()) as u64
        };
        let target = max + self.config.net.latency_ns * rounds;
        for n in &mut self.nodes {
            if n.is_dead() {
                continue;
            }
            n.wait_until(target);
            if !n.is_dead() {
                n.stats.barriers += 1;
            }
        }
    }

    /// The makespan: the largest virtual clock across nodes ("wall clock"
    /// in the paper's figures — the maximum time taken by any processor).
    pub fn makespan_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.clock_ns()).max().unwrap_or(0)
    }

    /// Snapshot of per-node statistics.
    pub fn run_stats(&self) -> RunStats {
        RunStats::new(
            self.nodes.iter().map(|n| n.stats.clone()).collect(),
            self.nodes.iter().map(|n| n.clock_ns()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_both_parties() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let before_sender = c.nodes[0].clock_ns();
        c.send(0, 1, 1_000_000);
        assert!(c.nodes[0].clock_ns() > before_sender);
        assert_eq!(c.nodes[1].clock_ns(), c.nodes[0].clock_ns());
        assert_eq!(c.nodes[0].stats.bytes_sent, 1_000_000);
        assert!(c.nodes[1].stats.idle_ns > 0);
    }

    #[test]
    fn receiver_already_ahead_does_not_rewind() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        c.nodes[1].charge_cpu(1_000_000_000);
        let ahead = c.nodes[1].clock_ns();
        c.send(0, 1, 10);
        assert_eq!(c.nodes[1].clock_ns(), ahead, "clock must be monotonic");
    }

    #[test]
    #[should_panic(expected = "no self-sends")]
    fn self_send_is_rejected() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        c.send(0, 0, 10);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(4));
        c.nodes[2].charge_cpu(5_000_000);
        c.barrier();
        let t0 = c.nodes[0].clock_ns();
        assert!(c.nodes.iter().all(|n| n.clock_ns() == t0));
        assert!(t0 >= 5_000_000);
        assert_eq!(c.nodes[0].stats.barriers, 1);
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(3));
        c.nodes[1].charge_cpu(42);
        assert_eq!(c.makespan_ns(), c.nodes[1].clock_ns());
    }

    #[test]
    fn dropped_messages_are_retransmitted_and_still_arrive() {
        let faulty =
            ClusterConfig::fast_ethernet(2).with_faults(FaultPlan::none().net(NetFaults {
                drop_per_mille: 1000, // every attempt short of the cap drops
                delay_per_mille: 0,
                delay_ns: 0,
            }));
        let mut c = SimCluster::new(faulty);
        c.send(0, 1, 10_000);
        let retries = c.config.faults.policy.max_retries as u64;
        assert_eq!(c.nodes[0].stats.retransmits, retries);
        assert_eq!(c.nodes[0].stats.messages, retries + 1);
        assert_eq!(c.nodes[0].stats.bytes_sent, 10_000, "final attempt lands");
        assert_eq!(c.nodes[1].clock_ns(), c.nodes[0].clock_ns());

        let mut quiet = SimCluster::new(ClusterConfig::fast_ethernet(2));
        quiet.send(0, 1, 10_000);
        assert!(
            c.makespan_ns() > quiet.makespan_ns(),
            "drops cost time, never data"
        );
    }

    #[test]
    fn faulty_sends_are_reproducible() {
        let config =
            ClusterConfig::fast_ethernet(2).with_faults(FaultPlan::seeded(11, 2, 1_000_000_000));
        let run = |config: &ClusterConfig| {
            let mut c = SimCluster::new(config.clone());
            for _ in 0..50 {
                c.send(0, 1, 5_000);
            }
            c.run_stats()
        };
        assert_eq!(run(&config), run(&config));
    }

    #[test]
    fn dead_senders_and_barrier_skips() {
        let config = ClusterConfig::fast_ethernet(3).with_faults(FaultPlan::none().crash(1, 1_000));
        let mut c = SimCluster::new(config);
        c.nodes[1].charge_cpu(10_000); // dies at 1 µs
        assert!(c.nodes[1].is_dead());
        assert_eq!(c.live_count(), 2);

        let receiver_before = c.nodes[2].clock_ns();
        c.send(1, 2, 1_000_000); // dead sender: message never leaves
        assert_eq!(c.nodes[2].clock_ns(), receiver_before);

        c.nodes[0].charge_cpu(5_000_000);
        c.barrier();
        assert_eq!(c.nodes[1].clock_ns(), 1_000, "dead clock stays frozen");
        assert_eq!(c.nodes[1].stats.barriers, 0);
        assert_eq!(c.nodes[0].stats.barriers, 1);
        assert_eq!(c.nodes[2].clock_ns(), c.nodes[0].clock_ns());
        // The two survivors are aligned after the barrier; ties break by id.
        assert_eq!(c.min_clock_live(), Some(0));
    }

    #[test]
    fn heterogeneous_nodes_run_at_different_speeds() {
        let mut c = SimCluster::new(ClusterConfig::heterogeneous_16());
        assert_eq!(c.len(), 16);
        c.nodes[0].charge_cpu(1000); // 500 MHz node
        c.nodes[8].charge_cpu(1000); // 266 MHz node
        assert!(c.nodes[8].clock_ns() > c.nodes[0].clock_ns());
    }
}
