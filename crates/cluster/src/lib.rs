#![warn(missing_docs)]

//! A deterministic simulated PC cluster.
//!
//! The paper runs on a heterogeneous cluster of eight 500 MHz PIII and
//! eight 266 MHz PII machines, each with its own disk, connected by
//! 100 Mbit Ethernet (and, for Chapter 5, Myrinet), programmed with MPI.
//! This crate substitutes that testbed with a **virtual-time simulation**
//! (see `DESIGN.md` §2):
//!
//! * every node owns a [`SimNode`] with a virtual clock in nanoseconds;
//! * CPU work is charged from *deterministic operation counts* (tuples
//!   scanned, comparisons made, cells hashed) priced by [`CpuCosts`] and
//!   scaled by the node's clock speed;
//! * disk writes go through a seek-penalty model ([`DiskModel`]) that
//!   reproduces the paper's breadth- vs depth-first writing gap
//!   (Figure 3.6): switching output files costs a seek, sequential bytes
//!   cost bandwidth;
//! * messages advance the receiver's clock to `max(receiver, sender +
//!   latency + bytes/bandwidth)` ([`NetModel`]), which is all the paper's
//!   manager/worker RPC, chunk shipping and barriers need;
//! * dynamic (demand) scheduling is simulated by a greedy event loop that
//!   always serves the node with the smallest clock — exactly the behaviour
//!   of a demand-driven manager, and bit-for-bit reproducible.
//!
//! Because every cost is derived from deterministic counters, all of the
//! paper's figures regenerate identically on every run.

pub mod config;
pub mod node;
pub mod schedule;
pub mod stats;

pub use config::{ClusterConfig, CpuCosts, DiskModel, NetModel, NodeSpec};
pub use node::SimNode;
pub use schedule::{run_demand, run_demand_steps, TaskSource};
pub use stats::{NodeStats, RunStats};

/// A simulated cluster: node states plus the shared cost model.
#[derive(Debug, Clone)]
pub struct SimCluster {
    /// Per-node simulation state.
    pub nodes: Vec<SimNode>,
    /// The cost model and node roster this cluster was built from.
    pub config: ClusterConfig,
}

impl SimCluster {
    /// Builds the cluster described by `config`.
    pub fn new(config: ClusterConfig) -> Self {
        let nodes = config
            .nodes
            .iter()
            .enumerate()
            .map(|(id, spec)| SimNode::new(id, *spec, config.disk, config.net, config.cpu))
            .collect();
        SimCluster { nodes, config }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never valid for algorithms).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ships `bytes` from node `from` to node `to`: the sender is busy for
    /// the transfer, the receiver cannot proceed before the data arrives.
    ///
    /// # Panics
    /// Panics if `from == to` — local data needs no transfer and callers
    /// are expected to branch on that (the cost asymmetry is the point of
    /// POL's wrap-around task order).
    pub fn send(&mut self, from: usize, to: usize, bytes: u64) {
        assert_ne!(from, to, "no self-sends; local access is free");
        let cost = self.config.net.transfer_ns(bytes);
        let sender = &mut self.nodes[from];
        sender.stats.net_ns += cost;
        sender.stats.bytes_sent += bytes;
        sender.stats.messages += 1;
        sender.advance(cost);
        let arrival = self.nodes[from].clock_ns();
        self.nodes[to].wait_until(arrival);
    }

    /// Synchronizes all nodes (an MPI-style barrier): every clock advances
    /// to the cluster maximum plus a latency term logarithmic in the node
    /// count; the gap each node waited is accounted as idle time.
    pub fn barrier(&mut self) {
        let max = self.nodes.iter().map(|n| n.clock_ns()).max().unwrap_or(0);
        // A tree barrier costs ~ceil(log2 n) latency rounds.
        let rounds = if self.len() <= 1 {
            0
        } else {
            (usize::BITS - (self.len() - 1).leading_zeros()) as u64
        };
        let target = max + self.config.net.latency_ns * rounds;
        for n in &mut self.nodes {
            n.wait_until(target);
            n.stats.barriers += 1;
        }
    }

    /// The makespan: the largest virtual clock across nodes ("wall clock"
    /// in the paper's figures — the maximum time taken by any processor).
    pub fn makespan_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.clock_ns()).max().unwrap_or(0)
    }

    /// Snapshot of per-node statistics.
    pub fn run_stats(&self) -> RunStats {
        RunStats::new(
            self.nodes.iter().map(|n| n.stats.clone()).collect(),
            self.nodes.iter().map(|n| n.clock_ns()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_advances_both_parties() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let before_sender = c.nodes[0].clock_ns();
        c.send(0, 1, 1_000_000);
        assert!(c.nodes[0].clock_ns() > before_sender);
        assert_eq!(c.nodes[1].clock_ns(), c.nodes[0].clock_ns());
        assert_eq!(c.nodes[0].stats.bytes_sent, 1_000_000);
        assert!(c.nodes[1].stats.idle_ns > 0);
    }

    #[test]
    fn receiver_already_ahead_does_not_rewind() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        c.nodes[1].charge_cpu(1_000_000_000);
        let ahead = c.nodes[1].clock_ns();
        c.send(0, 1, 10);
        assert_eq!(c.nodes[1].clock_ns(), ahead, "clock must be monotonic");
    }

    #[test]
    #[should_panic(expected = "no self-sends")]
    fn self_send_is_rejected() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(2));
        c.send(0, 0, 10);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(4));
        c.nodes[2].charge_cpu(5_000_000);
        c.barrier();
        let t0 = c.nodes[0].clock_ns();
        assert!(c.nodes.iter().all(|n| n.clock_ns() == t0));
        assert!(t0 >= 5_000_000);
        assert_eq!(c.nodes[0].stats.barriers, 1);
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(3));
        c.nodes[1].charge_cpu(42);
        assert_eq!(c.makespan_ns(), c.nodes[1].clock_ns());
    }

    #[test]
    fn heterogeneous_nodes_run_at_different_speeds() {
        let mut c = SimCluster::new(ClusterConfig::heterogeneous_16());
        assert_eq!(c.len(), 16);
        c.nodes[0].charge_cpu(1000); // 500 MHz node
        c.nodes[8].charge_cpu(1000); // 266 MHz node
        assert!(c.nodes[8].clock_ns() > c.nodes[0].clock_ns());
    }
}
