//! Demand-driven (manager/worker) scheduling, simulated deterministically.
//!
//! ASL, AHT and PT assign tasks dynamically: "a processor is designated the
//! job of being the manager responsible for dynamically assigning the next
//! task to a worker processor" (Section 3.3.2). In the simulation, the
//! manager is realized as a greedy event loop: the node with the smallest
//! virtual clock is by definition the next to request work, so the loop
//! repeatedly serves that node, asks the [`TaskSource`] for the best task
//! given the node's *previous* task (affinity), executes it, and advances
//! that node's clock by the task's measured cost. Ties break by node id,
//! making every schedule bit-for-bit reproducible.
//!
//! As in the paper, the manager overlaps a worker on node 0, so no node is
//! reserved; the RPC round trip per task is charged to the worker.

use crate::SimCluster;

/// Supplies tasks to the demand scheduler.
///
/// `next_task` receives the requesting node and its previously executed
/// task so implementations can apply prefix/subset affinity; returning
/// `None` retires the node.
pub trait TaskSource<T> {
    /// Picks the next task for `node`, or `None` when no work remains.
    fn next_task(&mut self, node: usize, prev: Option<&T>) -> Option<T>;
}

/// Blanket implementation so plain closures can serve as sources.
impl<T, F> TaskSource<T> for F
where
    F: FnMut(usize, Option<&T>) -> Option<T>,
{
    fn next_task(&mut self, node: usize, prev: Option<&T>) -> Option<T> {
        self(node, prev)
    }
}

/// Runs demand scheduling to completion.
///
/// `exec` performs the task on the given node, charging whatever virtual
/// time it costs; it receives the node's previous task for affinity reuse.
/// Returns the per-node task histories.
pub fn run_demand<T, S, F>(cluster: &mut SimCluster, source: &mut S, mut exec: F) -> Vec<Vec<T>>
where
    T: Clone,
    S: TaskSource<T>,
    F: FnMut(&mut SimCluster, usize, &T, Option<&T>),
{
    let n = cluster.len();
    let mut prev: Vec<Option<T>> = vec![None; n];
    let mut history: Vec<Vec<T>> = vec![Vec::new(); n];
    let mut retired = vec![false; n];
    let mut live = n;
    while live > 0 {
        // The next node to request work is the one with the smallest clock.
        let node = (0..n)
            .filter(|&i| !retired[i])
            .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
            .expect("live > 0 guarantees a candidate");
        // Worker → manager RPC round trip to obtain the assignment.
        cluster.nodes[node].charge_rpc();
        match source.next_task(node, prev[node].as_ref()) {
            Some(task) => {
                cluster.nodes[node].charge_task_overhead();
                exec(cluster, node, &task, prev[node].as_ref());
                history[node].push(task.clone());
                prev[node] = Some(task);
            }
            None => {
                retired[node] = true;
                live -= 1;
            }
        }
    }
    // Workers that finish early idle until the last one completes — the
    // paper's wall clock is the max over processors.
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    history
}

/// Demand scheduling with caller-managed task state.
///
/// Like [`run_demand`], but the callback owns task selection *and*
/// execution: it is invoked for the node with the smallest clock and
/// returns `false` to retire that node. Used by algorithms whose affinity
/// decisions depend on per-worker state richer than "the previous task"
/// (e.g. ASL's first-and-previous skip lists).
pub fn run_demand_steps<F>(cluster: &mut SimCluster, mut step: F)
where
    F: FnMut(&mut SimCluster, usize) -> bool,
{
    let n = cluster.len();
    let mut retired = vec![false; n];
    let mut live = n;
    while live > 0 {
        let node = (0..n)
            .filter(|&i| !retired[i])
            .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
            .expect("live > 0 guarantees a candidate");
        cluster.nodes[node].charge_rpc();
        if !step(cluster, node) {
            retired[node] = true;
            live -= 1;
        }
    }
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    /// A source handing out `k` equal tasks in order.
    struct Counter {
        next: usize,
        total: usize,
    }

    impl TaskSource<usize> for Counter {
        fn next_task(&mut self, _node: usize, _prev: Option<&usize>) -> Option<usize> {
            if self.next < self.total {
                self.next += 1;
                Some(self.next - 1)
            } else {
                None
            }
        }
    }

    #[test]
    fn equal_tasks_spread_evenly() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(4));
        let mut src = Counter { next: 0, total: 16 };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _task, _prev| {
            c.nodes[node].charge_cpu(1_000_000);
        });
        assert_eq!(hist.iter().map(Vec::len).sum::<usize>(), 16);
        // Homogeneous nodes with equal tasks: perfect 4/4/4/4 split.
        assert!(hist.iter().all(|h| h.len() == 4), "{hist:?}");
    }

    #[test]
    fn slower_nodes_receive_fewer_tasks() {
        let mut cluster = SimCluster::new(ClusterConfig::heterogeneous_16());
        let mut src = Counter {
            next: 0,
            total: 160,
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _task, _prev| {
            c.nodes[node].charge_cpu(10_000_000);
        });
        let fast: usize = hist[..8].iter().map(Vec::len).sum();
        let slow: usize = hist[8..].iter().map(Vec::len).sum();
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn uneven_tasks_balance_by_demand() {
        // One long task and many short ones: demand scheduling should give
        // the long-task node nothing else while others absorb the rest.
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let costs = [100u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut next = 0usize;
        let mut src = move |_node: usize, _prev: Option<&usize>| {
            if next < costs.len() {
                next += 1;
                Some(next - 1)
            } else {
                None
            }
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, task, _prev| {
            c.nodes[node].charge_cpu(costs[*task] * 1_000_000_000);
        });
        let with_long = hist.iter().position(|h| h.contains(&0)).unwrap();
        assert_eq!(hist[with_long].len(), 1, "{hist:?}");
        assert_eq!(hist[1 - with_long].len(), 9);
    }

    #[test]
    fn previous_task_is_passed_for_affinity() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut seen_prev: Vec<Option<usize>> = Vec::new();
        let mut next = 0usize;
        let mut src = move |_node: usize, prev: Option<&usize>| {
            // record what the source observed
            if next < 3 {
                next += 1;
                Some((prev.map(|p| p * 10).unwrap_or(0)) + 1)
            } else {
                None
            }
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _t, prev| {
            seen_prev.push(prev.copied());
            c.nodes[node].charge_cpu(1);
        });
        assert_eq!(hist[0], vec![1, 11, 111]);
    }

    #[test]
    fn all_clocks_align_at_the_end() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(3));
        let mut src = Counter { next: 0, total: 4 };
        run_demand(&mut cluster, &mut src, |c, node, _t, _p| {
            c.nodes[node].charge_cpu(5_000_000);
        });
        let end = cluster.makespan_ns();
        assert!(cluster.nodes.iter().all(|n| n.clock_ns() == end));
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(4));
            let mut src = Counter { next: 0, total: 33 };
            let hist = run_demand(&mut cluster, &mut src, |c, node, t, _p| {
                c.nodes[node].charge_cpu((*t as u64 % 7 + 1) * 1_000_000);
            });
            (hist, cluster.makespan_ns())
        };
        assert_eq!(run(), run());
    }
}
