//! Demand-driven (manager/worker) scheduling, simulated deterministically.
//!
//! ASL, AHT and PT assign tasks dynamically: "a processor is designated the
//! job of being the manager responsible for dynamically assigning the next
//! task to a worker processor" (Section 3.3.2). In the simulation, the
//! manager is realized as a greedy event loop: the node with the smallest
//! virtual clock is by definition the next to request work, so the loop
//! repeatedly serves that node, asks the [`TaskSource`] for the best task
//! given the node's *previous* task (affinity), executes it, and advances
//! that node's clock by the task's measured cost. Ties break by node id,
//! making every schedule bit-for-bit reproducible.
//!
//! As in the paper, the manager overlaps a worker on node 0, so no node is
//! reserved; the RPC round trip per task is charged to the worker.
//!
//! # Self-healing
//!
//! When the cluster carries a [`crate::fault::FaultPlan`], the manager
//! loops here become fault-tolerant (and stay bit-for-bit deterministic):
//!
//! * worker→manager RPCs that hit an injected drop time out and are
//!   retried with backoff, bounded by the plan's
//!   [`crate::fault::RecoveryPolicy`] (counted in `rpc_retries`);
//! * a worker that crashes mid-task loses it; the manager notices after
//!   `detect_timeout_ns` of missed heartbeats and reassigns the task to
//!   a surviving worker (counted in `tasks_lost` on the victim and
//!   `tasks_recovered` on the survivor);
//! * dead workers leave the candidate set, so scheduling continues on
//!   the survivors alone. The manager itself (overlapped on a worker but
//!   logically replicated) is assumed to survive.
//!
//! With a quiet plan every loop reduces exactly to its pre-fault
//! behaviour — same assignments, same clocks, same counters.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::SimCluster;

/// Charges one manager/worker RPC round trip, with injected drops causing
/// timed-out retries under the cluster's fault plan. The manager is
/// addressed as pseudo-node `cluster.len()` in the fate hash so RPC fates
/// never collide with data-message fates.
fn charge_rpc_with_faults(cluster: &mut SimCluster, node: usize) {
    let plan = &cluster.config.faults;
    if !plan.has_net_faults() {
        cluster.nodes[node].charge_rpc();
        return;
    }
    let plan = plan.clone();
    let manager = cluster.len();
    let mut attempt: u32 = 0;
    loop {
        let fate = if attempt >= plan.policy.max_retries {
            crate::fault::NetFate::Deliver
        } else {
            plan.net_fate(node, manager, cluster.nodes[node].stats.messages)
        };
        let worker = &mut cluster.nodes[node];
        worker.charge_rpc();
        if worker.is_dead() {
            return;
        }
        match fate {
            crate::fault::NetFate::Drop => {
                worker.stats.rpc_retries += 1;
                worker.wait_until(worker.clock_ns() + plan.policy.retry_backoff_ns);
                if worker.is_dead() {
                    return;
                }
                attempt += 1;
            }
            crate::fault::NetFate::Delay(extra) => {
                worker.wait_until(worker.clock_ns() + extra);
                return;
            }
            crate::fault::NetFate::Deliver => return,
        }
    }
}

/// Supplies tasks to the demand scheduler.
///
/// `next_task` receives the requesting node and its previously executed
/// task so implementations can apply prefix/subset affinity; returning
/// `None` retires the node.
pub trait TaskSource<T> {
    /// Picks the next task for `node`, or `None` when no work remains.
    fn next_task(&mut self, node: usize, prev: Option<&T>) -> Option<T>;
}

/// Blanket implementation so plain closures can serve as sources.
impl<T, F> TaskSource<T> for F
where
    F: FnMut(usize, Option<&T>) -> Option<T>,
{
    fn next_task(&mut self, node: usize, prev: Option<&T>) -> Option<T> {
        self(node, prev)
    }
}

/// Runs demand scheduling to completion, reassigning tasks lost to
/// crashed workers.
///
/// `exec` performs the task on the given node, charging whatever virtual
/// time it costs; it receives the node's previous task for affinity reuse.
/// Returns the per-node task histories: a task appears in exactly one
/// *surviving* node's history even if a crashed worker attempted it first.
/// (If every node dies — possible only with a hand-built plan, never a
/// seeded one — unfinished tasks are abandoned.)
pub fn run_demand<T, S, F>(cluster: &mut SimCluster, source: &mut S, mut exec: F) -> Vec<Vec<T>>
where
    T: Clone,
    S: TaskSource<T>,
    F: FnMut(&mut SimCluster, usize, &T, Option<&T>),
{
    let n = cluster.len();
    let detect = cluster.config.faults.policy.detect_timeout_ns;
    let mut prev: Vec<Option<T>> = vec![None; n];
    let mut history: Vec<Vec<T>> = vec![Vec::new(); n];
    // Source exhaustion is per node (the manager stops polling the source
    // for it); lost tasks can still revive such a node.
    let mut src_done = vec![false; n];
    // Tasks reclaimed from crashed workers, with the virtual time at
    // which the manager has detected the death and may reassign them.
    let mut lost: Vec<(T, u64)> = Vec::new();
    // The next node to request work is the live one with the smallest
    // clock (ties by id) that could still receive an assignment.
    while let Some(node) = (0..n)
        .filter(|&i| !cluster.nodes[i].is_dead() && (!src_done[i] || !lost.is_empty()))
        .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
    {
        // Worker → manager RPC round trip to obtain the assignment.
        charge_rpc_with_faults(cluster, node);
        if cluster.nodes[node].is_dead() {
            continue; // died asking for work; nothing was in flight
        }
        let mut task: Option<T> = None;
        let mut recovered = false;
        if !src_done[node] {
            match source.next_task(node, prev[node].as_ref()) {
                Some(t) => task = Some(t),
                None => src_done[node] = true,
            }
        }
        if task.is_none() && !lost.is_empty() {
            // Reassign the earliest-detectable lost task; the worker may
            // have to sit out the manager's detection timeout first.
            let pos = (0..lost.len()).min_by_key(|&i| lost[i].1).unwrap();
            let available_at = lost[pos].1;
            cluster.nodes[node].wait_until(available_at);
            if cluster.nodes[node].is_dead() {
                continue; // died waiting; the task stays in the pool
            }
            task = Some(lost.remove(pos).0);
            recovered = true;
        }
        // With no task (source done, no lost work) the node drops out of
        // the candidate set until a loss revives it.
        if let Some(task) = task {
            cluster.nodes[node].charge_task_overhead();
            exec(cluster, node, &task, prev[node].as_ref());
            if cluster.nodes[node].is_dead() {
                // Crashed mid-task: roll it back into the pool, to be
                // reassigned once the death is detected.
                let death = cluster.nodes[node].clock_ns();
                cluster.nodes[node].note_task_lost();
                lost.push((task, death + detect));
            } else {
                if recovered {
                    cluster.nodes[node].note_task_recovered();
                }
                history[node].push(task.clone());
                prev[node] = Some(task);
            }
        }
    }
    // Workers that finish early idle until the last one completes — the
    // paper's wall clock is the max over processors. (Dead nodes ignore
    // this; their clocks stay frozen at the crash.)
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    history
}

/// Demand scheduling with caller-managed task state.
///
/// Like [`run_demand`], but the callback owns task selection *and*
/// execution: it is invoked for the node with the smallest clock and
/// returns `false` to retire that node. Used by algorithms whose affinity
/// decisions depend on per-worker state richer than "the previous task"
/// (e.g. ASL's first-and-previous skip lists).
pub fn run_demand_steps<F>(cluster: &mut SimCluster, mut step: F)
where
    F: FnMut(&mut SimCluster, usize) -> bool,
{
    let n = cluster.len();
    let mut retired = vec![false; n];
    while let Some(node) = (0..n)
        .filter(|&i| !retired[i] && !cluster.nodes[i].is_dead())
        .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
    {
        cluster.nodes[node].charge_rpc();
        if cluster.nodes[node].is_dead() || !step(cluster, node) {
            retired[node] = true;
        }
    }
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
}

/// What the manager is telling the algorithm about `node` in a
/// [`run_demand_steps_healing`] callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// `node` (live, smallest clock) requests work: select and execute a
    /// task on it, returning `false` to retire it — exactly the contract
    /// of the [`run_demand_steps`] callback.
    Assign,
    /// `node` has crashed: reclaim whatever task it was running back into
    /// the pending pool (rolling back its partial output), returning
    /// `true` iff a task was actually in flight. The manager delays
    /// reassignments by its detection timeout from the moment of death.
    Lost,
}

/// Demand scheduling with caller-managed task state *and* self-healing.
///
/// Like [`run_demand_steps`], but the single callback receives a
/// [`StepEvent`] so the algorithm can both execute work (`Assign`) and
/// reclaim a crashed worker's in-flight task (`Lost`) from one closure
/// (selection state and output sinks live in the same captures).
///
/// Recovery timing: after a death with a task in flight, every subsequent
/// assignment waits for the manager's detection timeout to pass — a
/// reclaimed task cannot restart before the manager could have noticed
/// the crash. Under a quiet plan the loop is bit-identical to
/// [`run_demand_steps`].
pub fn run_demand_steps_healing<F>(cluster: &mut SimCluster, mut step: F)
where
    F: FnMut(&mut SimCluster, usize, StepEvent) -> bool,
{
    let n = cluster.len();
    let detect = cluster.config.faults.policy.detect_timeout_ns;
    let mut retired = vec![false; n];
    let mut notified = vec![false; n];
    // No assignment may happen before this instant: raised to
    // death + detection timeout whenever an in-flight task is lost.
    let mut floor: u64 = 0;
    loop {
        // Surface any new deaths to the algorithm before assigning.
        let mut reclaimed = false;
        for i in 0..n {
            if cluster.nodes[i].is_dead() && !notified[i] {
                notified[i] = true;
                retired[i] = true;
                let had_task = step(cluster, i, StepEvent::Lost);
                if had_task {
                    cluster.nodes[i].note_task_lost();
                    floor = floor.max(cluster.nodes[i].clock_ns() + detect);
                    reclaimed = true;
                }
            }
        }
        if reclaimed {
            // Survivors that had retired must be re-polled: there is new
            // work in the pool again.
            for (r, node) in retired.iter_mut().zip(&cluster.nodes) {
                if !node.is_dead() {
                    *r = false;
                }
            }
        }
        let Some(node) = (0..n)
            .filter(|&i| !retired[i] && !cluster.nodes[i].is_dead())
            .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
        else {
            break;
        };
        cluster.nodes[node].wait_until(floor);
        if cluster.nodes[node].is_dead() {
            continue;
        }
        charge_rpc_with_faults(cluster, node);
        if cluster.nodes[node].is_dead() {
            continue;
        }
        if !step(cluster, node, StepEvent::Assign) {
            retired[node] = true;
        }
    }
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    /// A source handing out `k` equal tasks in order.
    struct Counter {
        next: usize,
        total: usize,
    }

    impl TaskSource<usize> for Counter {
        fn next_task(&mut self, _node: usize, _prev: Option<&usize>) -> Option<usize> {
            if self.next < self.total {
                self.next += 1;
                Some(self.next - 1)
            } else {
                None
            }
        }
    }

    #[test]
    fn equal_tasks_spread_evenly() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(4));
        let mut src = Counter { next: 0, total: 16 };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _task, _prev| {
            c.nodes[node].charge_cpu(1_000_000);
        });
        assert_eq!(hist.iter().map(Vec::len).sum::<usize>(), 16);
        // Homogeneous nodes with equal tasks: perfect 4/4/4/4 split.
        assert!(hist.iter().all(|h| h.len() == 4), "{hist:?}");
    }

    #[test]
    fn slower_nodes_receive_fewer_tasks() {
        let mut cluster = SimCluster::new(ClusterConfig::heterogeneous_16());
        let mut src = Counter {
            next: 0,
            total: 160,
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _task, _prev| {
            c.nodes[node].charge_cpu(10_000_000);
        });
        let fast: usize = hist[..8].iter().map(Vec::len).sum();
        let slow: usize = hist[8..].iter().map(Vec::len).sum();
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn uneven_tasks_balance_by_demand() {
        // One long task and many short ones: demand scheduling should give
        // the long-task node nothing else while others absorb the rest.
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let costs = [100u64, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let mut next = 0usize;
        let mut src = move |_node: usize, _prev: Option<&usize>| {
            if next < costs.len() {
                next += 1;
                Some(next - 1)
            } else {
                None
            }
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, task, _prev| {
            c.nodes[node].charge_cpu(costs[*task] * 1_000_000_000);
        });
        let with_long = hist.iter().position(|h| h.contains(&0)).unwrap();
        assert_eq!(hist[with_long].len(), 1, "{hist:?}");
        assert_eq!(hist[1 - with_long].len(), 9);
    }

    #[test]
    fn previous_task_is_passed_for_affinity() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut seen_prev: Vec<Option<usize>> = Vec::new();
        let mut next = 0usize;
        let mut src = move |_node: usize, prev: Option<&usize>| {
            // record what the source observed
            if next < 3 {
                next += 1;
                Some((prev.map(|p| p * 10).unwrap_or(0)) + 1)
            } else {
                None
            }
        };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _t, prev| {
            seen_prev.push(prev.copied());
            c.nodes[node].charge_cpu(1);
        });
        assert_eq!(hist[0], vec![1, 11, 111]);
    }

    #[test]
    fn all_clocks_align_at_the_end() {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(3));
        let mut src = Counter { next: 0, total: 4 };
        run_demand(&mut cluster, &mut src, |c, node, _t, _p| {
            c.nodes[node].charge_cpu(5_000_000);
        });
        let end = cluster.makespan_ns();
        assert!(cluster.nodes.iter().all(|n| n.clock_ns() == end));
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = || {
            let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(4));
            let mut src = Counter { next: 0, total: 33 };
            let hist = run_demand(&mut cluster, &mut src, |c, node, t, _p| {
                c.nodes[node].charge_cpu((*t as u64 % 7 + 1) * 1_000_000);
            });
            (hist, cluster.makespan_ns())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn a_lost_task_is_rerun_on_a_survivor() {
        use crate::fault::FaultPlan;
        // Node 1 dies early, mid-task; every task must still complete on
        // a surviving node, exactly once.
        let config =
            ClusterConfig::fast_ethernet(4).with_faults(FaultPlan::none().crash(1, 2_000_000));
        let mut cluster = SimCluster::new(config);
        let mut src = Counter { next: 0, total: 16 };
        let hist = run_demand(&mut cluster, &mut src, |c, node, _t, _p| {
            c.nodes[node].charge_cpu(1_000_000);
        });
        let mut done: Vec<usize> = hist.iter().flatten().copied().collect();
        done.sort_unstable();
        assert_eq!(done, (0..16).collect::<Vec<_>>(), "{hist:?}");
        assert!(hist[1].is_empty() || cluster.nodes[1].is_dead());
        let stats = cluster.run_stats();
        assert_eq!(stats.total_crashes(), 1);
        assert_eq!(stats.total_tasks_lost(), stats.total_tasks_recovered());
    }

    #[test]
    fn recovery_respects_the_detection_timeout() {
        use crate::fault::FaultPlan;
        // A 2-node cluster where node 1 dies mid-way through its only
        // task: node 0 must not restart it before death + detection.
        let config =
            ClusterConfig::fast_ethernet(2).with_faults(FaultPlan::none().crash(1, 1_500_000));
        let detect = config.faults.policy.detect_timeout_ns;
        let mut cluster = SimCluster::new(config);
        let mut handed = 0usize;
        let mut src = move |_node: usize, _prev: Option<&usize>| {
            if handed < 2 {
                handed += 1;
                Some(handed - 1)
            } else {
                None
            }
        };
        let mut recovered_start = None;
        let hist = run_demand(&mut cluster, &mut src, |c, node, t, _p| {
            if node == 0 && *t == 1 {
                recovered_start = Some(c.nodes[0].clock_ns());
            }
            c.nodes[node].charge_cpu(10_000_000);
        });
        assert!(hist[0].contains(&1), "survivor re-ran the lost task");
        let death = cluster.nodes[1].clock_ns();
        assert!(
            recovered_start.expect("task 1 re-ran") >= death + detect,
            "restarted before the manager could have detected the crash"
        );
    }

    #[test]
    fn faulty_schedules_are_deterministic() {
        use crate::fault::FaultPlan;
        let run = || {
            let config = ClusterConfig::heterogeneous_16().with_faults(FaultPlan::seeded(
                5,
                16,
                100_000_000,
            ));
            let mut cluster = SimCluster::new(config);
            let mut src = Counter { next: 0, total: 64 };
            let hist = run_demand(&mut cluster, &mut src, |c, node, t, _p| {
                c.nodes[node].charge_cpu((*t as u64 % 5 + 1) * 1_000_000);
            });
            (hist, cluster.makespan_ns(), cluster.run_stats())
        };
        let (h1, m1, s1) = run();
        let (h2, m2, s2) = run();
        assert_eq!(h1, h2);
        assert_eq!(m1, m2);
        assert_eq!(s1, s2);
        let mut done: Vec<usize> = h1.iter().flatten().copied().collect();
        done.sort_unstable();
        assert_eq!(done, (0..64).collect::<Vec<_>>(), "no task lost for good");
    }

    #[test]
    fn healing_steps_reassign_inflight_tasks() {
        use crate::fault::FaultPlan;
        use std::rc::Rc;
        // A hand-rolled step algorithm with explicit in-flight tracking,
        // shaped like the ASL/PT/AHT adapters.
        let config =
            ClusterConfig::fast_ethernet(3).with_faults(FaultPlan::none().crash(2, 3_000_000));
        let mut cluster = SimCluster::new(config.clone());
        let mut remaining: Vec<usize> = (0..9).collect();
        let mut inflight: Vec<Option<usize>> = vec![None; 3];
        let done = Rc::new(std::cell::RefCell::new(Vec::new()));
        let done2 = Rc::clone(&done);
        run_demand_steps_healing(&mut cluster, move |c, node, event| match event {
            StepEvent::Lost => {
                if let Some(t) = inflight[node].take() {
                    remaining.push(t);
                    true
                } else {
                    false
                }
            }
            StepEvent::Assign => {
                let Some(t) = remaining.pop() else {
                    return false;
                };
                inflight[node] = Some(t);
                c.nodes[node].charge_cpu(2_000_000);
                if !c.nodes[node].is_dead() {
                    inflight[node] = None;
                    done2.borrow_mut().push(t);
                }
                true
            }
        });
        let mut finished = done.borrow().clone();
        finished.sort_unstable();
        assert_eq!(finished, (0..9).collect::<Vec<_>>());
        assert!(cluster.nodes[2].is_dead());
        assert_eq!(cluster.run_stats().total_tasks_lost(), 1);
    }

    #[test]
    fn legacy_steps_skip_dead_nodes_without_hanging() {
        use crate::fault::FaultPlan;
        let config = ClusterConfig::fast_ethernet(2).with_faults(FaultPlan::none().crash(1, 1_000));
        let mut cluster = SimCluster::new(config);
        let mut left = 5;
        run_demand_steps(&mut cluster, |c, node| {
            if left == 0 {
                return false;
            }
            left -= 1;
            c.nodes[node].charge_cpu(1_000_000);
            true
        });
        assert_eq!(left, 0, "the survivor absorbed all steps");
    }
}
