//! Per-node simulation state: virtual clock, disk head, counters.

use crate::config::{CpuCosts, DiskModel, NetModel, NodeSpec};
use crate::fault::{FaultPlan, Slowdown};
use crate::stats::NodeStats;
use icecube_trace::{CostSnapshot, EventKind, TraceBuffer};

/// One simulated machine: a virtual clock plus the local disk state and
/// accounting counters. All costs are charged explicitly by the algorithms
/// through the methods here, from deterministic operation counts.
///
/// A node may carry injected faults (see [`crate::fault::FaultPlan`]):
/// a crash freezes its clock at the scheduled instant and turns every
/// later charge into a no-op, and slowdown windows inflate work started
/// inside them. With no faults attached, every method behaves exactly as
/// it did before fault injection existed.
#[derive(Debug, Clone)]
pub struct SimNode {
    id: usize,
    spec: NodeSpec,
    disk: DiskModel,
    net: NetModel,
    cpu: CpuCosts,
    clock_ns: u64,
    /// The cuboid file the disk head last wrote to; switching files costs
    /// `disk.switch_ns` (the depth-first-writing penalty of Figure 3.6).
    last_file: Option<u64>,
    /// Running estimate of live memory on this node.
    mem_used: u64,
    /// Scheduled crash instant: the clock can never pass this.
    crash_at: Option<u64>,
    /// Injected slowdown windows affecting this node.
    slowdowns: Vec<Slowdown>,
    /// Set once the crash fires; dead nodes ignore all charges.
    dead: bool,
    /// Virtual-time event buffer; `None` (the default) records nothing,
    /// so untraced runs skip tracing entirely.
    trace: Option<Box<TraceBuffer>>,
    /// Per-node statistics.
    pub stats: NodeStats,
}

impl SimNode {
    /// Creates a node at virtual time zero.
    pub fn new(id: usize, spec: NodeSpec, disk: DiskModel, net: NetModel, cpu: CpuCosts) -> Self {
        SimNode {
            id,
            spec,
            disk,
            net,
            cpu,
            clock_ns: 0,
            last_file: None,
            mem_used: 0,
            crash_at: None,
            slowdowns: Vec::new(),
            dead: false,
            trace: None,
            stats: NodeStats::default(),
        }
    }

    /// Attaches an empty trace buffer; subsequent events are recorded.
    pub(crate) fn attach_trace(&mut self) {
        self.trace = Some(Box::default());
    }

    /// Detaches and returns the trace buffer (empty if none was attached).
    pub(crate) fn take_trace_buffer(&mut self) -> TraceBuffer {
        self.trace.take().map(|b| *b).unwrap_or_default()
    }

    /// Records `kind` at the node's current virtual clock. A no-op when no
    /// trace buffer is attached — recording charges nothing and mutates no
    /// counter, so traced and untraced runs are cost-identical.
    #[inline]
    pub fn trace_event(&mut self, kind: EventKind) {
        if let Some(b) = &mut self.trace {
            b.record(self.clock_ns, kind);
        }
    }

    /// Opens a named phase span at the current clock.
    pub fn phase_start(&mut self, name: &'static str) {
        self.trace_event(EventKind::PhaseStart { name });
    }

    /// Closes the named phase span, capturing the node's cumulative cost
    /// counters so exporters can compute per-phase deltas.
    pub fn phase_end(&mut self, name: &'static str) {
        let costs = self.cost_snapshot();
        self.trace_event(EventKind::PhaseEnd { name, costs });
    }

    /// The node's cumulative cost counters as a trace snapshot.
    pub fn cost_snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            cpu_ns: self.stats.cpu_ns,
            disk_write_ns: self.stats.disk_write_ns,
            disk_read_ns: self.stats.disk_read_ns,
            net_ns: self.stats.net_ns,
            idle_ns: self.stats.idle_ns,
            bytes_sent: self.stats.bytes_sent,
            bytes_read: self.stats.bytes_read,
            messages: self.stats.messages,
            tasks: self.stats.tasks,
            cells_written: self.stats.cells_written,
        }
    }

    /// Attaches this node's slice of a fault plan. A crash scheduled at
    /// or before the current clock fires immediately.
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        self.crash_at = plan.crash_time(self.id);
        self.slowdowns = plan.slowdowns_for(self.id);
        if let Some(at) = self.crash_at {
            if at <= self.clock_ns {
                self.die();
            }
        }
    }

    /// True once the node's scheduled crash has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The crash instant this node is doomed to, if any.
    pub fn crash_at(&self) -> Option<u64> {
        self.crash_at
    }

    fn die(&mut self) {
        if self.dead {
            return;
        }
        self.dead = true;
        self.stats.crashed = 1;
        // The clock is frozen at the crash instant, so this stamps the
        // exact virtual time of death — and exactly once.
        self.trace_event(EventKind::Crash);
    }

    /// Moves the clock forward by up to `t`, stopping (and dying) at the
    /// scheduled crash instant. Returns the time that actually elapsed.
    fn clamp_elapse(&mut self, t: u64) -> u64 {
        if self.dead {
            return 0;
        }
        let actual = match self.crash_at {
            Some(at) if self.clock_ns + t > at => {
                let a = at.saturating_sub(self.clock_ns);
                self.die();
                a
            }
            _ => t,
        };
        self.clock_ns += actual;
        actual
    }

    /// Performs `nominal` ns of busy work: inflated by any slowdown
    /// window covering its start instant, cut short by a crash. Returns
    /// the time actually spent; the node completed the work iff it is
    /// still alive afterwards.
    fn elapse_busy(&mut self, nominal: u64) -> u64 {
        if self.dead || nominal == 0 {
            return 0;
        }
        // Without slowdown windows (the fault-free common case) the factor
        // is exactly 100 and `nominal * 100 / 100` is the identity, so the
        // window scan and widening arithmetic can be skipped outright.
        let inflated = if self.slowdowns.is_empty() {
            nominal
        } else {
            let factor = self
                .slowdowns
                .iter()
                .filter(|s| s.from_ns <= self.clock_ns && self.clock_ns < s.until_ns)
                .map(|s| s.factor_pct.max(100))
                .max()
                .unwrap_or(100) as u64;
            nominal * factor / 100
        };
        let actual = self.clamp_elapse(inflated);
        self.stats.slowdown_ns += (inflated - nominal).min(actual);
        actual
    }

    /// Node identifier (its rank in the cluster).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Hardware description.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// The CPU price table (reference-speed nanoseconds).
    pub fn cpu_costs(&self) -> CpuCosts {
        self.cpu
    }

    /// The interconnect model (for algorithms that need to price a
    /// transfer before deciding to make it).
    pub fn net_model(&self) -> NetModel {
        self.net
    }

    /// Current virtual time.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock (used by [`crate::SimCluster`]), stopping at a
    /// scheduled crash. Returns the time that actually elapsed.
    pub(crate) fn advance(&mut self, ns: u64) -> u64 {
        self.clamp_elapse(ns)
    }

    /// Blocks until `t`: if the clock is behind, the gap counts as idle
    /// time (waiting on a message, a barrier, or the manager). A node can
    /// die waiting — the crash fires if the target lies past it.
    pub fn wait_until(&mut self, t: u64) {
        if self.dead {
            return;
        }
        let target = match self.crash_at {
            Some(at) => t.min(at),
            None => t,
        };
        if target > self.clock_ns {
            self.stats.idle_ns += target - self.clock_ns;
            self.clock_ns = target;
        }
        if self.crash_at.is_some_and(|at| t > at) {
            self.die();
        }
    }

    /// Charges CPU work quoted in reference-node nanoseconds; slower nodes
    /// take proportionally longer.
    pub fn charge_cpu(&mut self, reference_ns: u64) {
        // A reference-speed node scales by exactly 1.0, and `f64` is exact
        // for integers up to 2^53, so the scale-and-round trip is the
        // identity — skip the float arithmetic on this (dominant) path.
        let t = if self.spec.mhz == crate::config::REFERENCE_MHZ
            && reference_ns <= (1u64 << f64::MANTISSA_DIGITS)
        {
            reference_ns
        } else {
            (reference_ns as f64 * self.spec.cpu_scale()).round() as u64
        };
        let actual = self.elapse_busy(t);
        self.stats.cpu_ns += actual;
    }

    /// Charges the scan of `tuples` rows from memory.
    pub fn charge_scan(&mut self, tuples: u64) {
        self.charge_cpu(tuples * self.cpu.tuple_scan_ns);
    }

    /// Charges moving `tuples` rows (partitioning, counting sort).
    pub fn charge_moves(&mut self, tuples: u64) {
        self.charge_cpu(tuples * self.cpu.tuple_move_ns);
    }

    /// Charges `n` key-element comparisons (sorting, skip-list search).
    pub fn charge_comparisons(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.cmp_ns);
    }

    /// Charges `n` in-place aggregate updates.
    pub fn charge_agg_updates(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.agg_update_ns);
    }

    /// Charges `n` hash-table probes.
    pub fn charge_hash_probes(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.hash_probe_ns);
    }

    /// Charges fixed per-task setup overhead. A node that dies during
    /// setup never counts the task as started.
    pub fn charge_task_overhead(&mut self) {
        self.charge_cpu(self.cpu.task_overhead_ns);
        if !self.dead {
            self.stats.tasks += 1;
        }
    }

    /// Like [`SimNode::charge_task_overhead`], additionally opening a
    /// trace span for lattice node `task`. The span is recorded iff the
    /// task counter increments, so per-node `TaskStart` events always sum
    /// to `stats.tasks`.
    pub fn charge_task_overhead_for(&mut self, task: u64) {
        self.charge_cpu(self.cpu.task_overhead_ns);
        if !self.dead {
            self.stats.tasks += 1;
            self.trace_event(EventKind::TaskStart { task });
        }
    }

    /// Notes a task lost to this node's crash: counter and trace event
    /// move together, so `TaskLost` events always sum to
    /// `stats.tasks_lost` (the event is stamped at the frozen crash clock).
    pub fn note_task_lost(&mut self) {
        self.stats.tasks_lost += 1;
        self.trace_event(EventKind::TaskLost);
    }

    /// Notes a lost task recovered on this node (re-run or re-derived);
    /// the pair moves together like [`SimNode::note_task_lost`].
    pub fn note_task_recovered(&mut self) {
        self.stats.tasks_recovered += 1;
        self.trace_event(EventKind::TaskRecovered);
    }

    /// Closes the trace span for `task`, if this node is still alive to
    /// have completed it (a crashed node's span stays open — the Gantt
    /// view then shows the cut-short task running into the crash marker).
    pub fn trace_task_end(&mut self, task: u64) {
        if !self.dead {
            self.trace_event(EventKind::TaskEnd { task });
        }
    }

    /// Writes `bytes` of cells to the output file identified by `file`
    /// (one file per cuboid, as the paper's implementations keep). A write
    /// to a different file than the previous one pays the switch penalty —
    /// this single rule reproduces the depth- vs breadth-first writing gap.
    pub fn write_cells(&mut self, file: u64, bytes: u64, cells: u64) {
        if self.dead {
            return;
        }
        let mut t = bytes * self.disk.write_byte_ns;
        let switched = self.last_file != Some(file);
        if switched {
            t += self.disk.switch_ns;
        }
        let actual = self.elapse_busy(t);
        self.stats.disk_write_ns += actual;
        if self.dead {
            // Died mid-write: the incomplete output never counts (the
            // self-healing scheduler rolls the whole task back anyway).
            return;
        }
        if switched {
            self.stats.file_switches += 1;
            self.last_file = Some(file);
        }
        self.stats.bytes_written += bytes;
        self.stats.cells_written += cells;
        self.charge_cpu(cells * self.cpu.cell_emit_ns);
    }

    /// Reads `bytes` sequentially from local disk.
    pub fn read_bytes(&mut self, bytes: u64) {
        if self.dead {
            return;
        }
        let t = bytes * self.disk.read_byte_ns;
        let actual = self.elapse_busy(t);
        self.stats.disk_read_ns += actual;
        if !self.dead {
            self.stats.bytes_read += bytes;
        }
    }

    /// Charges time spent waiting on / driving a network transfer this
    /// node requested (the requester side of a chunk fetch).
    pub fn charge_net(&mut self, ns: u64) {
        let actual = self.elapse_busy(ns);
        self.stats.net_ns += actual;
    }

    /// Charges one manager/worker RPC round trip (request + reply). The
    /// trace event is recorded iff the message counter moves, so per-node
    /// `Rpc` events always account for exactly `2 × count` of the
    /// control messages in `stats.messages`.
    pub fn charge_rpc(&mut self) {
        if self.dead {
            return;
        }
        let t = 2 * self.net.rpc_ns();
        let actual = self.elapse_busy(t);
        self.stats.net_ns += actual;
        if !self.dead {
            self.stats.messages += 2;
            self.trace_event(EventKind::Rpc {
                bytes: 2 * NetModel::RPC_MSG_BYTES,
            });
        }
    }

    /// Notes an allocation of `bytes`, tracking the peak for the memory
    /// figures and for the hash-tree algorithm's out-of-memory failure.
    pub fn alloc(&mut self, bytes: u64) {
        self.mem_used += bytes;
        self.stats.peak_mem_bytes = self.stats.peak_mem_bytes.max(self.mem_used);
    }

    /// Notes that `bytes` were released.
    pub fn free(&mut self, bytes: u64) {
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Live memory estimate.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// True when an allocation of `bytes` more would exceed the node's
    /// physical memory.
    pub fn would_exceed_memory(&self, bytes: u64) -> bool {
        self.mem_used + bytes > self.spec.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, DiskModel};

    fn node() -> SimNode {
        let c = ClusterConfig::fast_ethernet(1);
        SimNode::new(0, c.nodes[0], c.disk, c.net, c.cpu)
    }

    #[test]
    fn cpu_charges_scale_with_clock_speed() {
        let c = ClusterConfig::fast_ethernet(1);
        let mut fast = SimNode::new(0, NodeSpec::FAST, c.disk, c.net, c.cpu);
        let mut slow = SimNode::new(1, NodeSpec::SLOW, c.disk, c.net, c.cpu);
        fast.charge_cpu(1_000_000);
        slow.charge_cpu(1_000_000);
        let ratio = slow.clock_ns() as f64 / fast.clock_ns() as f64;
        assert!((ratio - 500.0 / 266.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn file_switches_cost_a_seek() {
        let mut n = node();
        n.write_cells(1, 100, 1);
        let one_switch = n.stats.file_switches;
        n.write_cells(1, 100, 1); // same file: sequential
        assert_eq!(n.stats.file_switches, one_switch);
        n.write_cells(2, 100, 1); // different file: seek
        n.write_cells(1, 100, 1); // back again: seek
        assert_eq!(n.stats.file_switches, 3);
        assert_eq!(n.stats.cells_written, 4);
        assert_eq!(n.stats.bytes_written, 400);
    }

    #[test]
    fn scattered_writes_cost_more_than_sequential() {
        let mut scattered = node();
        let mut sequential = node();
        for i in 0..100u64 {
            scattered.write_cells(i % 7, 36, 1);
            sequential.write_cells(0, 36, 1);
        }
        assert!(scattered.stats.disk_write_ns > 3 * sequential.stats.disk_write_ns);
    }

    #[test]
    fn wait_until_accrues_idle_and_never_rewinds() {
        let mut n = node();
        n.charge_cpu(500);
        let t = n.clock_ns();
        n.wait_until(t + 1000);
        assert_eq!(n.stats.idle_ns, 1000);
        n.wait_until(0);
        assert_eq!(n.clock_ns(), t + 1000);
    }

    #[test]
    fn memory_tracking_peaks_and_frees() {
        let mut n = node();
        n.alloc(1000);
        n.alloc(2000);
        n.free(2500);
        n.alloc(100);
        assert_eq!(n.mem_used(), 600);
        assert_eq!(n.stats.peak_mem_bytes, 3000);
        assert!(!n.would_exceed_memory(1024));
        assert!(n.would_exceed_memory(u64::MAX / 2));
    }

    #[test]
    fn a_crash_freezes_the_clock_mid_charge() {
        let mut n = node();
        n.set_faults(&FaultPlan::none().crash(0, 1_000));
        n.charge_cpu(600);
        assert!(!n.is_dead());
        n.charge_cpu(600); // would end at 1200; dies at 1000
        assert!(n.is_dead());
        assert_eq!(n.clock_ns(), 1_000);
        assert_eq!(n.stats.crashed, 1);
        let frozen = n.stats.clone();
        n.charge_cpu(10_000);
        n.write_cells(3, 100, 5);
        n.read_bytes(100);
        n.charge_rpc();
        n.charge_task_overhead();
        n.wait_until(1_000_000);
        assert_eq!(n.clock_ns(), 1_000, "dead clocks never move");
        assert_eq!(n.stats, frozen, "dead nodes stop accounting");
    }

    #[test]
    fn a_crash_can_fire_while_waiting() {
        let mut n = node();
        n.set_faults(&FaultPlan::none().crash(0, 500));
        n.wait_until(2_000);
        assert!(n.is_dead());
        assert_eq!(n.clock_ns(), 500);
        assert_eq!(n.stats.idle_ns, 500);
    }

    #[test]
    fn dying_mid_write_discards_the_incomplete_output() {
        let mut n = node();
        n.set_faults(&FaultPlan::none().crash(0, 10));
        n.write_cells(1, 1_000_000, 100);
        assert!(n.is_dead());
        assert_eq!(n.stats.cells_written, 0);
        assert_eq!(n.stats.bytes_written, 0);
        assert_eq!(n.stats.file_switches, 0);
        assert_eq!(n.stats.disk_write_ns, 10, "partial time still passed");
    }

    #[test]
    fn slowdown_windows_inflate_work_started_inside_them() {
        let mut n = node();
        n.set_faults(&FaultPlan::none().slow(0, 0, 1_000, 300));
        n.charge_cpu(100); // starts at 0, inside the window: 3×
        assert_eq!(n.clock_ns(), 300);
        assert_eq!(n.stats.slowdown_ns, 200);
        n.wait_until(1_000);
        n.charge_cpu(100); // starts at window end: nominal
        assert_eq!(n.clock_ns(), 1_100);
        assert_eq!(n.stats.slowdown_ns, 200);
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let mut plain = node();
        let mut quiet = node();
        quiet.set_faults(&FaultPlan::none());
        for n in [&mut plain, &mut quiet] {
            n.charge_cpu(123);
            n.write_cells(7, 360, 10);
            n.read_bytes(99);
            n.charge_rpc();
            n.wait_until(1_000_000);
        }
        assert_eq!(plain.stats, quiet.stats);
        assert_eq!(plain.clock_ns(), quiet.clock_ns());
    }

    #[test]
    fn disk_model_constants_are_sane() {
        let d = DiskModel::COMMODITY;
        // The switch penalty should dominate a small cell write but not a
        // large sequential flush.
        assert!(d.switch_ns > 36 * d.write_byte_ns);
        assert!(d.switch_ns < 100_000 * d.write_byte_ns);
    }
}
