//! Per-node simulation state: virtual clock, disk head, counters.

use crate::config::{CpuCosts, DiskModel, NetModel, NodeSpec};
use crate::stats::NodeStats;

/// One simulated machine: a virtual clock plus the local disk state and
/// accounting counters. All costs are charged explicitly by the algorithms
/// through the methods here, from deterministic operation counts.
#[derive(Debug, Clone)]
pub struct SimNode {
    id: usize,
    spec: NodeSpec,
    disk: DiskModel,
    net: NetModel,
    cpu: CpuCosts,
    clock_ns: u64,
    /// The cuboid file the disk head last wrote to; switching files costs
    /// `disk.switch_ns` (the depth-first-writing penalty of Figure 3.6).
    last_file: Option<u64>,
    /// Running estimate of live memory on this node.
    mem_used: u64,
    /// Per-node statistics.
    pub stats: NodeStats,
}

impl SimNode {
    /// Creates a node at virtual time zero.
    pub fn new(id: usize, spec: NodeSpec, disk: DiskModel, net: NetModel, cpu: CpuCosts) -> Self {
        SimNode {
            id,
            spec,
            disk,
            net,
            cpu,
            clock_ns: 0,
            last_file: None,
            mem_used: 0,
            stats: NodeStats::default(),
        }
    }

    /// Node identifier (its rank in the cluster).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Hardware description.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// The CPU price table (reference-speed nanoseconds).
    pub fn cpu_costs(&self) -> CpuCosts {
        self.cpu
    }

    /// The interconnect model (for algorithms that need to price a
    /// transfer before deciding to make it).
    pub fn net_model(&self) -> NetModel {
        self.net
    }

    /// Current virtual time.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the clock unconditionally (used by [`crate::SimCluster`]).
    pub(crate) fn advance(&mut self, ns: u64) {
        self.clock_ns += ns;
    }

    /// Blocks until `t`: if the clock is behind, the gap counts as idle
    /// time (waiting on a message, a barrier, or the manager).
    pub fn wait_until(&mut self, t: u64) {
        if t > self.clock_ns {
            self.stats.idle_ns += t - self.clock_ns;
            self.clock_ns = t;
        }
    }

    /// Charges CPU work quoted in reference-node nanoseconds; slower nodes
    /// take proportionally longer.
    pub fn charge_cpu(&mut self, reference_ns: u64) {
        let t = (reference_ns as f64 * self.spec.cpu_scale()).round() as u64;
        self.clock_ns += t;
        self.stats.cpu_ns += t;
    }

    /// Charges the scan of `tuples` rows from memory.
    pub fn charge_scan(&mut self, tuples: u64) {
        self.charge_cpu(tuples * self.cpu.tuple_scan_ns);
    }

    /// Charges moving `tuples` rows (partitioning, counting sort).
    pub fn charge_moves(&mut self, tuples: u64) {
        self.charge_cpu(tuples * self.cpu.tuple_move_ns);
    }

    /// Charges `n` key-element comparisons (sorting, skip-list search).
    pub fn charge_comparisons(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.cmp_ns);
    }

    /// Charges `n` in-place aggregate updates.
    pub fn charge_agg_updates(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.agg_update_ns);
    }

    /// Charges `n` hash-table probes.
    pub fn charge_hash_probes(&mut self, n: u64) {
        self.charge_cpu(n * self.cpu.hash_probe_ns);
    }

    /// Charges fixed per-task setup overhead.
    pub fn charge_task_overhead(&mut self) {
        self.charge_cpu(self.cpu.task_overhead_ns);
        self.stats.tasks += 1;
    }

    /// Writes `bytes` of cells to the output file identified by `file`
    /// (one file per cuboid, as the paper's implementations keep). A write
    /// to a different file than the previous one pays the switch penalty —
    /// this single rule reproduces the depth- vs breadth-first writing gap.
    pub fn write_cells(&mut self, file: u64, bytes: u64, cells: u64) {
        let mut t = bytes * self.disk.write_byte_ns;
        if self.last_file != Some(file) {
            t += self.disk.switch_ns;
            self.stats.file_switches += 1;
            self.last_file = Some(file);
        }
        self.clock_ns += t;
        self.stats.disk_write_ns += t;
        self.stats.bytes_written += bytes;
        self.stats.cells_written += cells;
        self.charge_cpu(cells * self.cpu.cell_emit_ns);
    }

    /// Reads `bytes` sequentially from local disk.
    pub fn read_bytes(&mut self, bytes: u64) {
        let t = bytes * self.disk.read_byte_ns;
        self.clock_ns += t;
        self.stats.disk_read_ns += t;
        self.stats.bytes_read += bytes;
    }

    /// Charges time spent waiting on / driving a network transfer this
    /// node requested (the requester side of a chunk fetch).
    pub fn charge_net(&mut self, ns: u64) {
        self.clock_ns += ns;
        self.stats.net_ns += ns;
    }

    /// Charges one manager/worker RPC round trip (request + reply).
    pub fn charge_rpc(&mut self) {
        let t = 2 * self.net.rpc_ns();
        self.clock_ns += t;
        self.stats.net_ns += t;
        self.stats.messages += 2;
    }

    /// Notes an allocation of `bytes`, tracking the peak for the memory
    /// figures and for the hash-tree algorithm's out-of-memory failure.
    pub fn alloc(&mut self, bytes: u64) {
        self.mem_used += bytes;
        self.stats.peak_mem_bytes = self.stats.peak_mem_bytes.max(self.mem_used);
    }

    /// Notes that `bytes` were released.
    pub fn free(&mut self, bytes: u64) {
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Live memory estimate.
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// True when an allocation of `bytes` more would exceed the node's
    /// physical memory.
    pub fn would_exceed_memory(&self, bytes: u64) -> bool {
        self.mem_used + bytes > self.spec.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, DiskModel};

    fn node() -> SimNode {
        let c = ClusterConfig::fast_ethernet(1);
        SimNode::new(0, c.nodes[0], c.disk, c.net, c.cpu)
    }

    #[test]
    fn cpu_charges_scale_with_clock_speed() {
        let c = ClusterConfig::fast_ethernet(1);
        let mut fast = SimNode::new(0, NodeSpec::FAST, c.disk, c.net, c.cpu);
        let mut slow = SimNode::new(1, NodeSpec::SLOW, c.disk, c.net, c.cpu);
        fast.charge_cpu(1_000_000);
        slow.charge_cpu(1_000_000);
        let ratio = slow.clock_ns() as f64 / fast.clock_ns() as f64;
        assert!((ratio - 500.0 / 266.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn file_switches_cost_a_seek() {
        let mut n = node();
        n.write_cells(1, 100, 1);
        let one_switch = n.stats.file_switches;
        n.write_cells(1, 100, 1); // same file: sequential
        assert_eq!(n.stats.file_switches, one_switch);
        n.write_cells(2, 100, 1); // different file: seek
        n.write_cells(1, 100, 1); // back again: seek
        assert_eq!(n.stats.file_switches, 3);
        assert_eq!(n.stats.cells_written, 4);
        assert_eq!(n.stats.bytes_written, 400);
    }

    #[test]
    fn scattered_writes_cost_more_than_sequential() {
        let mut scattered = node();
        let mut sequential = node();
        for i in 0..100u64 {
            scattered.write_cells(i % 7, 36, 1);
            sequential.write_cells(0, 36, 1);
        }
        assert!(scattered.stats.disk_write_ns > 3 * sequential.stats.disk_write_ns);
    }

    #[test]
    fn wait_until_accrues_idle_and_never_rewinds() {
        let mut n = node();
        n.charge_cpu(500);
        let t = n.clock_ns();
        n.wait_until(t + 1000);
        assert_eq!(n.stats.idle_ns, 1000);
        n.wait_until(0);
        assert_eq!(n.clock_ns(), t + 1000);
    }

    #[test]
    fn memory_tracking_peaks_and_frees() {
        let mut n = node();
        n.alloc(1000);
        n.alloc(2000);
        n.free(2500);
        n.alloc(100);
        assert_eq!(n.mem_used(), 600);
        assert_eq!(n.stats.peak_mem_bytes, 3000);
        assert!(!n.would_exceed_memory(1024));
        assert!(n.would_exceed_memory(u64::MAX / 2));
    }

    #[test]
    fn disk_model_constants_are_sane() {
        let d = DiskModel::COMMODITY;
        // The switch penalty should dominate a small cell write but not a
        // large sequential flush.
        assert!(d.switch_ns > 36 * d.write_byte_ns);
        assert!(d.switch_ns < 100_000 * d.write_byte_ns);
    }
}
