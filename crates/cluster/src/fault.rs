//! Deterministic fault injection for the simulated cluster.
//!
//! The paper's MPI testbed silently assumes all sixteen PCs survive a
//! run. A [`FaultPlan`] removes that assumption *reproducibly*: crashes
//! fire at fixed virtual times, transient slowdowns inflate work inside
//! fixed virtual-time windows, and message drops/delays are decided by a
//! seeded hash of the message index — so a faulty run is exactly as
//! bit-for-bit repeatable as a fault-free one.
//!
//! The model (documented in `DESIGN.md` §2):
//!
//! * **Crash** — a *process* crash at a virtual instant. The node's
//!   clock freezes there, every later charge is a no-op, and the task it
//!   was executing is lost; cuboids it finished *before* the crash are
//!   durable (they were flushed to disk / collected by the manager).
//!   The manager itself is assumed to survive (or fail over instantly),
//!   as in any primary-backup manager deployment; faults kill workers.
//! * **Slowdown** — work started inside `[from_ns, until_ns)` costs
//!   `factor_pct`% of its nominal time (a straggler: thermal throttling,
//!   a co-tenant, a failing disk).
//! * **Message faults** — each transfer attempt may be dropped (sender
//!   retransmits after a timeout, up to [`RecoveryPolicy::max_retries`],
//!   after which delivery is forced) or delayed. Faults only ever cost
//!   *time*; payloads are never corrupted and the final retry always
//!   delivers, so the computed cube cannot change — only the schedule
//!   and the makespan do. The seeded chaos suite proves exactly that.
//!
//! Everything is integer arithmetic so plans derive `Eq` and runs stay
//! deterministic across platforms.

/// A node crash at a fixed virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The node that dies.
    pub node: usize,
    /// Virtual time of death: the node's clock can never pass this.
    pub at_ns: u64,
}

/// A transient slowdown window on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slowdown {
    /// The straggling node.
    pub node: usize,
    /// Window start (inclusive).
    pub from_ns: u64,
    /// Window end (exclusive).
    pub until_ns: u64,
    /// Cost multiplier in percent; 300 means work takes 3× as long.
    /// Values below 100 are treated as 100 (no speed-ups).
    pub factor_pct: u32,
}

/// Seeded message-fault rates, applied per transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetFaults {
    /// Probability a transfer attempt is dropped, in per-mille.
    pub drop_per_mille: u32,
    /// Probability a delivered message is delayed, in per-mille.
    pub delay_per_mille: u32,
    /// Extra latency a delayed message suffers.
    pub delay_ns: u64,
}

/// How the self-healing scheduler reacts to failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Virtual time between a worker's death and the manager noticing
    /// (missed heartbeats); a lost task cannot be reassigned earlier.
    pub detect_timeout_ns: u64,
    /// Sender-side ack timeout before a dropped message is retransmitted.
    pub retry_backoff_ns: u64,
    /// Retransmissions allowed per message; the attempt after the last
    /// retry always delivers, so drops cost time but never data.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            // ≈25 fast-Ethernet RPC round trips: long enough that the
            // manager never declares a slow worker dead by mistake.
            detect_timeout_ns: 5_000_000,
            retry_backoff_ns: 400_000,
            max_retries: 3,
        }
    }
}

/// The fate of one message-transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFate {
    /// Arrives normally.
    Deliver,
    /// Arrives late by the given extra nanoseconds.
    Delay(u64),
    /// Lost; the sender times out and retransmits.
    Drop,
}

/// A complete, seeded fault schedule for one run.
///
/// An empty (default) plan is *quiet*: every charge and transfer behaves
/// exactly as it did before fault injection existed, bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for message-fault decisions.
    pub seed: u64,
    /// Scheduled node crashes.
    pub crashes: Vec<Crash>,
    /// Scheduled slowdown windows.
    pub slowdowns: Vec<Slowdown>,
    /// Message drop/delay rates.
    pub net: NetFaults,
    /// Detection and retry parameters.
    pub policy: RecoveryPolicy,
}

impl FaultPlan {
    /// The quiet plan: no faults, classic behaviour.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing (the fast path taken by every
    /// pre-existing caller).
    pub fn is_quiet(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty() && !self.has_net_faults()
    }

    /// True when message faults are possible.
    pub fn has_net_faults(&self) -> bool {
        self.net.drop_per_mille > 0 || self.net.delay_per_mille > 0
    }

    /// Adds a crash (builder style).
    #[must_use]
    pub fn crash(mut self, node: usize, at_ns: u64) -> Self {
        self.crashes.push(Crash { node, at_ns });
        self
    }

    /// Adds a slowdown window (builder style).
    #[must_use]
    pub fn slow(mut self, node: usize, from_ns: u64, until_ns: u64, factor_pct: u32) -> Self {
        self.slowdowns.push(Slowdown {
            node,
            from_ns,
            until_ns,
            factor_pct,
        });
        self
    }

    /// Sets message-fault rates (builder style).
    #[must_use]
    pub fn net(mut self, net: NetFaults) -> Self {
        self.net = net;
        self
    }

    /// Sets the recovery policy (builder style).
    #[must_use]
    pub fn policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Generates a moderate-severity plan from a seed, for a cluster of
    /// `nodes` whose fault-free run lasts about `horizon_ns`.
    ///
    /// Equivalent to [`FaultPlan::seeded_severity`] at 100%.
    pub fn seeded(seed: u64, nodes: usize, horizon_ns: u64) -> Self {
        Self::seeded_severity(seed, nodes, horizon_ns, 100)
    }

    /// Generates a plan from a seed, scaled by `severity_pct` (0 = quiet,
    /// 100 = moderate, 200 = harsh).
    ///
    /// Crashes are capped at `nodes - 1` so at least one worker always
    /// survives to finish the cube; crash times fall inside the run's
    /// expected span so they actually fire. Same inputs → identical plan.
    pub fn seeded_severity(seed: u64, nodes: usize, horizon_ns: u64, severity_pct: u32) -> Self {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        if severity_pct == 0 || nodes == 0 || horizon_ns == 0 {
            return plan;
        }
        let mut stream = seed ^ 0x1ceb_0000_dead_beef;
        let mut next = move || {
            stream = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(stream)
        };
        let sev = severity_pct as u64;

        // Crashes: roughly sev% of (2/5 of the cluster), at least one,
        // never the whole cluster. Victims are a seeded partial shuffle.
        let max_crashes = nodes.saturating_sub(1);
        let want = ((nodes as u64 * sev).div_ceil(250) as usize).max(1);
        let crashes = want.min(max_crashes);
        let mut roster: Vec<usize> = (0..nodes).collect();
        for v in 0..crashes {
            let pick = v + (next() as usize % (nodes - v));
            roster.swap(v, pick);
            // Most crashes land mid-run; the span reaches past the quiet
            // horizon because recovery itself extends the run.
            let at_ns = horizon_ns / 8 + next() % horizon_ns;
            plan.crashes.push(Crash {
                node: roster[v],
                at_ns,
            });
        }

        // Slowdowns: each node independently straggles with probability
        // ~30%·sev, for a window of 1/16..5/16 of the horizon.
        for node in 0..nodes {
            if next() % 1000 < (300 * sev / 100).min(1000) {
                let from_ns = next() % (horizon_ns / 2).max(1);
                let len = horizon_ns / 16 + next() % (horizon_ns / 4).max(1);
                let factor_pct = 150 + (next() % 251) as u32; // 150..=400
                plan.slowdowns.push(Slowdown {
                    node,
                    from_ns,
                    until_ns: from_ns + len,
                    factor_pct,
                });
            }
        }

        // Message faults: a few percent of attempts dropped, a few more
        // delayed by a latency-scale bump.
        plan.net = NetFaults {
            drop_per_mille: ((30 * sev / 100) as u32).min(500),
            delay_per_mille: ((60 * sev / 100) as u32).min(500),
            delay_ns: (horizon_ns / 2000).clamp(50_000, 2_000_000),
        };
        plan
    }

    /// The earliest scheduled crash time for `node`, if any.
    pub fn crash_time(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at_ns)
            .min()
    }

    /// The slowdown windows affecting `node`.
    pub fn slowdowns_for(&self, node: usize) -> Vec<Slowdown> {
        self.slowdowns
            .iter()
            .filter(|s| s.node == node)
            .copied()
            .collect()
    }

    /// Decides the fate of one transfer attempt, identified by the
    /// sender, the receiver and the sender's running message index. The
    /// decision is a pure seeded hash: same message, same fate, always.
    pub fn net_fate(&self, from: usize, to: usize, msg_index: u64) -> NetFate {
        if !self.has_net_faults() {
            return NetFate::Deliver;
        }
        let h = splitmix64(
            self.seed
                ^ (from as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (to as u64).rotate_left(32)
                ^ msg_index.wrapping_mul(0xbf58_476d_1ce4_e5b9),
        );
        let roll = (h % 1000) as u32;
        if roll < self.net.drop_per_mille {
            NetFate::Drop
        } else if roll < self.net.drop_per_mille + self.net.delay_per_mille {
            NetFate::Delay(self.net.delay_ns)
        } else {
            NetFate::Deliver
        }
    }
}

/// The splitmix64 finalizer: the one mixing primitive every seeded fault
/// decision goes through (no external RNG dependency, fully portable).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::none().is_quiet());
        assert!(!FaultPlan::none().crash(1, 50).is_quiet());
        assert_eq!(FaultPlan::none().net_fate(0, 1, 7), NetFate::Deliver);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::seeded(7, 8, 1_000_000_000);
        let b = FaultPlan::seeded(7, 8, 1_000_000_000);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 8, 1_000_000_000);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn seeded_plans_spare_at_least_one_node() {
        for seed in 0..50 {
            for nodes in [1usize, 2, 3, 8, 16] {
                let plan = FaultPlan::seeded_severity(seed, nodes, 500_000_000, 200);
                let mut victims: Vec<usize> = plan.crashes.iter().map(|c| c.node).collect();
                victims.sort_unstable();
                victims.dedup();
                assert!(
                    victims.len() < nodes.max(1),
                    "seed {seed}: all {nodes} nodes crash"
                );
                assert!(victims.iter().all(|&v| v < nodes));
            }
        }
    }

    #[test]
    fn seeded_plans_inject_something() {
        let plan = FaultPlan::seeded(3, 8, 1_000_000_000);
        assert!(!plan.is_quiet());
        assert!(!plan.crashes.is_empty());
        assert!(plan.has_net_faults());
    }

    #[test]
    fn net_fate_is_deterministic_and_roughly_at_rate() {
        let plan = FaultPlan::none().net(NetFaults {
            drop_per_mille: 100,
            delay_per_mille: 100,
            delay_ns: 1000,
        });
        let mut drops = 0;
        let mut delays = 0;
        for i in 0..10_000u64 {
            match plan.net_fate(0, 1, i) {
                NetFate::Drop => drops += 1,
                NetFate::Delay(ns) => {
                    assert_eq!(ns, 1000);
                    delays += 1;
                }
                NetFate::Deliver => {}
            }
            assert_eq!(plan.net_fate(0, 1, i), plan.net_fate(0, 1, i));
        }
        assert!((500..2000).contains(&drops), "drops {drops}");
        assert!((500..2000).contains(&delays), "delays {delays}");
    }

    #[test]
    fn crash_time_takes_the_earliest() {
        let plan = FaultPlan::none().crash(2, 900).crash(2, 400).crash(1, 10);
        assert_eq!(plan.crash_time(2), Some(400));
        assert_eq!(plan.crash_time(1), Some(10));
        assert_eq!(plan.crash_time(0), None);
    }

    #[test]
    fn severity_zero_is_quiet() {
        assert!(FaultPlan::seeded_severity(9, 8, 1_000_000, 0).is_quiet());
    }
}
