//! Cluster configurations and cost models.
//!
//! The constants here calibrate the simulator to hardware of the paper's
//! era (2001): 500 MHz PIII / 266 MHz PII nodes, commodity IDE disks,
//! 100 Mbit switched Ethernet, and Myrinet as the fast interconnect
//! (the paper measures it ≈3× faster than its Ethernet). Absolute values
//! only set the time scale; the figures' *shapes* depend on the ratios.

/// Reference clock rate: CPU costs are quoted in nanoseconds on a 500 MHz
/// node and scaled by `500 / mhz` for slower nodes.
pub const REFERENCE_MHZ: u32 = 500;

/// One machine in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// CPU clock in MHz (500 for the paper's fast nodes, 266 for the slow).
    pub mhz: u32,
    /// Main memory in megabytes (256 fast / 128 slow in the paper). The
    /// hash-tree algorithm's failure mode is running out of this.
    pub mem_mb: u32,
}

impl NodeSpec {
    /// The paper's fast node: 500 MHz PIII, 256 MB.
    pub const FAST: NodeSpec = NodeSpec {
        mhz: 500,
        mem_mb: 256,
    };
    /// The paper's slow node: 266 MHz PII, 128 MB.
    pub const SLOW: NodeSpec = NodeSpec {
        mhz: 266,
        mem_mb: 128,
    };

    /// Multiplier applied to reference CPU costs on this node.
    pub fn cpu_scale(&self) -> f64 {
        REFERENCE_MHZ as f64 / self.mhz as f64
    }

    /// Memory budget in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_mb as u64 * 1024 * 1024
    }
}

/// Local-disk cost model.
///
/// `switch_ns` is charged whenever consecutive writes hit *different*
/// cuboid output files — the scattered-write penalty that makes depth-first
/// writing (BUC/RP) pay roughly 5× the I/O of breadth-first writing (BPP)
/// in Figure 3.6. Sequential bytes are charged at `write_byte_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Cost of redirecting the write stream to another file.
    pub switch_ns: u64,
    /// Per-byte sequential write cost.
    pub write_byte_ns: u64,
    /// Per-byte sequential read cost.
    pub read_byte_ns: u64,
}

impl DiskModel {
    /// Commodity year-2001 IDE disk: ≈20 MB/s writes, ≈30 MB/s reads,
    /// 10 µs effective penalty per redirected (buffered) small write.
    pub const COMMODITY: DiskModel = DiskModel {
        switch_ns: 10_000,
        write_byte_ns: 50,
        read_byte_ns: 33,
    };
}

/// Interconnect cost model: a message of `b` bytes takes
/// `latency_ns + b * byte_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// One-way message latency.
    pub latency_ns: u64,
    /// Per-byte transfer cost.
    pub byte_ns: u64,
}

impl NetModel {
    /// 100 Mbit switched Ethernet with MPI/TCP overheads: 12.5 MB/s,
    /// ≈100 µs latency.
    pub const FAST_ETHERNET: NetModel = NetModel {
        latency_ns: 100_000,
        byte_ns: 80,
    };
    /// Myrinet, which the paper measures as roughly 3× faster than its
    /// Ethernet.
    pub const MYRINET: NetModel = NetModel {
        latency_ns: 30_000,
        byte_ns: 27,
    };

    /// Wire size of one control message (an RPC request or reply).
    pub const RPC_MSG_BYTES: u64 = 64;

    /// Cost of moving `bytes` across the interconnect.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + bytes * self.byte_ns
    }

    /// Cost of a small control message (manager/worker RPC).
    pub fn rpc_ns(&self) -> u64 {
        self.transfer_ns(Self::RPC_MSG_BYTES)
    }
}

/// Per-operation CPU prices, in nanoseconds on the reference 500 MHz node.
///
/// Algorithms report deterministic operation counts; these constants turn
/// them into virtual time. The ratios (a hash probe costs more than an
/// array move; a skip-list comparison is per key element) are what drive
/// the crossovers in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCosts {
    /// Reading one tuple during a scan.
    pub tuple_scan_ns: u64,
    /// Moving one tuple during partitioning / counting sort.
    pub tuple_move_ns: u64,
    /// One key-element (u32) comparison during sorting or skip-list search.
    pub cmp_ns: u64,
    /// Updating an aggregate (count+sum+min+max) in place.
    pub agg_update_ns: u64,
    /// Hashing + probing one bucket in a hash table.
    pub hash_probe_ns: u64,
    /// Fixed overhead per output cell (formatting, bookkeeping).
    pub cell_emit_ns: u64,
    /// Fixed overhead per task (setup, allocation).
    pub task_overhead_ns: u64,
}

impl CpuCosts {
    /// Calibration for a 500 MHz PIII (≈2 cycles/ns): memory-bound
    /// operations cost tens of ns, branchy probe operations more.
    pub const PIII_500: CpuCosts = CpuCosts {
        tuple_scan_ns: 20,
        tuple_move_ns: 30,
        cmp_ns: 8,
        agg_update_ns: 12,
        hash_probe_ns: 60,
        cell_emit_ns: 40,
        task_overhead_ns: 200_000,
    };
}

/// A full cluster description: node roster plus the three cost models.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// The machines, in node-id order.
    pub nodes: Vec<NodeSpec>,
    /// Local disk model (identical disks on every node, as in the paper).
    pub disk: DiskModel,
    /// Interconnect model.
    pub net: NetModel,
    /// CPU operation prices.
    pub cpu: CpuCosts,
    /// Seed for any randomized structure the algorithms build (skip-list
    /// levels, sampling); combined with node ids for per-node streams.
    pub seed: u64,
    /// Fault schedule for the run; [`FaultPlan::none`] (the default from
    /// every preset) reproduces fault-free behaviour bit for bit.
    pub faults: crate::fault::FaultPlan,
    /// When true, every node records a virtual-time event trace (task
    /// spans, messages, faults, phases) into a per-node buffer, drained
    /// via [`crate::SimCluster::take_trace`]. Tracing charges nothing and
    /// changes no counter, so it never perturbs a run; presets default to
    /// `false`, which skips recording entirely.
    pub trace: bool,
}

impl ClusterConfig {
    fn uniform(n: usize, spec: NodeSpec, net: NetModel) -> Self {
        // check:allow(panic-path): a zero-node cluster is a configuration
        // bug at startup, not runtime input.
        assert!(n > 0, "a cluster needs at least one node");
        ClusterConfig {
            nodes: vec![spec; n],
            disk: DiskModel::COMMODITY,
            net,
            cpu: CpuCosts::PIII_500,
            seed: 0x1ceb_c0de,
            faults: crate::fault::FaultPlan::none(),
            trace: false,
        }
    }

    /// Attaches a fault schedule (builder style).
    #[must_use]
    pub fn with_faults(mut self, faults: crate::fault::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables virtual-time event tracing (builder style).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// `n` fast nodes on Ethernet — the paper's *Cluster1* and the
    /// baseline for Chapter 4.
    pub fn fast_ethernet(n: usize) -> Self {
        Self::uniform(n, NodeSpec::FAST, NetModel::FAST_ETHERNET)
    }

    /// `n` slow nodes on Ethernet — the paper's *Cluster2*.
    pub fn slow_ethernet(n: usize) -> Self {
        Self::uniform(n, NodeSpec::SLOW, NetModel::FAST_ETHERNET)
    }

    /// `n` slow nodes on Myrinet — the paper's *Cluster3*.
    pub fn slow_myrinet(n: usize) -> Self {
        Self::uniform(n, NodeSpec::SLOW, NetModel::MYRINET)
    }

    /// The full heterogeneous testbed: eight fast plus eight slow nodes.
    pub fn heterogeneous_16() -> Self {
        let mut c = Self::fast_ethernet(8);
        c.nodes.extend(std::iter::repeat_n(NodeSpec::SLOW, 8));
        c
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the roster is empty (constructors prevent this).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_scale_matches_clock_ratio() {
        assert!((NodeSpec::FAST.cpu_scale() - 1.0).abs() < 1e-12);
        assert!((NodeSpec::SLOW.cpu_scale() - 500.0 / 266.0).abs() < 1e-12);
    }

    #[test]
    fn myrinet_is_about_three_times_faster() {
        // The paper: "Myrinet, which is approximately three times faster
        // than the Ethernet used in the first two clusters."
        let big = 1_000_000u64;
        let eth = NetModel::FAST_ETHERNET.transfer_ns(big) as f64;
        let myr = NetModel::MYRINET.transfer_ns(big) as f64;
        assert!((2.5..3.5).contains(&(eth / myr)), "ratio {}", eth / myr);
    }

    #[test]
    fn presets_have_expected_shapes() {
        assert_eq!(ClusterConfig::fast_ethernet(8).len(), 8);
        assert_eq!(ClusterConfig::heterogeneous_16().len(), 16);
        let het = ClusterConfig::heterogeneous_16();
        assert_eq!(het.nodes[0], NodeSpec::FAST);
        assert_eq!(het.nodes[15], NodeSpec::SLOW);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterConfig::fast_ethernet(0);
    }

    #[test]
    fn rpc_cost_is_latency_dominated() {
        let m = NetModel::FAST_ETHERNET;
        assert!(m.rpc_ns() < m.latency_ns * 2);
        assert!(m.rpc_ns() > m.latency_ns);
    }
}
