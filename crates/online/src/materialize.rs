//! Selective materialization (Section 5.1).
//!
//! When online queries may ask for a *lower* minimum support than any
//! precomputation assumed, the paper compares two plans for answering
//! them with ASL:
//!
//! 1. **Recompute**: run the iceberg query from the raw data;
//! 2. **Precompute the leaves**: materialize only the most detailed
//!    cuboid (the leaf of ASL's top-down traversal tree) at minimum
//!    support 1, then answer any group-by at any threshold by rolling it
//!    up — "ASL can make returns almost immediately; and interestingly,
//!    even the precomputation only took fifty seconds" versus sixty for
//!    the full cube.
//!
//! The roll-up uses the same two affinities as ASL: a prefix group-by is
//! one accumulate-runs scan of the materialized list; any other subset
//! builds a small skip list from the cells.

use icecube_cluster::SimNode;
use icecube_core::agg::Aggregate;
use icecube_core::cell::{Cell, CellSink};
use icecube_core::error::AlgoError;
use icecube_data::Relation;
use icecube_lattice::CuboidMask;
use icecube_skiplist::SkipList;

/// The precomputed most-detailed cuboid, held as a sorted skip list.
pub struct SelectiveMaterialization {
    dims: CuboidMask,
    arity: usize,
    list: SkipList<Aggregate>,
}

impl SelectiveMaterialization {
    /// Precomputes the `d`-dimensional cuboid at minimum support 1,
    /// charging the build to `node`.
    pub fn precompute(rel: &Relation, node: &mut SimNode, seed: u64) -> Result<Self, AlgoError> {
        if rel.is_empty() {
            return Err(AlgoError::EmptyInput);
        }
        let arity = rel.arity();
        let dims = CuboidMask::full(arity);
        let mut list = SkipList::with_capacity(arity, seed, rel.len());
        for (row, m) in rel.rows() {
            list.insert_or_update(row, || Aggregate::of(m), |a| a.update(m));
        }
        node.read_bytes(rel.byte_size());
        node.charge_scan(rel.len() as u64);
        node.charge_agg_updates(rel.len() as u64);
        node.charge_comparisons(list.take_comparisons());
        node.alloc(list.memory_bytes());
        Ok(SelectiveMaterialization { dims, arity, list })
    }

    /// The materialized cuboid's identity.
    pub fn dims(&self) -> CuboidMask {
        self.dims
    }

    /// Number of materialized cells.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when nothing was materialized (impossible after a successful
    /// precompute over non-empty data).
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Answers an online iceberg group-by from the materialized leaf,
    /// charging only the roll-up (not a raw-data scan). Cells stream to
    /// `sink` in sorted order for prefix group-bys, skip-list order
    /// otherwise.
    pub fn query<S: CellSink>(
        &self,
        group_by: CuboidMask,
        minsup: u64,
        node: &mut SimNode,
        sink: &mut S,
    ) -> Result<u64, AlgoError> {
        if group_by.max_dim().is_some_and(|m| m >= self.arity) {
            return Err(AlgoError::DimensionMismatch {
                query_dims: group_by.max_dim().unwrap_or(0) + 1,
                relation_dims: self.arity,
            });
        }
        let k = group_by.dim_count();
        if k == 0 {
            return Ok(0); // the "all" aggregate is kept separately
        }
        let mut emitted = 0u64;
        if group_by.is_prefix_of(self.dims) {
            // Prefix roll-up: one accumulate-runs scan.
            let mut run_key: Vec<u32> = Vec::new();
            let mut run_agg = Aggregate::empty();
            for (key, agg) in self.list.iter() {
                // check:allow(panic-path): every key in this list has the
                // arity of `self.dims`, and `k <= dim_count` is checked by
                // the caller; a short key is a list-construction bug.
                let prefix = &key[..k];
                if run_key.as_slice() != prefix {
                    if !run_key.is_empty() && run_agg.meets(minsup) {
                        sink.emit(group_by, &run_key, &run_agg);
                        emitted += 1;
                    }
                    run_key.clear();
                    run_key.extend_from_slice(prefix);
                    run_agg = Aggregate::empty();
                }
                run_agg.merge(agg);
            }
            if !run_key.is_empty() && run_agg.meets(minsup) {
                sink.emit(group_by, &run_key, &run_agg);
                emitted += 1;
            }
            node.charge_comparisons(self.list.len() as u64 * k as u64);
            node.charge_agg_updates(self.list.len() as u64);
        } else {
            // Subset roll-up: aggregate the cells through a fresh list.
            let positions: Vec<usize> = {
                let hdims = self.dims.dims();
                group_by
                    .dims()
                    .iter()
                    .map(|d| {
                        // check:allow(panic-in-lib): callers only
                        // materialize subset group-bys; a miss here is a
                        // bug in the roll-up planner, not user input.
                        // check:allow(panic-path): same planner contract.
                        hdims.iter().position(|h| h == d).expect("subset")
                    })
                    .collect()
            };
            let mut rolled: SkipList<Aggregate> = SkipList::new(k, 0x5e1ec7);
            let mut key = vec![0u32; k];
            for (hkey, agg) in self.list.iter() {
                for (slot, &p) in key.iter_mut().zip(&positions) {
                    // check:allow(panic-path): `positions` indexes the held
                    // list's own dimension order, bounded by its arity.
                    *slot = hkey[p];
                }
                rolled.insert_or_update(&key, || *agg, |a| a.merge(agg));
            }
            node.charge_scan(self.list.len() as u64);
            node.charge_agg_updates(self.list.len() as u64);
            node.charge_comparisons(rolled.take_comparisons());
            for (key, agg) in rolled.iter() {
                if agg.meets(minsup) {
                    sink.emit(group_by, key, agg);
                    emitted += 1;
                }
            }
        }
        if emitted > 0 {
            node.write_cells(
                group_by.bits() as u64,
                emitted * Cell::disk_bytes(k),
                emitted,
            );
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_core::cell::{sort_cells, CellBuf};
    use icecube_core::naive::naive_cuboid;
    use icecube_data::presets;

    fn setup() -> (Relation, SelectiveMaterialization, SimCluster) {
        let rel = presets::tiny(31).generate().unwrap();
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let m = SelectiveMaterialization::precompute(&rel, &mut cluster.nodes[0], 7).unwrap();
        (rel, m, cluster)
    }

    #[test]
    fn precompute_holds_the_leaf_cuboid() {
        let (rel, m, _) = setup();
        assert_eq!(m.dims(), CuboidMask::full(4));
        let mut want = Vec::new();
        naive_cuboid(&rel, CuboidMask::full(4), 1, &mut want);
        assert_eq!(m.len(), want.len());
    }

    #[test]
    fn any_group_by_any_threshold_matches_naive() {
        let (rel, m, mut cluster) = setup();
        for dims in [
            &[0usize][..],
            &[0, 1],
            &[1, 3],
            &[2],
            &[0, 1, 2, 3],
            &[1, 2, 3],
        ] {
            for minsup in [1u64, 2, 5] {
                let g = CuboidMask::from_dims(dims);
                let mut sink = CellBuf::collecting();
                m.query(g, minsup, &mut cluster.nodes[0], &mut sink)
                    .unwrap();
                let mut got = sink.into_cells();
                let mut want = Vec::new();
                naive_cuboid(&rel, g, minsup, &mut want);
                sort_cells(&mut got);
                sort_cells(&mut want);
                assert_eq!(got, want, "group-by {g} minsup {minsup}");
            }
        }
    }

    #[test]
    fn prefix_queries_are_cheaper_than_subset_queries() {
        let (_, m, mut cluster) = setup();
        let mut sink = CellBuf::counting();
        let before = cluster.nodes[0].stats.cpu_ns;
        m.query(
            CuboidMask::from_dims(&[0, 1]),
            1,
            &mut cluster.nodes[0],
            &mut sink,
        )
        .unwrap();
        let prefix_cost = cluster.nodes[0].stats.cpu_ns - before;
        let before = cluster.nodes[0].stats.cpu_ns;
        m.query(
            CuboidMask::from_dims(&[1, 2]),
            1,
            &mut cluster.nodes[0],
            &mut sink,
        )
        .unwrap();
        let subset_cost = cluster.nodes[0].stats.cpu_ns - before;
        assert!(
            prefix_cost < subset_cost,
            "prefix {prefix_cost} vs subset {subset_cost}"
        );
    }

    #[test]
    fn online_stage_is_cheaper_than_recompute() {
        // The Section 5.1 comparison: answering from the materialized leaf
        // must beat re-running the query over the raw data.
        let rel = presets::tiny(33).generate().unwrap();
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let m = SelectiveMaterialization::precompute(&rel, &mut cluster.nodes[0], 7).unwrap();
        let g = CuboidMask::from_dims(&[0, 1]);
        let t0 = cluster.nodes[0].clock_ns();
        let mut sink = CellBuf::counting();
        m.query(g, 2, &mut cluster.nodes[0], &mut sink).unwrap();
        let online_cost = cluster.nodes[0].clock_ns() - t0;

        // Recompute from scratch on the second (fresh) node.
        let t0 = cluster.nodes[1].clock_ns();
        let node = &mut cluster.nodes[1];
        node.read_bytes(rel.byte_size());
        node.charge_scan(rel.len() as u64);
        let mut list: SkipList<Aggregate> = SkipList::new(2, 3);
        let mut key = vec![0u32; 2];
        for (row, mm) in rel.rows() {
            g.project_row(row, &mut key);
            list.insert_or_update(&key, || Aggregate::of(mm), |a| a.update(mm));
        }
        node.charge_agg_updates(rel.len() as u64);
        node.charge_comparisons(list.take_comparisons());
        let recompute_cost = cluster.nodes[1].clock_ns() - t0;
        assert!(
            online_cost < recompute_cost,
            "online {online_cost} vs recompute {recompute_cost}"
        );
    }

    #[test]
    fn rejects_out_of_range_group_bys() {
        let (_, m, mut cluster) = setup();
        let mut sink = CellBuf::counting();
        let err = m
            .query(
                CuboidMask::from_dims(&[7]),
                1,
                &mut cluster.nodes[0],
                &mut sink,
            )
            .unwrap_err();
        assert!(matches!(err, AlgoError::DimensionMismatch { .. }));
    }

    #[test]
    fn all_group_by_is_out_of_scope() {
        let (_, m, mut cluster) = setup();
        let mut sink = CellBuf::counting();
        let emitted = m
            .query(CuboidMask::ALL, 1, &mut cluster.nodes[0], &mut sink)
            .unwrap();
        assert_eq!(emitted, 0);
    }
}
