//! Skip-list partitioning: boundary keys from an initial sample
//! (Section 5.3.1).
//!
//! POL splits the *result* key space across processors so that each node
//! owns one contiguous range of the final skip list. The manager "takes a
//! sample, and determines the boundaries of skip list partitions assigned
//! to each processor" (Figure 5.2, line 5); thereafter a tuple's owner is
//! found by binary search over the boundary keys.

use icecube_lattice::CuboidMask;
use rand::Rng;

/// The `n − 1` sorted split keys dividing the key space into `n` ranges.
///
/// Range `j` owns keys `k` with `boundaries[j-1] <= k < boundaries[j]`
/// (ends open as appropriate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Boundaries {
    splits: Vec<Vec<u32>>,
    parts: usize,
}

impl Boundaries {
    /// Derives boundaries for `parts` ranges from a sample of projected
    /// keys. The sample is sorted and split at even quantiles; duplicate
    /// split keys collapse (skew can leave some ranges empty, which is the
    /// load-imbalance risk the paper notes for POL).
    pub fn from_sample(mut sample: Vec<Vec<u32>>, parts: usize) -> Self {
        // check:allow(panic-in-lib): constructor contract — zero
        // partitions is a configuration bug, not runtime input.
        // check:allow(panic-path): same constructor contract.
        assert!(parts > 0, "need at least one partition");
        sample.sort_unstable();
        let mut splits = Vec::with_capacity(parts.saturating_sub(1));
        if !sample.is_empty() {
            for j in 1..parts {
                let pos = j * sample.len() / parts;
                if let Some(key) = sample.get(pos.min(sample.len() - 1)) {
                    if splits.last() != Some(key) {
                        splits.push(key.clone());
                    }
                }
            }
        }
        Boundaries { splits, parts }
    }

    /// Samples `k` rows of `rel` projected on `dims` and derives boundaries.
    pub fn sample_relation<R: Rng>(
        rel: &icecube_data::Relation,
        dims: CuboidMask,
        parts: usize,
        k: usize,
        rng: &mut R,
    ) -> Self {
        let sample_rel = rel.sample(k, rng);
        let mut keys = Vec::with_capacity(sample_rel.len());
        let mut key = vec![0u32; dims.dim_count()];
        for (row, _) in sample_rel.rows() {
            dims.project_row(row, &mut key);
            keys.push(key.clone());
        }
        Boundaries::from_sample(keys, parts)
    }

    /// Number of ranges.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The surviving split keys, strictly increasing. Duplicate-quantile
    /// collapse can leave fewer than `parts - 1` of them; the reachable
    /// owners are then exactly `0..=splits.len()`.
    pub fn splits(&self) -> &[Vec<u32>] {
        &self.splits
    }

    /// The range (processor) owning `key`.
    pub fn owner(&self, key: &[u32]) -> usize {
        // partition_point gives the count of splits <= key; keys equal to a
        // split belong to the right-hand range.
        self.splits
            .partition_point(|s| s.as_slice() <= key)
            .min(self.parts - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        /// Keys straddling each *surviving* split reach exactly the
        /// owners the split separates: the split key itself belongs to
        /// the right-hand range, the previous split (or the zero key,
        /// when one exists below the first split) to the left-hand one.
        /// This pins the duplicate-collapse path: after collapse the
        /// reachable owners are exactly `0..=splits.len()`, never a gap
        /// and never `parts` or beyond.
        #[test]
        fn survivors_separate_adjacent_owners(
            sample in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 2), 1..120),
            parts in 1usize..8,
        ) {
            let b = Boundaries::from_sample(sample, parts);
            let splits = b.splits();
            prop_assert!(splits.len() < parts.max(2), "at most parts-1 splits");
            for w in splits.windows(2) {
                prop_assert!(w[0] < w[1], "splits must strictly increase");
            }
            let mut reached = std::collections::BTreeSet::new();
            for (i, s) in splits.iter().enumerate() {
                // At/above the split: the right-hand range.
                prop_assert_eq!(b.owner(s), i + 1);
                reached.insert(i + 1);
                // Just below the split: the left-hand range, witnessed by
                // the previous split or by the zero key if one fits.
                if i > 0 {
                    prop_assert_eq!(b.owner(&splits[i - 1]), i);
                } else if *s > vec![0u32, 0u32] {
                    prop_assert_eq!(b.owner(&[0, 0]), 0);
                    reached.insert(0);
                }
            }
            // Exactly the owners 0..=splits.len() are reachable, no gap.
            let all: std::collections::BTreeSet<usize> = (0..=splits.len()).collect();
            prop_assert!(reached.is_subset(&all));
            if splits.first().is_some_and(|s| *s > vec![0u32, 0u32]) {
                prop_assert_eq!(reached, all);
            }
            // And no key anywhere can escape the reachable set.
            for a in 0..6u32 {
                for c in 0..6u32 {
                    prop_assert!(b.owner(&[a, c]) <= splits.len());
                }
            }
        }
    }

    #[test]
    fn even_sample_splits_evenly() {
        let sample: Vec<Vec<u32>> = (0..100u32).map(|k| vec![k]).collect();
        let b = Boundaries::from_sample(sample, 4);
        assert_eq!(b.parts(), 4);
        assert_eq!(b.owner(&[0]), 0);
        assert_eq!(b.owner(&[24]), 0);
        assert_eq!(b.owner(&[25]), 1);
        assert_eq!(b.owner(&[99]), 3);
        assert_eq!(b.owner(&[1000]), 3);
    }

    #[test]
    fn owner_is_monotone_in_key() {
        let sample: Vec<Vec<u32>> = (0..200u32).map(|k| vec![k % 17, k % 5]).collect();
        let b = Boundaries::from_sample(sample, 5);
        let mut prev = 0usize;
        for a in 0..17u32 {
            for c in 0..5u32 {
                let o = b.owner(&[a, c]);
                assert!(o >= prev || a == 0, "owner must not decrease");
                prev = o;
            }
        }
    }

    #[test]
    fn single_partition_owns_everything() {
        let b = Boundaries::from_sample(vec![vec![5], vec![9]], 1);
        assert_eq!(b.owner(&[0]), 0);
        assert_eq!(b.owner(&[100]), 0);
    }

    #[test]
    fn empty_sample_degenerates_gracefully() {
        let b = Boundaries::from_sample(Vec::new(), 4);
        // Everything lands in range 0 — legal, just unbalanced.
        assert_eq!(b.owner(&[42]), 0);
    }

    #[test]
    fn heavy_duplicates_collapse_splits() {
        let sample: Vec<Vec<u32>> = std::iter::repeat_n(vec![7u32], 50).collect();
        let b = Boundaries::from_sample(sample, 4);
        // One distinct key: at most one split survives.
        assert!(b.owner(&[6]) <= 1);
        assert_eq!(b.owner(&[7]), b.owner(&[8]));
    }

    #[test]
    fn sampling_a_relation_covers_all_parts() {
        let rel = icecube_data::presets::tiny(3).generate().unwrap();
        let dims = CuboidMask::from_dims(&[0, 1]);
        let mut rng = SmallRng::seed_from_u64(1);
        let b = Boundaries::sample_relation(&rel, dims, 3, 64, &mut rng);
        let mut seen = std::collections::HashSet::new();
        let mut key = vec![0u32; 2];
        for (row, _) in rel.rows() {
            dims.project_row(row, &mut key);
            seen.insert(b.owner(&key));
        }
        assert!(seen.len() >= 2, "expected multiple owners, got {seen:?}");
    }
}
