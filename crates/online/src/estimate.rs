//! Estimator arithmetic shared by POL snapshots and progressive serving:
//! exact integer threshold scaling, linear extrapolation, and the
//! deterministic bound algebra of DESIGN §14.
//!
//! Everything here is integer-only. The original POL snapshot scaled the
//! support threshold in `f64` (`(minsup as f64 * fraction).round()`),
//! which rounds to nearest and inherits platform-dependent FP behaviour;
//! [`scaled_threshold`] replaces it with exact ceiling
//! division so snapshots are bit-stable anywhere and *conservative*: a
//! group that would qualify at full support can be reported early, but
//! scaling never manufactures a qualifying group the data seen so far
//! does not support at the pro-rated threshold.

use icecube_core::agg::Aggregate;
use icecube_core::progressive::Envelope;

/// The support threshold pro-rated to the fraction of data processed:
/// `ceil(minsup * processed / total)`, floored at 1.
///
/// Ceiling (not `round`) keeps the scaled threshold a *valid* pro-rating:
/// a group meeting it has support at least `minsup * processed / total`,
/// the exact share of `minsup` the processed prefix represents. At
/// `processed == total` this is exactly `minsup`, so the final snapshot
/// always agrees with the exact answer's predicate. The f64 version this
/// replaces rounded to nearest — e.g. `minsup = 9` at a quarter processed
/// rounds `2.25` down to `2`, admitting groups below the pro-rated
/// support.
pub fn scaled_threshold(minsup: u64, processed: u64, total: u64) -> u64 {
    if total == 0 {
        return minsup.max(1);
    }
    let scaled = (minsup as u128 * processed as u128).div_ceil(total as u128);
    (scaled.min(u64::MAX as u128) as u64).max(1)
}

/// Linear extrapolation of a partial count to the full relation:
/// `partial * total / processed` (0 before any data arrives).
pub fn scaled_count(partial: u64, processed: u64, total: u64) -> u64 {
    if processed == 0 {
        return 0;
    }
    let scaled = partial as u128 * total as u128 / processed as u128;
    scaled.min(u64::MAX as u128) as u64
}

/// Linear extrapolation of a partial sum, saturating at the `i64` rails.
pub fn scaled_sum(partial: i64, processed: u64, total: u64) -> i64 {
    if processed == 0 {
        return 0;
    }
    let scaled = partial as i128 * total as i128 / processed as i128;
    clamp_i128(scaled)
}

fn clamp_i128(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// A deterministic interval per aggregate component, guaranteed to
/// contain the exact value (DESIGN §14's bound algebra).
///
/// Built from a cell's partial [`Aggregate`] (over the folded chunks)
/// plus the [`Envelope`] of what remains unfolded in its region: at most
/// `rows` more tuples, each measuring within `[measure_min, measure_max]`.
/// Since the cell may receive anywhere from none to all of those rows:
///
/// * `count` ∈ `[partial, partial + rows]`;
/// * `sum` moves by between `min(0, rows·measure_min)` and
///   `max(0, rows·measure_max)`;
/// * `min` can only drop, to no lower than `min(partial_min, measure_min)`;
/// * `max` can only rise, to no higher than `max(partial_max, measure_max)`.
///
/// With the empty envelope every interval collapses to a point and the
/// bound *is* the exact aggregate. All arithmetic is integer (i128
/// intermediates, saturating at the i64 rails), so bounds are identical
/// across platforms and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggBound {
    /// Smallest possible exact count.
    pub count_lo: u64,
    /// Largest possible exact count.
    pub count_hi: u64,
    /// Smallest possible exact sum.
    pub sum_lo: i64,
    /// Largest possible exact sum.
    pub sum_hi: i64,
    /// Smallest possible exact minimum.
    pub min_lo: i64,
    /// Largest possible exact minimum.
    pub min_hi: i64,
    /// Smallest possible exact maximum.
    pub max_lo: i64,
    /// Largest possible exact maximum.
    pub max_hi: i64,
}

impl AggBound {
    /// Bounds the exact aggregate of a cell whose folded partial is
    /// `partial` and whose region's unfolded slack is `env`.
    pub fn over(partial: &Aggregate, env: &Envelope) -> AggBound {
        let rows = env.rows;
        let (sum_slack_lo, sum_slack_hi) = if rows == 0 {
            (0i128, 0i128)
        } else {
            let r = rows as i128;
            (
                (r * env.measure_min as i128).min(0),
                (r * env.measure_max as i128).max(0),
            )
        };
        AggBound {
            count_lo: partial.count,
            count_hi: partial.count.saturating_add(rows),
            sum_lo: clamp_i128(partial.sum as i128 + sum_slack_lo),
            sum_hi: clamp_i128(partial.sum as i128 + sum_slack_hi),
            min_lo: if rows == 0 {
                partial.min
            } else {
                partial.min.min(env.measure_min)
            },
            min_hi: partial.min,
            max_lo: partial.max,
            max_hi: if rows == 0 {
                partial.max
            } else {
                partial.max.max(env.measure_max)
            },
        }
    }

    /// The point bound of a fully-known aggregate.
    pub fn exact(agg: &Aggregate) -> AggBound {
        AggBound::over(agg, &Envelope::empty())
    }

    /// True when `exact` lies inside every component interval.
    pub fn contains(&self, exact: &Aggregate) -> bool {
        self.count_lo <= exact.count
            && exact.count <= self.count_hi
            && self.sum_lo <= exact.sum
            && exact.sum <= self.sum_hi
            && self.min_lo <= exact.min
            && exact.min <= self.min_hi
            && self.max_lo <= exact.max
            && exact.max <= self.max_hi
    }

    /// True when every interval has collapsed to a point.
    pub fn is_exact(&self) -> bool {
        self.count_lo == self.count_hi
            && self.sum_lo == self.sum_hi
            && self.min_lo == self.min_hi
            && self.max_lo == self.max_hi
    }

    /// Width of the count interval (0 once the count is exact).
    pub fn count_width(&self) -> u64 {
        self.count_hi - self.count_lo
    }

    /// True when `other` is at least as tight on every component — the
    /// monotonicity folding must preserve.
    pub fn tightens_to(&self, other: &AggBound) -> bool {
        self.count_lo <= other.count_lo
            && other.count_hi <= self.count_hi
            && self.sum_lo <= other.sum_lo
            && other.sum_hi <= self.sum_hi
            && self.min_lo <= other.min_lo
            && other.min_hi <= self.min_hi
            && self.max_lo <= other.max_lo
            && other.max_hi <= self.max_hi
    }

    /// Clamps a count estimate into the interval, so the reported point
    /// estimate can never leave its own bound.
    pub fn clamp_count(&self, est: u64) -> u64 {
        est.clamp(self.count_lo, self.count_hi)
    }

    /// Clamps a sum estimate into the interval.
    pub fn clamp_sum(&self, est: i64) -> i64 {
        est.clamp(self.sum_lo, self.sum_hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_scaling_diverges_from_the_old_f64_round() {
        // minsup 9 at 1/4 processed: f64 `round` gave (9.0 * 0.25).round()
        // = 2 (nearest), exact ceiling gives ceil(9/4) = 3.
        let (minsup, processed, total) = (9u64, 1u64, 4u64);
        let f64_version = ((minsup * processed) as f64 / total as f64).round() as u64;
        assert_eq!(f64_version, 2);
        assert_eq!(scaled_threshold(minsup, processed, total), 3);
        // And at one eighth: 9/8 = 1.125 → round 1, ceil 2.
        assert_eq!(scaled_threshold(9, 1, 8), 2);
    }

    #[test]
    fn scaling_is_exact_at_the_endpoints() {
        assert_eq!(scaled_threshold(7, 100, 100), 7);
        assert_eq!(scaled_threshold(7, 0, 100), 1, "floor of 1 before data");
        assert_eq!(scaled_threshold(1, 33, 100), 1);
        assert_eq!(scaled_threshold(5, 0, 0), 5, "empty relation: unscaled");
        // No overflow at the extremes.
        assert_eq!(scaled_threshold(u64::MAX, u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn scaled_threshold_never_exceeds_minsup_while_processing() {
        for minsup in [1u64, 2, 3, 9, 100] {
            for total in [1u64, 4, 7, 1000] {
                for processed in 0..=total.min(20) {
                    let t = scaled_threshold(minsup, processed, total);
                    assert!(t >= 1);
                    assert!(t <= minsup.max(1));
                }
            }
        }
    }

    #[test]
    fn extrapolation_is_linear_and_guarded() {
        assert_eq!(scaled_count(10, 25, 100), 40);
        assert_eq!(scaled_count(10, 0, 100), 0);
        assert_eq!(scaled_sum(-30, 30, 90), -90);
        assert_eq!(scaled_sum(i64::MAX, 1, 3), i64::MAX, "saturates");
    }

    #[test]
    fn bound_contains_every_reachable_completion() {
        // Partial: 2 rows summing 5, min 2, max 3. Slack: up to 2 rows
        // each in [-1, 4].
        let mut partial = Aggregate::of(2);
        partial.update(3);
        let env = Envelope {
            rows: 2,
            measure_min: -1,
            measure_max: 4,
        };
        let b = AggBound::over(&partial, &env);
        assert_eq!((b.count_lo, b.count_hi), (2, 4));
        assert_eq!((b.sum_lo, b.sum_hi), (3, 13));
        assert_eq!((b.min_lo, b.min_hi), (-1, 2));
        assert_eq!((b.max_lo, b.max_hi), (3, 4));
        // Enumerate completions: the cell receives 0, 1, or 2 extra rows
        // with any measures in [-1, 4].
        for extra in [vec![], vec![-1], vec![4], vec![-1, 4], vec![0, 0]] {
            let mut exact = partial;
            for m in extra {
                exact.update(m);
            }
            assert!(b.contains(&exact), "completion escaped: {exact:?}");
        }
        assert!(!b.is_exact());
        assert_eq!(b.count_width(), 2);
    }

    #[test]
    fn empty_envelope_collapses_to_the_exact_point() {
        let mut agg = Aggregate::of(-7);
        agg.update(12);
        let b = AggBound::over(&agg, &Envelope::empty());
        assert!(b.is_exact());
        assert_eq!(b, AggBound::exact(&agg));
        assert!(b.contains(&agg));
        assert_eq!(b.count_width(), 0);
    }

    #[test]
    fn unseen_cell_bound_starts_from_the_empty_aggregate() {
        // A key with no folded rows yet: partial is the empty aggregate
        // (count 0, sentinel min/max); the bound must still contain both
        // "stays empty" and "receives rows".
        let empty = Aggregate::empty();
        let env = Envelope {
            rows: 3,
            measure_min: 5,
            measure_max: 9,
        };
        let b = AggBound::over(&empty, &env);
        assert!(b.contains(&empty), "cell may remain absent");
        let mut full = Aggregate::of(5);
        full.update(9);
        full.update(7);
        assert!(b.contains(&full), "cell may receive every slack row");
        assert_eq!(b.count_lo, 0);
        assert_eq!(b.count_hi, 3);
    }

    #[test]
    fn tightening_is_detected_componentwise() {
        let agg = Aggregate::of(1);
        let wide = AggBound::over(
            &agg,
            &Envelope {
                rows: 10,
                measure_min: -5,
                measure_max: 5,
            },
        );
        let tight = AggBound::over(
            &agg,
            &Envelope {
                rows: 2,
                measure_min: -1,
                measure_max: 1,
            },
        );
        assert!(wide.tightens_to(&tight));
        assert!(!tight.tightens_to(&wide));
        assert!(wide.tightens_to(&wide));
        assert_eq!(wide.clamp_count(100), wide.count_hi);
        assert_eq!(wide.clamp_sum(i64::MIN), wide.sum_lo);
    }

    #[test]
    fn negative_only_slack_cannot_raise_the_sum() {
        let agg = Aggregate::of(10);
        let env = Envelope {
            rows: 4,
            measure_min: -3,
            measure_max: -1,
        };
        let b = AggBound::over(&agg, &env);
        // All slack measures are negative: the sum can only fall, and
        // "receive nothing" keeps it at 10.
        assert_eq!((b.sum_lo, b.sum_hi), (10 - 12, 10));
        assert_eq!((b.max_lo, b.max_hi), (10, 10));
        assert_eq!((b.min_lo, b.min_hi), (-3, 10));
    }
}
