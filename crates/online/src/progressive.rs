//! Progressive cube building: the paper's n×n chunk schedule driving a
//! [`ProgressiveCube`] toward the batch iceberg answer (DESIGN §14).
//!
//! POL (Chapter 5) refines *one* group-by online; this module refines the
//! *whole cube*. The plan reuses POL's machinery end to end:
//!
//! * [`Boundaries`] from an initial sample fix the key-range ownership,
//!   exactly as they partition POL's result skip list;
//! * the relation is split evenly across `nodes` sources, read one
//!   buffer-sized block per step, and each block is bucketed by owner —
//!   the same `n × n` task array of Table 5.1;
//! * [`TaskArray::order_for`]'s wrap order fixes the arrival schedule:
//!   within a step, position `k` delivers every owner its `k`-th source's
//!   chunk, so all owners refine in lockstep and no single source is
//!   drained first — the paper's request-spreading argument turned into a
//!   refresh schedule;
//! * every chunk is aggregated at minimum support 1 by the sequential
//!   BPP-BUC kernel (mergeable partial cells) and folded into a
//!   [`ProgressiveCube`], whose envelopes bound what the unfolded
//!   remainder can still change.
//!
//! Chunk aggregation runs on the virtual-time simulator, so the
//! cumulative `virtual_ns` after each fold — the x-axis of the
//! `experiments progressive` sweep — is byte-deterministic.

use crate::boundaries::Boundaries;
use crate::pol::TaskArray;
use icecube_cluster::ClusterConfig;
use icecube_core::progressive::{ChunkMeta, Progress, ProgressiveCube};
use icecube_core::sequential::{run_sequential, SeqAlgorithm};
use icecube_core::store::{CubeStore, MergeStats};
use icecube_core::{AlgoError, IcebergQuery};
use icecube_data::Relation;
use icecube_lattice::CuboidMask;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One chunk of the plan: a source node's block rows owned by one key
/// range, scheduled at one (step, position) of the n×n array.
#[derive(Debug, Clone)]
pub struct PlannedChunk {
    /// Node whose partition the rows came from.
    pub source: usize,
    /// Key range (and node) owning the rows.
    pub owner: usize,
    /// Step of the n×n schedule (1-based, as in POL's loop).
    pub step: usize,
    /// The chunk's rows.
    pub rows: Relation,
}

/// The full chunk schedule for one relation: ownership boundaries plus
/// the chunks in arrival order.
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    nodes: usize,
    splits: Vec<Vec<u32>>,
    chunks: Vec<PlannedChunk>,
    rows_total: u64,
}

impl ChunkPlan {
    /// Plans the chunk schedule: sample boundaries with `seed`, split the
    /// relation evenly across `nodes` sources, bucket each step's blocks
    /// by owner, and order arrivals by the wrap schedule. Empty chunks
    /// are dropped — they carry no rows and no slack.
    pub fn new(
        rel: &Relation,
        nodes: usize,
        buffer_tuples: usize,
        sample_size: usize,
        seed: u64,
    ) -> Result<ChunkPlan, AlgoError> {
        if rel.is_empty() {
            return Err(AlgoError::EmptyInput);
        }
        if rel.arity() == 0 {
            return Err(AlgoError::NoDimensions);
        }
        let nodes = nodes.max(1);
        let buffer = buffer_tuples.max(1);
        let anchor = CuboidMask::full(rel.arity());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x90);
        let boundaries =
            Boundaries::sample_relation(rel, anchor, nodes, sample_size.max(1), &mut rng);
        let partitions = rel.split_even(nodes);
        let tasks = TaskArray::new(nodes);
        let mut cursors = vec![0usize; nodes];
        let mut chunks = Vec::new();
        let mut step = 0usize;
        while cursors
            .iter()
            .zip(&partitions)
            .any(|(&cur, part)| cur < part.len())
        {
            step += 1;
            // Bucket each source's block by owner, as POL does per step.
            let mut bucketed: Vec<Vec<Relation>> = Vec::with_capacity(nodes);
            for (cursor, part) in cursors.iter_mut().zip(&partitions) {
                let start = *cursor;
                let end = (start + buffer).min(part.len());
                *cursor = end;
                let mut by_owner: Vec<Relation> = (0..nodes)
                    .map(|_| Relation::new(part.schema().clone()))
                    .collect();
                for t in start..end {
                    let owner = boundaries.owner(part.row(t));
                    if let Some(dest) = by_owner.get_mut(owner) {
                        dest.push_row_unchecked(part.row(t), part.measure(t));
                    }
                }
                bucketed.push(by_owner);
            }
            // Arrival order: position k hands every owner its k-th source
            // in wrap order, so owners refine in lockstep.
            for k in 0..nodes {
                for owner in 0..nodes {
                    let Some(&source) = tasks.order_for(owner).get(k) else {
                        continue;
                    };
                    let Some(slot) = bucketed.get_mut(source).and_then(|b| b.get_mut(owner)) else {
                        continue;
                    };
                    let rows = std::mem::replace(slot, Relation::new(rel.schema().clone()));
                    if rows.is_empty() {
                        continue;
                    }
                    chunks.push(PlannedChunk {
                        source,
                        owner,
                        step,
                        rows,
                    });
                }
            }
        }
        Ok(ChunkPlan {
            nodes,
            splits: boundaries.splits().to_vec(),
            chunks,
            rows_total: rel.len() as u64,
        })
    }

    /// Sources (and owner ranges) the plan schedules across.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The surviving ownership splits.
    pub fn splits(&self) -> &[Vec<u32>] {
        &self.splits
    }

    /// The chunks in arrival order.
    pub fn chunks(&self) -> &[PlannedChunk] {
        &self.chunks
    }

    /// Rows across every chunk (the whole relation: bucketing loses none).
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// The per-chunk slack metadata the [`ProgressiveCube`] accounts.
    pub fn metas(&self) -> Vec<ChunkMeta> {
        self.chunks
            .iter()
            .map(|c| {
                let measures: Vec<i64> = (0..c.rows.len()).map(|t| c.rows.measure(t)).collect();
                ChunkMeta::describe(c.owner, &measures)
            })
            .collect()
    }
}

/// One fold's report: which chunk landed and where the build now stands.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Index of the folded chunk in arrival order.
    pub chunk: usize,
    /// Source node the chunk came from.
    pub source: usize,
    /// Owner range the chunk belongs to.
    pub owner: usize,
    /// Schedule step the chunk arrived in.
    pub step: usize,
    /// Rows the chunk carried.
    pub rows: u64,
    /// Cumulative virtual time after this fold.
    pub virtual_ns: u64,
    /// The floor merge's statistics.
    pub merge: MergeStats,
}

/// Drives a [`ChunkPlan`] through a [`ProgressiveCube`]: each
/// [`ProgressiveBuild::step`] aggregates the next chunk at minimum
/// support 1 on the simulator and folds it in.
#[derive(Debug, Clone)]
pub struct ProgressiveBuild {
    plan: ChunkPlan,
    cube: ProgressiveCube,
    config: ClusterConfig,
    next: usize,
    virtual_ns: u64,
}

impl ProgressiveBuild {
    /// Plans and opens a build of `rel`'s cube at serving threshold
    /// `minsup`.
    pub fn new(
        rel: &Relation,
        minsup: u64,
        nodes: usize,
        buffer_tuples: usize,
        sample_size: usize,
        config: &ClusterConfig,
    ) -> Result<ProgressiveBuild, AlgoError> {
        let plan = ChunkPlan::new(rel, nodes, buffer_tuples, sample_size, config.seed)?;
        let cube = ProgressiveCube::new(rel.arity(), minsup, plan.splits.clone(), plan.metas())?;
        Ok(ProgressiveBuild {
            plan,
            cube,
            config: config.clone(),
            next: 0,
            virtual_ns: 0,
        })
    }

    /// Aggregates and folds the next chunk; `Ok(None)` once converged.
    pub fn step(&mut self) -> Result<Option<FoldReport>, AlgoError> {
        let Some(chunk) = self.plan.chunks.get(self.next) else {
            return Ok(None);
        };
        let query = IcebergQuery {
            dims: chunk.rows.arity(),
            minsup: 1,
        };
        let outcome = run_sequential(SeqAlgorithm::BppBuc, &chunk.rows, &query, &self.config)?;
        self.virtual_ns = self.virtual_ns.saturating_add(outcome.clock_ns);
        let merge = self.cube.fold(self.next, outcome.cells)?;
        let report = FoldReport {
            chunk: self.next,
            source: chunk.source,
            owner: chunk.owner,
            step: chunk.step,
            rows: chunk.rows.len() as u64,
            virtual_ns: self.virtual_ns,
            merge,
        };
        self.next += 1;
        Ok(Some(report))
    }

    /// The plan being folded.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// The build's current slack snapshot, for publishing with an epoch.
    pub fn progress(&self) -> Progress {
        self.cube.progress()
    }

    /// The minimum-support-1 floor (every partial cell).
    pub fn floor(&self) -> &CubeStore {
        self.cube.floor()
    }

    /// The cells currently at or above the serving threshold.
    pub fn visible(&self) -> CubeStore {
        self.cube.visible()
    }

    /// True once every chunk has folded.
    pub fn converged(&self) -> bool {
        self.cube.converged()
    }

    /// Cumulative virtual time across every fold so far.
    pub fn virtual_ns(&self) -> u64 {
        self.virtual_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_data::presets;

    #[test]
    fn plan_covers_every_row_exactly_once() {
        let rel = presets::tiny(41).generate().unwrap();
        let plan = ChunkPlan::new(&rel, 4, 30, 64, 7).unwrap();
        let total: usize = plan.chunks().iter().map(|c| c.rows.len()).sum();
        assert_eq!(total, rel.len());
        assert_eq!(plan.rows_total(), rel.len() as u64);
        assert!(plan.chunks().iter().all(|c| !c.rows.is_empty()));
        // Ownership contract: every row of a chunk routes to its owner.
        let bounds = {
            let mut sorted: Vec<PlannedChunk> = plan.chunks().to_vec();
            sorted.sort_by_key(|c| (c.step, c.owner, c.source));
            sorted
        };
        for c in &bounds {
            for t in 0..c.rows.len() {
                let key = c.rows.row(t);
                let idx = plan.splits().partition_point(|s| s.as_slice() <= key);
                assert_eq!(idx, c.owner, "row routed outside its owning range");
            }
        }
    }

    #[test]
    fn arrival_interleaves_owners_within_a_step() {
        let rel = presets::tiny(42).generate().unwrap();
        let plan = ChunkPlan::new(&rel, 3, 1000, 64, 7).unwrap();
        // Single step: owners must not arrive in source-major blocks.
        assert!(plan.chunks().iter().all(|c| c.step == 1));
        let owners: Vec<usize> = plan.chunks().iter().map(|c| c.owner).collect();
        let mut sorted = owners.clone();
        sorted.sort_unstable();
        assert_ne!(owners, sorted, "wrap order interleaves owners: {owners:?}");
    }

    #[test]
    fn build_converges_to_the_scratch_floor() {
        let rel = presets::tiny(43).generate().unwrap();
        let cfg = ClusterConfig::fast_ethernet(4);
        let mut build = ProgressiveBuild::new(&rel, 3, 4, 25, 64, &cfg).unwrap();
        let mut folds = 0usize;
        while let Some(report) = build.step().unwrap() {
            folds += 1;
            assert_eq!(report.chunk + 1, folds);
            assert!(report.virtual_ns > 0, "folds accrue virtual time");
        }
        assert!(build.converged());
        assert!(build.progress().converged());
        let scratch = {
            let q = IcebergQuery {
                dims: rel.arity(),
                minsup: 1,
            };
            let out = run_sequential(SeqAlgorithm::BppBuc, &rel, &q, &cfg).unwrap();
            CubeStore::from_cells(rel.arity(), 1, out.cells)
        };
        let mut got = Vec::new();
        let mut want = Vec::new();
        build.floor().write_to(&mut got).unwrap();
        scratch.write_to(&mut want).unwrap();
        assert_eq!(got, want, "converged floor must match the batch build");
    }

    #[test]
    fn planning_rejects_empty_input() {
        let empty = Relation::new(icecube_data::Schema::from_cardinalities(&[2]).unwrap());
        assert!(matches!(
            ChunkPlan::new(&empty, 2, 10, 16, 1),
            Err(AlgoError::EmptyInput)
        ));
    }
}
