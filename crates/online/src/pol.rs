//! Algorithm POL — Parallel OnLine aggregation (Sections 5.3–5.4,
//! Figures 5.1–5.2).
//!
//! POL answers a *single* iceberg group-by over a raw dataset assumed too
//! large for any node's memory, giving an instant estimate that refines as
//! data streams in:
//!
//! * the raw data is range-partitioned across nodes **unsorted**; each
//!   node reads its local partition one buffer-sized block per step;
//! * the result skip list is *also* range-partitioned, with boundaries
//!   from an initial sample, so every node owns one sorted range of the
//!   answer;
//! * within a step, each node buckets its block into `n` chunks by those
//!   boundaries, defining the `n × n` task array of Table 5.1:
//!   `task(Chunk_ji)` folds the chunk *located on* node `i` into node
//!   `j`'s skip-list partition. Node `j` processes its row starting with
//!   the local chunk and wrapping (`j, j+1, …, n-1, 0, …`), which spreads
//!   remote fetches so no single node is swamped with requests;
//! * a node that finishes early *steals* an untouched task whose chunk is
//!   local to it, builds a side skip list, and ships the list to the
//!   owner, who merges it — load balancing without extra raw-data
//!   movement;
//! * steps are separated by barriers; a periodic "timer" snapshot reports
//!   the cells qualifying under the support threshold scaled to the
//!   fraction of data seen so far — the progressive refinement of the
//!   online-aggregation framework.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::boundaries::Boundaries;
use crate::estimate::scaled_threshold;
use icecube_cluster::{ClusterConfig, EventKind, RunStats, SimCluster, TraceLog};
use icecube_core::agg::Aggregate;
use icecube_core::cell::{Cell, CellSink};
use icecube_core::error::AlgoError;
use icecube_data::Relation;
use icecube_lattice::CuboidMask;
use icecube_skiplist::SkipList;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// The online iceberg query POL answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolQuery {
    /// The GROUP BY dimensions (one group-by, not a cube).
    pub dims: CuboidMask,
    /// Minimum support of the final answer.
    pub minsup: u64,
    /// Tuples each node loads per step (the paper's experiments use 8000).
    pub buffer_tuples: usize,
    /// Sample size for the skip-list partition boundaries.
    pub sample_size: usize,
    /// Steps between progress snapshots (the paper uses a wall-clock
    /// timer; a step count is its deterministic analogue).
    pub snapshot_every: usize,
    /// Whether idle nodes steal local-input tasks from busy owners
    /// (Section 5.3.2's dynamic offloading). On by default; off for
    /// ablation.
    pub work_stealing: bool,
}

impl PolQuery {
    /// A query with the paper's defaults: 8000-tuple buffers, 1024-tuple
    /// boundary sample, snapshot every step.
    pub fn new(dims: CuboidMask, minsup: u64) -> Self {
        // check:allow(panic-in-lib): constructor contract — a zero
        // support threshold is a programming error, not runtime input.
        assert!(minsup > 0, "minimum support must be at least 1");
        // check:allow(panic-in-lib): same constructor contract as above.
        assert!(!dims.is_all(), "POL aggregates a non-empty group-by");
        PolQuery {
            dims,
            minsup,
            buffer_tuples: 8000,
            sample_size: 1024,
            snapshot_every: 1,
            work_stealing: true,
        }
    }
}

/// The `n × n` per-step task array of Table 5.1.
///
/// `task(j, i)` processes the chunk located on node `i` destined for node
/// `j`'s skip-list partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskArray {
    n: usize,
}

impl TaskArray {
    /// Builds the array for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        // check:allow(panic-in-lib): constructor contract — a zero-node
        // cluster is a configuration bug, not runtime input.
        assert!(n > 0, "need at least one node");
        TaskArray { n }
    }

    /// Node `j`'s processing order over source nodes: local first, then
    /// wrapping — "this sequence maximizes the possibility of each
    /// processor working on data located on different processors at one
    /// time, thus reducing the possibility of a burst of data requests".
    pub fn order_for(&self, j: usize) -> Vec<usize> {
        (0..self.n).map(|k| (j + k) % self.n).collect()
    }

    /// Total tasks per step.
    pub fn len(&self) -> usize {
        self.n * self.n
    }

    /// True for the degenerate single-node array.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One progressive-refinement report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Step index (1-based) the snapshot was taken after.
    pub step: usize,
    /// Fraction of the raw data processed so far.
    pub fraction: f64,
    /// Cluster virtual time at the snapshot.
    pub time_ns: u64,
    /// Support threshold scaled to the processed fraction.
    pub estimated_threshold: u64,
    /// Cells currently meeting the estimated threshold.
    pub qualifying_cells: u64,
}

/// The result of a POL run.
#[derive(Debug, Clone)]
pub struct PolOutcome {
    /// The exact final answer, canonically sorted.
    pub cells: Vec<Cell>,
    /// Progressive snapshots, oldest first (always ends with a final one).
    pub snapshots: Vec<Snapshot>,
    /// Virtual-time statistics.
    pub stats: RunStats,
    /// Total skip-list nodes across partitions (the paper reports 924,585
    /// for its 12-dimension, 1M-tuple run).
    pub total_list_nodes: u64,
    /// Tasks executed by stealing rather than by their owner.
    pub stolen_tasks: u64,
    /// Per-node event trace, when the config enables tracing.
    pub trace: Option<TraceLog>,
}

/// One bucketed chunk: projected keys and measures, ready to fold.
struct Chunk {
    keys: Vec<u32>,
    measures: Vec<i64>,
    arity: usize,
}

impl Chunk {
    fn new(arity: usize) -> Self {
        Chunk {
            keys: Vec::new(),
            measures: Vec::new(),
            arity,
        }
    }

    fn len(&self) -> usize {
        self.measures.len()
    }

    fn key(&self, t: usize) -> &[u32] {
        &self.keys[t * self.arity..(t + 1) * self.arity]
    }

    /// Transfer size: 4 bytes per key element plus the measure.
    fn byte_size(&self) -> u64 {
        (self.keys.len() * 4 + self.measures.len() * 8) as u64
    }
}

/// Runs POL over a simulated cluster.
pub fn run_pol(
    rel: &Relation,
    query: &PolQuery,
    config: &ClusterConfig,
) -> Result<PolOutcome, AlgoError> {
    if rel.is_empty() {
        return Err(AlgoError::EmptyInput);
    }
    if query.dims.max_dim().is_some_and(|m| m >= rel.arity()) {
        return Err(AlgoError::DimensionMismatch {
            query_dims: query.dims.max_dim().unwrap_or(0) + 1,
            relation_dims: rel.arity(),
        });
    }
    let buffer = query.buffer_tuples.max(1);
    let arity = query.dims.dim_count();
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();

    // The manager samples and fixes the skip-list partition boundaries.
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x90);
    let boundaries =
        Boundaries::sample_relation(rel, query.dims, n, query.sample_size.max(1), &mut rng);
    cluster.nodes[0].charge_scan(query.sample_size.max(1) as u64);
    cluster.barrier(); // boundaries broadcast

    // Horizontal data distribution: node i's local partition, unsorted.
    let partitions = rel.split_even(n);
    let mut cursors = vec![0usize; n];
    let mut lists: Vec<SkipList<Aggregate>> = (0..n)
        .map(|j| SkipList::new(arity, config.seed ^ ((j as u64) << 40)))
        .collect();
    let tasks = TaskArray::new(n);
    let mut snapshots = Vec::new();
    let mut stolen_tasks = 0u64;
    let mut processed = 0usize;
    let mut step = 0usize;

    while (0..n).any(|i| cursors[i] < partitions[i].len()) {
        step += 1;
        // (a) Each node loads one block and buckets it by boundary.
        let mut chunks: Vec<Vec<Chunk>> = Vec::with_capacity(n);
        for i in 0..n {
            let part = &partitions[i];
            let start = cursors[i];
            let end = (start + buffer).min(part.len());
            cursors[i] = end;
            processed += end - start;
            let node = &mut cluster.nodes[i];
            node.read_bytes((end - start) as u64 * part.row_bytes());
            node.charge_scan((end - start) as u64);
            let mut bucketed: Vec<Chunk> = (0..n).map(|_| Chunk::new(arity)).collect();
            let mut key = vec![0u32; arity];
            for t in start..end {
                query.dims.project_row(part.row(t), &mut key);
                let owner = boundaries.owner(&key);
                bucketed[owner].keys.extend_from_slice(&key);
                bucketed[owner].measures.push(part.measure(t));
            }
            node.charge_moves((end - start) as u64);
            chunks.push(bucketed);
        }

        // (b) Schedule the n×n tasks: owners in wrap order, idlers steal.
        let mut pending: Vec<VecDeque<usize>> = (0..n)
            .map(|j| tasks.order_for(j).into_iter().collect())
            .collect();
        let mut active = vec![true; n];
        while active.iter().any(|&a| a) {
            let Some(node_id) = (0..n)
                .filter(|&i| active[i])
                .min_by_key(|&i| (cluster.nodes[i].clock_ns(), i))
            else {
                break; // unreachable: the loop condition saw an active node
            };
            if let Some(src) = pending[node_id].pop_front() {
                // Own task: fetch the chunk if remote, fold it in.
                let chunk = &chunks[src][node_id];
                if src != node_id && chunk.len() > 0 {
                    fetch(&mut cluster, src, node_id, chunk.byte_size());
                }
                fold_chunk(&mut cluster, node_id, chunk, &mut lists[node_id]);
            } else if let Some(owner) = (0..n).filter(|_| query.work_stealing).find(|&j| {
                j != node_id && pending[j].contains(&node_id) && chunks[node_id][j].len() > 0
            }) {
                // Steal: this node's local chunk destined for a busy owner.
                pending[owner].retain(|&s| s != node_id);
                stolen_tasks += 1;
                let chunk = &chunks[node_id][owner];
                // Build a side skip list locally. The seed mixes the
                // running steal counter so a node stealing twice in one
                // step builds two *independently* levelled lists — with
                // only (step, node_id) in the seed, both lists replayed
                // the identical level sequence and their comparison
                // charges were correlated.
                let side_seed =
                    config.seed ^ ((step as u64) << 16) ^ (node_id as u64) ^ (stolen_tasks << 40);
                let mut side: SkipList<Aggregate> = SkipList::new(arity, side_seed);
                fold_chunk(&mut cluster, node_id, chunk, &mut side);
                // …ship it to the owner, who merges it into its partition.
                let side_bytes = side.memory_bytes();
                cluster.send(node_id, owner, side_bytes);
                let owner_node = &mut cluster.nodes[owner];
                let mut merged = 0u64;
                for (key, agg) in side.iter() {
                    lists[owner].insert_or_update(key, || *agg, |a| a.merge(agg));
                    merged += 1;
                }
                owner_node.charge_agg_updates(merged);
                let cmp = lists[owner].take_comparisons();
                cluster.nodes[owner].charge_comparisons(cmp);
            } else {
                // Drop empty remaining tasks silently, then retire.
                active[node_id] = false;
            }
        }
        // (c) Synchronize: the block may be discarded only when everyone is
        // done with it.
        cluster.barrier();

        // (d) Timer-driven progress report.
        if step.is_multiple_of(query.snapshot_every.max(1)) {
            snapshots.push(snapshot(
                &mut cluster,
                &lists,
                query,
                step,
                processed,
                rel.len(),
            ));
        }
    }
    if snapshots.last().map(|s| s.step) != Some(step) {
        snapshots.push(snapshot(
            &mut cluster,
            &lists,
            query,
            step,
            processed,
            rel.len(),
        ));
    }

    // Final exact answer: each node writes its sorted range.
    let mut cells = Vec::new();
    let total_list_nodes = lists.iter().map(|l| l.len() as u64).sum();
    for (j, list) in lists.iter().enumerate() {
        let mut qualifying = 0u64;
        for (key, agg) in list.iter() {
            if agg.meets(query.minsup) {
                cells.push(Cell {
                    cuboid: query.dims,
                    key: key.to_vec(),
                    agg: *agg,
                });
                qualifying += 1;
            }
        }
        if qualifying > 0 {
            cluster.nodes[j].write_cells(
                query.dims.bits() as u64,
                qualifying * Cell::disk_bytes(arity),
                qualifying,
            );
        }
    }
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    icecube_core::cell::sort_cells(&mut cells);
    let trace = cluster.take_trace();
    Ok(PolOutcome {
        cells,
        snapshots,
        stats: cluster.run_stats(),
        total_list_nodes,
        stolen_tasks,
        trace,
    })
}

/// Requester-side chunk fetch: node `to` waits for the transfer; node
/// `from` serves it from memory (accounted as sent bytes, not clock time —
/// the paper's workers answer data requests asynchronously, Figure 5.2
/// line 26).
fn fetch(cluster: &mut SimCluster, from: usize, to: usize, bytes: u64) {
    let cost = cluster.config.net.transfer_ns(bytes);
    cluster.nodes[to].charge_net(cost);
    let sender = &mut cluster.nodes[from];
    sender.stats.bytes_sent += bytes;
    sender.stats.messages += 1;
    sender.trace_event(EventKind::MsgSend { to, bytes });
    cluster.nodes[to].trace_event(EventKind::MsgRecv { from, bytes });
}

/// Folds a chunk into a skip list, charging the insert comparisons.
fn fold_chunk(
    cluster: &mut SimCluster,
    node_id: usize,
    chunk: &Chunk,
    list: &mut SkipList<Aggregate>,
) {
    if chunk.len() == 0 {
        return;
    }
    for t in 0..chunk.len() {
        let m = chunk.measures[t];
        list.insert_or_update(chunk.key(t), || Aggregate::of(m), |a| a.update(m));
    }
    let node = &mut cluster.nodes[node_id];
    node.charge_agg_updates(chunk.len() as u64);
    node.charge_comparisons(list.take_comparisons());
}

/// Collects a progress report: every worker scans its partition and sends
/// a summary to the manager (Figure 5.2 line 27).
fn snapshot(
    cluster: &mut SimCluster,
    lists: &[SkipList<Aggregate>],
    query: &PolQuery,
    step: usize,
    processed: usize,
    total: usize,
) -> Snapshot {
    let fraction = processed as f64 / total as f64;
    // Exact integer pro-rating (never the old f64 round), and the same
    // `meets` predicate the final answer uses — the estimator and the
    // exact answer cannot disagree on the qualifying rule.
    let estimated_threshold = scaled_threshold(query.minsup, processed as u64, total as u64);
    let mut qualifying = 0u64;
    for (j, list) in lists.iter().enumerate() {
        qualifying += list
            .iter()
            .filter(|(_, agg)| agg.meets(estimated_threshold))
            .count() as u64;
        let node = &mut cluster.nodes[j];
        node.charge_scan(list.len() as u64);
        node.charge_rpc();
    }
    Snapshot {
        step,
        fraction,
        time_ns: cluster.makespan_ns(),
        estimated_threshold,
        qualifying_cells: qualifying,
    }
}

/// Convenience: the exact answer computed serially (for verification).
pub fn exact_answer(rel: &Relation, query: &PolQuery) -> Vec<Cell> {
    let mut out = Vec::new();
    icecube_core::naive::naive_cuboid(rel, query.dims, query.minsup, &mut out);
    icecube_core::cell::sort_cells(&mut out);
    out
}

/// Emits a [`PolOutcome`]'s cells into a sink (bridges to the offline
/// tooling).
pub fn emit_outcome<S: CellSink>(outcome: &PolOutcome, sink: &mut S) {
    for c in &outcome.cells {
        sink.emit(c.cuboid, &c.key, &c.agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_data::presets;

    fn q(dims: &[usize], minsup: u64, buffer: usize) -> PolQuery {
        PolQuery {
            buffer_tuples: buffer,
            ..PolQuery::new(CuboidMask::from_dims(dims), minsup)
        }
    }

    #[test]
    fn task_array_matches_table_5_1() {
        let t = TaskArray::new(4);
        assert_eq!(t.len(), 16);
        assert_eq!(t.order_for(0), vec![0, 1, 2, 3]);
        assert_eq!(t.order_for(1), vec![1, 2, 3, 0]);
        assert_eq!(t.order_for(3), vec![3, 0, 1, 2]);
    }

    fn check(rel: &Relation, query: &PolQuery, nodes: usize) -> PolOutcome {
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let out = run_pol(rel, query, &cfg).unwrap();
        let want = exact_answer(rel, query);
        assert_eq!(out.cells, want, "POL answer mismatch (n={nodes})");
        out
    }

    #[test]
    fn final_answer_is_exact_across_configurations() {
        let rel = presets::tiny(21).generate().unwrap();
        for nodes in [1, 2, 4] {
            for minsup in [1, 2, 5] {
                check(&rel, &q(&[0, 2], minsup, 40), nodes);
            }
        }
        check(&rel, &q(&[1], 2, 7), 3);
        check(&rel, &q(&[0, 1, 2, 3], 2, 64), 4);
    }

    #[test]
    fn buffer_size_does_not_change_the_answer() {
        let rel = presets::tiny(22).generate().unwrap();
        let a = check(&rel, &q(&[0, 1], 2, 10), 3);
        let b = check(&rel, &q(&[0, 1], 2, 100), 3);
        assert_eq!(a.cells, b.cells);
        // Smaller buffers mean more steps, more barriers, more time.
        assert!(a.stats.makespan_ns() > b.stats.makespan_ns());
        assert!(
            a.stats.nodes()[0].barriers > b.stats.nodes()[0].barriers,
            "more steps → more barriers"
        );
    }

    #[test]
    fn snapshots_refine_toward_the_answer() {
        let rel = presets::tiny(23).generate().unwrap();
        let query = q(&[0, 1], 3, 25);
        let out = check(&rel, &query, 2);
        assert!(out.snapshots.len() > 2);
        let last = out.snapshots.last().unwrap();
        assert!((last.fraction - 1.0).abs() < 1e-9);
        assert_eq!(last.estimated_threshold, query.minsup);
        assert_eq!(last.qualifying_cells, out.cells.len() as u64);
        // Fractions increase monotonically; time advances.
        for w in out.snapshots.windows(2) {
            assert!(w[0].fraction < w[1].fraction + 1e-12);
            assert!(w[0].time_ns <= w[1].time_ns);
        }
    }

    #[test]
    fn total_list_nodes_counts_distinct_groups() {
        let rel = presets::tiny(24).generate().unwrap();
        let query = q(&[0, 1, 2, 3], 1, 50);
        let out = check(&rel, &query, 4);
        assert_eq!(out.total_list_nodes, out.cells.len() as u64);
    }

    #[test]
    fn remote_chunks_cost_network_time() {
        let rel = presets::tiny(25).generate().unwrap();
        let query = q(&[0, 1], 1, 50);
        let two = run_pol(&rel, &query, &ClusterConfig::fast_ethernet(2)).unwrap();
        let net: u64 = two.stats.nodes().iter().map(|s| s.net_ns).sum();
        assert!(net > 0, "multi-node POL must pay communication");
        // A single node owns every chunk: not one MsgSend chunk transfer
        // may appear in the trace, and no payload byte may hit the wire
        // (snapshot RPC round trips are control traffic, counted in
        // `messages` but carrying no chunk bytes).
        let cfg = ClusterConfig::fast_ethernet(1).with_trace();
        let one = run_pol(&rel, &query, &cfg).unwrap();
        let trace = one.trace.expect("tracing was enabled");
        assert_eq!(
            trace.count_total(|k| matches!(k, EventKind::MsgSend { .. })),
            0,
            "single node must ship no chunks"
        );
        for s in one.stats.nodes() {
            assert_eq!(s.bytes_sent, 0, "no payload bytes at n=1");
        }
        assert_eq!(one.cells, two.cells);
    }

    #[test]
    fn scaled_threshold_uses_exact_integer_ceiling() {
        // 8 identical-key rows, minsup 9, two rows per step on one node:
        // after step 1 the pro-rated threshold is ceil(9·2/8) = 3. The
        // old f64 path rounded 2.25 down to 2, which wrongly admitted
        // the count-2 group in the first snapshot.
        let schema = icecube_data::Schema::from_cardinalities(&[2, 2]).unwrap();
        let mut rel = Relation::new(schema);
        for t in 0..8 {
            rel.push_row(&[0, (t % 2) as u32], t as i64).unwrap();
        }
        let query = q(&[0], 9, 2);
        let out = run_pol(&rel, &query, &ClusterConfig::fast_ethernet(1)).unwrap();
        let first = &out.snapshots[0];
        assert_eq!(first.estimated_threshold, 3, "ceil(9*2/8), not round(2.25)");
        assert_eq!(
            first.qualifying_cells, 0,
            "a count-2 group must not qualify at pro-rated threshold 3"
        );
        let last = out.snapshots.last().unwrap();
        assert_eq!(last.estimated_threshold, query.minsup);
        assert!(out.cells.is_empty(), "minsup exceeds the relation size");
    }

    #[test]
    fn double_steal_in_one_step_stays_deterministic() {
        // Force one node to steal twice within a single step: node 0's
        // partition routes entirely to ranges owned by nodes 1 and 2
        // (which are busy with their own large local chunks), so idle
        // node 0 steals both of its local chunks. Each stolen task must
        // build its side list from an independent seed; the run is
        // pinned by exactness and charge determinism.
        // Sizing: a stolen side fold plus its ship costs one network
        // latency (~100µs on fast ethernet); the owners' local folds must
        // dwarf that, so each owner folds 12000 tuples (~300µs of CPU
        // charges) while node 0's stealable chunks are 2 and 11998 rows.
        const PART: usize = 12_000;
        let schema = icecube_data::Schema::from_cardinalities(&[4, 2]).unwrap();
        let mut rel = Relation::new(schema);
        for t in 0..3 * PART {
            let key = if t < 2 {
                1 // node 0: 2 rows for range 1…
            } else if t < PART {
                3 // …and the rest for range 2
            } else if t < 2 * PART {
                1 // node 1: all local to its range
            } else {
                3 // node 2: all local to its range
            };
            rel.push_row(&[key, 0], (t * 7 % 13) as i64).unwrap();
        }
        let query = PolQuery {
            sample_size: rel.len(), // full sample: splits are exact
            ..q(&[0], 2, PART)
        };
        let cfg = ClusterConfig::fast_ethernet(3);
        let out = run_pol(&rel, &query, &cfg).unwrap();
        assert_eq!(out.cells, exact_answer(&rel, &query));
        assert_eq!(
            out.stolen_tasks, 2,
            "node 0 must steal both of its local chunks in the one step"
        );
        let again = run_pol(&rel, &query, &cfg).unwrap();
        assert_eq!(out.cells, again.cells);
        assert_eq!(out.snapshots, again.snapshots);
        assert_eq!(
            out.stats.nodes(),
            again.stats.nodes(),
            "double-steal charges must be deterministic"
        );
    }

    #[test]
    fn myrinet_beats_ethernet_on_the_same_nodes() {
        // The Figure 5.3 cluster comparison in miniature.
        let rel = presets::tiny(26).generate().unwrap();
        let query = q(&[0, 1, 2], 2, 20);
        let eth = run_pol(&rel, &query, &ClusterConfig::slow_ethernet(4)).unwrap();
        let myr = run_pol(&rel, &query, &ClusterConfig::slow_myrinet(4)).unwrap();
        assert_eq!(eth.cells, myr.cells);
        assert!(myr.stats.makespan_ns() < eth.stats.makespan_ns());
    }

    #[test]
    fn rejects_bad_queries() {
        let rel = presets::tiny(27).generate().unwrap();
        let bad = q(&[0, 9], 1, 10);
        assert!(matches!(
            run_pol(&rel, &bad, &ClusterConfig::fast_ethernet(2)),
            Err(AlgoError::DimensionMismatch { .. })
        ));
        let empty = Relation::new(icecube_data::Schema::from_cardinalities(&[2]).unwrap());
        assert!(matches!(
            run_pol(&empty, &q(&[0], 1, 10), &ClusterConfig::fast_ethernet(2)),
            Err(AlgoError::EmptyInput)
        ));
    }

    #[test]
    #[should_panic(expected = "non-empty group-by")]
    fn pol_query_rejects_all() {
        let _ = PolQuery::new(CuboidMask::ALL, 1);
    }

    #[test]
    #[should_panic(expected = "minimum support must be at least 1")]
    fn pol_query_rejects_zero_minsup() {
        let _ = PolQuery::new(CuboidMask::from_dims(&[0]), 0);
    }

    #[test]
    fn minsup_one_keeps_every_group() {
        // The loosest legal threshold: every distinct key of the group-by
        // must appear, matching the serial reference exactly.
        let rel = presets::tiny(28).generate().unwrap();
        let query = q(&[0, 3], 1, 30);
        let out = check(&rel, &query, 3);
        let distinct: std::collections::BTreeSet<Vec<u32>> = {
            let mut key = vec![0u32; 2];
            (0..rel.len())
                .map(|t| {
                    query.dims.project_row(rel.row(t), &mut key);
                    key.clone()
                })
                .collect()
        };
        assert_eq!(out.cells.len(), distinct.len());
    }

    #[test]
    fn minsup_above_relation_size_yields_empty_answer() {
        // No group can gather more support than there are tuples.
        let rel = presets::tiny(29).generate().unwrap();
        let query = q(&[0, 1], rel.len() as u64 + 1, 40);
        let out = check(&rel, &query, 2);
        assert!(out.cells.is_empty());
        assert!(exact_answer(&rel, &query).is_empty());
        // The run still terminates with a final full-fraction snapshot.
        let last = out.snapshots.last().unwrap();
        assert!((last.fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn minsup_exactly_relation_size_keeps_only_universal_groups() {
        // Boundary just inside the data: a group qualifies iff every tuple
        // falls into it, i.e. the dimension is constant over the relation.
        let rel = presets::tiny(30).generate().unwrap();
        let query = q(&[2], rel.len() as u64, 25);
        let out = check(&rel, &query, 2);
        for cell in &out.cells {
            assert_eq!(cell.agg.count, rel.len() as u64);
        }
    }

    #[test]
    fn work_stealing_off_still_matches_exact() {
        let rel = presets::tiny(31).generate().unwrap();
        let query = PolQuery {
            work_stealing: false,
            ..q(&[0, 1], 2, 20)
        };
        let out = check(&rel, &query, 4);
        assert_eq!(out.stolen_tasks, 0);
    }
}
