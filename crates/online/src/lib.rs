#![warn(missing_docs)]

//! Online aggregation (Chapter 5): POL and selective materialization.
//!
//! Precomputed cubes answer instantly — until a query's minimum support is
//! *lower* than what the precomputation assumed. Chapter 5 covers the two
//! remedies:
//!
//! * [`materialize`] — **selective materialization** (Section 5.1):
//!   precompute only the most detailed cuboid at minimum support 1 and
//!   answer any group-by by rolling it up;
//! * [`pol`] — **POL** (Sections 5.3–5.4): aggregate a single group-by
//!   *online* from a raw dataset too big for any node's memory, in the
//!   online-aggregation framework of Hellerstein, Haas and Wang — an
//!   instant rough answer that refines progressively as blocks stream in.
//!
//! POL's machinery: the data is range-partitioned across nodes unsorted;
//! the result skip list is *also* range-partitioned, with boundaries drawn
//! from an initial sample ([`boundaries`]); each synchronized step loads
//! one block per node, buckets its tuples by boundary, and schedules the
//! resulting `n × n` chunk tasks so that every node starts with its local
//! chunk and wraps around ([`pol::TaskArray`], Table 5.1), with idle nodes
//! stealing local-input tasks and shipping side skip lists to the owner.

pub mod boundaries;
pub mod estimate;
pub mod materialize;
pub mod pol;
pub mod progressive;

pub use boundaries::Boundaries;
pub use estimate::{scaled_count, scaled_sum, scaled_threshold, AggBound};
pub use materialize::SelectiveMaterialization;
pub use pol::{run_pol, PolOutcome, PolQuery, Snapshot, TaskArray};
pub use progressive::{ChunkPlan, FoldReport, PlannedChunk, ProgressiveBuild};
