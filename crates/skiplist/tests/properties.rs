//! Property suite for the arena skip list, driven against a `BTreeMap`
//! oracle: whatever sequence of inserts and updates arrives — duplicate
//! keys included — the list must hold exactly the oracle's contents in
//! exactly the oracle's order, report them identically through both the
//! borrowing and the cloning read-out APIs, and never trip a structural
//! invariant. A second set of properties recycles storage through a
//! [`SkipListPool`] and demands the recycled list stay indistinguishable
//! from a fresh one.

use icecube_skiplist::{SkipList, SkipListPool};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Applies one op sequence to a fresh list and the oracle.
fn apply(list: &mut SkipList<i64>, model: &mut BTreeMap<Vec<u32>, i64>, ops: &[(Vec<u32>, i64)]) {
    for (key, delta) in ops {
        *model.entry(key.clone()).or_insert(0) += delta;
        list.insert_or_update(key, || *delta, |v| *v += delta);
    }
}

proptest! {
    /// Random insert/update sequences (narrow key space, so duplicate
    /// keys are common): cells, order, and dedup match the oracle.
    #[test]
    fn matches_btreemap_oracle(ops in proptest::collection::vec(
        (proptest::collection::vec(0u32..12, 3), -50i64..50), 0..400)) {
        let mut model = BTreeMap::new();
        let mut list: SkipList<i64> = SkipList::new(3, 17);
        apply(&mut list, &mut model, &ops);
        prop_assert_eq!(list.len(), model.len());
        // The borrowing iterator yields the oracle's entries in order.
        prop_assert!(list
            .iter_sorted()
            .map(|(k, v)| (k.to_vec(), *v))
            .eq(model.iter().map(|(k, v)| (k.clone(), *v))));
        prop_assert!(list.check_invariants().is_ok());
    }

    /// `to_sorted_vec` agrees with `iter_sorted`: sorted ascending,
    /// strictly deduplicated, one merged value per distinct key.
    #[test]
    fn to_sorted_vec_is_sorted_and_deduplicated(ops in proptest::collection::vec(
        (proptest::collection::vec(0u32..6, 2), 0i64..100), 0..300)) {
        let mut model = BTreeMap::new();
        let mut list: SkipList<i64> = SkipList::new(2, 23);
        apply(&mut list, &mut model, &ops);
        let out = list.to_sorted_vec();
        for w in out.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "not strictly ascending: {:?}", w);
        }
        let want: Vec<(Vec<u32>, i64)> = model.into_iter().collect();
        prop_assert_eq!(out, want);
        prop_assert!(list.check_invariants().is_ok());
    }

    /// A list recycled through the pool behaves exactly like a fresh list
    /// given the same seed and ops: same contents, same comparison count,
    /// same accounted footprint, invariants intact.
    #[test]
    fn pool_recycling_is_observationally_invisible(
        warmup in proptest::collection::vec(
            (proptest::collection::vec(0u32..20, 2), 0i64..10), 0..200),
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..20, 2), 0i64..10), 0..200)) {
        let mut pool: SkipListPool<i64> = SkipListPool::new();
        // Dirty the pool's storage with an unrelated workload.
        let mut scratch = pool.acquire(2, 99);
        let mut model = BTreeMap::new();
        apply(&mut scratch, &mut model, &warmup);
        pool.release(scratch);
        prop_assert_eq!(pool.spare_count(), 1);

        let mut fresh: SkipList<i64> = SkipList::new(2, 7);
        let mut recycled = pool.acquire(2, 7);
        let mut fresh_model = BTreeMap::new();
        let mut recycled_model = BTreeMap::new();
        apply(&mut fresh, &mut fresh_model, &ops);
        apply(&mut recycled, &mut recycled_model, &ops);
        prop_assert!(fresh.iter_sorted().eq(recycled.iter_sorted()));
        prop_assert_eq!(fresh.comparisons(), recycled.comparisons());
        prop_assert_eq!(fresh.memory_bytes(), recycled.memory_bytes());
        prop_assert!(recycled.check_invariants().is_ok());
    }

    /// The structural invariants hold at every intermediate state, not
    /// just at the end of a sequence.
    #[test]
    fn invariants_never_raised_mid_sequence(ops in proptest::collection::vec(
        proptest::collection::vec(0u32..8, 1), 0..120)) {
        let mut list: SkipList<u64> = SkipList::new(1, 31);
        for key in &ops {
            list.insert_or_update(key, || 1, |v| *v += 1);
            if let Err(e) = list.check_invariants() {
                prop_assert!(false, "invariant raised mid-sequence: {e:?}");
            }
        }
    }
}
