// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

#![warn(missing_docs)]

//! An arena-based skip list keyed by fixed-arity `u32` tuples.
//!
//! This is the cuboid cell store behind the paper's ASL algorithm
//! (Section 3.3) and POL (Chapter 5). The paper chose a skip list (Pugh,
//! CACM 1990) for three reasons it lists explicitly: balanced-tree-like
//! average behaviour with a much simpler implementation, small per-node
//! overhead, and *incremental* growth with the sort order always maintained
//! — cells can stream in and the cuboid can be emitted in sorted order at
//! any time, which is what makes ASL's sort-sharing and POL's progressive
//! refinement work.
//!
//! Implementation notes:
//!
//! * Nodes live in flat arenas (`keys`, `values`, links) indexed by `u32`,
//!   not behind per-node allocations — cache-friendly and entirely safe
//!   code.
//! * As in the thesis, a node has at most [`MAX_LEVEL`] (16) forward links;
//!   levels are drawn geometrically (p = 1/4) from a seeded RNG so every run
//!   is reproducible.
//! * Every key comparison is counted ([`SkipList::comparisons`]); the
//!   simulated cluster charges CPU time from these counters, which is how
//!   the reproduction captures ASL's growing key-comparison cost at high
//!   dimensionality (Figure 4.4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Maximum number of forward links per node (the thesis caps this at 16).
pub const MAX_LEVEL: usize = 16;

/// Sentinel "null" link.
const NIL: u32 = u32::MAX;

/// A skip list mapping fixed-arity `u32` keys to values of type `V`.
///
/// Keys are slices of exactly `arity` values, compared lexicographically.
///
/// ```
/// use icecube_skiplist::SkipList;
///
/// let mut cells: SkipList<u64> = SkipList::new(2, 42);
/// cells.insert_or_update(&[3, 1], || 1, |c| *c += 1);
/// cells.insert_or_update(&[1, 2], || 1, |c| *c += 1);
/// cells.insert_or_update(&[3, 1], || 1, |c| *c += 1);
/// // Iteration is always in sorted key order — the property ASL relies on.
/// let keys: Vec<_> = cells.iter().map(|(k, _)| k.to_vec()).collect();
/// assert_eq!(keys, vec![vec![1, 2], vec![3, 1]]);
/// assert_eq!(cells.get(&[3, 1]), Some(&2));
/// ```
#[derive(Debug, Clone)]
pub struct SkipList<V> {
    arity: usize,
    /// Concatenated keys; node `i` owns `keys[i*arity..(i+1)*arity]`.
    keys: Vec<u32>,
    values: Vec<V>,
    /// Concatenated forward links; node `i` owns
    /// `links[link_start[i] .. link_start[i] + level[i]]`.
    links: Vec<u32>,
    link_start: Vec<u32>,
    node_level: Vec<u8>,
    /// Forward links of the head pseudo-node, one per level.
    head: [u32; MAX_LEVEL],
    /// Highest level currently in use.
    level: usize,
    rng: SmallRng,
    comparisons: u64,
}

impl<V> SkipList<V> {
    /// Creates an empty skip list for keys of `arity` values.
    pub fn new(arity: usize, seed: u64) -> Self {
        assert!(arity > 0, "arity must be positive");
        SkipList {
            arity,
            keys: Vec::new(),
            values: Vec::new(),
            links: Vec::new(),
            link_start: Vec::new(),
            node_level: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            rng: SmallRng::seed_from_u64(seed),
            comparisons: 0,
        }
    }

    /// Creates an empty skip list pre-sized for `capacity` nodes.
    pub fn with_capacity(arity: usize, seed: u64, capacity: usize) -> Self {
        let mut s = SkipList::new(arity, seed);
        s.keys.reserve(capacity * arity);
        s.values.reserve(capacity);
        s.link_start.reserve(capacity);
        s.node_level.reserve(capacity);
        // Expected links per node is 1/(1-p) = 4/3.
        s.links.reserve(capacity + capacity / 2);
        s
    }

    /// Key arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cumulative number of `u32` element comparisons performed by searches
    /// and insertions. The cluster simulator charges CPU time from this.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Resets the comparison counter, returning the previous value.
    pub fn take_comparisons(&mut self) -> u64 {
        std::mem::take(&mut self.comparisons)
    }

    /// Approximate memory footprint in bytes (keys + values + links).
    pub fn memory_bytes(&self) -> u64 {
        (self.keys.len() * 4
            + self.values.len() * std::mem::size_of::<V>()
            + self.links.len() * 4
            + self.link_start.len() * 4
            + self.node_level.len()) as u64
    }

    #[inline]
    fn key_of(&self, node: u32) -> &[u32] {
        let i = node as usize * self.arity;
        &self.keys[i..i + self.arity]
    }

    #[inline]
    fn link(&self, node: u32, lvl: usize) -> u32 {
        if node == NIL {
            NIL
        } else {
            self.links[self.link_start[node as usize] as usize + lvl]
        }
    }

    fn set_link(&mut self, node: u32, lvl: usize, target: u32) {
        let i = self.link_start[node as usize] as usize + lvl;
        self.links[i] = target;
    }

    /// Lexicographic comparison that counts element comparisons.
    #[inline]
    fn cmp_key(&mut self, node: u32, key: &[u32]) -> Ordering {
        let a = node as usize * self.arity;
        for (i, &k) in key.iter().enumerate() {
            self.comparisons += 1;
            match self.keys[a + i].cmp(&k) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// Walks the search path for `key`, filling `update` with the last node
    /// strictly less than `key` at each level (NIL meaning the head).
    /// Returns the candidate node at level 0 (the first node >= key).
    fn search_path(&mut self, key: &[u32], update: &mut [u32; MAX_LEVEL]) -> u32 {
        let mut x = NIL; // NIL as "head"
        for lvl in (0..self.level).rev() {
            loop {
                let next = if x == NIL {
                    self.head[lvl]
                } else {
                    self.link(x, lvl)
                };
                if next == NIL || self.cmp_key(next, key) != Ordering::Less {
                    break;
                }
                x = next;
            }
            update[lvl] = x;
        }
        if x == NIL {
            self.head[0]
        } else {
            self.link(x, 0)
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u32]) -> Option<&V> {
        debug_assert_eq!(key.len(), self.arity);
        let mut update = [NIL; MAX_LEVEL];
        let cand = self.search_path(key, &mut update);
        if cand != NIL && self.cmp_key(cand, key) == Ordering::Equal {
            Some(&self.values[cand as usize])
        } else {
            None
        }
    }

    /// Inserts `key` with `init()` if absent, otherwise applies `update` to
    /// the existing value. Returns `true` when a new node was created.
    pub fn insert_or_update(
        &mut self,
        key: &[u32],
        init: impl FnOnce() -> V,
        update: impl FnOnce(&mut V),
    ) -> bool {
        debug_assert_eq!(key.len(), self.arity);
        let mut path = [NIL; MAX_LEVEL];
        let cand = self.search_path(key, &mut path);
        if cand != NIL && self.cmp_key(cand, key) == Ordering::Equal {
            update(&mut self.values[cand as usize]);
            return false;
        }
        // Draw the level: geometric with p = 1/4, capped at MAX_LEVEL.
        // One RNG draw: each pair of trailing zero bits is one promotion
        // (P(bit pair == 00) = 1/4), identical in distribution to repeated
        // quarter-probability coin flips but much cheaper per insert.
        let r: u32 = self.rng.gen();
        let lvl = (1 + r.trailing_zeros() as usize / 2).min(MAX_LEVEL);
        if lvl > self.level {
            for slot in &mut path[self.level..lvl] {
                *slot = NIL;
            }
            self.level = lvl;
        }
        let node = self.values.len() as u32;
        self.keys.extend_from_slice(key);
        self.values.push(init());
        self.node_level.push(lvl as u8);
        self.link_start.push(self.links.len() as u32);
        for (l, &prev) in path.iter().enumerate().take(lvl) {
            let next = if prev == NIL {
                self.head[l]
            } else {
                self.link(prev, l)
            };
            self.links.push(next);
            if prev == NIL {
                self.head[l] = node;
            } else {
                self.set_link(prev, l, node);
            }
        }
        true
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            list: self,
            node: self.head[0],
        }
    }

    /// The smallest key, if any.
    pub fn first_key(&self) -> Option<&[u32]> {
        if self.head[0] == NIL {
            None
        } else {
            Some(self.key_of(self.head[0]))
        }
    }

    /// Collects all entries into a sorted `Vec` of `(key, value)` clones.
    pub fn to_sorted_vec(&self) -> Vec<(Vec<u32>, V)>
    where
        V: Clone,
    {
        // check:allow(no-clone-hot-path): deliberate clone-out API for
        // verification and tests; the probe/insert path never calls it.
        self.iter().map(|(k, v)| (k.to_vec(), v.clone())).collect()
    }

    /// Checks internal structural invariants; used by property tests.
    ///
    /// Verifies that every level's linked list is strictly ascending and
    /// that each level is a subsequence of the level below.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        for lvl in 0..self.level {
            let mut node = self.head[lvl];
            let mut prev: Option<u32> = None;
            while node != NIL {
                if (self.node_level[node as usize] as usize) <= lvl {
                    return Err(InvariantError::NodeAboveLevel { node });
                }
                if let Some(p) = prev {
                    if self.key_of(p) >= self.key_of(node) {
                        return Err(InvariantError::NotAscending { level: lvl, node });
                    }
                }
                prev = Some(node);
                node = self.link(node, lvl);
            }
        }
        // Level-0 chain must contain every node.
        let mut seen = 0usize;
        let mut node = self.head[0];
        while node != NIL {
            seen += 1;
            node = self.link(node, 0);
        }
        if seen != self.len() {
            return Err(InvariantError::ChainLenMismatch {
                seen,
                expected: self.len(),
            });
        }
        Ok(())
    }
}

/// A structural-invariant violation reported by
/// [`SkipList::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantError {
    /// A node appears in a level's chain above its own tower height.
    NodeAboveLevel {
        /// The offending node index.
        node: u32,
    },
    /// A level's chain is not strictly ascending by key.
    NotAscending {
        /// The level whose ordering broke.
        level: usize,
        /// The node at which the ordering broke.
        node: u32,
    },
    /// The level-0 chain does not contain every node.
    ChainLenMismatch {
        /// Nodes counted on the level-0 chain.
        seen: usize,
        /// Nodes the list believes it holds.
        expected: usize,
    },
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantError::NodeAboveLevel { node } => {
                write!(f, "node {node} linked above its level")
            }
            InvariantError::NotAscending { level, node } => {
                write!(f, "level {level} not strictly ascending at {node}")
            }
            InvariantError::ChainLenMismatch { seen, expected } => {
                write!(f, "level-0 chain has {seen} nodes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

/// Ordered iterator over `(key, &value)` entries.
pub struct Iter<'a, V> {
    list: &'a SkipList<V>,
    node: u32,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (&'a [u32], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.node == NIL {
            return None;
        }
        let n = self.node;
        self.node = self.list.link(n, 0);
        Some((self.list.key_of(n), &self.list.values[n as usize]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.list.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut s: SkipList<i64> = SkipList::new(2, 1);
        assert!(s.insert_or_update(&[3, 1], || 10, |_| unreachable!()));
        assert!(s.insert_or_update(&[1, 2], || 20, |_| unreachable!()));
        assert!(!s.insert_or_update(&[3, 1], || 0, |v| *v += 5));
        assert_eq!(s.get(&[3, 1]), Some(&15));
        assert_eq!(s.get(&[1, 2]), Some(&20));
        assert_eq!(s.get(&[9, 9]), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s: SkipList<u32> = SkipList::new(1, 2);
        for k in [17u32, 5, 9, 1, 12, 3, 21, 7] {
            s.insert_or_update(&[k], || k, |_| {});
        }
        let keys: Vec<u32> = s.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9, 12, 17, 21]);
        assert_eq!(s.first_key(), Some(&[1u32][..]));
    }

    #[test]
    fn duplicate_keys_update_in_place() {
        let mut s: SkipList<u64> = SkipList::new(3, 3);
        for _ in 0..100 {
            s.insert_or_update(&[1, 2, 3], || 1, |v| *v += 1);
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[1, 2, 3]), Some(&100));
    }

    #[test]
    fn comparisons_are_counted_and_resettable() {
        let mut s: SkipList<u32> = SkipList::new(2, 4);
        for k in 0..100u32 {
            s.insert_or_update(&[k / 10, k % 10], || 0, |_| {});
        }
        assert!(s.comparisons() > 0);
        let c = s.take_comparisons();
        assert!(c > 0);
        assert_eq!(s.comparisons(), 0);
    }

    #[test]
    fn longer_keys_cost_more_comparisons() {
        // The Figure 4.4 effect: ASL's key comparison cost grows with the
        // number of dimensions.
        let mut short: SkipList<u32> = SkipList::new(2, 5);
        let mut long: SkipList<u32> = SkipList::new(12, 5);
        let mut long_key = [7u32; 12];
        for k in 0..500u32 {
            short.insert_or_update(&[7, k], || 0, |_| {});
            long_key[11] = k;
            long.insert_or_update(&long_key, || 0, |_| {});
        }
        assert!(long.comparisons() > short.comparisons());
    }

    #[test]
    fn empty_list_behaviour() {
        let mut s: SkipList<u32> = SkipList::new(4, 6);
        assert!(s.is_empty());
        assert_eq!(s.get(&[0, 0, 0, 0]), None);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first_key(), None);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut s: SkipList<u32> = SkipList::new(1, 42);
            for k in 0..1000u32 {
                s.insert_or_update(&[(k * 37) % 1000], || k, |_| {});
            }
            (s.comparisons(), s.memory_bytes())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn memory_accounting_grows() {
        let mut s: SkipList<u64> = SkipList::new(2, 8);
        let before = s.memory_bytes();
        for k in 0..100u32 {
            s.insert_or_update(&[k, k], || 0, |_| {});
        }
        assert!(s.memory_bytes() > before);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a: SkipList<u32> = SkipList::new(2, 9);
        let mut b: SkipList<u32> = SkipList::with_capacity(2, 9, 1000);
        for k in 0..200u32 {
            a.insert_or_update(&[k % 17, k], || k, |_| {});
            b.insert_or_update(&[k % 17, k], || k, |_| {});
        }
        assert_eq!(a.to_sorted_vec(), b.to_sorted_vec());
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 3), 0i64..100), 0..300)) {
            let mut model = std::collections::BTreeMap::<Vec<u32>, i64>::new();
            let mut s: SkipList<i64> = SkipList::new(3, 7);
            for (key, delta) in &ops {
                *model.entry(key.clone()).or_insert(0) += delta;
                s.insert_or_update(key, || *delta, |v| *v += delta);
            }
            let got: Vec<(Vec<u32>, i64)> = s.to_sorted_vec();
            let want: Vec<(Vec<u32>, i64)> =
                model.into_iter().collect();
            prop_assert_eq!(got, want);
            prop_assert!(s.check_invariants().is_ok());
        }

        #[test]
        fn invariants_hold_under_random_inserts(keys in proptest::collection::vec(
            proptest::collection::vec(0u32..50, 2), 0..500)) {
            let mut s: SkipList<u32> = SkipList::new(2, 11);
            for key in &keys {
                s.insert_or_update(key, || 1, |v| *v += 1);
            }
            prop_assert!(s.check_invariants().is_ok());
            // Iteration yields strictly ascending unique keys.
            let collected: Vec<Vec<u32>> = s.iter().map(|(k, _)| k.to_vec()).collect();
            for w in collected.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
