// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

#![warn(missing_docs)]

//! An arena-based skip list keyed by fixed-arity `u32` tuples.
//!
//! This is the cuboid cell store behind the paper's ASL algorithm
//! (Section 3.3) and POL (Chapter 5). The paper chose a skip list (Pugh,
//! CACM 1990) for three reasons it lists explicitly: balanced-tree-like
//! average behaviour with a much simpler implementation, small per-node
//! overhead, and *incremental* growth with the sort order always maintained
//! — cells can stream in and the cuboid can be emitted in sorted order at
//! any time, which is what makes ASL's sort-sharing and POL's progressive
//! refinement work.
//!
//! Implementation notes:
//!
//! * Nodes live interleaved in one flat `u32` arena — each record is
//!   `[value index, key, forward links]` — so a search touches one
//!   contiguous record per node visited instead of three parallel arrays.
//!   Links are record offsets, not pointers: entirely safe code.
//! * Retired lists can hand their arenas back to a [`SkipListPool`]; a
//!   recycled list is observationally identical to a fresh one (same RNG
//!   stream, counters, and contents) but skips the allocation and page
//!   faults of cold storage — ASL builds hundreds of cuboid lists per
//!   run and recycles them through one pool.
//! * As in the thesis, a node has at most [`MAX_LEVEL`] (16) forward links;
//!   levels are drawn geometrically (p = 1/4) from a seeded RNG so every run
//!   is reproducible.
//! * Every key comparison is counted ([`SkipList::comparisons`]); the
//!   simulated cluster charges CPU time from these counters, which is how
//!   the reproduction captures ASL's growing key-comparison cost at high
//!   dimensionality (Figure 4.4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;

/// Maximum number of forward links per node (the thesis caps this at 16).
pub const MAX_LEVEL: usize = 16;

/// Sentinel "null" link.
const NIL: u32 = u32::MAX;

/// A skip list mapping fixed-arity `u32` keys to values of type `V`.
///
/// Keys are slices of exactly `arity` values, compared lexicographically.
///
/// ```
/// use icecube_skiplist::SkipList;
///
/// let mut cells: SkipList<u64> = SkipList::new(2, 42);
/// cells.insert_or_update(&[3, 1], || 1, |c| *c += 1);
/// cells.insert_or_update(&[1, 2], || 1, |c| *c += 1);
/// cells.insert_or_update(&[3, 1], || 1, |c| *c += 1);
/// // Iteration is always in sorted key order — the property ASL relies on.
/// let keys: Vec<_> = cells.iter().map(|(k, _)| k.to_vec()).collect();
/// assert_eq!(keys, vec![vec![1, 2], vec![3, 1]]);
/// assert_eq!(cells.get(&[3, 1]), Some(&2));
/// ```
#[derive(Debug, Clone)]
pub struct SkipList<V> {
    arity: usize,
    /// Interleaved node records. Node `i`'s record at offset `off[i]` is
    /// `[i, key (arity words), forward links (level[i] words)]`; links
    /// hold the *record offset* of the successor (or [`NIL`]).
    arena: Vec<u32>,
    /// Record offset of each node, in insertion order.
    off: Vec<u32>,
    node_level: Vec<u8>,
    values: Vec<V>,
    /// Forward links of the head pseudo-node, one per level.
    head: [u32; MAX_LEVEL],
    /// Highest level currently in use.
    level: usize,
    rng: SmallRng,
    comparisons: u64,
}

impl<V> SkipList<V> {
    /// Creates an empty skip list for keys of `arity` values.
    pub fn new(arity: usize, seed: u64) -> Self {
        assert!(arity > 0, "arity must be positive");
        SkipList {
            arity,
            arena: Vec::new(),
            off: Vec::new(),
            node_level: Vec::new(),
            values: Vec::new(),
            head: [NIL; MAX_LEVEL],
            level: 1,
            rng: SmallRng::seed_from_u64(seed),
            comparisons: 0,
        }
    }

    /// Creates an empty skip list pre-sized for `capacity` nodes.
    pub fn with_capacity(arity: usize, seed: u64, capacity: usize) -> Self {
        let mut s = SkipList::new(arity, seed);
        s.reserve(capacity);
        s
    }

    /// Pre-sizes the arenas for `capacity` additional nodes.
    fn reserve(&mut self, capacity: usize) {
        // Record = value index + key + links; expected links per node is
        // 1/(1-p) = 4/3.
        self.arena
            .reserve(capacity * (1 + self.arity) + capacity + capacity / 2);
        self.off.reserve(capacity);
        self.node_level.reserve(capacity);
        self.values.reserve(capacity);
    }

    /// Key arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cumulative number of `u32` element comparisons performed by searches
    /// and insertions. The cluster simulator charges CPU time from this.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Resets the comparison counter, returning the previous value.
    pub fn take_comparisons(&mut self) -> u64 {
        std::mem::take(&mut self.comparisons)
    }

    /// Approximate memory footprint in bytes (keys + values + links).
    ///
    /// `arena` holds one value-index word per node besides keys and links;
    /// subtracting it keeps the accounting identical to the paper-facing
    /// model (key words + link words + per-node offset and level bytes),
    /// independent of the record layout.
    pub fn memory_bytes(&self) -> u64 {
        ((self.arena.len() - self.values.len()) * 4
            + self.values.len() * std::mem::size_of::<V>()
            + self.off.len() * 4
            + self.node_level.len()) as u64
    }

    #[inline]
    fn key_of(&self, rec: u32) -> &[u32] {
        let i = rec as usize + 1;
        &self.arena[i..i + self.arity]
    }

    #[inline]
    fn value_index(&self, rec: u32) -> usize {
        self.arena[rec as usize] as usize
    }

    #[inline]
    fn link(&self, rec: u32, lvl: usize) -> u32 {
        if rec == NIL {
            NIL
        } else {
            self.arena[rec as usize + 1 + self.arity + lvl]
        }
    }

    fn set_link(&mut self, rec: u32, lvl: usize, target: u32) {
        let i = rec as usize + 1 + self.arity + lvl;
        self.arena[i] = target;
    }

    /// Lexicographic comparison that counts element comparisons.
    #[inline]
    fn cmp_key(&mut self, rec: u32, key: &[u32]) -> Ordering {
        let a = rec as usize + 1;
        let node_key = &self.arena[a..a + key.len()];
        for (i, (&n, &k)) in node_key.iter().zip(key).enumerate() {
            match n.cmp(&k) {
                Ordering::Equal => {}
                o => {
                    self.comparisons += i as u64 + 1;
                    return o;
                }
            }
        }
        self.comparisons += key.len() as u64;
        Ordering::Equal
    }

    /// Walks the search path for `key`, filling `update` with the last node
    /// strictly less than `key` at each level (NIL meaning the head).
    /// Returns the candidate node at level 0 (the first node >= key).
    fn search_path(&mut self, key: &[u32], update: &mut [u32; MAX_LEVEL]) -> u32 {
        let mut x = NIL; // NIL as "head"
        for lvl in (0..self.level).rev() {
            loop {
                let next = if x == NIL {
                    self.head[lvl]
                } else {
                    self.link(x, lvl)
                };
                if next == NIL || self.cmp_key(next, key) != Ordering::Less {
                    break;
                }
                x = next;
            }
            update[lvl] = x;
        }
        if x == NIL {
            self.head[0]
        } else {
            self.link(x, 0)
        }
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u32]) -> Option<&V> {
        debug_assert_eq!(key.len(), self.arity);
        let mut update = [NIL; MAX_LEVEL];
        let cand = self.search_path(key, &mut update);
        if cand != NIL && self.cmp_key(cand, key) == Ordering::Equal {
            Some(&self.values[self.value_index(cand)])
        } else {
            None
        }
    }

    /// Inserts `key` with `init()` if absent, otherwise applies `update` to
    /// the existing value. Returns `true` when a new node was created.
    pub fn insert_or_update(
        &mut self,
        key: &[u32],
        init: impl FnOnce() -> V,
        update: impl FnOnce(&mut V),
    ) -> bool {
        debug_assert_eq!(key.len(), self.arity);
        let mut path = [NIL; MAX_LEVEL];
        let cand = self.search_path(key, &mut path);
        if cand != NIL && self.cmp_key(cand, key) == Ordering::Equal {
            let idx = self.value_index(cand);
            update(&mut self.values[idx]);
            return false;
        }
        // Draw the level: geometric with p = 1/4, capped at MAX_LEVEL.
        // One RNG draw: each pair of trailing zero bits is one promotion
        // (P(bit pair == 00) = 1/4), identical in distribution to repeated
        // quarter-probability coin flips but much cheaper per insert.
        let r: u32 = self.rng.gen();
        let lvl = (1 + r.trailing_zeros() as usize / 2).min(MAX_LEVEL);
        if lvl > self.level {
            for slot in &mut path[self.level..lvl] {
                *slot = NIL;
            }
            self.level = lvl;
        }
        let rec = self.arena.len() as u32;
        self.arena.push(self.values.len() as u32);
        self.arena.extend_from_slice(key);
        self.off.push(rec);
        self.node_level.push(lvl as u8);
        self.values.push(init());
        for (l, &prev) in path.iter().enumerate().take(lvl) {
            let next = if prev == NIL {
                self.head[l]
            } else {
                self.link(prev, l)
            };
            self.arena.push(next);
            if prev == NIL {
                self.head[l] = rec;
            } else {
                self.set_link(prev, l, rec);
            }
        }
        true
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            list: self,
            node: self.head[0],
        }
    }

    /// Iterates entries in ascending key order, borrowing keys and values
    /// straight out of the arena.
    ///
    /// This is the zero-copy counterpart of [`SkipList::to_sorted_vec`]:
    /// use it wherever the entries only need to be *read* in order —
    /// cloning out a whole cuboid just to look at it is the allocation
    /// pattern the kernels exist to avoid. (Today it is [`SkipList::iter`]
    /// under a name that states the ordering contract; callers should not
    /// rely on them staying the same iterator type.)
    pub fn iter_sorted(&self) -> Iter<'_, V> {
        self.iter()
    }

    /// The smallest key, if any.
    pub fn first_key(&self) -> Option<&[u32]> {
        if self.head[0] == NIL {
            None
        } else {
            Some(self.key_of(self.head[0]))
        }
    }

    /// Collects all entries into a sorted `Vec` of `(key, value)` clones.
    ///
    /// Prefer [`SkipList::iter_sorted`] when borrowing suffices; this
    /// exists for verification code that needs an owned snapshot.
    pub fn to_sorted_vec(&self) -> Vec<(Vec<u32>, V)>
    where
        V: Clone,
    {
        // check:allow(no-clone-hot-path): deliberate clone-out API for
        // verification and tests; the probe/insert path never calls it.
        self.iter().map(|(k, v)| (k.to_vec(), v.clone())).collect()
    }

    /// Checks internal structural invariants; used by property tests.
    ///
    /// Verifies that every level's linked list is strictly ascending, that
    /// each level is a subsequence of the level below, and that records and
    /// offsets agree.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        for (i, &rec) in self.off.iter().enumerate() {
            if self.value_index(rec) != i {
                return Err(InvariantError::RecordMismatch { node: i as u32 });
            }
        }
        for lvl in 0..self.level {
            let mut node = self.head[lvl];
            let mut prev: Option<u32> = None;
            while node != NIL {
                let id = self.value_index(node);
                if (self.node_level[id] as usize) <= lvl {
                    return Err(InvariantError::NodeAboveLevel { node: id as u32 });
                }
                if let Some(p) = prev {
                    if self.key_of(p) >= self.key_of(node) {
                        return Err(InvariantError::NotAscending {
                            level: lvl,
                            node: id as u32,
                        });
                    }
                }
                prev = Some(node);
                node = self.link(node, lvl);
            }
        }
        // Level-0 chain must contain every node.
        let mut seen = 0usize;
        let mut node = self.head[0];
        while node != NIL {
            seen += 1;
            node = self.link(node, 0);
        }
        if seen != self.len() {
            return Err(InvariantError::ChainLenMismatch {
                seen,
                expected: self.len(),
            });
        }
        Ok(())
    }
}

/// Recycled backing storage of one retired [`SkipList`].
struct Storage<V> {
    arena: Vec<u32>,
    off: Vec<u32>,
    node_level: Vec<u8>,
    values: Vec<V>,
}

impl<V> Default for Storage<V> {
    fn default() -> Self {
        Storage {
            arena: Vec::default(),
            off: Vec::default(),
            node_level: Vec::default(),
            values: Vec::default(),
        }
    }
}

/// A free list of retired skip-list arenas.
///
/// [`SkipListPool::acquire`] pops recycled storage (or starts empty on a
/// cold pool) and returns a list indistinguishable from
/// [`SkipList::new`] with the same arguments: the RNG is reseeded, the
/// counters zeroed, and the arenas cleared — only their *capacity*
/// survives, so a warm pool serves hundreds of cuboid builds without
/// touching the allocator. The acquire/release pair is deliberately free
/// of allocation sinks: it sits inside the kernels' per-task recursion,
/// which `icecube-check analyze` keeps allocation-free.
pub struct SkipListPool<V> {
    spares: Vec<Storage<V>>,
}

impl<V> SkipListPool<V> {
    /// An empty pool.
    pub fn new() -> Self {
        SkipListPool { spares: Vec::new() }
    }

    /// Number of retired arenas currently available.
    pub fn spare_count(&self) -> usize {
        self.spares.len()
    }

    /// Takes a list from the pool, reset to the observable state of
    /// `SkipList::new(arity, seed)`.
    pub fn acquire(&mut self, arity: usize, seed: u64) -> SkipList<V> {
        assert!(arity > 0, "arity must be positive");
        let mut s = self.spares.pop().unwrap_or_default();
        s.arena.clear();
        s.off.clear();
        s.node_level.clear();
        s.values.clear();
        SkipList {
            arity,
            arena: s.arena,
            off: s.off,
            node_level: s.node_level,
            values: s.values,
            head: [NIL; MAX_LEVEL],
            level: 1,
            rng: SmallRng::seed_from_u64(seed),
            comparisons: 0,
        }
    }

    /// [`SkipListPool::acquire`] pre-sized for `capacity` nodes, matching
    /// `SkipList::with_capacity(arity, seed, capacity)`.
    pub fn acquire_with_capacity(
        &mut self,
        arity: usize,
        seed: u64,
        capacity: usize,
    ) -> SkipList<V> {
        let mut list = self.acquire(arity, seed);
        list.reserve(capacity);
        list
    }

    /// Returns a retired list's storage to the pool.
    pub fn release(&mut self, list: SkipList<V>) {
        self.spares.push(Storage {
            arena: list.arena,
            off: list.off,
            node_level: list.node_level,
            values: list.values,
        });
    }
}

impl<V> Default for SkipListPool<V> {
    fn default() -> Self {
        SkipListPool::new()
    }
}

/// A structural-invariant violation reported by
/// [`SkipList::check_invariants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantError {
    /// A node's record does not round-trip through the offset table.
    RecordMismatch {
        /// The offending node index.
        node: u32,
    },
    /// A node appears in a level's chain above its own tower height.
    NodeAboveLevel {
        /// The offending node index.
        node: u32,
    },
    /// A level's chain is not strictly ascending by key.
    NotAscending {
        /// The level whose ordering broke.
        level: usize,
        /// The node at which the ordering broke.
        node: u32,
    },
    /// The level-0 chain does not contain every node.
    ChainLenMismatch {
        /// Nodes counted on the level-0 chain.
        seen: usize,
        /// Nodes the list believes it holds.
        expected: usize,
    },
}

impl std::fmt::Display for InvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantError::RecordMismatch { node } => {
                write!(f, "node {node} record/offset mismatch")
            }
            InvariantError::NodeAboveLevel { node } => {
                write!(f, "node {node} linked above its level")
            }
            InvariantError::NotAscending { level, node } => {
                write!(f, "level {level} not strictly ascending at {node}")
            }
            InvariantError::ChainLenMismatch { seen, expected } => {
                write!(f, "level-0 chain has {seen} nodes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

/// Ordered iterator over `(key, &value)` entries.
pub struct Iter<'a, V> {
    list: &'a SkipList<V>,
    node: u32,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (&'a [u32], &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.node == NIL {
            return None;
        }
        let n = self.node;
        self.node = self.list.link(n, 0);
        Some((
            self.list.key_of(n),
            &self.list.values[self.list.value_index(n)],
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.list.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut s: SkipList<i64> = SkipList::new(2, 1);
        assert!(s.insert_or_update(&[3, 1], || 10, |_| unreachable!()));
        assert!(s.insert_or_update(&[1, 2], || 20, |_| unreachable!()));
        assert!(!s.insert_or_update(&[3, 1], || 0, |v| *v += 5));
        assert_eq!(s.get(&[3, 1]), Some(&15));
        assert_eq!(s.get(&[1, 2]), Some(&20));
        assert_eq!(s.get(&[9, 9]), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s: SkipList<u32> = SkipList::new(1, 2);
        for k in [17u32, 5, 9, 1, 12, 3, 21, 7] {
            s.insert_or_update(&[k], || k, |_| {});
        }
        let keys: Vec<u32> = s.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9, 12, 17, 21]);
        assert_eq!(s.first_key(), Some(&[1u32][..]));
    }

    #[test]
    fn duplicate_keys_update_in_place() {
        let mut s: SkipList<u64> = SkipList::new(3, 3);
        for _ in 0..100 {
            s.insert_or_update(&[1, 2, 3], || 1, |v| *v += 1);
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&[1, 2, 3]), Some(&100));
    }

    #[test]
    fn comparisons_are_counted_and_resettable() {
        let mut s: SkipList<u32> = SkipList::new(2, 4);
        for k in 0..100u32 {
            s.insert_or_update(&[k / 10, k % 10], || 0, |_| {});
        }
        assert!(s.comparisons() > 0);
        let c = s.take_comparisons();
        assert!(c > 0);
        assert_eq!(s.comparisons(), 0);
    }

    #[test]
    fn longer_keys_cost_more_comparisons() {
        // The Figure 4.4 effect: ASL's key comparison cost grows with the
        // number of dimensions.
        let mut short: SkipList<u32> = SkipList::new(2, 5);
        let mut long: SkipList<u32> = SkipList::new(12, 5);
        let mut long_key = [7u32; 12];
        for k in 0..500u32 {
            short.insert_or_update(&[7, k], || 0, |_| {});
            long_key[11] = k;
            long.insert_or_update(&long_key, || 0, |_| {});
        }
        assert!(long.comparisons() > short.comparisons());
    }

    #[test]
    fn empty_list_behaviour() {
        let mut s: SkipList<u32> = SkipList::new(4, 6);
        assert!(s.is_empty());
        assert_eq!(s.get(&[0, 0, 0, 0]), None);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first_key(), None);
        s.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let mut s: SkipList<u32> = SkipList::new(1, 42);
            for k in 0..1000u32 {
                s.insert_or_update(&[(k * 37) % 1000], || k, |_| {});
            }
            (s.comparisons(), s.memory_bytes())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn memory_accounting_grows() {
        let mut s: SkipList<u64> = SkipList::new(2, 8);
        let before = s.memory_bytes();
        for k in 0..100u32 {
            s.insert_or_update(&[k, k], || 0, |_| {});
        }
        assert!(s.memory_bytes() > before);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a: SkipList<u32> = SkipList::new(2, 9);
        let mut b: SkipList<u32> = SkipList::with_capacity(2, 9, 1000);
        for k in 0..200u32 {
            a.insert_or_update(&[k % 17, k], || k, |_| {});
            b.insert_or_update(&[k % 17, k], || k, |_| {});
        }
        assert!(a.iter_sorted().eq(b.iter_sorted()));
    }

    #[test]
    fn pooled_list_is_indistinguishable_from_fresh() {
        let build = |mut s: SkipList<u32>| {
            for k in 0..500u32 {
                s.insert_or_update(&[(k * 131) % 997, k % 7], || k, |_| {});
            }
            s
        };
        let fresh = build(SkipList::new(2, 77));
        let mut pool: SkipListPool<u32> = SkipListPool::new();
        // Dirty the pool with an unrelated retired list first.
        let junk = build(pool.acquire(2, 1234));
        pool.release(junk);
        assert_eq!(pool.spare_count(), 1);
        let recycled = build(pool.acquire(2, 77));
        assert!(fresh.iter_sorted().eq(recycled.iter_sorted()));
        assert_eq!(fresh.comparisons(), recycled.comparisons());
        assert_eq!(fresh.memory_bytes(), recycled.memory_bytes());
        recycled.check_invariants().unwrap();
    }

    proptest! {
        #[test]
        fn behaves_like_btreemap(ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..16, 3), 0i64..100), 0..300)) {
            let mut model = std::collections::BTreeMap::<Vec<u32>, i64>::new();
            let mut s: SkipList<i64> = SkipList::new(3, 7);
            for (key, delta) in &ops {
                *model.entry(key.clone()).or_insert(0) += delta;
                s.insert_or_update(key, || *delta, |v| *v += delta);
            }
            let got: Vec<(Vec<u32>, i64)> = s.to_sorted_vec();
            let want: Vec<(Vec<u32>, i64)> =
                model.into_iter().collect();
            prop_assert_eq!(got, want);
            prop_assert!(s.check_invariants().is_ok());
        }

        #[test]
        fn invariants_hold_under_random_inserts(keys in proptest::collection::vec(
            proptest::collection::vec(0u32..50, 2), 0..500)) {
            let mut s: SkipList<u32> = SkipList::new(2, 11);
            for key in &keys {
                s.insert_or_update(key, || 1, |v| *v += 1);
            }
            prop_assert!(s.check_invariants().is_ok());
            // Iteration yields strictly ascending unique keys.
            let collected: Vec<Vec<u32>> = s.iter().map(|(k, _)| k.to_vec()).collect();
            for w in collected.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
