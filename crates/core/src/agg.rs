//! Aggregates and their classification (Gray et al., ICDE 1996).

/// The running aggregate of one cube cell.
///
/// The paper's queries are `SUM(measure) … HAVING COUNT(*) >= minsup`;
/// carrying count+sum+min+max covers all the *distributive* functions and,
/// by composition (`avg = sum/count`), the *algebraic* ones too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// `COUNT(*)` — the support the iceberg condition tests.
    pub count: u64,
    /// `SUM(measure)`.
    pub sum: i64,
    /// `MIN(measure)`.
    pub min: i64,
    /// `MAX(measure)`.
    pub max: i64,
}

impl Aggregate {
    /// The identity aggregate (empty cell).
    pub fn empty() -> Self {
        Aggregate {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// The aggregate of a single measure value.
    pub fn of(measure: i64) -> Self {
        Aggregate {
            count: 1,
            sum: measure,
            min: measure,
            max: measure,
        }
    }

    /// Folds one more measure value in.
    #[inline]
    pub fn update(&mut self, measure: i64) {
        self.count += 1;
        self.sum += measure;
        self.min = self.min.min(measure);
        self.max = self.max.max(measure);
    }

    /// Merges another partial aggregate (the distributive `G` of Gray et
    /// al.: `F(T) = G({F(Si)})` over any disjoint partition of the input).
    #[inline]
    pub fn merge(&mut self, other: &Aggregate) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The algebraic `AVG`, if the cell is non-empty.
    pub fn avg(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Whether the cell meets an iceberg minimum support.
    pub fn meets(&self, minsup: u64) -> bool {
        self.count >= minsup
    }
}

impl Default for Aggregate {
    fn default() -> Self {
        Aggregate::empty()
    }
}

/// Gray et al.'s classification of aggregate functions (Section 2.2).
///
/// * `Distributive`: `F(T) = G({F(Si)})` with a single intermediate value —
///   SUM, COUNT, MIN, MAX.
/// * `Algebraic`: an M-tuple of intermediates suffices — AVG (sum, count),
///   standard deviation, MaxN/MinN.
/// * `Holistic`: no constant-size intermediate — MEDIAN, RANK. These cannot
///   be computed from sub-aggregates, which is why the cube algorithms
///   carry only distributive state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggClass {
    /// Combinable with one intermediate value per partition.
    Distributive,
    /// Combinable with a constant-size tuple of intermediates.
    Algebraic,
    /// Requires the full input.
    Holistic,
}

/// Named aggregate functions and their classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)`.
    Count,
    /// `SUM(measure)`.
    Sum,
    /// `MIN(measure)`.
    Min,
    /// `MAX(measure)`.
    Max,
    /// `AVG(measure)`.
    Avg,
    /// `MEDIAN(measure)` — holistic; listed for classification only.
    Median,
    /// `RANK` — holistic; listed for classification only.
    Rank,
}

impl AggFn {
    /// The function's class per Gray et al.
    pub fn class(self) -> AggClass {
        match self {
            AggFn::Count | AggFn::Sum | AggFn::Min | AggFn::Max => AggClass::Distributive,
            AggFn::Avg => AggClass::Algebraic,
            AggFn::Median | AggFn::Rank => AggClass::Holistic,
        }
    }

    /// Whether [`Aggregate`] can evaluate this function.
    pub fn supported(self) -> bool {
        self.class() != AggClass::Holistic
    }

    /// Evaluates the function over a finished aggregate, if supported.
    pub fn eval(self, agg: &Aggregate) -> Option<f64> {
        match self {
            AggFn::Count => Some(agg.count as f64),
            AggFn::Sum => Some(agg.sum as f64),
            AggFn::Min => (agg.count > 0).then_some(agg.min as f64),
            AggFn::Max => (agg.count > 0).then_some(agg.max as f64),
            AggFn::Avg => agg.avg(),
            AggFn::Median | AggFn::Rank => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_accumulates_all_components() {
        let mut a = Aggregate::empty();
        for m in [5, -3, 12] {
            a.update(m);
        }
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 14);
        assert_eq!(a.min, -3);
        assert_eq!(a.max, 12);
        assert!((a.avg().unwrap() - 14.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_update_over_partitions() {
        // The distributive property: aggregating disjoint partitions and
        // merging equals aggregating everything.
        let values = [4i64, 8, -1, 0, 7, 3, 3];
        let mut whole = Aggregate::empty();
        for &v in &values {
            whole.update(v);
        }
        let mut left = Aggregate::empty();
        let mut right = Aggregate::empty();
        for &v in &values[..3] {
            left.update(v);
        }
        for &v in &values[3..] {
            right.update(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn empty_cell_has_no_avg_and_merges_as_identity() {
        let empty = Aggregate::empty();
        assert_eq!(empty.avg(), None);
        let mut a = Aggregate::of(9);
        a.merge(&empty);
        assert_eq!(a, Aggregate::of(9));
    }

    #[test]
    fn meets_tests_count_only() {
        let mut a = Aggregate::of(1_000_000);
        assert!(a.meets(1));
        assert!(!a.meets(2));
        a.update(0);
        assert!(a.meets(2));
    }

    #[test]
    fn classification_matches_gray() {
        assert_eq!(AggFn::Sum.class(), AggClass::Distributive);
        assert_eq!(AggFn::Count.class(), AggClass::Distributive);
        assert_eq!(AggFn::Avg.class(), AggClass::Algebraic);
        assert_eq!(AggFn::Median.class(), AggClass::Holistic);
        assert!(!AggFn::Median.supported());
        assert!(AggFn::Avg.supported());
    }

    #[test]
    fn eval_handles_empty_cells() {
        let empty = Aggregate::empty();
        assert_eq!(AggFn::Min.eval(&empty), None);
        assert_eq!(AggFn::Count.eval(&empty), Some(0.0));
        assert_eq!(AggFn::Median.eval(&Aggregate::of(1)), None);
        assert_eq!(AggFn::Max.eval(&Aggregate::of(5)), Some(5.0));
    }
}
