//! Task-level crash recovery: checkpoint and rollback.
//!
//! The self-healing scheduler re-runs a lost task on a surviving node.
//! For the final cube to be *bit-identical* to a fault-free run, the
//! victim's partial output must vanish first — both the cells it pushed
//! into its sink and the matching `cells_written` / `bytes_written`
//! counters (the invariant `sum(sink.count) == stats.total_cells()` must
//! survive every crash). A [`TaskGuard`] captures both before a task
//! starts and restores them if the node dies mid-task.
//!
//! Time is deliberately *not* rolled back: the virtual nanoseconds the
//! doomed attempt burned really passed — that cost is exactly what the
//! fault experiments measure.

use crate::cell::{CellBuf, CellMark};
use icecube_cluster::SimNode;

/// A pre-task checkpoint of one node's output state.
#[derive(Debug, Clone, Copy)]
pub struct TaskGuard {
    mark: CellMark,
    cells_written: u64,
    bytes_written: u64,
}

impl TaskGuard {
    /// Captures the node's output position before a task starts.
    pub fn checkpoint(node: &SimNode, sink: &CellBuf) -> Self {
        TaskGuard {
            mark: sink.mark(),
            cells_written: node.stats.cells_written,
            bytes_written: node.stats.bytes_written,
        }
    }

    /// Discards everything the task emitted since the checkpoint: the
    /// sink's cells and the node's output counters, keeping them in
    /// lockstep. Call when the node died mid-task, before the task is
    /// reassigned.
    pub fn rollback(&self, node: &mut SimNode, sink: &mut CellBuf) {
        sink.truncate(&self.mark);
        node.stats.cells_written = self.cells_written;
        node.stats.bytes_written = self.bytes_written;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSink;
    use icecube_cluster::{ClusterConfig, FaultPlan, SimCluster};
    use icecube_lattice::CuboidMask;

    #[test]
    fn rollback_erases_a_partial_task() {
        let mut c = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        let node = &mut c.nodes[0];
        let agg = crate::agg::Aggregate::of(1);
        sink.emit(CuboidMask::from_dims(&[0]), &[1], &agg);
        node.write_cells(1, 20, 1);
        let durable_cells = node.stats.cells_written;

        let guard = TaskGuard::checkpoint(node, &sink);
        sink.emit(CuboidMask::from_dims(&[1]), &[2], &agg);
        sink.emit(CuboidMask::from_dims(&[1]), &[3], &agg);
        node.write_cells(2, 40, 2);
        guard.rollback(node, &mut sink);

        assert_eq!(sink.count, 1);
        assert_eq!(sink.cells.len(), 1);
        assert_eq!(node.stats.cells_written, durable_cells);
        assert_eq!(sink.count, node.stats.cells_written);
    }

    #[test]
    fn rollback_matches_what_a_crashed_write_recorded() {
        // A node that dies mid-task: write_cells stops counting at the
        // crash, and rollback clears whatever was counted before it.
        let config =
            ClusterConfig::fast_ethernet(1).with_faults(FaultPlan::none().crash(0, 2_000_000));
        let mut c = SimCluster::new(config);
        let mut sink = CellBuf::counting();
        let agg = crate::agg::Aggregate::of(1);
        let guard = TaskGuard::checkpoint(&c.nodes[0], &sink);
        for i in 0..100 {
            sink.emit(CuboidMask::from_dims(&[0]), &[i], &agg);
            c.nodes[0].write_cells(1, 20_000, 1);
            if c.nodes[0].is_dead() {
                guard.rollback(&mut c.nodes[0], &mut sink);
                break;
            }
        }
        assert!(c.nodes[0].is_dead());
        assert_eq!(sink.count, c.nodes[0].stats.cells_written);
        assert_eq!(sink.count, 0);
    }
}
