//! Output verification: compare any algorithm's cells against the naive
//! reference (or against each other).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::cell::{sort_cells, Cell};
use std::fmt;

/// The difference between two cell sets.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CellDiff {
    /// Cells present in `expected` but missing from `actual`.
    pub missing: Vec<Cell>,
    /// Cells present in `actual` but not in `expected`.
    pub unexpected: Vec<Cell>,
    /// Cells present in both but with different aggregates.
    pub mismatched: Vec<(Cell, Cell)>,
}

impl CellDiff {
    /// True when the two sets were identical.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty() && self.mismatched.is_empty()
    }
}

impl fmt::Display for CellDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "outputs identical");
        }
        writeln!(
            f,
            "{} missing, {} unexpected, {} mismatched",
            self.missing.len(),
            self.unexpected.len(),
            self.mismatched.len()
        )?;
        for c in self.missing.iter().take(5) {
            writeln!(f, "  missing    {} {:?}", c.cuboid, c.key)?;
        }
        for c in self.unexpected.iter().take(5) {
            writeln!(f, "  unexpected {} {:?}", c.cuboid, c.key)?;
        }
        for (e, a) in self.mismatched.iter().take(5) {
            writeln!(
                f,
                "  mismatch   {} {:?}: {:?} vs {:?}",
                e.cuboid, e.key, e.agg, a.agg
            )?;
        }
        Ok(())
    }
}

/// Compares two cell sets (order-insensitive). Inputs are sorted in place.
pub fn diff_cells(expected: &mut [Cell], actual: &mut [Cell]) -> CellDiff {
    sort_cells(expected);
    sort_cells(actual);
    let mut diff = CellDiff::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < expected.len() && j < actual.len() {
        let e = &expected[i];
        let a = &actual[j];
        match (e.cuboid, &e.key).cmp(&(a.cuboid, &a.key)) {
            std::cmp::Ordering::Less => {
                diff.missing.push(e.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff.unexpected.push(a.clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if e.agg != a.agg {
                    diff.mismatched.push((e.clone(), a.clone()));
                }
                i += 1;
                j += 1;
            }
        }
    }
    diff.missing.extend_from_slice(&expected[i..]);
    diff.unexpected.extend_from_slice(&actual[j..]);
    diff
}

/// Asserts two cell sets are equal, with a readable diff on failure.
pub fn assert_same_cells(mut expected: Vec<Cell>, mut actual: Vec<Cell>, context: &str) {
    let diff = diff_cells(&mut expected, &mut actual);
    // check:allow(panic-in-lib): this function IS the assertion — it
    // exists so tests and the verification harness can abort with a
    // readable cell diff.
    assert!(diff.is_empty(), "{context}: {diff}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;
    use icecube_lattice::CuboidMask;

    fn cell(dims: &[usize], key: &[u32], count: u64) -> Cell {
        let mut agg = Aggregate::empty();
        for _ in 0..count {
            agg.update(1);
        }
        Cell {
            cuboid: CuboidMask::from_dims(dims),
            key: key.to_vec(),
            agg,
        }
    }

    #[test]
    fn identical_sets_diff_empty() {
        let a = vec![cell(&[0], &[1], 2), cell(&[1], &[0], 3)];
        let mut x = a.clone();
        let mut y = a;
        assert!(diff_cells(&mut x, &mut y).is_empty());
    }

    #[test]
    fn order_does_not_matter() {
        let mut x = vec![cell(&[0], &[1], 2), cell(&[1], &[0], 3)];
        let mut y = vec![cell(&[1], &[0], 3), cell(&[0], &[1], 2)];
        assert!(diff_cells(&mut x, &mut y).is_empty());
    }

    #[test]
    fn missing_and_unexpected_are_reported() {
        let mut x = vec![cell(&[0], &[1], 2), cell(&[0], &[2], 2)];
        let mut y = vec![cell(&[0], &[2], 2), cell(&[0], &[3], 2)];
        let d = diff_cells(&mut x, &mut y);
        assert_eq!(d.missing.len(), 1);
        assert_eq!(d.unexpected.len(), 1);
        assert_eq!(d.missing[0].key, vec![1]);
        assert_eq!(d.unexpected[0].key, vec![3]);
        assert!(d.to_string().contains("1 missing"));
    }

    #[test]
    fn aggregate_mismatch_is_reported() {
        let mut x = vec![cell(&[0], &[1], 2)];
        let mut y = vec![cell(&[0], &[1], 5)];
        let d = diff_cells(&mut x, &mut y);
        assert_eq!(d.mismatched.len(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "test-context")]
    fn assert_same_cells_panics_with_context() {
        assert_same_cells(vec![cell(&[0], &[1], 2)], vec![], "test-context");
    }
}
