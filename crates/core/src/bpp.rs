//! Algorithm BPP — Breadth-first writing, Partitioned, Parallel BUC
//! (Section 3.2, Figures 3.3 and 3.5).
//!
//! BPP improves on RP in two ways:
//!
//! 1. **Data decomposition.** For each attribute `Aᵢ`, the dataset is
//!    range-partitioned into `n` chunks; node `j` keeps chunk `Rᵢ(j)` on
//!    its local disk and computes the *partial* cuboids of the subtree
//!    rooted at `Aᵢ` over it. Because all cuboids of that subtree contain
//!    `Aᵢ`, and chunks are disjoint `Aᵢ`-ranges, the partial cuboids from
//!    different nodes are disjoint — the final cuboids are their plain
//!    union, no merge needed.
//! 2. **Breadth-first writing** (BPP-BUC): each cuboid is written
//!    contiguously rather than scattered, cutting I/O roughly 5× on the
//!    paper's baseline (Figure 3.6).
//!
//! BPP's weakness is that chunk sizes follow the data's skew: a dimension
//! whose values are hot in one range (or has tiny cardinality, like
//! *Gender*) partitions unevenly and the static assignment cannot adapt —
//! the motivation for ASL.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::algorithms::{finish, RunOptions, RunOutcome};
use crate::buc::{bpp_buc_with, BucScratch};
use crate::cell::CellBuf;
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::recover::TaskGuard;
use icecube_cluster::{ClusterConfig, SimCluster, SimNode};
use icecube_data::Relation;
use icecube_exec::{TaskSpec, Workload};
use icecube_lattice::{CuboidMask, TreeTask};

/// Range-partitions the relation on every attribute: `chunks[i][j]` is
/// attribute `i`'s `j`-th range chunk. Shared by the simulator driver
/// (`parts` = node count) and the executor plan (`parts` fixed, so the
/// task list is independent of worker count). Any chunk count yields the
/// same cube: partial cuboids over disjoint ranges union exactly.
pub(crate) fn partition_chunks(rel: &Relation, d: usize, parts: usize) -> Vec<Vec<Relation>> {
    (0..d).map(|i| rel.range_partition(i, parts)).collect()
}

/// BPP's backend-agnostic decomposition: one task per non-empty
/// (attribute, chunk) pair, computing the partial subtree rooted at that
/// attribute over that chunk with breadth-first-writing BUC.
pub(crate) struct BppWorkload {
    chunks: Vec<Vec<Relation>>,
    d: usize,
    minsup: u64,
    collect: bool,
    /// `(attribute, chunk)` per task id.
    tasks: Vec<(usize, usize)>,
}

/// Builds BPP's executor plan, partitioning every attribute `parts` ways.
pub(crate) fn exec_workload(
    rel: &Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
    parts: usize,
) -> (Vec<TaskSpec>, BppWorkload) {
    let d = query.dims;
    let chunks = partition_chunks(rel, d, parts);
    let mut tasks = Vec::new();
    // Chunk-major order mirrors the simulator's node-major visit order:
    // consecutive ids share a chunk owner, which is also the locality the
    // native pool's contiguous-block injection preserves.
    for j in 0..parts {
        for (i, chunk_list) in chunks.iter().enumerate() {
            if !chunk_list[j].is_empty() {
                tasks.push((i, j));
            }
        }
    }
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(id, &(i, j))| TaskSpec {
            id,
            affinity: CuboidMask::from_dims(&[i]).bits() as u64,
            weight: chunks[i][j].len() as u64,
        })
        .collect();
    let workload = BppWorkload {
        chunks,
        d,
        minsup: query.minsup,
        collect: opts.collect_cells,
        tasks,
    };
    (specs, workload)
}

impl Workload for BppWorkload {
    type Scratch = BucScratch;
    type Out = CellBuf;

    fn scratch(&self, _worker: usize) -> BucScratch {
        BucScratch::new()
    }

    fn run(&self, spec: &TaskSpec, scratch: &mut BucScratch, node: &mut SimNode) -> CellBuf {
        let (i, j) = self.tasks[spec.id];
        let task = TreeTask::full_subtree(CuboidMask::from_dims(&[i]), self.d);
        let chunk = &self.chunks[i][j];
        node.read_bytes(chunk.byte_size());
        node.charge_scan(chunk.len() as u64);
        let mut sink = if self.collect {
            CellBuf::collecting()
        } else {
            CellBuf::counting()
        };
        bpp_buc_with(scratch, chunk, self.minsup, task, node, &mut sink);
        sink
    }
}

/// Runs BPP over a simulated cluster.
///
/// Self-healing: a crashed node loses its (attribute, chunk) tasks; each
/// is re-run on the least-loaded survivor after the detection timeout.
/// The victim's chunk lived on its (now unreachable) local disk, so the
/// survivor re-derives it from the source relation on stable storage —
/// a full scan plus the chunk's moves — before computing the partial
/// subtree. Chunks are disjoint ranges, so the union stays exact.
pub fn run_bpp(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();
    let d = query.dims;

    // Pre-processing: range-partition on every attribute. Node `i mod n`
    // partitions attribute i and distributes the chunks (Figure 3.3). The
    // paper treats this as a pre-processing step outside the measured run;
    // `opts.include_bpp_partitioning` charges it anyway for ablations.
    if opts.include_bpp_partitioning {
        cluster.phase_start("partition");
    }
    let chunks = partition_chunks(rel, d, n);
    if opts.include_bpp_partitioning {
        for (i, parts) in chunks.iter().enumerate() {
            let owner = i % n;
            cluster.nodes[owner].read_bytes(rel.byte_size());
            cluster.nodes[owner].charge_scan(rel.len() as u64);
            cluster.nodes[owner].charge_moves(rel.len() as u64);
            for (j, part) in parts.iter().enumerate() {
                if j != owner && !part.is_empty() {
                    cluster.send(owner, j, part.byte_size());
                }
            }
        }
    }
    if opts.include_bpp_partitioning {
        cluster.barrier();
        cluster.phase_end("partition");
    }

    let mut sinks: Vec<CellBuf> = (0..n)
        .map(|_| {
            if opts.collect_cells {
                CellBuf::collecting()
            } else {
                CellBuf::counting()
            }
        })
        .collect();
    // Computation: node j reads its m local chunks and computes the
    // (partial) subtree rooted at each attribute over its chunk. Tasks
    // lost to a crash are queued as (attribute, chunk-owner) pairs with
    // the time the manager detects the loss.
    let detect = cluster.config.faults.policy.detect_timeout_ns;
    let mut recovery: Vec<((usize, usize), u64)> = Vec::new();
    // One arena scratch serves every (attribute, chunk) task, including
    // the recovery sweep: host-side reuse, invisible to the cost model.
    let mut scratch = BucScratch::new();
    cluster.phase_start("compute");
    for j in 0..n {
        if !cluster.nodes[j].is_dead() {
            let node = &mut cluster.nodes[j];
            for chunk_list in chunks.iter() {
                node.read_bytes(chunk_list[j].byte_size());
                node.charge_scan(chunk_list[j].len() as u64);
            }
            node.alloc(chunks.iter().map(|c| c[j].byte_size()).max().unwrap_or(0));
        }
        for (i, chunk_list) in chunks.iter().enumerate() {
            let chunk = &chunk_list[j];
            if chunk.is_empty() {
                continue;
            }
            if cluster.nodes[j].is_dead() {
                cluster.nodes[j].note_task_lost();
                recovery.push(((i, j), cluster.nodes[j].clock_ns() + detect));
                continue;
            }
            let task = TreeTask::full_subtree(CuboidMask::from_dims(&[i]), d);
            let guard = TaskGuard::checkpoint(&cluster.nodes[j], &sinks[j]);
            let node = &mut cluster.nodes[j];
            node.charge_task_overhead_for(task.root.bits() as u64);
            bpp_buc_with(&mut scratch, chunk, query.minsup, task, node, &mut sinks[j]);
            if cluster.nodes[j].is_dead() {
                guard.rollback(&mut cluster.nodes[j], &mut sinks[j]);
                cluster.nodes[j].note_task_lost();
                recovery.push(((i, j), cluster.nodes[j].clock_ns() + detect));
            } else {
                cluster.nodes[j].trace_task_end(task.root.bits() as u64);
            }
        }
    }
    cluster.phase_end("compute");
    // Recovery sweep over lost (attribute, chunk) tasks.
    cluster.phase_start("recover");
    let mut next = 0;
    while next < recovery.len() {
        let ((i, j), available_at) = recovery[next];
        next += 1;
        let Some(survivor) = cluster.min_clock_live() else {
            return Err(AlgoError::ClusterExhausted { nodes: n });
        };
        cluster.nodes[survivor].wait_until(available_at);
        if cluster.nodes[survivor].is_dead() {
            recovery.push(((i, j), available_at));
            continue;
        }
        let chunk = &chunks[i][j];
        let task = TreeTask::full_subtree(CuboidMask::from_dims(&[i]), d);
        let guard = TaskGuard::checkpoint(&cluster.nodes[survivor], &sinks[survivor]);
        let node = &mut cluster.nodes[survivor];
        node.charge_task_overhead_for(task.root.bits() as u64);
        // The dead node's disk is gone: re-derive its chunk from the
        // source relation (full scan + the chunk's worth of moves).
        node.read_bytes(rel.byte_size());
        node.charge_scan(rel.len() as u64);
        node.charge_moves(chunk.len() as u64);
        bpp_buc_with(
            &mut scratch,
            chunk,
            query.minsup,
            task,
            node,
            &mut sinks[survivor],
        );
        if cluster.nodes[survivor].is_dead() {
            guard.rollback(&mut cluster.nodes[survivor], &mut sinks[survivor]);
            cluster.nodes[survivor].note_task_lost();
            recovery.push(((i, j), cluster.nodes[survivor].clock_ns() + detect));
        } else {
            cluster.nodes[survivor].trace_task_end(task.root.bits() as u64);
            cluster.nodes[survivor].note_task_recovered();
        }
    }
    cluster.phase_end("recover");
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    Ok(finish(
        crate::algorithms::Algorithm::Bpp,
        &mut cluster,
        sinks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::rp::run_rp;
    use crate::verify::assert_same_cells;
    use icecube_data::presets;

    fn check(rel: &Relation, minsup: u64, nodes: usize) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let out = run_bpp(rel, &q, &cfg, &RunOptions::default()).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(want, out.cells, &format!("BPP n={nodes} minsup={minsup}"));
    }

    #[test]
    fn partial_cuboids_union_to_the_full_cube() {
        // The correctness heart of BPP: range-disjoint chunks produce
        // disjoint partial cuboids whose union is exact.
        let rel = sales();
        for nodes in [1, 2, 4, 8] {
            check(&rel, 1, nodes);
            check(&rel, 2, nodes);
        }
        for seed in [3, 13] {
            let rel = presets::tiny(seed).generate().unwrap();
            for nodes in [2, 5] {
                check(&rel, 2, nodes);
            }
        }
    }

    #[test]
    fn writes_far_fewer_file_switches_than_rp() {
        // Figure 3.6 at algorithm level.
        let rel = presets::tiny(2).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let cfg = ClusterConfig::fast_ethernet(4);
        let rp = run_rp(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let bpp = run_bpp(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let rp_switches: u64 = rp.stats.nodes().iter().map(|s| s.file_switches).sum();
        let bpp_switches: u64 = bpp.stats.nodes().iter().map(|s| s.file_switches).sum();
        assert!(
            rp_switches > 2 * bpp_switches,
            "RP {rp_switches} vs BPP {bpp_switches} switches"
        );
    }

    #[test]
    fn skewed_dimension_unbalances_bpp() {
        // A heavily skewed dimension produces uneven chunks, and with them
        // uneven loads (the paper's Gender example).
        let spec = icecube_data::SyntheticSpec::uniform(4000, vec![16, 16, 16], 3)
            .with_skews(vec![1.8, 0.0, 0.0]);
        let rel = spec.generate().unwrap();
        let q = IcebergQuery::count_cube(3, 2);
        let out = run_bpp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        assert!(
            out.stats.imbalance() > 1.05,
            "imbalance {}",
            out.stats.imbalance()
        );
    }

    #[test]
    fn a_crash_re_derives_the_lost_chunks_exactly() {
        use icecube_cluster::FaultPlan;
        let rel = presets::tiny(3).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let quiet = run_bpp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions::default(),
        )
        .unwrap();
        // The victim's chunks lived on its local disk; survivors must
        // rebuild them from the source relation and still union exactly.
        let cfg = ClusterConfig::fast_ethernet(3)
            .with_faults(FaultPlan::none().crash(1, quiet.stats.makespan_ns() / 4));
        let out = run_bpp(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "BPP with a mid-run crash",
        );
        assert_eq!(out.stats.total_crashes(), 1);
        assert!(out.stats.total_tasks_lost() >= 1, "{:?}", out.stats);
        assert_eq!(
            out.stats.total_tasks_recovered(),
            out.stats.total_tasks_lost()
        );
    }

    #[test]
    fn partitioning_phase_costs_when_included() {
        let rel = presets::tiny(6).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(3);
        let without = run_bpp(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let with = run_bpp(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                include_bpp_partitioning: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(with.stats.makespan_ns() > without.stats.makespan_ns());
        assert_same_cells(
            without.cells,
            with.cells,
            "partitioning must not change output",
        );
    }

    #[test]
    fn memory_footprint_is_chunk_sized() {
        // BPP is the memory-frugal algorithm: each node holds chunks, not
        // the whole relation (Section 4.1).
        let rel = presets::tiny(8).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let bpp = run_bpp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        let rp = run_rp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        assert!(bpp.stats.peak_mem_bytes() < rp.stats.peak_mem_bytes());
    }
}
