//! Algorithm PT — Partitioned Tree (Section 3.4, Figures 3.9 and 3.10).
//!
//! PT strikes the balance between RP's coarse subtrees and ASL's
//! single-cuboid tasks: recursive **binary division** of the BUC
//! processing tree yields `32 × n` near-equal subtrees
//! ([`divide_tasks`]); a manager assigns them on demand with **prefix
//! affinity on the subtree roots** (top-down scheduling), and each task is
//! then computed **bottom-up** by BPP-BUC with breadth-first writing —
//! combining sort-sharing with minimum-support pruning, the hybrid the
//! paper recommends as the default algorithm.
//!
//! Prefix affinity is realized through a per-worker *sort cache*: the
//! index array stays grouped by the previous root's dimensions, and a new
//! root sharing a prefix of length `p` only refines from level `p`
//! onwards. Deeper refinements happen strictly within groups, so truncated
//! cache levels stay valid across tasks.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::algorithms::{finish, load_replicated, Algorithm, RunOptions, RunOutcome};
use crate::backend::charge_replicated_load;
use crate::buc::{bpp_buc_presorted_with, BucScratch};
use crate::cell::CellBuf;
use crate::error::AlgoError;
use crate::partition::{full_index, Group, Partitioner};
use crate::query::IcebergQuery;
use crate::recover::TaskGuard;
use icecube_cluster::{run_demand_steps_healing, ClusterConfig, SimCluster, SimNode, StepEvent};
use icecube_data::Relation;
use icecube_exec::{TaskSpec, Workload};
use icecube_lattice::{divide_tasks, TreeTask};

/// PT's task units: binary division of the processing tree into
/// `ratio × units` near-equal subtrees, largest first. Shared by the
/// simulator driver (`units` = node count) and the executor plan
/// (`units` fixed, so the task list is independent of worker count).
pub(crate) fn divide_plan(d: usize, ratio: usize, units: usize) -> Vec<TreeTask> {
    divide_tasks(d, ratio.max(1) * units.max(1))
}

/// Reorders a divide plan into the sequence one demand-driven worker
/// would pull under the manager's sort affinity: each next task shares
/// the longest root prefix with the previous one, ties to the largest
/// remaining (how [`pick_task`] breaks them, since the divide order is
/// largest first). Contiguous id blocks of this order keep executor
/// workers' sort caches refining incrementally instead of re-sorting
/// the relation from scratch at almost every task.
fn chain_plan(mut remaining: Vec<TreeTask>) -> Vec<TreeTask> {
    let mut out = Vec::with_capacity(remaining.len());
    let mut prev: Option<Vec<usize>> = None;
    while !remaining.is_empty() {
        let pos = match &prev {
            None => 0,
            Some(p) => {
                let shared = |t: &TreeTask| {
                    t.root
                        .dims()
                        .iter()
                        .zip(p)
                        .take_while(|(a, b)| a == b)
                        .count()
                };
                let mut best = 0usize;
                let mut best_len = shared(&remaining[0]);
                for (i, t) in remaining.iter().enumerate().skip(1) {
                    let len = shared(t);
                    if len > best_len {
                        best = i;
                        best_len = len;
                    }
                }
                best
            }
        };
        let task = remaining.remove(pos);
        prev = Some(task.root.dims());
        out.push(task);
    }
    out
}

/// A worker's sorted-index cache: `idx` is grouped by `root_dims[..k]` at
/// level `k`; `levels[k]` are the groups after refining by `root_dims[..=k]`.
#[derive(Default)]
struct SortCache {
    root_dims: Vec<usize>,
    idx: Vec<u32>,
    levels: Vec<Vec<Group>>,
    part: Partitioner,
    /// The single whole-index group, kept alongside so [`Self::groups`]
    /// can hand out a borrow in the no-root case instead of allocating.
    whole: [Group; 1],
}

impl SortCache {
    /// Re-sorts (or incrementally refines) for a task root, returning the
    /// root-level groups. Charges only the refinement passes actually run.
    fn prepare(&mut self, rel: &Relation, root_dims: &[usize], affinity: bool, node: &mut SimNode) {
        let shared = if affinity && !self.idx.is_empty() {
            self.root_dims
                .iter()
                .zip(root_dims)
                .take_while(|(a, b)| a == b)
                .count()
        } else {
            0
        };
        if shared == 0 {
            self.idx = full_index(rel);
            node.charge_scan(rel.len() as u64);
            self.root_dims.clear();
            self.levels.clear();
        } else {
            self.root_dims.truncate(shared);
            self.levels.truncate(shared);
        }
        self.whole = [(0, self.idx.len() as u32)];
        for &dim in &root_dims[self.root_dims.len()..] {
            let SortCache {
                idx,
                levels,
                part,
                whole,
                ..
            } = self;
            let base: &[Group] = match levels.last() {
                Some(g) => g,
                None => &whole[..],
            };
            // check:allow(alloc-hot-path): one group vector per cached sort
            // level (≤ DIMS per prepare); the ROADMAP item 1 arena pools it.
            let mut fine = Vec::new();
            part.refine(rel, idx, base, dim, node, &mut fine);
            levels.push(fine);
            self.root_dims.push(dim);
        }
    }

    fn groups(&self) -> &[Group] {
        match self.levels.last() {
            Some(g) => g,
            None => &self.whole[..],
        }
    }
}

/// The manager's pick: the remaining task whose root shares the longest
/// prefix with the worker's previous root; ties (and the no-affinity case)
/// go to the largest remaining task. `remaining` must be sorted largest
/// first, as [`divide_tasks`] returns it.
fn pick_task(
    remaining: &mut Vec<TreeTask>,
    prev_root_dims: Option<&[usize]>,
    affinity: bool,
) -> Option<TreeTask> {
    if remaining.is_empty() {
        return None;
    }
    let pos = match (affinity, prev_root_dims) {
        (true, Some(prev)) => {
            let score = |t: &TreeTask| -> usize {
                t.root
                    .dims()
                    .iter()
                    .zip(prev)
                    .take_while(|(a, b)| a == b)
                    .count()
            };
            // Earliest (largest) task among those with the best score.
            let mut best = 0usize;
            let mut best_score = score(&remaining[0]);
            for (i, t) in remaining.iter().enumerate().skip(1) {
                let s = score(t);
                if s > best_score {
                    best = i;
                    best_score = s;
                }
            }
            best
        }
        _ => 0,
    };
    Some(remaining.remove(pos))
}

/// Runs PT over a simulated cluster.
pub fn run_pt(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();
    load_replicated(&mut cluster, rel);
    // Planning: binary division until there are ratio·n tasks ("32n" in
    // the paper's experiments).
    let mut remaining = divide_plan(query.dims, opts.pt_task_ratio, n);
    let mut caches: Vec<SortCache> = (0..n).map(|_| SortCache::default()).collect();
    let mut prev_roots: Vec<Option<Vec<usize>>> = vec![None; n];
    let mut sinks: Vec<CellBuf> = (0..n)
        .map(|_| {
            if opts.collect_cells {
                CellBuf::collecting()
            } else {
                CellBuf::counting()
            }
        })
        .collect();
    let minsup = query.minsup;
    let affinity = opts.affinity;

    // Self-healing bookkeeping (see `crate::recover`): in-flight task and
    // pre-task checkpoint per node, plus the reclaimed tasks whose
    // eventual completion counts as a recovery.
    let mut inflight: Vec<Option<TreeTask>> = vec![None; n];
    let mut guards: Vec<Option<TaskGuard>> = vec![None; n];
    let mut requeued: Vec<TreeTask> = Vec::new();
    // One arena scratch serves every task on every worker: host-side
    // reuse, invisible to the simulated cost model.
    let mut scratch = BucScratch::new();

    cluster.phase_start("compute");
    run_demand_steps_healing(&mut cluster, |cluster, node_id, event| {
        if event == StepEvent::Lost {
            // Reclaim the dead worker's subtree, keeping `remaining`
            // sorted largest-first as divide_tasks produced it. Its sort
            // cache died with it.
            let Some(task) = inflight[node_id].take() else {
                return false;
            };
            if let Some(guard) = guards[node_id].take() {
                guard.rollback(&mut cluster.nodes[node_id], &mut sinks[node_id]);
            }
            let pos = remaining.partition_point(|t| t.size() >= task.size());
            remaining.insert(pos, task);
            if !requeued.contains(&task) {
                requeued.push(task);
            }
            return true;
        }
        let Some(task) = pick_task(&mut remaining, prev_roots[node_id].as_deref(), affinity) else {
            return false;
        };
        inflight[node_id] = Some(task);
        guards[node_id] = Some(TaskGuard::checkpoint(
            &cluster.nodes[node_id],
            &sinks[node_id],
        ));
        let node = &mut cluster.nodes[node_id];
        node.charge_task_overhead_for(task.root.bits() as u64);
        let root_dims = task.root.dims();
        let cache = &mut caches[node_id];
        cache.prepare(rel, &root_dims, affinity, node);
        bpp_buc_presorted_with(
            &mut scratch,
            rel,
            minsup,
            task,
            &cache.idx,
            cache.groups(),
            node,
            &mut sinks[node_id],
        );
        prev_roots[node_id] = Some(root_dims);
        if !cluster.nodes[node_id].is_dead() {
            inflight[node_id] = None;
            guards[node_id] = None;
            cluster.nodes[node_id].trace_task_end(task.root.bits() as u64);
            if let Some(pos) = requeued.iter().position(|t| *t == task) {
                requeued.remove(pos);
                cluster.nodes[node_id].note_task_recovered();
            }
        }
        true
    });
    cluster.phase_end("compute");
    if !remaining.is_empty() || inflight.iter().any(Option::is_some) {
        return Err(AlgoError::ClusterExhausted { nodes: n });
    }
    Ok(finish(Algorithm::Pt, &mut cluster, sinks))
}

/// Per-worker state for the executor path: the BUC arena plus the sort
/// cache whose incremental refinement realizes PT's prefix affinity.
pub(crate) struct PtScratch {
    buc: BucScratch,
    cache: SortCache,
}

/// PT's backend-agnostic decomposition: the binary-divided subtrees in
/// [`chain_plan`] order (root-prefix chains), each computed bottom-up by
/// presorted BPP-BUC over the worker's sort cache. Consecutive ids tend
/// to share root prefixes, so the native pool's contiguous-block
/// injection preserves most of the cache reuse the simulated manager
/// schedules for; either way the cache only changes cost, never cells.
pub(crate) struct PtWorkload<'a> {
    rel: &'a Relation,
    minsup: u64,
    affinity: bool,
    collect: bool,
    tasks: Vec<TreeTask>,
}

/// Builds PT's executor plan, dividing into `ratio × units` subtrees.
pub(crate) fn exec_workload<'a>(
    rel: &'a Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
    units: usize,
) -> (Vec<TaskSpec>, PtWorkload<'a>) {
    let tasks = chain_plan(divide_plan(query.dims, opts.pt_task_ratio, units));
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(id, task)| TaskSpec {
            id,
            affinity: task.root.bits() as u64,
            weight: task.size() as u64,
        })
        .collect();
    let workload = PtWorkload {
        rel,
        minsup: query.minsup,
        affinity: opts.affinity,
        collect: opts.collect_cells,
        tasks,
    };
    (specs, workload)
}

impl Workload for PtWorkload<'_> {
    type Scratch = PtScratch;
    type Out = CellBuf;

    fn scratch(&self, _worker: usize) -> PtScratch {
        PtScratch {
            buc: BucScratch::new(),
            cache: SortCache::default(),
        }
    }

    fn prologue(&self, node: &mut SimNode) {
        charge_replicated_load(self.rel, node);
    }

    fn run(&self, spec: &TaskSpec, scratch: &mut PtScratch, node: &mut SimNode) -> CellBuf {
        let task = self.tasks[spec.id];
        let root_dims = task.root.dims();
        scratch
            .cache
            .prepare(self.rel, &root_dims, self.affinity, node);
        let mut sink = if self.collect {
            CellBuf::collecting()
        } else {
            CellBuf::counting()
        };
        bpp_buc_presorted_with(
            &mut scratch.buc,
            self.rel,
            self.minsup,
            task,
            &scratch.cache.idx,
            scratch.cache.groups(),
            node,
            &mut sink,
        );
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::verify::assert_same_cells;
    use icecube_data::presets;
    use icecube_lattice::CuboidMask;

    fn check(rel: &Relation, minsup: u64, nodes: usize, ratio: usize) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let opts = RunOptions {
            pt_task_ratio: ratio,
            ..RunOptions::default()
        };
        let out = run_pt(rel, &q, &cfg, &opts).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(
            want,
            out.cells,
            &format!("PT n={nodes} minsup={minsup} r={ratio}"),
        );
    }

    #[test]
    fn matches_naive_across_configurations() {
        let rel = sales();
        for nodes in [1, 2, 4] {
            for ratio in [1, 4, 32] {
                check(&rel, 2, nodes, ratio);
            }
        }
        for seed in [1, 6] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3] {
                check(&rel, minsup, 4, 8);
            }
        }
    }

    #[test]
    fn matches_naive_without_affinity() {
        let rel = presets::tiny(2).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let out = run_pt(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions {
                affinity: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let want = naive_iceberg_cube(&rel, &q);
        assert_same_cells(want, out.cells, "PT without affinity");
    }

    #[test]
    fn pick_prefers_shared_root_prefix() {
        let d = 4;
        let mk = |dims: &[usize], from: usize| TreeTask {
            root: CuboidMask::from_dims(dims),
            from_dim: from,
            d,
        };
        let mut remaining = vec![mk(&[1], 2), mk(&[0, 1], 2), mk(&[0], 2)];
        // Previous root was A: prefer a root starting with A; among AB and
        // A the shared-prefix score with [0] is 1 for both — the earlier
        // (larger) task wins.
        let t = pick_task(&mut remaining, Some(&[0]), true).unwrap();
        assert_eq!(t.root, CuboidMask::from_dims(&[0, 1]));
        // No affinity: plain largest-first.
        let t = pick_task(&mut remaining, Some(&[0]), false).unwrap();
        assert_eq!(t.root, CuboidMask::from_dims(&[1]));
    }

    #[test]
    fn sort_cache_reuse_reduces_cpu() {
        let rel = presets::tiny(3).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let cfg = ClusterConfig::fast_ethernet(1);
        let with = run_pt(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let without = run_pt(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                affinity: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let cpu = |o: &RunOutcome| o.stats.nodes()[0].cpu_ns;
        assert!(cpu(&with) <= cpu(&without));
    }

    #[test]
    fn task_ratio_trades_balance_for_pruning() {
        // Higher ratio → finer tasks → better balance (the paper's dotted
        // line in Figure 3.9).
        let rel = presets::tiny(7).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(4);
        let coarse = run_pt(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                pt_task_ratio: 1,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let fine = run_pt(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                pt_task_ratio: 32,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert!(fine.stats.imbalance() <= coarse.stats.imbalance() + 0.25);
        assert_same_cells(coarse.cells, fine.cells, "ratio must not change output");
    }

    #[test]
    fn a_crash_requeues_subtrees_and_the_cube_stays_exact() {
        use icecube_cluster::FaultPlan;
        let rel = presets::tiny(6).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let quiet = run_pt(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions::default(),
        )
        .unwrap();
        // Kill a worker mid-run: its sort cache and in-flight subtree are
        // lost; survivors re-sort and finish the division exactly.
        let cfg = ClusterConfig::fast_ethernet(3)
            .with_faults(FaultPlan::none().crash(2, quiet.stats.makespan_ns() / 3));
        let out = run_pt(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "PT with a mid-run crash",
        );
        assert_eq!(out.stats.total_crashes(), 1);
        assert!(out.stats.total_tasks_lost() >= 1, "{:?}", out.stats);
        assert!(out.stats.total_tasks_recovered() >= 1, "{:?}", out.stats);
    }

    #[test]
    fn strong_load_balance_on_eight_nodes() {
        let rel = presets::tiny(10).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let out = run_pt(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(8),
            &RunOptions::default(),
        )
        .unwrap();
        assert!(
            out.stats.imbalance() < 1.8,
            "imbalance {}",
            out.stats.imbalance()
        );
    }
}
