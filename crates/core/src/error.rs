//! Error type for cube computation.

use std::fmt;

/// Errors from running a cube algorithm.
#[derive(Debug)]
pub enum AlgoError {
    /// The query's dimensionality does not match the relation's arity.
    DimensionMismatch {
        /// Dimensions the query names.
        query_dims: usize,
        /// Dimensions the relation has.
        relation_dims: usize,
    },
    /// The algorithm exhausted a node's physical memory — the paper's
    /// hash-tree algorithm "used up memory too rapidly that it fails to
    /// process large data sets" (Section 3.5.1).
    MemoryExhausted {
        /// Node that ran out.
        node: usize,
        /// Bytes the algorithm wanted live at once.
        required_bytes: u64,
        /// The node's physical memory.
        available_bytes: u64,
    },
    /// The relation holds no rows; the cube is empty and the algorithms
    /// have nothing meaningful to schedule.
    EmptyInput,
    /// Underlying data error.
    Data(icecube_data::DataError),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::DimensionMismatch { query_dims, relation_dims } => write!(
                f,
                "query names {query_dims} dimensions but the relation has {relation_dims}"
            ),
            AlgoError::MemoryExhausted { node, required_bytes, available_bytes } => write!(
                f,
                "node {node} out of memory: needs {required_bytes} bytes, has {available_bytes}"
            ),
            AlgoError::EmptyInput => write!(f, "input relation is empty"),
            AlgoError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icecube_data::DataError> for AlgoError {
    fn from(e: icecube_data::DataError) -> Self {
        AlgoError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AlgoError::MemoryExhausted { node: 3, required_bytes: 10, available_bytes: 5 };
        assert!(e.to_string().contains("node 3"));
        let e = AlgoError::DimensionMismatch { query_dims: 4, relation_dims: 9 };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('9'));
    }
}
