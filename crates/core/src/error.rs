//! Error type for cube computation.

use std::fmt;

/// Errors from running a cube algorithm.
#[derive(Debug)]
pub enum AlgoError {
    /// The query's dimensionality does not match the relation's arity.
    DimensionMismatch {
        /// Dimensions the query names.
        query_dims: usize,
        /// Dimensions the relation has.
        relation_dims: usize,
    },
    /// The algorithm exhausted a node's physical memory — the paper's
    /// hash-tree algorithm "used up memory too rapidly that it fails to
    /// process large data sets" (Section 3.5.1).
    MemoryExhausted {
        /// Node that ran out.
        node: usize,
        /// Bytes the algorithm wanted live at once.
        required_bytes: u64,
        /// The node's physical memory.
        available_bytes: u64,
    },
    /// The relation holds no rows; the cube is empty and the algorithms
    /// have nothing meaningful to schedule.
    EmptyInput,
    /// A stored cube computed at minimum support `stored` was asked for a
    /// threshold below it (Section 5: "if the threshold set by online
    /// queries differs from what the precomputation assumed, precomputed
    /// cuboids can no longer be used"). Answering would require
    /// recomputation or online aggregation, not this store.
    ThresholdTooLow {
        /// Minimum support the store was computed at.
        stored: u64,
        /// The (lower) threshold the query asked for.
        requested: u64,
    },
    /// A navigation named a dimension its group-by does not contain
    /// (slice and roll-up operate on present dimensions).
    DimensionNotInGroupBy {
        /// The offending dimension.
        dim: usize,
    },
    /// A navigation named a dimension its group-by already contains
    /// (drill-down adds a new dimension).
    DimensionAlreadyInGroupBy {
        /// The offending dimension.
        dim: usize,
    },
    /// Every node crashed before the cube finished. The self-healing
    /// scheduler reassigns lost tasks as long as one worker survives;
    /// seeded fault plans guarantee a survivor, so this surfaces only
    /// under hand-built total-loss plans.
    ClusterExhausted {
        /// Nodes the run started with.
        nodes: usize,
    },
    /// The algorithm runs only on the full-fidelity simulator and has no
    /// backend-agnostic task decomposition (the hash-tree attempt exists
    /// to reproduce a failure mode, not to execute natively).
    SimulatorOnly {
        /// Name of the algorithm that cannot run through an executor.
        algorithm: &'static str,
    },
    /// A maintained cube was asked for with zero dimensions; there are no
    /// group-bys to maintain (the typed twin of the panic contract on
    /// [`crate::IcebergQuery::count_cube`], since maintenance runs in
    /// serving paths that must not unwind).
    NoDimensions,
    /// A delta cell's key arity does not match its cuboid mask; merging it
    /// would corrupt the store's stride invariant, so the merge refuses the
    /// whole batch up front.
    CellArity {
        /// Arity the cell's cuboid mask implies.
        expected: usize,
        /// Key length the cell actually carried.
        got: usize,
    },
    /// A progressive fold named a chunk index outside the build's plan.
    ChunkOutOfRange {
        /// The chunk index the fold named.
        index: usize,
        /// Chunks the plan actually has.
        chunks: usize,
    },
    /// A progressive fold named a chunk that was already folded; folding
    /// it twice would double-count its tuples in every touched cell.
    ChunkAlreadyFolded {
        /// The offending chunk index.
        index: usize,
    },
    /// A progressive plan routed a chunk to an owner outside `0..parts`;
    /// its slack could never be retired and bounds would never converge.
    ChunkOwnerOutOfRange {
        /// The offending chunk index.
        chunk: usize,
        /// The owner the chunk named.
        owner: usize,
        /// Owner ranges the plan has.
        parts: usize,
    },
    /// An execution backend failed to complete the plan.
    Exec(icecube_exec::ExecError),
    /// Underlying data error.
    Data(icecube_data::DataError),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::DimensionMismatch {
                query_dims,
                relation_dims,
            } => write!(
                f,
                "query names {query_dims} dimensions but the relation has {relation_dims}"
            ),
            AlgoError::MemoryExhausted {
                node,
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "node {node} out of memory: needs {required_bytes} bytes, has {available_bytes}"
            ),
            AlgoError::EmptyInput => write!(f, "input relation is empty"),
            AlgoError::ThresholdTooLow { stored, requested } => write!(
                f,
                "store computed at minsup {stored} cannot answer threshold {requested}; \
                 recompute or aggregate online"
            ),
            AlgoError::DimensionNotInGroupBy { dim } => {
                write!(f, "dimension {dim} does not belong to the group-by")
            }
            AlgoError::DimensionAlreadyInGroupBy { dim } => {
                write!(f, "dimension {dim} already belongs to the group-by")
            }
            AlgoError::ClusterExhausted { nodes } => {
                write!(f, "all {nodes} nodes crashed before the cube completed")
            }
            AlgoError::SimulatorOnly { algorithm } => {
                write!(
                    f,
                    "{algorithm} has no executor decomposition; run it on the simulator"
                )
            }
            AlgoError::NoDimensions => {
                write!(f, "a maintained cube needs at least one dimension")
            }
            AlgoError::CellArity { expected, got } => write!(
                f,
                "delta cell key has {got} values but its cuboid implies {expected}"
            ),
            AlgoError::ChunkOutOfRange { index, chunks } => {
                write!(f, "chunk {index} is out of range for a {chunks}-chunk plan")
            }
            AlgoError::ChunkAlreadyFolded { index } => {
                write!(
                    f,
                    "chunk {index} was already folded; refolding double-counts"
                )
            }
            AlgoError::ChunkOwnerOutOfRange {
                chunk,
                owner,
                parts,
            } => write!(
                f,
                "chunk {chunk} names owner {owner} but the plan has {parts} ranges"
            ),
            AlgoError::Exec(e) => write!(f, "execution backend failed: {e}"),
            AlgoError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Data(e) => Some(e),
            AlgoError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<icecube_data::DataError> for AlgoError {
    fn from(e: icecube_data::DataError) -> Self {
        AlgoError::Data(e)
    }
}

impl From<icecube_exec::ExecError> for AlgoError {
    fn from(e: icecube_exec::ExecError) -> Self {
        AlgoError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AlgoError::MemoryExhausted {
            node: 3,
            required_bytes: 10,
            available_bytes: 5,
        };
        assert!(e.to_string().contains("node 3"));
        let e = AlgoError::DimensionMismatch {
            query_dims: 4,
            relation_dims: 9,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('9'));
        let e = AlgoError::ThresholdTooLow {
            stored: 5,
            requested: 2,
        };
        assert!(e.to_string().contains("cannot answer threshold 2"));
        assert!(e.to_string().contains("minsup 5"));
        let e = AlgoError::DimensionNotInGroupBy { dim: 6 };
        assert!(e.to_string().contains("dimension 6 does not belong"));
        let e = AlgoError::DimensionAlreadyInGroupBy { dim: 2 };
        assert!(e.to_string().contains("dimension 2 already belongs"));
        let e = AlgoError::CellArity {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("1 values"));
        assert!(e.to_string().contains("implies 3"));
        assert!(AlgoError::NoDimensions
            .to_string()
            .contains("at least one dimension"));
    }
}
