//! Algorithm ASL — Affinity Skip List (Section 3.3, Figure 3.8).
//!
//! ASL puts load balancing first: every cuboid is its own task, assigned
//! dynamically by a manager. Cells of the cuboid under construction live
//! in a **skip list**, which grows incrementally and is always sorted, so
//! a finished cuboid streams out in order with no sort step.
//!
//! The manager exploits two affinities between a worker's new task and the
//! skip lists it already holds (its *previous* and its *first*):
//!
//! * **prefix affinity** — the new cuboid's dimensions are a prefix of the
//!   held list's: the list is already in the right order, so one
//!   accumulate-runs scan produces the result (subroutine `prefix-reuse`);
//! * **subset affinity** — the new cuboid's dimensions are a subset: the
//!   held list's cells (far fewer than raw tuples) seed the new skip list
//!   (subroutine `subset-create`).
//!
//! Only when neither applies does the worker fall back to scanning the raw
//! data, and the manager then hands it the largest remaining cuboid to
//! maximize future affinity. Each worker keeps its first list alive for
//! the whole run — it has the most dimensions and thus the widest subset
//! coverage.
//!
//! ASL cannot prune: whether a cell meets the threshold is unknown until
//! the scan ends, and sub-threshold cells still feed later tasks, so the
//! minimum support filters only the *output* (the paper's Figure 4.5
//! observation that ASL gains from higher support only through less I/O).

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::algorithms::{finish, load_replicated, Algorithm, RunOptions, RunOutcome};
use crate::backend::charge_replicated_load;
use crate::cell::{Cell, CellBuf, CellSink};
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::recover::TaskGuard;
use icecube_cluster::{run_demand_steps_healing, ClusterConfig, SimCluster, SimNode, StepEvent};
use icecube_data::Relation;
use icecube_exec::{TaskSpec, Workload};
use icecube_lattice::{CuboidMask, Lattice};
use icecube_skiplist::{SkipList, SkipListPool};
use std::rc::Rc;

/// Every cuboid of the `d`-lattice, most dimensions first (ties by mask
/// for determinism): the shared task order of ASL and AHT, used by both
/// the simulator drivers and the executor plans.
pub(crate) fn cuboid_tasks(d: usize) -> Vec<CuboidMask> {
    let lattice = Lattice::new(d);
    let mut tasks: Vec<CuboidMask> = lattice.cuboids().collect();
    tasks.sort_unstable_by(|a, b| b.dim_count().cmp(&a.dim_count()).then(a.cmp(b)));
    tasks
}

/// Replays the manager's affinity ladder over [`cuboid_tasks`] with a
/// single virtual worker, returning the order in which that worker would
/// pull tasks under demand scheduling. Executor plans use this order so
/// that contiguous id blocks keep workers on prefix/subset chains
/// without a demand scheduler: a static plan in [`cuboid_tasks`] order
/// strands most tasks with no affine held list (siblings at the same
/// dimension count are never subsets of each other), forcing raw-data
/// rebuilds the simulated manager avoids.
///
/// `prefix_affinity` selects the ladder being replayed: ASL's four
/// passes, where a prefix hit emits from the held list without
/// installing a new one, or AHT's two subset passes, where every task
/// installs its table.
pub(crate) fn chained_tasks(d: usize, prefix_affinity: bool) -> Vec<CuboidMask> {
    let mut remaining = cuboid_tasks(d);
    let mut out = Vec::with_capacity(remaining.len());
    let mut first: Option<CuboidMask> = None;
    let mut prev: Option<CuboidMask> = None;
    while !remaining.is_empty() {
        let passes = [(prev, true), (first, true), (prev, false), (first, false)];
        let mut choice = None;
        for (held, is_prefix) in passes {
            if is_prefix && !prefix_affinity {
                continue;
            }
            let Some(held) = held else { continue };
            let hit = remaining.iter().position(|t| {
                if is_prefix {
                    t.is_prefix_of(held)
                } else {
                    t.is_subset_of(held)
                }
            });
            if let Some(pos) = hit {
                choice = Some((pos, is_prefix));
                break;
            }
        }
        let (pos, was_prefix) = choice.unwrap_or((0, false));
        let task = remaining.remove(pos);
        if !(prefix_affinity && was_prefix) {
            if first.is_none() {
                first = Some(task);
            } else {
                prev = Some(task);
            }
        }
        out.push(task);
    }
    out
}

/// Reinserts a reclaimed cuboid into `remaining`, preserving the
/// descending-dimension-count (then ascending-mask) order the affinity
/// passes rely on.
pub(crate) fn reinsert_sorted(remaining: &mut Vec<CuboidMask>, task: CuboidMask) {
    let pos = remaining.partition_point(|c| {
        c.dim_count() > task.dim_count() || (c.dim_count() == task.dim_count() && *c < task)
    });
    remaining.insert(pos, task);
}

/// A materialized cuboid: its identity plus the skip list of *all* its
/// cells (unfiltered — sub-threshold cells feed later tasks).
pub(crate) struct CuboidList {
    pub(crate) cuboid: CuboidMask,
    pub(crate) list: SkipList<Aggregate>,
}

/// How the manager sourced a task for a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Source {
    /// Prefix of the worker's previous list: aggregate it in one scan.
    PrefixPrev,
    /// Prefix of the worker's first list.
    PrefixFirst,
    /// Subset of the previous list: build a new skip list from its cells.
    SubsetPrev,
    /// Subset of the first list.
    SubsetFirst,
    /// No affinity: build from the raw data.
    Scratch,
}

/// The manager's task-selection policy (Section 3.3.2): prefer prefix
/// affinity, then subset affinity, else hand out the remaining cuboid with
/// the most dimensions. `remaining` must be sorted by descending dimension
/// count so "first match" is also "most dimensions".
pub(crate) fn pick_task(
    remaining: &mut Vec<CuboidMask>,
    prev: Option<CuboidMask>,
    first: Option<CuboidMask>,
    affinity: bool,
    longest_prefix: bool,
) -> Option<(CuboidMask, Source)> {
    if remaining.is_empty() {
        return None;
    }
    if affinity {
        type AffinityPass = (
            Option<CuboidMask>,
            Source,
            fn(CuboidMask, CuboidMask) -> bool,
        );
        let passes: [AffinityPass; 4] = [
            (prev, Source::PrefixPrev, CuboidMask::is_prefix_of),
            (first, Source::PrefixFirst, CuboidMask::is_prefix_of),
            (prev, Source::SubsetPrev, CuboidMask::is_subset_of),
            (first, Source::SubsetFirst, CuboidMask::is_subset_of),
        ];
        for (held, source, relation) in passes {
            let Some(held) = held else { continue };
            let pos =
                if longest_prefix && matches!(source, Source::SubsetPrev | Source::SubsetFirst) {
                    // Section 4.9.2: among the subset-affine candidates,
                    // prefer the longest shared key prefix with the held
                    // list — its cells then stream out in near-sorted order.
                    remaining
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| relation(c, held))
                        .max_by_key(|(i, &c)| (c.shared_prefix_len(held), usize::MAX - i))
                        .map(|(i, _)| i)
                } else {
                    remaining.iter().position(|&c| relation(c, held))
                };
            if let Some(pos) = pos {
                return Some((remaining.remove(pos), source));
            }
        }
    }
    Some((remaining.remove(0), Source::Scratch))
}

/// Reusable host-side scratch for one ASL run: the skip-list arena pool
/// and the small per-task buffers (projected keys, subset position maps,
/// prefix run keys). Purely an allocation cache — recycled storage is
/// reset on acquisition, so threading one scratch through many runs is
/// invisible to cells, counters, and the simulator's memory accounting.
#[derive(Default)]
pub struct AslRunScratch {
    pool: SkipListPool<Aggregate>,
    bufs: AslBufs,
}

impl AslRunScratch {
    /// An empty scratch; arenas are grown on first use and recycled after.
    pub fn new() -> Self {
        AslRunScratch::default()
    }
}

/// The per-task scratch buffers shared by the ASL subroutines: cleared
/// (never shrunk) between tasks so the per-cell loops run allocation-free.
#[derive(Default)]
struct AslBufs {
    /// Projected-key buffer for subset/scratch builds.
    key: Vec<u32>,
    /// Held-list positions of the task's dimensions (subset builds).
    positions: Vec<usize>,
    /// Current run's key during a prefix-reuse scan.
    run_key: Vec<u32>,
}

/// Per-worker state: the first and most recent skip lists it built.
#[derive(Default)]
struct Worker {
    first: Option<Rc<CuboidList>>,
    prev: Option<Rc<CuboidList>>,
}

impl Worker {
    fn install(
        &mut self,
        node: &mut SimNode,
        built: CuboidList,
        pool: &mut SkipListPool<Aggregate>,
    ) {
        node.alloc(built.list.memory_bytes());
        // Release the superseded previous list unless it is also the first.
        if let Some(old) = self.prev.take() {
            let is_first = self.first.as_ref().is_some_and(|f| Rc::ptr_eq(f, &old));
            if !is_first {
                node.free(old.list.memory_bytes());
                if let Ok(retired) = Rc::try_unwrap(old) {
                    pool.release(retired.list);
                }
            }
        }
        let rc = Rc::new(built);
        if self.first.is_none() {
            self.first = Some(Rc::clone(&rc));
        }
        self.prev = Some(rc);
    }
}

/// Runs ASL over a simulated cluster.
pub fn run_asl(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    run_asl_with(&mut AslRunScratch::new(), rel, query, config, opts)
}

/// [`run_asl`] with caller-provided scratch arenas, so consecutive runs
/// reuse skip-list storage instead of re-faulting fresh pages per cuboid.
pub fn run_asl_with(
    scratch: &mut AslRunScratch,
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    // check:allow(no-clone-hot-path): one-time cluster construction at
    // driver entry, not the per-tuple insert/search path.
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();
    load_replicated(&mut cluster, rel);
    let mut remaining = cuboid_tasks(query.dims);

    let mut workers: Vec<Worker> = (0..n).map(|_| Worker::default()).collect();
    let mut sinks: Vec<CellBuf> = (0..n)
        .map(|_| {
            if opts.collect_cells {
                CellBuf::collecting()
            } else {
                CellBuf::counting()
            }
        })
        .collect();
    let seed = config.seed;
    let minsup = query.minsup;
    let affinity = opts.affinity;
    let longest_prefix = opts.asl_longest_prefix;
    let AslRunScratch { pool, bufs } = scratch;

    // Self-healing bookkeeping: which cuboid each node is computing (set
    // for the duration of one Assign step), its pre-task checkpoint, and
    // the cuboids reclaimed from crashed workers (to credit the survivor
    // that eventually completes them).
    let mut inflight: Vec<Option<CuboidMask>> = (0..n).map(|_| None).collect();
    let mut guards: Vec<Option<TaskGuard>> = (0..n).map(|_| None).collect();
    let mut requeued: Vec<CuboidMask> = Vec::new();

    cluster.phase_start("compute");
    run_demand_steps_healing(&mut cluster, |cluster, node_id, event| {
        if event == StepEvent::Lost {
            // The node died mid-task: discard its partial output and put
            // the cuboid back for the survivors. Its skip lists died with
            // it, so an eventual re-run rebuilds affinity from scratch.
            let Some(task) = inflight[node_id].take() else {
                return false;
            };
            if let Some(guard) = guards[node_id].take() {
                guard.rollback(&mut cluster.nodes[node_id], &mut sinks[node_id]);
            }
            reinsert_sorted(&mut remaining, task);
            if !requeued.contains(&task) {
                requeued.push(task);
            }
            return true;
        }
        let w = &mut workers[node_id];
        let prev_c = w.prev.as_ref().map(|l| l.cuboid);
        let first_c = w.first.as_ref().map(|l| l.cuboid);
        let Some((task, source)) =
            pick_task(&mut remaining, prev_c, first_c, affinity, longest_prefix)
        else {
            return false;
        };
        inflight[node_id] = Some(task);
        guards[node_id] = Some(TaskGuard::checkpoint(
            &cluster.nodes[node_id],
            &sinks[node_id],
        ));
        let node = &mut cluster.nodes[node_id];
        node.charge_task_overhead_for(task.bits() as u64);
        let list_seed = seed ^ ((node_id as u64) << 32) ^ task.bits() as u64;
        match source {
            Source::PrefixPrev | Source::PrefixFirst => {
                let held = if source == Source::PrefixPrev {
                    w.prev.as_ref().expect("prefix source requires a list")
                } else {
                    w.first.as_ref().expect("prefix source requires a list")
                };
                prefix_reuse(held, task, minsup, node, &mut sinks[node_id], bufs);
                // No new list is created; the worker's lists are unchanged.
            }
            Source::SubsetPrev | Source::SubsetFirst => {
                let held = if source == Source::SubsetPrev {
                    w.prev.as_ref().expect("subset source requires a list")
                } else {
                    w.first.as_ref().expect("subset source requires a list")
                };
                let built = subset_create(held, task, list_seed, node, pool, bufs);
                emit_list(&built, minsup, node, &mut sinks[node_id]);
                w.install(node, built, pool);
            }
            Source::Scratch => {
                let built = scratch_create(rel, task, list_seed, node, pool, bufs);
                emit_list(&built, minsup, node, &mut sinks[node_id]);
                w.install(node, built, pool);
            }
        }
        if !cluster.nodes[node_id].is_dead() {
            inflight[node_id] = None;
            guards[node_id] = None;
            cluster.nodes[node_id].trace_task_end(task.bits() as u64);
            if let Some(pos) = requeued.iter().position(|&t| t == task) {
                requeued.remove(pos);
                cluster.nodes[node_id].note_task_recovered();
            }
        }
        true
    });
    cluster.phase_end("compute");
    if !remaining.is_empty() || inflight.iter().any(Option::is_some) {
        return Err(AlgoError::ClusterExhausted { nodes: n });
    }
    Ok(finish(Algorithm::Asl, &mut cluster, sinks))
}

/// Subroutine `prefix-reuse` (Figure 3.8): the held list is sorted with the
/// task's dimensions as a key prefix, so one accumulate-runs scan both
/// aggregates and emits in sorted order.
fn prefix_reuse<S: CellSink>(
    held: &CuboidList,
    task: CuboidMask,
    minsup: u64,
    node: &mut SimNode,
    sink: &mut S,
    bufs: &mut AslBufs,
) {
    debug_assert!(task.is_prefix_of(held.cuboid));
    let k = task.dim_count();
    let run_key = &mut bufs.run_key;
    run_key.clear();
    let mut run_agg = Aggregate::empty();
    let mut cells = 0u64;
    let flush = |key: &mut Vec<u32>, agg: &mut Aggregate, sink: &mut S, cells: &mut u64| {
        if !key.is_empty() {
            if agg.meets(minsup) {
                sink.emit(task, key, agg);
                *cells += 1;
            }
            key.clear();
            *agg = Aggregate::empty();
        }
    };
    let mut scanned = 0u64;
    for (key, agg) in held.list.iter() {
        scanned += 1;
        let prefix = &key[..k];
        if run_key.as_slice() != prefix {
            flush(run_key, &mut run_agg, sink, &mut cells);
            run_key.extend_from_slice(prefix);
        }
        run_agg.merge(agg);
    }
    flush(run_key, &mut run_agg, sink, &mut cells);
    node.charge_comparisons(scanned * k as u64);
    node.charge_agg_updates(scanned);
    if cells > 0 {
        node.write_cells(task.bits() as u64, cells * Cell::disk_bytes(k), cells);
    }
}

/// Subroutine `subset-create` (Figure 3.8): seed a new skip list from the
/// held list's cells instead of re-reading the raw data. The list arena
/// and the position/key buffers all come from the run's recycled scratch.
fn subset_create(
    held: &CuboidList,
    task: CuboidMask,
    seed: u64,
    node: &mut SimNode,
    pool: &mut SkipListPool<Aggregate>,
    bufs: &mut AslBufs,
) -> CuboidList {
    debug_assert!(task.is_subset_of(held.cuboid));
    // Positions of the task's dimensions within the held list's key: a
    // single merge walk, since both dimension sets ascend and task ⊆ held.
    let positions = &mut bufs.positions;
    positions.clear();
    let mut hpos = 0usize;
    let mut hdims = held.cuboid.iter_dims();
    for d in task.iter_dims() {
        for h in hdims.by_ref() {
            hpos += 1;
            if h == d {
                positions.push(hpos - 1);
                break;
            }
        }
    }
    debug_assert_eq!(positions.len(), task.dim_count());
    let mut list = pool.acquire_with_capacity(task.dim_count(), seed, held.list.len());
    let key = &mut bufs.key;
    key.clear();
    key.resize(positions.len(), 0);
    let mut scanned = 0u64;
    for (hkey, agg) in held.list.iter() {
        scanned += 1;
        for (slot, &p) in key.iter_mut().zip(positions.iter()) {
            *slot = hkey[p];
        }
        list.insert_or_update(key, || *agg, |a| a.merge(agg));
    }
    node.charge_scan(scanned);
    node.charge_agg_updates(scanned);
    node.charge_comparisons(list.take_comparisons());
    CuboidList { cuboid: task, list }
}

/// Builds the task's skip list from the raw data (no affinity available).
fn scratch_create(
    rel: &Relation,
    task: CuboidMask,
    seed: u64,
    node: &mut SimNode,
    pool: &mut SkipListPool<Aggregate>,
    bufs: &mut AslBufs,
) -> CuboidList {
    let mut list = pool.acquire(task.dim_count(), seed);
    let key = &mut bufs.key;
    key.clear();
    key.resize(task.dim_count(), 0);
    for (row, m) in rel.rows() {
        task.project_row(row, key);
        list.insert_or_update(key, || Aggregate::of(m), |a| a.update(m));
    }
    node.charge_scan(rel.len() as u64);
    node.charge_agg_updates(rel.len() as u64);
    node.charge_comparisons(list.take_comparisons());
    CuboidList { cuboid: task, list }
}

/// Streams a finished skip list to disk in key order (breadth-first: one
/// contiguous cuboid write), filtering by minimum support.
fn emit_list<S: CellSink>(built: &CuboidList, minsup: u64, node: &mut SimNode, sink: &mut S) {
    let mut cells = 0u64;
    for (key, agg) in built.list.iter() {
        if agg.meets(minsup) {
            sink.emit(built.cuboid, key, agg);
            cells += 1;
        }
    }
    if cells > 0 {
        node.write_cells(
            built.cuboid.bits() as u64,
            cells * Cell::disk_bytes(built.cuboid.dim_count()),
            cells,
        );
    }
}

/// Per-worker affinity state for the executor path: the first and most
/// recent lists, owned outright, plus the worker's private arena pool
/// and task buffers. The simulated driver shares lists via `Rc` purely
/// for memory accounting; the executor path does no such accounting
/// (and native workers live on separate threads, where `Rc` cannot go),
/// so plain ownership with the same first/prev semantics suffices.
pub(crate) struct AslScratch {
    first: Option<CuboidList>,
    prev: Option<CuboidList>,
    pool: SkipListPool<Aggregate>,
    bufs: AslBufs,
}

impl AslScratch {
    /// Installs a freshly built list as the worker's previous (and
    /// first, if none yet) — the same rule as the sim driver's
    /// `Worker::install`, minus the allocation bookkeeping. A superseded
    /// previous list retires its arena into the worker's pool.
    fn install(&mut self, built: CuboidList) {
        if self.first.is_none() {
            self.first = Some(built);
        } else if let Some(old) = self.prev.replace(built) {
            self.pool.release(old.list);
        }
    }
}

/// Which of a worker's held lists an affinity decision resolved to.
#[derive(Clone, Copy)]
enum Held {
    /// The most recently installed list.
    Prev,
    /// The worker's first (widest) list, kept for the whole run.
    First,
}

/// ASL's backend-agnostic decomposition: one task per cuboid in
/// [`cuboid_tasks`] order. The simulated manager's prefix-then-subset
/// ladder is applied per worker against its own held lists. Affinity
/// changes only *how* a cuboid is built (reuse vs raw scan), never its
/// cells, so outputs stay byte-identical however tasks land on workers.
pub(crate) struct AslWorkload<'a> {
    rel: &'a Relation,
    minsup: u64,
    seed: u64,
    affinity: bool,
    collect: bool,
    tasks: Vec<CuboidMask>,
}

/// Builds ASL's executor plan for the given query.
pub(crate) fn exec_workload<'a>(
    rel: &'a Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
    seed: u64,
) -> (Vec<TaskSpec>, AslWorkload<'a>) {
    let tasks = chained_tasks(query.dims, true);
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(id, cuboid)| TaskSpec {
            id,
            affinity: cuboid.bits() as u64,
            weight: 1u64 << cuboid.dim_count(),
        })
        .collect();
    let workload = AslWorkload {
        rel,
        minsup: query.minsup,
        seed,
        affinity: opts.affinity,
        collect: opts.collect_cells,
        tasks,
    };
    (specs, workload)
}

impl AslWorkload<'_> {
    /// The manager's affinity ladder (prefix-of-prev, prefix-of-first,
    /// subset-of-prev, subset-of-first) resolved against this worker's
    /// held lists; the `bool` is true for the prefix passes.
    fn pick(&self, scratch: &AslScratch, task: CuboidMask) -> Option<(Held, bool)> {
        let prev = scratch.prev.as_ref().map(|l| l.cuboid);
        let first = scratch.first.as_ref().map(|l| l.cuboid);
        let passes = [
            (prev, Held::Prev, true),
            (first, Held::First, true),
            (prev, Held::Prev, false),
            (first, Held::First, false),
        ];
        for (held, which, prefix) in passes {
            let Some(held) = held else { continue };
            let affine = if prefix {
                task.is_prefix_of(held)
            } else {
                task.is_subset_of(held)
            };
            if affine {
                return Some((which, prefix));
            }
        }
        None
    }
}

impl Workload for AslWorkload<'_> {
    type Scratch = AslScratch;
    type Out = CellBuf;

    fn scratch(&self, _worker: usize) -> AslScratch {
        AslScratch {
            first: None,
            prev: None,
            pool: SkipListPool::new(),
            bufs: AslBufs::default(),
        }
    }

    fn prologue(&self, node: &mut SimNode) {
        charge_replicated_load(self.rel, node);
    }

    fn run(&self, spec: &TaskSpec, scratch: &mut AslScratch, node: &mut SimNode) -> CellBuf {
        let task = self.tasks[spec.id];
        let mut sink = if self.collect {
            CellBuf::collecting()
        } else {
            CellBuf::counting()
        };
        // The seed shapes only skip-list tower heights (search cost),
        // never contents or iteration order, so it may differ from the
        // simulator's node-salted seeds without breaking byte identity.
        let list_seed = self.seed ^ task.bits() as u64;
        // A cold worker materializes the widest cuboid before anything
        // else, so the ladder's subset passes always have a donor: every
        // task is a subset of the full lattice root, which caps the
        // worst case at one subset build instead of a raw-data rebuild.
        // (A task's cells are the same bytes whichever path builds them.)
        if self.affinity && scratch.first.is_none() && task != self.tasks[0] {
            let full = self.tasks[0];
            let built = scratch_create(
                self.rel,
                full,
                self.seed ^ full.bits() as u64,
                node,
                &mut scratch.pool,
                &mut scratch.bufs,
            );
            scratch.install(built);
        }
        let choice = if self.affinity {
            self.pick(scratch, task)
        } else {
            None
        };
        match choice {
            Some((which, true)) => {
                let held = match which {
                    Held::Prev => scratch.prev.as_ref(),
                    Held::First => scratch.first.as_ref(),
                }
                .expect("pick returned a held list");
                prefix_reuse(held, task, self.minsup, node, &mut sink, &mut scratch.bufs);
                // No new list: the worker's held lists are unchanged.
            }
            Some((which, false)) => {
                let built = {
                    let held = match which {
                        Held::Prev => scratch.prev.as_ref(),
                        Held::First => scratch.first.as_ref(),
                    }
                    .expect("pick returned a held list");
                    subset_create(
                        held,
                        task,
                        list_seed,
                        node,
                        &mut scratch.pool,
                        &mut scratch.bufs,
                    )
                };
                emit_list(&built, self.minsup, node, &mut sink);
                scratch.install(built);
            }
            None => {
                let built = scratch_create(
                    self.rel,
                    task,
                    list_seed,
                    node,
                    &mut scratch.pool,
                    &mut scratch.bufs,
                );
                emit_list(&built, self.minsup, node, &mut sink);
                scratch.install(built);
            }
        }
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::verify::assert_same_cells;
    use icecube_data::presets;

    fn check(rel: &Relation, minsup: u64, nodes: usize) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let out = run_asl(rel, &q, &cfg, &RunOptions::default()).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(want, out.cells, &format!("ASL n={nodes} minsup={minsup}"));
    }

    #[test]
    fn matches_naive_across_configurations() {
        let rel = sales();
        for nodes in [1, 2, 4] {
            check(&rel, 1, nodes);
            check(&rel, 2, nodes);
        }
        for seed in [0, 9] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3] {
                check(&rel, minsup, 3);
            }
        }
    }

    #[test]
    fn matches_naive_without_affinity() {
        // The ablation switch must not affect correctness, only cost.
        let rel = presets::tiny(4).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(3);
        let out = run_asl(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                affinity: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let want = naive_iceberg_cube(&rel, &q);
        assert_same_cells(want, out.cells, "ASL without affinity");
    }

    #[test]
    fn affinity_scheduling_saves_work() {
        let rel = presets::tiny(4).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(2);
        let with = run_asl(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let without = run_asl(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                affinity: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let cpu = |o: &RunOutcome| -> u64 { o.stats.nodes().iter().map(|s| s.cpu_ns).sum() };
        assert!(
            cpu(&with) < cpu(&without),
            "affinity {} vs scratch-only {}",
            cpu(&with),
            cpu(&without)
        );
    }

    #[test]
    fn pick_prefers_prefix_then_subset_then_largest() {
        let abcd = CuboidMask::from_dims(&[0, 1, 2, 3]);
        let abc = CuboidMask::from_dims(&[0, 1, 2]);
        let bcd = CuboidMask::from_dims(&[1, 2, 3]);
        let cd = CuboidMask::from_dims(&[2, 3]);
        // Remaining sorted by descending dims.
        let mut remaining = vec![abc, bcd, cd];
        // prev = ABCD: ABC is a prefix, picked first.
        let (t, s) = pick_task(&mut remaining, Some(abcd), Some(abcd), true, false).unwrap();
        assert_eq!((t, s), (abc, Source::PrefixPrev));
        // Next: BCD is a subset of ABCD (not a prefix).
        let (t, s) = pick_task(&mut remaining, Some(abcd), Some(abcd), true, false).unwrap();
        assert_eq!((t, s), (bcd, Source::SubsetPrev));
        // prev = something unrelated, first = ABCD: falls to the first list.
        let e = CuboidMask::from_dims(&[4]);
        let (t, s) = pick_task(&mut remaining, Some(e), Some(abcd), true, false).unwrap();
        assert_eq!((t, s), (cd, Source::SubsetFirst));
        assert!(pick_task(&mut remaining, Some(abcd), None, true, false).is_none());
    }

    #[test]
    fn pick_without_lists_or_affinity_takes_largest() {
        let abc = CuboidMask::from_dims(&[0, 1, 2]);
        let ab = CuboidMask::from_dims(&[0, 1]);
        let mut remaining = vec![abc, ab];
        let (t, s) = pick_task(&mut remaining, None, None, true, false).unwrap();
        assert_eq!((t, s), (abc, Source::Scratch));
        let mut remaining = vec![abc, ab];
        let (t, s) = pick_task(&mut remaining, Some(abc), Some(abc), false, false).unwrap();
        assert_eq!((t, s), (abc, Source::Scratch));
    }

    #[test]
    fn longest_prefix_prefers_shared_prefix_among_subsets() {
        let abcd = CuboidMask::from_dims(&[0, 1, 2, 3]);
        let bd = CuboidMask::from_dims(&[1, 3]);
        let ac = CuboidMask::from_dims(&[0, 2]);
        // Both are subsets of ABCD, neither a prefix; AC shares prefix A.
        let mut remaining = vec![bd, ac];
        let (t, s) = pick_task(&mut remaining, Some(abcd), Some(abcd), true, true).unwrap();
        assert_eq!((t, s), (ac, Source::SubsetPrev));
        // Without the refinement, plain first-match order applies.
        let mut remaining = vec![bd, ac];
        let (t, _) = pick_task(&mut remaining, Some(abcd), Some(abcd), true, false).unwrap();
        assert_eq!(t, bd);
    }

    #[test]
    fn longest_prefix_does_not_change_the_answer() {
        let rel = presets::tiny(17).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(3);
        let out = run_asl(
            &rel,
            &q,
            &cfg,
            &RunOptions {
                asl_longest_prefix: true,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_same_cells(
            crate::naive::naive_iceberg_cube(&rel, &q),
            out.cells,
            "ASL with longest-prefix scheduling",
        );
    }

    #[test]
    fn a_crash_requeues_cuboids_and_the_cube_stays_exact() {
        use icecube_cluster::FaultPlan;
        let rel = presets::tiny(9).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let quiet = run_asl(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions::default(),
        )
        .unwrap();
        // Kill a worker mid-run: its skip lists (and any in-flight cuboid)
        // are lost; survivors rebuild affinity and finish the lattice.
        let cfg = ClusterConfig::fast_ethernet(3)
            .with_faults(FaultPlan::none().crash(1, quiet.stats.makespan_ns() / 4));
        let out = run_asl(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "ASL with a mid-run crash",
        );
        assert_eq!(out.stats.total_crashes(), 1);
        assert!(out.stats.total_tasks_lost() >= 1, "{:?}", out.stats);
        assert!(out.stats.total_tasks_recovered() >= 1, "{:?}", out.stats);
    }

    #[test]
    fn single_node_runs_the_whole_lattice() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_asl(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(1),
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(out.total_cells, 47);
        // One scratch build (the top cuboid) and affinity for the rest:
        // the single worker executed all 7 tasks.
        assert_eq!(out.stats.nodes()[0].tasks, 7);
    }

    #[test]
    fn load_balance_is_strong_on_skewed_data() {
        let rel = presets::tiny(12).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let out = run_asl(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        assert!(
            out.stats.imbalance() < 1.6,
            "imbalance {}",
            out.stats.imbalance()
        );
    }
}
