//! The obviously-correct reference evaluator every algorithm is verified
//! against.
//!
//! For each of the `2^d − 1` group-bys it hash-groups the projected rows
//! and keeps the cells meeting the minimum support. Quadratic in spirit,
//! linear in practice, and trivially auditable — which is the point.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.
// check:allow-file(unordered-collections): hash tables here are
// build-side internals; every cell set is canonically sorted before
// it leaves this module, so iteration order cannot reach results
// (the cross-algorithm equivalence tests pin this).

use crate::agg::Aggregate;
use crate::cell::{sort_cells, Cell};
use crate::query::IcebergQuery;
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, Lattice};
use std::collections::HashMap;

/// Computes the iceberg cube by brute force, returning cells sorted
/// canonically (cuboid, then key).
pub fn naive_iceberg_cube(rel: &Relation, query: &IcebergQuery) -> Vec<Cell> {
    // check:allow(panic-path): documented precondition of the test oracle;
    // a query/relation arity mismatch is a harness bug, not runtime input.
    assert_eq!(
        query.dims,
        rel.arity(),
        "query dims must match the relation"
    );
    let lattice = Lattice::new(query.dims);
    let mut out = Vec::new();
    for cuboid in lattice.cuboids() {
        naive_cuboid(rel, cuboid, query.minsup, &mut out);
    }
    sort_cells(&mut out);
    out
}

/// Computes a single group-by by brute force, appending qualifying cells.
pub fn naive_cuboid(rel: &Relation, cuboid: CuboidMask, minsup: u64, out: &mut Vec<Cell>) {
    let mut groups: HashMap<Vec<u32>, Aggregate> = HashMap::new();
    let mut key = vec![0u32; cuboid.dim_count()];
    for (row, m) in rel.rows() {
        cuboid.project_row(row, &mut key);
        groups
            .entry(key.clone())
            .or_insert_with(Aggregate::empty)
            .update(m);
    }
    for (key, agg) in groups {
        if agg.meets(minsup) {
            out.push(Cell { cuboid, key, agg });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use icecube_data::presets;

    #[test]
    fn reproduces_the_papers_cube_of_sales() {
        // Figure 2.2's CUBE: spot-check the published sums.
        let r = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let cells = naive_iceberg_cube(&r, &q);
        // 18 + 6 + 6 + 9 + 2 + 3 + 3 = 47 cells ("all" excluded).
        assert_eq!(cells.len(), 47);
        let find = |dims: &[usize], key: &[u32]| -> i64 {
            cells
                .iter()
                .find(|c| c.cuboid == CuboidMask::from_dims(dims) && c.key == key)
                .map(|c| c.agg.sum)
                .unwrap()
        };
        // The published per-year rows (the thesis' Figure 2.2 table is
        // internally inconsistent in places — e.g. its color subtotals do
        // not add up — so we check the rows that are consistent with the
        // base tuples plus sums derived directly from them).
        assert_eq!(find(&[1], &[0]), 343); // ALL, 1990, ALL (paper row)
        assert_eq!(find(&[1], &[1]), 314); // ALL, 1991, ALL (paper row)
        assert_eq!(find(&[0, 1], &[0, 0]), 154); // Chevy, 1990, ALL (paper row)
        assert_eq!(find(&[0, 1, 2], &[0, 0, 1]), 87); // Chevy, 1990, white
                                                      // Derived sums over the base tuples.
        assert_eq!(find(&[0], &[0]), 508); // Chevy, ALL, ALL
        assert_eq!(find(&[0], &[1]), 433); // Ford, ALL, ALL
        assert_eq!(find(&[0, 2], &[1, 2]), 157); // Ford, ALL, blue
        assert_eq!(find(&[1, 2], &[2, 0]), 58); // ALL, 1992, red
                                                // Roll-up consistency: Chevy + Ford = grand total.
        assert_eq!(find(&[0], &[0]) + find(&[0], &[1]), r.total_measure());
    }

    #[test]
    fn minsup_prunes_low_support_cells() {
        let r = sales();
        let full = naive_iceberg_cube(&r, &IcebergQuery::count_cube(3, 1));
        let pruned = naive_iceberg_cube(&r, &IcebergQuery::count_cube(3, 2));
        // Every ABC cell has support 1 → the whole 18-cell cuboid vanishes.
        assert_eq!(full.len() - pruned.len(), 18);
        assert!(pruned.iter().all(|c| c.agg.count >= 2));
        // Higher threshold prunes more.
        let heavier = naive_iceberg_cube(&r, &IcebergQuery::count_cube(3, 7));
        assert!(heavier.len() < pruned.len());
    }

    #[test]
    fn counts_sum_per_cuboid_equals_tuple_count() {
        // Within one cuboid, cell counts partition the rows.
        let r = presets::tiny(1).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let cells = naive_iceberg_cube(&r, &q);
        let l = Lattice::new(4);
        for cuboid in l.cuboids() {
            let total: u64 = cells
                .iter()
                .filter(|c| c.cuboid == cuboid)
                .map(|c| c.agg.count)
                .sum();
            assert_eq!(total, r.len() as u64, "cuboid {cuboid}");
        }
    }

    #[test]
    fn output_is_canonically_sorted() {
        let r = presets::tiny(2).generate().unwrap();
        let cells = naive_iceberg_cube(&r, &IcebergQuery::count_cube(4, 2));
        for w in cells.windows(2) {
            assert!(
                (w[0].cuboid, &w[0].key) < (w[1].cuboid, &w[1].key),
                "not sorted: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }
}
