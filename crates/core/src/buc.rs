//! Sequential BUC engines: depth-first (the original BUC of Beyer &
//! Ramakrishnan, Figure 2.9) and breadth-first writing (BPP-BUC,
//! Figure 3.5).
//!
//! Both engines compute the group-bys of one [`TreeTask`] — a full or
//! chopped subtree of the BUC processing tree — bottom-up with minimum
//! support pruning: a partition below the threshold can contribute no cell
//! to any descendant group-by, so it is dropped before recursing.
//!
//! The difference is **when cells are written**:
//!
//! * [`buc_depth_first`] writes each cell the moment its partition is
//!   aggregated, interleaving output across cuboids exactly as BUC's
//!   recursion visits them — the scattered writes RP inherits;
//! * [`bpp_buc`] completes a whole cuboid (all value combinations of the
//!   current prefix) and writes it contiguously before recursing — BPP's
//!   breadth-first writing, one file switch per cuboid.
//!
//! On the simulated disk the two orders differ only through the per-switch
//! penalty, which is precisely the paper's Figure 3.6 comparison.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::partition::{full_index, Group, Partitioner};
use icecube_cluster::{EventKind, SimNode};
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, TreeTask};

/// Computes `task`'s group-bys with the original depth-first-writing BUC.
pub fn buc_depth_first<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        part: Partitioner::new(),
        key: Vec::new(),
    };
    let mut idx = full_index(rel);
    let rdims = task.root.dims();
    eng.df_descend(&mut idx, &rdims, 0, task);
}

/// Computes `task`'s group-bys with BPP-BUC (breadth-first writing).
pub fn bpp_buc<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        part: Partitioner::new(),
        key: Vec::new(),
    };
    let idx = full_index(rel);
    let groups = vec![(0u32, rel.len() as u32)];
    eng.bpp_from_root(idx, groups, task);
}

/// Computes `task`'s group-bys with BPP-BUC over an index that is already
/// sorted (grouped) by the task root's dimensions — PT's entry point, which
/// lets a worker reuse the sort it made for a previous task with a shared
/// root prefix (Section 3.4: "sort R on the root of T, exploiting prefix
/// affinity if possible").
///
/// `groups` must be the runs of equal root-dimension values over `idx`,
/// *unpruned* (this function applies the support filter itself). For a
/// task rooted at "all", pass the single group covering the whole index.
pub fn bpp_buc_presorted<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    idx: &[u32],
    groups: &[Group],
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() || idx.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        part: Partitioner::new(),
        key: Vec::new(),
    };
    if task.root.is_all() {
        for k in task.from_dim..task.d {
            eng.bpp_recurse(idx.to_vec(), groups.to_vec(), CuboidMask::ALL, k);
        }
    } else {
        let (pi, pg) = eng.emit_cuboid_and_prune(idx, groups, task.root);
        if pi.is_empty() {
            return;
        }
        for k in task.from_dim..task.d {
            eng.bpp_recurse(pi.clone(), pg.clone(), task.root, k);
        }
    }
}

/// Shared state of one engine run.
struct Engine<'a, S: CellSink> {
    rel: &'a Relation,
    minsup: u64,
    d: usize,
    node: &'a mut SimNode,
    sink: &'a mut S,
    part: Partitioner,
    key: Vec<u32>,
}

impl<'a, S: CellSink> Engine<'a, S> {
    /// Aggregates `idx[s..e]` and charges the per-tuple update cost.
    fn aggregate(&mut self, idx: &[u32], s: u32, e: u32) -> Aggregate {
        let mut agg = Aggregate::empty();
        for &row in &idx[s as usize..e as usize] {
            agg.update(self.rel.measure(row as usize));
        }
        self.node.charge_agg_updates((e - s) as u64);
        agg
    }

    /// Fills `self.key` with the cell key of the group starting at `row`.
    fn project_key(&mut self, mask: CuboidMask, row: u32) {
        let rel = self.rel;
        self.key.clear();
        self.key.resize(mask.dim_count(), 0);
        mask.project_row(rel.row(row as usize), &mut self.key);
    }

    // ---- depth-first (BUC / RP) -------------------------------------

    /// Navigates the task root's dimensions; partitions below the support
    /// threshold are pruned (their cells, and all refinements, cannot
    /// qualify). Intermediate prefixes' cells belong to other tasks and
    /// are not emitted; the root cuboid's cells are.
    fn df_descend(&mut self, idx: &mut [u32], rdims: &[usize], depth: usize, task: TreeTask) {
        if depth == rdims.len() {
            if rdims.is_empty() {
                // Whole-lattice task: no root cell (the "all" node is
                // special), go straight to the subtree loop.
                self.df(idx, CuboidMask::ALL, task.from_dim);
            }
            return;
        }
        let dim = rdims[depth];
        let mut groups = Vec::new();
        let len = idx.len() as u32;
        self.part
            .split(self.rel, idx, (0, len), dim, self.node, &mut groups);
        let last = depth + 1 == rdims.len();
        for (s, e) in groups {
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            if last {
                // This is a cell of the task's root cuboid: BUC writes the
                // aggregate before recursing (Figure 2.9, line 13).
                let agg = self.aggregate(idx, s, e);
                self.project_key(task.root, idx[s as usize]);
                self.emit_one(task.root, &agg);
                self.df(&mut idx[s as usize..e as usize], task.root, task.from_dim);
            } else {
                self.df_descend(&mut idx[s as usize..e as usize], rdims, depth + 1, task);
            }
        }
    }

    /// The BUC recursion: extend `mask` by each dimension `k ≥ from`,
    /// writing each qualifying cell then refining it depth-first.
    fn df(&mut self, idx: &mut [u32], mask: CuboidMask, from: usize) {
        self.node.trace_event(EventKind::Depth {
            depth: mask.dim_count() as u32,
        });
        for k in from..self.d {
            let mut groups = Vec::new();
            let len = idx.len() as u32;
            self.part
                .split(self.rel, idx, (0, len), k, self.node, &mut groups);
            let child = mask.with_dim(k);
            for (s, e) in groups {
                if ((e - s) as u64) < self.minsup {
                    continue;
                }
                let agg = self.aggregate(idx, s, e);
                self.project_key(child, idx[s as usize]);
                self.emit_one(child, &agg);
                self.df(&mut idx[s as usize..e as usize], child, k + 1);
            }
        }
    }

    /// Writes a single cell immediately (depth-first / scattered writing).
    fn emit_one(&mut self, cuboid: CuboidMask, agg: &Aggregate) {
        self.sink.emit(cuboid, &self.key, agg);
        self.node
            .write_cells(cuboid.bits() as u64, Cell::disk_bytes(self.key.len()), 1);
    }

    // ---- breadth-first (BPP-BUC / BPP / PT) --------------------------

    /// Descends to the task root (pruning, not emitting, intermediate
    /// prefixes — they belong to other tasks), emits the root cuboid, then
    /// recurses over the allowed child dimensions.
    fn bpp_from_root(&mut self, mut idx: Vec<u32>, mut groups: Vec<Group>, task: TreeTask) {
        let rdims = task.root.dims();
        let mut mask = CuboidMask::ALL;
        for (i, &dim) in rdims.iter().enumerate() {
            let mut fine = Vec::new();
            self.part
                .refine(self.rel, &mut idx, &groups, dim, self.node, &mut fine);
            mask = mask.with_dim(dim);
            if i + 1 == rdims.len() {
                let (pi, pg) = self.emit_cuboid_and_prune(&idx, &fine, mask);
                idx = pi;
                groups = pg;
            } else {
                let (pi, pg) = self.prune_only(&idx, &fine);
                idx = pi;
                groups = pg;
            }
            if idx.is_empty() {
                return;
            }
        }
        for k in task.from_dim..self.d {
            self.bpp_recurse(idx.clone(), groups.clone(), mask, k);
        }
    }

    /// One BPP-BUC call: refine the (already prefix-grouped) data by `k`,
    /// write the whole cuboid `mask ∪ {k}` contiguously, prune, recurse.
    fn bpp_recurse(&mut self, mut idx: Vec<u32>, groups: Vec<Group>, mask: CuboidMask, k: usize) {
        self.node.trace_event(EventKind::Depth {
            depth: mask.dim_count() as u32 + 1,
        });
        let mut fine = Vec::new();
        self.part
            .refine(self.rel, &mut idx, &groups, k, self.node, &mut fine);
        let child = mask.with_dim(k);
        let (pruned_idx, pruned_groups) = self.emit_cuboid_and_prune(&idx, &fine, child);
        if pruned_idx.is_empty() {
            return;
        }
        for k2 in k + 1..self.d {
            self.bpp_recurse(pruned_idx.clone(), pruned_groups.clone(), child, k2);
        }
    }

    /// Emits every qualifying cell of `mask` (one contiguous write) and
    /// returns the index compacted to qualifying tuples.
    fn emit_cuboid_and_prune(
        &mut self,
        idx: &[u32],
        groups: &[Group],
        mask: CuboidMask,
    ) -> (Vec<u32>, Vec<Group>) {
        let kd = mask.dim_count();
        let mut new_idx = Vec::with_capacity(idx.len());
        let mut new_groups = Vec::with_capacity(groups.len());
        let mut cells = 0u64;
        for &(s, e) in groups {
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            let agg = self.aggregate(idx, s, e);
            self.project_key(mask, idx[s as usize]);
            self.sink.emit(mask, &self.key, &agg);
            cells += 1;
            let ns = new_idx.len() as u32;
            new_idx.extend_from_slice(&idx[s as usize..e as usize]);
            new_groups.push((ns, new_idx.len() as u32));
        }
        if cells > 0 {
            // One contiguous write for the whole cuboid: breadth-first.
            self.node
                .write_cells(mask.bits() as u64, cells * Cell::disk_bytes(kd), cells);
        }
        self.node.charge_moves(new_idx.len() as u64);
        (new_idx, new_groups)
    }

    /// Compacts the index to tuples in qualifying groups without emitting
    /// (used while descending to a chopped task's root).
    fn prune_only(&mut self, idx: &[u32], groups: &[Group]) -> (Vec<u32>, Vec<Group>) {
        if groups.iter().all(|&(s, e)| ((e - s) as u64) >= self.minsup) {
            return (idx.to_vec(), groups.to_vec());
        }
        let mut new_idx = Vec::with_capacity(idx.len());
        let mut new_groups = Vec::with_capacity(groups.len());
        for &(s, e) in groups {
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            let ns = new_idx.len() as u32;
            new_idx.extend_from_slice(&idx[s as usize..e as usize]);
            new_groups.push((ns, new_idx.len() as u32));
        }
        self.node.charge_moves(new_idx.len() as u64);
        (new_idx, new_groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::query::IcebergQuery;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run_engine(
        rel: &Relation,
        minsup: u64,
        task: TreeTask,
        depth_first: bool,
    ) -> (Vec<Cell>, SimCluster) {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        if depth_first {
            buc_depth_first(rel, minsup, task, &mut cluster.nodes[0], &mut sink);
        } else {
            bpp_buc(rel, minsup, task, &mut cluster.nodes[0], &mut sink);
        }
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        (cells, cluster)
    }

    fn check_against_naive(rel: &Relation, minsup: u64) {
        let d = rel.arity();
        let want = naive_iceberg_cube(rel, &IcebergQuery::count_cube(d, minsup));
        let task = TreeTask::whole_lattice(d);
        let (df, _) = run_engine(rel, minsup, task, true);
        let (bf, _) = run_engine(rel, minsup, task, false);
        assert_eq!(df, want, "depth-first BUC mismatch at minsup {minsup}");
        assert_eq!(bf, want, "BPP-BUC mismatch at minsup {minsup}");
    }

    #[test]
    fn both_engines_match_naive_on_sales() {
        let rel = sales();
        for minsup in [1, 2, 3, 6, 18, 19] {
            check_against_naive(&rel, minsup);
        }
    }

    #[test]
    fn both_engines_match_naive_on_skewed_synthetic() {
        for seed in 0..3 {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 2, 5] {
                check_against_naive(&rel, minsup);
            }
        }
    }

    #[test]
    fn subtree_tasks_cover_exactly_their_members() {
        let rel = presets::tiny(7).generate().unwrap();
        let minsup = 2;
        let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, minsup));
        for target in [1usize, 3, 8, 15] {
            let tasks = icecube_lattice::divide_tasks(4, target);
            let mut all = Vec::new();
            for &task in &tasks {
                let (mut cells, _) = run_engine(&rel, minsup, task, false);
                // Each task emits only its own cuboids.
                let members: std::collections::HashSet<_> = task.members().into_iter().collect();
                assert!(cells.iter().all(|c| members.contains(&c.cuboid)));
                all.append(&mut cells);
            }
            sort_cells(&mut all);
            assert_eq!(all, want, "target {target}");
        }
    }

    #[test]
    fn depth_first_tasks_also_cover_their_members() {
        let rel = presets::tiny(9).generate().unwrap();
        let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, 2));
        // RP-style: one full subtree per dimension.
        let mut all = Vec::new();
        for k in 0..4 {
            let task = TreeTask::full_subtree(CuboidMask::from_dims(&[k]), 4);
            let (mut cells, _) = run_engine(&rel, 2, task, true);
            all.append(&mut cells);
        }
        sort_cells(&mut all);
        assert_eq!(all, want);
    }

    #[test]
    fn breadth_first_switches_files_less() {
        // The Figure 3.6 effect at engine level: same cells, far fewer
        // file switches under breadth-first writing.
        let rel = presets::tiny(3).generate().unwrap();
        let task = TreeTask::whole_lattice(4);
        let (df_cells, df) = run_engine(&rel, 1, task, true);
        let (bf_cells, bf) = run_engine(&rel, 1, task, false);
        assert_eq!(df_cells, bf_cells);
        let df_switches = df.nodes[0].stats.file_switches;
        let bf_switches = bf.nodes[0].stats.file_switches;
        assert!(
            df_switches > 3 * bf_switches,
            "depth-first {df_switches} vs breadth-first {bf_switches}"
        );
        assert!(df.nodes[0].stats.disk_write_ns > bf.nodes[0].stats.disk_write_ns);
    }

    #[test]
    fn pruning_reduces_work() {
        let rel = presets::tiny(5).generate().unwrap();
        let task = TreeTask::whole_lattice(4);
        let (_, loose) = run_engine(&rel, 1, task, false);
        let (_, tight) = run_engine(&rel, 8, task, false);
        assert!(tight.nodes[0].stats.cpu_ns < loose.nodes[0].stats.cpu_ns);
        assert!(tight.nodes[0].stats.cells_written < loose.nodes[0].stats.cells_written);
    }

    #[test]
    fn empty_relation_emits_nothing() {
        let rel = Relation::new(icecube_data::Schema::from_cardinalities(&[2, 2]).unwrap());
        let (cells, _) = run_engine(&rel, 1, TreeTask::whole_lattice(2), false);
        assert!(cells.is_empty());
        let (cells, _) = run_engine(&rel, 1, TreeTask::whole_lattice(2), true);
        assert!(cells.is_empty());
    }

    #[test]
    fn minsup_above_data_size_emits_nothing() {
        let rel = sales();
        let (cells, _) = run_engine(&rel, 100, TreeTask::whole_lattice(3), false);
        assert!(cells.is_empty());
    }
}
