//! Sequential BUC engines: depth-first (the original BUC of Beyer &
//! Ramakrishnan, Figure 2.9) and breadth-first writing (BPP-BUC,
//! Figure 3.5).
//!
//! Both engines compute the group-bys of one [`TreeTask`] — a full or
//! chopped subtree of the BUC processing tree — bottom-up with minimum
//! support pruning: a partition below the threshold can contribute no cell
//! to any descendant group-by, so it is dropped before recursing.
//!
//! The difference is **when cells are written**:
//!
//! * [`buc_depth_first`] writes each cell the moment its partition is
//!   aggregated, interleaving output across cuboids exactly as BUC's
//!   recursion visits them — the scattered writes RP inherits;
//! * [`bpp_buc`] completes a whole cuboid (all value combinations of the
//!   current prefix) and writes it contiguously before recursing — BPP's
//!   breadth-first writing, one file switch per cuboid.
//!
//! On the simulated disk the two orders differ only through the per-switch
//! penalty, which is precisely the paper's Figure 3.6 comparison.
//!
//! # Memory discipline (DESIGN §10)
//!
//! Both engines run **zero-clone**: every recursion frame works on a
//! `(start, end)` range of one reusable `u32` index arena owned by
//! [`BucScratch`]. The depth-first engine partitions its range in place,
//! exactly like the original BUC; the breadth-first engine gives each child
//! frame its copy of the parent's tuples by counting-sorting the parent
//! range directly into the region above the arena watermark
//! ([`Partitioner::scatter_refine`]) and compacting it in place — one move
//! per tuple, no owned `Vec` clones anywhere on the hot path. Group vectors
//! come from a small pool so steady-state recursion allocates nothing.
//! The simulated cost model is unchanged: the charge sequence is
//! call-for-call identical to the historical cloning kernel, which the
//! `tests/kernel_equivalence.rs` suite locks down.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::partition::{Group, Partitioner};
use icecube_cluster::{EventKind, SimNode};
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, TreeTask};

/// Reusable scratch state for the BUC-family engines: the index arena the
/// recursion ranges over, a pool of group vectors (one grabbed per frame,
/// returned on unwind), the counting-sort partitioner, and the key buffer.
///
/// A scratch can be reused across tasks, relations, and engines — each
/// entry point re-seeds the arena prefix it needs. Buffers only ever grow,
/// so a driver that runs many tasks (RP's subtree loop, PT's demand
/// scheduler, the recovery sweeps) touches the allocator a bounded number
/// of times regardless of task count.
#[derive(Debug, Default)]
pub struct BucScratch {
    arena: Vec<u32>,
    pool: Vec<Vec<Group>>,
    part: Partitioner,
    key: Vec<u32>,
}

impl BucScratch {
    /// Creates an empty scratch; buffers are allocated lazily on first use.
    pub fn new() -> Self {
        BucScratch::default()
    }

    /// Re-seeds `arena[..n]` with the identity index `0..n`.
    fn seed_identity(&mut self, n: usize) {
        self.arena.clear();
        self.arena.extend(0..n as u32);
    }

    /// Re-seeds the arena prefix with a copy of `idx`.
    fn seed_from(&mut self, idx: &[u32]) {
        self.arena.clear();
        self.arena.extend_from_slice(idx);
    }
}

/// Computes `task`'s group-bys with the original depth-first-writing BUC.
pub fn buc_depth_first<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    buc_depth_first_with(&mut BucScratch::new(), rel, minsup, task, node, sink);
}

/// [`buc_depth_first`] with caller-provided scratch, for drivers that run
/// many tasks back to back (RP's subtree loop and recovery sweep).
pub fn buc_depth_first_with<S: CellSink>(
    scratch: &mut BucScratch,
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    let n = rel.len();
    scratch.seed_identity(n);
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        scratch,
        top: n,
    };
    let rdims = task.root.dims();
    eng.df_descend((0, n as u32), &rdims, 0, task);
}

/// Computes `task`'s group-bys with BPP-BUC (breadth-first writing).
pub fn bpp_buc<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    bpp_buc_with(&mut BucScratch::new(), rel, minsup, task, node, sink);
}

/// [`bpp_buc`] with caller-provided scratch, for drivers that run many
/// tasks back to back (BPP's chunk loop and recovery sweep).
pub fn bpp_buc_with<S: CellSink>(
    scratch: &mut BucScratch,
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    let n = rel.len();
    scratch.seed_identity(n);
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        scratch,
        top: n,
    };
    let mut groups = eng.grab_groups();
    groups.push((0u32, n as u32));
    eng.bpp_from_root(groups, task);
}

/// Computes `task`'s group-bys with BPP-BUC over an index that is already
/// sorted (grouped) by the task root's dimensions — PT's entry point, which
/// lets a worker reuse the sort it made for a previous task with a shared
/// root prefix (Section 3.4: "sort R on the root of T, exploiting prefix
/// affinity if possible").
///
/// `groups` must be the runs of equal root-dimension values over `idx`,
/// *unpruned* (this function applies the support filter itself). For a
/// task rooted at "all", pass the single group covering the whole index.
pub fn bpp_buc_presorted<S: CellSink>(
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    idx: &[u32],
    groups: &[Group],
    node: &mut SimNode,
    sink: &mut S,
) {
    bpp_buc_presorted_with(
        &mut BucScratch::new(),
        rel,
        minsup,
        task,
        idx,
        groups,
        node,
        sink,
    );
}

/// [`bpp_buc_presorted`] with caller-provided scratch (PT's demand loop).
#[allow(clippy::too_many_arguments)]
pub fn bpp_buc_presorted_with<S: CellSink>(
    scratch: &mut BucScratch,
    rel: &Relation,
    minsup: u64,
    task: TreeTask,
    idx: &[u32],
    groups: &[Group],
    node: &mut SimNode,
    sink: &mut S,
) {
    if rel.is_empty() || idx.is_empty() {
        return;
    }
    debug_assert_eq!(task.d, rel.arity());
    scratch.seed_from(idx);
    let mut eng = Engine {
        rel,
        minsup,
        d: task.d,
        node,
        sink,
        scratch,
        top: idx.len(),
    };
    let mut root_groups = eng.grab_groups();
    root_groups.extend_from_slice(groups);
    if task.root.is_all() {
        // The root region [0, n) is only ever read by the children (each
        // scatter-refines it into the region above the watermark), so one
        // seeding serves every k — where the cloning kernel copied the
        // whole index per child dimension.
        for k in task.from_dim..task.d {
            eng.bpp_recurse(&root_groups, CuboidMask::ALL, k);
        }
    } else {
        let plen = eng.emit_cuboid_and_prune(0, &mut root_groups, task.root);
        if plen > 0 {
            eng.top = plen as usize;
            for k in task.from_dim..task.d {
                eng.bpp_recurse(&root_groups, task.root, k);
            }
        }
    }
    eng.release_groups(root_groups);
}

/// Shared state of one engine run. `top` is the arena watermark: frames at
/// the current recursion depth own `arena[..top]`; a child frame claims
/// `[top, top + len)`, advances `top` past its compacted survivors while
/// recursing, and restores it on unwind.
struct Engine<'a, S: CellSink> {
    rel: &'a Relation,
    minsup: u64,
    d: usize,
    node: &'a mut SimNode,
    sink: &'a mut S,
    scratch: &'a mut BucScratch,
    top: usize,
}

impl<'a, S: CellSink> Engine<'a, S> {
    /// Grabs a cleared group vector from the pool (or allocates the pool's
    /// first few on a cold start).
    fn grab_groups(&mut self) -> Vec<Group> {
        let mut g = self.scratch.pool.pop().unwrap_or_default();
        g.clear();
        g
    }

    /// Returns a group vector to the pool, keeping its capacity.
    fn release_groups(&mut self, g: Vec<Group>) {
        self.scratch.pool.push(g);
    }

    /// Grows the arena (never shrinks, never re-zeroes live data) so that
    /// `arena[..needed]` is addressable.
    fn ensure_arena(&mut self, needed: usize) {
        if self.scratch.arena.len() < needed {
            self.scratch.arena.resize(needed, 0);
        }
    }

    /// Aggregates the arena range `[s, e)` and charges the per-tuple
    /// update cost.
    fn aggregate(&mut self, s: u32, e: u32) -> Aggregate {
        let mut agg = Aggregate::empty();
        for &row in &self.scratch.arena[s as usize..e as usize] {
            agg.update(self.rel.measure(row as usize));
        }
        self.node.charge_agg_updates((e - s) as u64);
        agg
    }

    /// Fills the key buffer with the cell key of the group starting at `row`.
    fn project_key(&mut self, mask: CuboidMask, row: u32) {
        let key = &mut self.scratch.key;
        key.clear();
        key.resize(mask.dim_count(), 0);
        mask.project_row(self.rel.row(row as usize), key);
    }

    /// Counting-sorts the arena range by `dim`, appending groups to `out`.
    fn split(&mut self, range: Group, dim: usize, out: &mut Vec<Group>) {
        self.scratch.part.split(
            self.rel,
            &mut self.scratch.arena,
            range,
            dim,
            self.node,
            out,
        );
    }

    // ---- depth-first (BUC / RP) -------------------------------------

    /// Navigates the task root's dimensions; partitions below the support
    /// threshold are pruned (their cells, and all refinements, cannot
    /// qualify). Intermediate prefixes' cells belong to other tasks and
    /// are not emitted; the root cuboid's cells are.
    fn df_descend(&mut self, range: Group, rdims: &[usize], depth: usize, task: TreeTask) {
        if depth == rdims.len() {
            if rdims.is_empty() {
                // Whole-lattice task: no root cell (the "all" node is
                // special), go straight to the subtree loop.
                self.df(range, CuboidMask::ALL, task.from_dim);
            }
            return;
        }
        let dim = rdims[depth];
        let mut groups = self.grab_groups();
        self.split(range, dim, &mut groups);
        let last = depth + 1 == rdims.len();
        for &(s, e) in &groups {
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            if last {
                // This is a cell of the task's root cuboid: BUC writes the
                // aggregate before recursing (Figure 2.9, line 13).
                let agg = self.aggregate(s, e);
                let first = self.scratch.arena[s as usize];
                self.project_key(task.root, first);
                self.emit_one(task.root, &agg);
                self.df((s, e), task.root, task.from_dim);
            } else {
                self.df_descend((s, e), rdims, depth + 1, task);
            }
        }
        self.release_groups(groups);
    }

    /// The BUC recursion: extend `mask` by each dimension `k ≥ from`,
    /// writing each qualifying cell then refining it depth-first. The
    /// range is partitioned strictly in place, so a parent's sibling
    /// groups are untouched by the recursion below.
    fn df(&mut self, range: Group, mask: CuboidMask, from: usize) {
        self.node.trace_event(EventKind::Depth {
            depth: mask.dim_count() as u32,
        });
        for k in from..self.d {
            let mut groups = self.grab_groups();
            self.split(range, k, &mut groups);
            let child = mask.with_dim(k);
            for &(s, e) in &groups {
                if ((e - s) as u64) < self.minsup {
                    continue;
                }
                let agg = self.aggregate(s, e);
                let first = self.scratch.arena[s as usize];
                self.project_key(child, first);
                self.emit_one(child, &agg);
                self.df((s, e), child, k + 1);
            }
            self.release_groups(groups);
        }
    }

    /// Writes a single cell immediately (depth-first / scattered writing).
    fn emit_one(&mut self, cuboid: CuboidMask, agg: &Aggregate) {
        self.sink.emit(cuboid, &self.scratch.key, agg);
        self.node.write_cells(
            cuboid.bits() as u64,
            Cell::disk_bytes(self.scratch.key.len()),
            1,
        );
    }

    // ---- breadth-first (BPP-BUC / BPP / PT) --------------------------

    /// Descends to the task root (pruning, not emitting, intermediate
    /// prefixes — they belong to other tasks), emits the root cuboid, then
    /// recurses over the allowed child dimensions. The descent refines and
    /// compacts the arena prefix `[0, len)` in place.
    fn bpp_from_root(&mut self, mut groups: Vec<Group>, task: TreeTask) {
        let rdims = task.root.dims();
        let mut mask = CuboidMask::ALL;
        let mut len = self.top as u32;
        for (i, &dim) in rdims.iter().enumerate() {
            let mut fine = self.grab_groups();
            {
                let BucScratch { arena, part, .. } = &mut *self.scratch;
                part.refine(self.rel, arena, &groups, dim, self.node, &mut fine);
            }
            mask = mask.with_dim(dim);
            len = if i + 1 == rdims.len() {
                self.emit_cuboid_and_prune(0, &mut fine, mask)
            } else {
                self.prune_only(&mut fine)
            };
            let spent = std::mem::replace(&mut groups, fine);
            self.release_groups(spent);
            if len == 0 {
                self.release_groups(groups);
                return;
            }
        }
        self.top = len as usize;
        for k in task.from_dim..self.d {
            self.bpp_recurse(&groups, mask, k);
        }
        self.release_groups(groups);
    }

    /// One BPP-BUC call: scatter-refine the (already prefix-grouped)
    /// parent region by `k` into the region above the watermark, write the
    /// whole cuboid `mask ∪ {k}` contiguously, compact the survivors in
    /// place, recurse. The parent region is read, never written, so every
    /// sibling dimension sees it intact — the property the cloning kernel
    /// bought with an owned copy per child.
    fn bpp_recurse(&mut self, groups: &[Group], mask: CuboidMask, k: usize) {
        self.node.trace_event(EventKind::Depth {
            depth: mask.dim_count() as u32 + 1,
        });
        let dst_base = self.top as u32;
        let total: u32 = groups.iter().map(|&(s, e)| e - s).sum();
        self.ensure_arena(self.top + total as usize);
        let mut fine = self.grab_groups();
        {
            let BucScratch { arena, part, .. } = &mut *self.scratch;
            part.scatter_refine(self.rel, arena, groups, dst_base, k, self.node, &mut fine);
        }
        let child = mask.with_dim(k);
        let plen = self.emit_cuboid_and_prune(dst_base, &mut fine, child);
        if plen > 0 {
            self.top = (dst_base + plen) as usize;
            for k2 in k + 1..self.d {
                self.bpp_recurse(&fine, child, k2);
            }
            self.top = dst_base as usize;
        }
        self.release_groups(fine);
    }

    /// Emits every qualifying cell of `mask` (one contiguous write) and
    /// compacts the qualifying groups' tuples to the front of the region
    /// at `base`, rewriting `groups` to the compacted layout. Returns the
    /// compacted length.
    ///
    /// The compaction write cursor never passes the group being read
    /// (groups are ascending and survivors only shrink the span), so the
    /// in-place `copy_within` cannot clobber unread tuples.
    fn emit_cuboid_and_prune(
        &mut self,
        base: u32,
        groups: &mut Vec<Group>,
        mask: CuboidMask,
    ) -> u32 {
        let kd = mask.dim_count();
        let mut w = base;
        let mut kept = 0usize;
        let mut cells = 0u64;
        for i in 0..groups.len() {
            let (s, e) = groups[i];
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            let agg = self.aggregate(s, e);
            let first = self.scratch.arena[s as usize];
            self.project_key(mask, first);
            self.sink.emit(mask, &self.scratch.key, &agg);
            cells += 1;
            let len = e - s;
            self.scratch
                .arena
                .copy_within(s as usize..e as usize, w as usize);
            groups[kept] = (w, w + len);
            kept += 1;
            w += len;
        }
        groups.truncate(kept);
        if cells > 0 {
            // One contiguous write for the whole cuboid: breadth-first.
            self.node
                .write_cells(mask.bits() as u64, cells * Cell::disk_bytes(kd), cells);
        }
        self.node.charge_moves((w - base) as u64);
        w - base
    }

    /// Compacts the arena prefix to tuples in qualifying groups without
    /// emitting (used while descending to a chopped task's root). Returns
    /// the compacted length; when every group qualifies this is free — no
    /// tuple moves, no move charge, matching the cost model's treatment of
    /// a prune that keeps everything.
    fn prune_only(&mut self, groups: &mut Vec<Group>) -> u32 {
        if groups.iter().all(|&(s, e)| ((e - s) as u64) >= self.minsup) {
            return groups.last().map_or(0, |&(_, e)| e);
        }
        let mut w = 0u32;
        let mut kept = 0usize;
        for i in 0..groups.len() {
            let (s, e) = groups[i];
            if ((e - s) as u64) < self.minsup {
                continue;
            }
            let len = e - s;
            self.scratch
                .arena
                .copy_within(s as usize..e as usize, w as usize);
            groups[kept] = (w, w + len);
            kept += 1;
            w += len;
        }
        groups.truncate(kept);
        self.node.charge_moves(w as u64);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::query::IcebergQuery;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run_engine(
        rel: &Relation,
        minsup: u64,
        task: TreeTask,
        depth_first: bool,
    ) -> (Vec<Cell>, SimCluster) {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        if depth_first {
            buc_depth_first(rel, minsup, task, &mut cluster.nodes[0], &mut sink);
        } else {
            bpp_buc(rel, minsup, task, &mut cluster.nodes[0], &mut sink);
        }
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        (cells, cluster)
    }

    fn check_against_naive(rel: &Relation, minsup: u64) {
        let d = rel.arity();
        let want = naive_iceberg_cube(rel, &IcebergQuery::count_cube(d, minsup));
        let task = TreeTask::whole_lattice(d);
        let (df, _) = run_engine(rel, minsup, task, true);
        let (bf, _) = run_engine(rel, minsup, task, false);
        assert_eq!(df, want, "depth-first BUC mismatch at minsup {minsup}");
        assert_eq!(bf, want, "BPP-BUC mismatch at minsup {minsup}");
    }

    #[test]
    fn both_engines_match_naive_on_sales() {
        let rel = sales();
        for minsup in [1, 2, 3, 6, 18, 19] {
            check_against_naive(&rel, minsup);
        }
    }

    #[test]
    fn both_engines_match_naive_on_skewed_synthetic() {
        for seed in 0..3 {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 2, 5] {
                check_against_naive(&rel, minsup);
            }
        }
    }

    #[test]
    fn subtree_tasks_cover_exactly_their_members() {
        let rel = presets::tiny(7).generate().unwrap();
        let minsup = 2;
        let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, minsup));
        for target in [1usize, 3, 8, 15] {
            let tasks = icecube_lattice::divide_tasks(4, target);
            let mut all = Vec::new();
            for &task in &tasks {
                let (mut cells, _) = run_engine(&rel, minsup, task, false);
                // Each task emits only its own cuboids.
                let members: std::collections::HashSet<_> = task.members().into_iter().collect();
                assert!(cells.iter().all(|c| members.contains(&c.cuboid)));
                all.append(&mut cells);
            }
            sort_cells(&mut all);
            assert_eq!(all, want, "target {target}");
        }
    }

    #[test]
    fn depth_first_tasks_also_cover_their_members() {
        let rel = presets::tiny(9).generate().unwrap();
        let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, 2));
        // RP-style: one full subtree per dimension.
        let mut all = Vec::new();
        for k in 0..4 {
            let task = TreeTask::full_subtree(CuboidMask::from_dims(&[k]), 4);
            let (mut cells, _) = run_engine(&rel, 2, task, true);
            all.append(&mut cells);
        }
        sort_cells(&mut all);
        assert_eq!(all, want);
    }

    #[test]
    fn breadth_first_switches_files_less() {
        // The Figure 3.6 effect at engine level: same cells, far fewer
        // file switches under breadth-first writing.
        let rel = presets::tiny(3).generate().unwrap();
        let task = TreeTask::whole_lattice(4);
        let (df_cells, df) = run_engine(&rel, 1, task, true);
        let (bf_cells, bf) = run_engine(&rel, 1, task, false);
        assert_eq!(df_cells, bf_cells);
        let df_switches = df.nodes[0].stats.file_switches;
        let bf_switches = bf.nodes[0].stats.file_switches;
        assert!(
            df_switches > 3 * bf_switches,
            "depth-first {df_switches} vs breadth-first {bf_switches}"
        );
        assert!(df.nodes[0].stats.disk_write_ns > bf.nodes[0].stats.disk_write_ns);
    }

    #[test]
    fn pruning_reduces_work() {
        let rel = presets::tiny(5).generate().unwrap();
        let task = TreeTask::whole_lattice(4);
        let (_, loose) = run_engine(&rel, 1, task, false);
        let (_, tight) = run_engine(&rel, 8, task, false);
        assert!(tight.nodes[0].stats.cpu_ns < loose.nodes[0].stats.cpu_ns);
        assert!(tight.nodes[0].stats.cells_written < loose.nodes[0].stats.cells_written);
    }

    #[test]
    fn empty_relation_emits_nothing() {
        let rel = Relation::new(icecube_data::Schema::from_cardinalities(&[2, 2]).unwrap());
        let (cells, _) = run_engine(&rel, 1, TreeTask::whole_lattice(2), false);
        assert!(cells.is_empty());
        let (cells, _) = run_engine(&rel, 1, TreeTask::whole_lattice(2), true);
        assert!(cells.is_empty());
    }

    #[test]
    fn minsup_above_data_size_emits_nothing() {
        let rel = sales();
        let (cells, _) = run_engine(&rel, 100, TreeTask::whole_lattice(3), false);
        assert!(cells.is_empty());
    }
}
