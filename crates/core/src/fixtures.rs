//! Shared example relations used by tests, examples and documentation.

// check:allow-file(panic-in-lib): fixture construction is infallible
// by construction; a malformed fixture must abort tests loudly, not
// thread a Result through every test.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use icecube_data::{Relation, Schema};

/// The paper's running example (Figure 2.2): relation SALES(Model, Year,
/// Color, Sales) with 18 rows.
///
/// Encoding: Model 0=Chevy 1=Ford; Year 0=1990 1=1991 2=1992;
/// Color 0=red 1=white 2=blue.
pub fn sales() -> Relation {
    let schema = Schema::from_cardinalities(&[2, 3, 3]).expect("static schema is valid");
    let mut r = Relation::new(schema);
    let rows: [(u32, u32, u32, i64); 18] = [
        (0, 0, 0, 5),
        (0, 0, 1, 87),
        (0, 0, 2, 62),
        (0, 1, 0, 54),
        (0, 1, 1, 95),
        (0, 1, 2, 49),
        (0, 2, 0, 31),
        (0, 2, 1, 54),
        (0, 2, 2, 71),
        (1, 0, 0, 64),
        (1, 0, 1, 62),
        (1, 0, 2, 63),
        (1, 1, 0, 52),
        (1, 1, 1, 9),
        (1, 1, 2, 55),
        (1, 2, 0, 27),
        (1, 2, 1, 62),
        (1, 2, 2, 39),
    ];
    for (a, b, c, m) in rows {
        r.push_row(&[a, b, c], m).expect("static rows are valid");
    }
    r
}

/// The paper's iceberg-query example (Table 2.1): relation R(Item,
/// Location, Customer, Sales) with 6 rows. With minimum support 2 on
/// (Item, Location), only ⟨Sony 25" TV, Seattle, 2100⟩ qualifies.
///
/// Encoding: Item 0=Sony TV 1=JVC TV 2=Panasonic VCR; Location 0=Seattle
/// 1=Vancouver 2=LA; Customer 0=joe 1=fred 2=sally 3=bob 4=tom.
pub fn iceberg_example() -> Relation {
    let schema = Schema::from_cardinalities(&[3, 3, 5]).expect("static schema is valid");
    let mut r = Relation::new(schema);
    let rows: [(u32, u32, u32, i64); 6] = [
        (0, 0, 0, 700),
        (1, 1, 1, 400),
        (0, 0, 2, 700),
        (1, 2, 2, 400),
        (0, 0, 3, 700),
        (2, 1, 4, 250),
    ];
    for (a, b, c, m) in rows {
        r.push_row(&[a, b, c], m).expect("static rows are valid");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_iceberg_cube;
    use crate::query::IcebergQuery;
    use icecube_lattice::CuboidMask;

    #[test]
    fn iceberg_example_matches_the_papers_answer() {
        // Section 2.1: "the result would be the tuple
        // <Sony 25\" TV, Seattle, 2100>" for T=2, GROUP BY item, location.
        let r = iceberg_example();
        let cells = naive_iceberg_cube(&r, &IcebergQuery::count_cube(3, 2));
        let il = CuboidMask::from_dims(&[0, 1]);
        let qualifying: Vec<_> = cells.iter().filter(|c| c.cuboid == il).collect();
        assert_eq!(qualifying.len(), 1);
        assert_eq!(qualifying[0].key, vec![0, 0]);
        assert_eq!(qualifying[0].agg.sum, 2100);
        assert_eq!(qualifying[0].agg.count, 3);
    }
}
