//! Algorithm RP — Replicated Parallel BUC (Section 3.1, Figure 3.1).
//!
//! The simplest parallelization of BUC: the processing tree's `d`
//! independent subtrees (rooted at each dimension) become the tasks,
//! assigned to processors round-robin; the dataset is replicated on every
//! node; each node runs plain depth-first BUC on its subtrees and writes
//! cuboids to its local disk.
//!
//! RP inherits BUC's pruning but also its scattered depth-first writing,
//! and its task granularity is coarse and uneven — the subtree rooted at
//! `A` has `2^(d-1)` cuboids while `D`'s has one — so load balance is weak
//! (Figure 4.1). Both weaknesses are what BPP and PT then attack.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::algorithms::{finish, load_replicated, RunOptions, RunOutcome};
use crate::backend::charge_replicated_load;
use crate::buc::{buc_depth_first_with, BucScratch};
use crate::cell::CellBuf;
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::recover::TaskGuard;
use icecube_cluster::{ClusterConfig, SimCluster, SimNode};
use icecube_data::Relation;
use icecube_exec::{TaskSpec, Workload};
use icecube_lattice::{CuboidMask, TreeTask};

/// RP's task units: the processing tree's `d` subtrees, one rooted at
/// each dimension, in dimension order. Shared by the simulator driver
/// and the executor plan so both backends run the identical task list.
pub(crate) fn subtree_tasks(d: usize) -> Vec<TreeTask> {
    (0..d)
        .map(|i| TreeTask::full_subtree(CuboidMask::from_dims(&[i]), d))
        .collect()
}

/// RP's backend-agnostic decomposition: one task per subtree, each
/// computed by depth-first BUC over the replicated relation.
pub(crate) struct RpWorkload<'a> {
    rel: &'a Relation,
    minsup: u64,
    collect: bool,
    tasks: Vec<TreeTask>,
}

/// Builds RP's executor plan for the given query.
pub(crate) fn exec_workload<'a>(
    rel: &'a Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
) -> (Vec<TaskSpec>, RpWorkload<'a>) {
    let tasks = subtree_tasks(query.dims);
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(id, task)| TaskSpec {
            id,
            affinity: task.root.bits() as u64,
            weight: task.size() as u64,
        })
        .collect();
    let workload = RpWorkload {
        rel,
        minsup: query.minsup,
        collect: opts.collect_cells,
        tasks,
    };
    (specs, workload)
}

impl Workload for RpWorkload<'_> {
    type Scratch = BucScratch;
    type Out = CellBuf;

    fn scratch(&self, _worker: usize) -> BucScratch {
        BucScratch::new()
    }

    fn prologue(&self, node: &mut SimNode) {
        charge_replicated_load(self.rel, node);
    }

    fn run(&self, spec: &TaskSpec, scratch: &mut BucScratch, node: &mut SimNode) -> CellBuf {
        let mut sink = if self.collect {
            CellBuf::collecting()
        } else {
            CellBuf::counting()
        };
        buc_depth_first_with(
            scratch,
            self.rel,
            self.minsup,
            self.tasks[spec.id],
            node,
            &mut sink,
        );
        sink
    }
}

/// Runs RP over a simulated cluster.
///
/// RP's assignment is static, so self-healing is a sweep afterwards: any
/// subtree whose processor crashed (before or during the work, partial
/// output rolled back) is re-run on the least-loaded survivor once the
/// manager's detection timeout has passed. The data is replicated, so
/// survivors can always re-read it locally.
pub fn run_rp(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();
    let detect = cluster.config.faults.policy.detect_timeout_ns;
    load_replicated(&mut cluster, rel);
    let d = query.dims;
    let mut sinks: Vec<CellBuf> = (0..n)
        .map(|_| {
            if opts.collect_cells {
                CellBuf::collecting()
            } else {
                CellBuf::counting()
            }
        })
        .collect();
    // Tasks lost to crashes, with the time the manager detects each loss.
    let mut recovery: Vec<(TreeTask, u64)> = Vec::new();
    // One arena scratch serves every subtree, including the recovery
    // sweep: host-side reuse, invisible to the simulated cost model.
    let mut scratch = BucScratch::new();
    // Static round-robin assignment: subtree rooted at dimension i goes to
    // processor i mod n. With more processors than dimensions, some idle.
    cluster.phase_start("compute");
    for (i, &task) in subtree_tasks(d).iter().enumerate() {
        let node_id = i % n;
        if cluster.nodes[node_id].is_dead() {
            cluster.nodes[node_id].note_task_lost();
            recovery.push((task, cluster.nodes[node_id].clock_ns() + detect));
            continue;
        }
        let guard = TaskGuard::checkpoint(&cluster.nodes[node_id], &sinks[node_id]);
        let node = &mut cluster.nodes[node_id];
        node.charge_task_overhead_for(task.root.bits() as u64);
        buc_depth_first_with(
            &mut scratch,
            rel,
            query.minsup,
            task,
            node,
            &mut sinks[node_id],
        );
        if cluster.nodes[node_id].is_dead() {
            guard.rollback(&mut cluster.nodes[node_id], &mut sinks[node_id]);
            cluster.nodes[node_id].note_task_lost();
            recovery.push((task, cluster.nodes[node_id].clock_ns() + detect));
        } else {
            cluster.nodes[node_id].trace_task_end(task.root.bits() as u64);
        }
    }
    cluster.phase_end("compute");
    // Recovery sweep: FIFO over lost subtrees, each to the survivor with
    // the smallest clock (the one a demand manager would pick).
    cluster.phase_start("recover");
    let mut next = 0;
    while next < recovery.len() {
        let (task, available_at) = recovery[next];
        next += 1;
        let Some(survivor) = cluster.min_clock_live() else {
            return Err(AlgoError::ClusterExhausted { nodes: n });
        };
        cluster.nodes[survivor].wait_until(available_at);
        if cluster.nodes[survivor].is_dead() {
            // Died waiting for the handoff; nothing started, try again.
            recovery.push((task, available_at));
            continue;
        }
        let guard = TaskGuard::checkpoint(&cluster.nodes[survivor], &sinks[survivor]);
        let node = &mut cluster.nodes[survivor];
        node.charge_task_overhead_for(task.root.bits() as u64);
        buc_depth_first_with(
            &mut scratch,
            rel,
            query.minsup,
            task,
            node,
            &mut sinks[survivor],
        );
        if cluster.nodes[survivor].is_dead() {
            guard.rollback(&mut cluster.nodes[survivor], &mut sinks[survivor]);
            cluster.nodes[survivor].note_task_lost();
            recovery.push((task, cluster.nodes[survivor].clock_ns() + detect));
        } else {
            cluster.nodes[survivor].trace_task_end(task.root.bits() as u64);
            cluster.nodes[survivor].note_task_recovered();
        }
    }
    cluster.phase_end("recover");
    // The run ends when the slowest processor finishes.
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    Ok(finish(
        crate::algorithms::Algorithm::Rp,
        &mut cluster,
        sinks,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::verify::assert_same_cells;
    use icecube_data::presets;

    fn check(rel: &Relation, minsup: u64, nodes: usize) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let out = run_rp(rel, &q, &cfg, &RunOptions::default()).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(want, out.cells, &format!("RP n={nodes} minsup={minsup}"));
    }

    #[test]
    fn matches_naive_across_cluster_sizes() {
        let rel = sales();
        for nodes in [1, 2, 3, 8] {
            check(&rel, 2, nodes);
        }
        let rel = presets::tiny(11).generate().unwrap();
        for minsup in [1, 2, 4] {
            check(&rel, minsup, 4);
        }
    }

    #[test]
    fn load_is_skewed_toward_early_dimensions() {
        // T_A has 2^(d-1) cuboids vs T_D's 1: the node holding dimension 0
        // does far more work (the paper's Figure 4.1 observation).
        let rel = presets::tiny(5).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let out = run_rp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        let loads = out.stats.loads_ns();
        assert!(loads[0] > loads[3], "loads {loads:?}");
        assert!(
            out.stats.imbalance() > 1.1,
            "imbalance {}",
            out.stats.imbalance()
        );
    }

    #[test]
    fn extra_processors_idle() {
        // More processors than dimensions leaves some idle but must not
        // break anything.
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let out = run_rp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(8),
            &RunOptions::default(),
        )
        .unwrap();
        let idle_nodes = out
            .stats
            .nodes()
            .iter()
            .filter(|s| s.cells_written == 0)
            .count();
        assert_eq!(idle_nodes, 5);
        let want = naive_iceberg_cube(&rel, &q);
        assert_same_cells(want, out.cells, "RP with idle processors");
    }

    #[test]
    fn a_crash_is_healed_and_the_cube_stays_exact() {
        use icecube_cluster::FaultPlan;
        let rel = presets::tiny(11).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let quiet = run_rp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions::default(),
        )
        .unwrap();
        // Kill node 0 (the most loaded: subtrees A and D) mid-run.
        let cfg = ClusterConfig::fast_ethernet(3)
            .with_faults(FaultPlan::none().crash(0, quiet.stats.makespan_ns() / 4));
        let out = run_rp(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "RP with a mid-run crash",
        );
        assert_eq!(out.stats.total_crashes(), 1);
        assert!(out.stats.total_tasks_lost() >= 1, "{:?}", out.stats);
        assert_eq!(
            out.stats.total_tasks_recovered(),
            out.stats.total_tasks_lost()
        );
        assert!(out.stats.makespan_ns() > quiet.stats.makespan_ns());
    }

    #[test]
    fn losing_every_node_is_a_typed_error() {
        use icecube_cluster::FaultPlan;
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let cfg = ClusterConfig::fast_ethernet(2)
            .with_faults(FaultPlan::none().crash(0, 1_000).crash(1, 1_000));
        match run_rp(&rel, &q, &cfg, &RunOptions::default()) {
            Err(AlgoError::ClusterExhausted { nodes: 2 }) => {}
            other => panic!("expected ClusterExhausted, got {other:?}"),
        }
    }

    #[test]
    fn counting_mode_tracks_without_retaining() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let counted = run_rp(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(2),
            &RunOptions::counting(),
        )
        .unwrap();
        assert!(counted.cells.is_empty());
        assert_eq!(counted.total_cells, 47);
        assert_eq!(counted.stats.total_cells(), 47);
    }
}
