//! PipeSort (Agarwal et al., VLDB 1996) — the sort-based top-down baseline
//! the paper reviews in Section 2.4.1.
//!
//! PipeSort's two ideas, both implemented here:
//!
//! * **Planning.** Every cuboid at level `k−1` is computed from a parent at
//!   level `k`. A parent can hand its sort order to *one* child for the
//!   cheap cost `A(parent)` (scan, no sort); every other child pays
//!   `S(parent)` (re-sort then scan). Level by level, the assignment that
//!   minimizes total cost is a minimum-cost bipartite matching; this
//!   implementation uses the standard greedy approximation on the savings
//!   `S_min(child) − A(parent)` (exact matching only changes constants,
//!   not the baseline's shape, and the thesis never evaluates PipeSort
//!   directly).
//! * **Pipelines.** Chains of share-sort edges execute in a single scan:
//!   sorting once in the head's attribute order computes every cuboid on
//!   the chain simultaneously, maintaining one running aggregate per
//!   prefix length (Figure 2.6b). Only pipeline heads sort.
//!
//! Like every top-down algorithm, PipeSort cannot prune on minimum
//! support; the threshold filters output only.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.
// check:allow-file(unordered-collections): hash tables here are
// build-side internals; every cell set is canonically sorted before
// it leaves this module, so iteration order cannot reach results
// (the cross-algorithm equivalence tests pin this).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::query::IcebergQuery;
use icecube_cluster::SimNode;
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, Lattice};
use std::collections::HashMap;

/// The per-cuboid plan: where its data comes from and in which attribute
/// order its cells are produced.
#[derive(Debug, Clone)]
struct PlanNode {
    /// Attribute order of this cuboid's cells.
    order: Vec<usize>,
    /// The cuboid this one is computed from (`None` = raw data).
    parent: Option<CuboidMask>,
    /// Whether the parent's sort order is reused (pipelined) or a re-sort
    /// is required (this cuboid heads a pipeline).
    pipelined: bool,
}

/// The complete PipeSort plan.
#[derive(Debug, Clone)]
pub struct PipeSortPlan {
    nodes: HashMap<CuboidMask, PlanNode>,
    d: usize,
}

impl PipeSortPlan {
    /// The cube dimensionality the plan was built for.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Number of pipelines (cuboids that require their own sort).
    pub fn pipeline_count(&self) -> usize {
        self.nodes.values().filter(|n| !n.pipelined).count()
    }

    /// The planned attribute order of a cuboid.
    pub fn order_of(&self, g: CuboidMask) -> Option<&[usize]> {
        self.nodes.get(&g).map(|n| n.order.as_slice())
    }
}

/// Estimated cuboid size: `min(∏ cardinalities, tuples)` — the cost basis
/// PipeSort plans with (the paper notes this estimate is what breaks down
/// on sparse data, motivating PartitionedCube).
fn est_size(g: CuboidMask, cards: &[u32], tuples: usize) -> u64 {
    let mut prod = 1u64;
    for d in g.iter_dims() {
        prod = prod.saturating_mul(cards[d] as u64);
        if prod >= tuples as u64 {
            return tuples as u64;
        }
    }
    prod.min(tuples as u64)
}

/// A-cost: computing one child from this parent without sorting.
fn a_cost(p: CuboidMask, cards: &[u32], tuples: usize) -> u64 {
    est_size(p, cards, tuples)
}

/// S-cost: re-sorting the parent first.
fn s_cost(p: CuboidMask, cards: &[u32], tuples: usize) -> u64 {
    let n = est_size(p, cards, tuples);
    n.saturating_mul(n.max(2).ilog2() as u64 + 1)
}

/// Builds the PipeSort plan for a cube over the given schema.
pub fn plan(dims: usize, cards: &[u32], tuples: usize) -> PipeSortPlan {
    let lattice = Lattice::new(dims);
    // matched[parent] = child that inherits the parent's sort order.
    let mut matched_child: HashMap<CuboidMask, CuboidMask> = HashMap::new();
    let mut parent_of: HashMap<CuboidMask, (CuboidMask, bool)> = HashMap::new();

    for k in (1..=dims).rev() {
        let children: Vec<CuboidMask> = lattice.level(k - 1).collect();
        if children.is_empty() {
            continue;
        }
        // For each child, the cheapest re-sort parent as the fallback.
        let best_s: HashMap<CuboidMask, (CuboidMask, u64)> = children
            .iter()
            .map(|&c| {
                let best = lattice
                    .level(k)
                    .filter(|&p| c.is_subset_of(p))
                    .map(|p| (p, s_cost(p, cards, tuples)))
                    .min_by_key(|&(p, cost)| (cost, p))
                    .expect("every non-top cuboid has a parent");
                (c, best)
            })
            .collect();
        // Greedy maximum-savings matching: edges (child, parent) with
        // savings = S_min(child) − A(parent).
        let mut edges: Vec<(u64, CuboidMask, CuboidMask)> = Vec::new();
        for &c in &children {
            let s_min = best_s[&c].1;
            for p in lattice.level(k).filter(|&p| c.is_subset_of(p)) {
                let a = a_cost(p, cards, tuples);
                if a < s_min {
                    edges.push((s_min - a, c, p));
                }
            }
        }
        edges.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
        let mut child_done: HashMap<CuboidMask, ()> = HashMap::new();
        for (_, c, p) in edges {
            if child_done.contains_key(&c) || matched_child.contains_key(&p) {
                continue;
            }
            child_done.insert(c, ());
            matched_child.insert(p, c);
            parent_of.insert(c, (p, true));
        }
        for &c in &children {
            if !child_done.contains_key(&c) {
                parent_of.insert(c, (best_s[&c].0, false));
            }
        }
    }

    // Assign attribute orders: walk each share-sort chain from its bottom.
    // A cuboid's order is fixed by the chain below it: the bottom member
    // takes ascending order; each parent appends its extra dimension.
    let mut nodes: HashMap<CuboidMask, PlanNode> = HashMap::new();
    // Bottoms: cuboids that are not a matched parent (no child inherits).
    let all: Vec<CuboidMask> = lattice.cuboids().collect();
    for &g in &all {
        if matched_child.contains_key(&g) {
            continue; // its order is derived from below
        }
        // Build the chain upward from g.
        let mut order: Vec<usize> = g.dims();
        let mut cur = g;
        loop {
            let (parent, pipelined) = match parent_of.get(&cur) {
                Some(&(p, pl)) => (Some(p), pl),
                None => (None, false), // the top cuboid: sorted from raw data
            };
            nodes.insert(
                cur,
                PlanNode {
                    order: order.clone(),
                    parent,
                    pipelined,
                },
            );
            // Does `cur`'s parent pipeline into it? Then extend the order.
            match parent {
                Some(p) if pipelined && matched_child.get(&p) == Some(&cur) => {
                    let extra = p
                        .iter_dims()
                        .find(|d| !cur.contains(*d))
                        .expect("parent has one extra dimension");
                    order.push(extra);
                    cur = p;
                }
                _ => break,
            }
        }
    }
    PipeSortPlan { nodes, d: dims }
}

/// Executes PipeSort: plans, then runs every pipeline, emitting qualifying
/// cells and charging the simulated node.
pub fn pipesort<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    node: &mut SimNode,
    sink: &mut S,
) {
    assert_eq!(
        query.dims,
        rel.arity(),
        "query dims must match the relation"
    );
    if rel.is_empty() {
        return;
    }
    let cards = rel.schema().cardinalities();
    let the_plan = plan(query.dims, &cards, rel.len());
    execute(rel, query, &the_plan, node, sink);
}

/// A materialized cuboid during execution.
type Cells = Vec<(Vec<u32>, Aggregate)>;

fn execute<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    plan: &PipeSortPlan,
    node: &mut SimNode,
    sink: &mut S,
) {
    let mut materialized: HashMap<CuboidMask, Cells> = HashMap::new();
    // How many pipeline heads will still read each cuboid as their input;
    // a materialized cuboid is dropped once its last consumer has run.
    let mut consumers: HashMap<CuboidMask, usize> = HashMap::new();
    for n in plan.nodes.values() {
        if !n.pipelined {
            if let Some(p) = n.parent {
                *consumers.entry(p).or_insert(0) += 1;
            }
        }
    }
    // Pipelines execute heads-by-level descending, so a head's parent is
    // always materialized first.
    let mut heads: Vec<CuboidMask> = plan
        .nodes
        .iter()
        .filter(|(_, n)| !n.pipelined)
        .map(|(&g, _)| g)
        .collect();
    heads.sort_unstable_by(|a, b| b.dim_count().cmp(&a.dim_count()).then(a.cmp(b)));

    for head in heads {
        // The members of this pipeline: the chain of cuboids that inherit
        // the head's sort order, one prefix shorter each.
        let mut members = vec![head];
        let mut cur = head;
        loop {
            let next = plan
                .nodes
                .iter()
                .find(|(_, n)| n.pipelined && n.parent == Some(cur))
                .map(|(&g, _)| g);
            match next {
                Some(g) => {
                    members.push(g);
                    cur = g;
                }
                None => break,
            }
        }
        let head_order = &plan.nodes[&head].order;
        // Input: the head's parent (re-sorted), or the raw data for the top.
        let input: Cells = match plan.nodes[&head].parent {
            None => sort_raw(rel, head_order, node),
            Some(p) => {
                let parent_cells = materialized.get(&p).expect("parent before child");
                let resorted = resort(parent_cells, &plan.nodes[&p].order, head_order, node);
                let remaining = consumers.get_mut(&p).expect("counted above");
                *remaining -= 1;
                if *remaining == 0 {
                    if let Some(freed) = materialized.remove(&p) {
                        node.free(cells_bytes(&freed));
                    }
                }
                resorted
            }
        };
        // One scan computes every member: running aggregate per prefix.
        run_pipeline(
            &input,
            &members,
            plan,
            query,
            &consumers,
            node,
            sink,
            &mut materialized,
        );
    }
}

/// Memory accounting for a materialized cuboid.
fn cells_bytes(cells: &Cells) -> u64 {
    cells.iter().map(|(k, _)| k.len() as u64 * 4 + 32).sum()
}

/// Sorts the raw relation by `order` and pre-aggregates duplicate keys.
fn sort_raw(rel: &Relation, order: &[usize], node: &mut SimNode) -> Cells {
    let mut idx: Vec<u32> = (0..rel.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        let (ra, rb) = (rel.row(a as usize), rel.row(b as usize));
        order
            .iter()
            .map(|&d| ra[d])
            .cmp(order.iter().map(|&d| rb[d]))
    });
    let n = rel.len() as u64;
    node.charge_comparisons(n * (n.max(2).ilog2() as u64) * order.len() as u64);
    let mut out: Cells = Vec::new();
    let mut key = vec![0u32; order.len()];
    for &i in &idx {
        let row = rel.row(i as usize);
        for (slot, &d) in key.iter_mut().zip(order) {
            *slot = row[d];
        }
        match out.last_mut() {
            Some((k, agg)) if *k == key => agg.update(rel.measure(i as usize)),
            _ => out.push((key.clone(), Aggregate::of(rel.measure(i as usize)))),
        }
    }
    node.charge_agg_updates(n);
    out
}

/// Re-sorts a parent's cells from its order into the head's order
/// (projecting away the parent's extra dimension).
fn resort(
    parent: &Cells,
    parent_order: &[usize],
    head_order: &[usize],
    node: &mut SimNode,
) -> Cells {
    let positions: Vec<usize> = head_order
        .iter()
        .map(|d| {
            parent_order
                .iter()
                .position(|p| p == d)
                .expect("head ⊂ parent")
        })
        .collect();
    let mut projected: Cells = parent
        .iter()
        .map(|(k, a)| (positions.iter().map(|&p| k[p]).collect(), *a))
        .collect();
    projected.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let n = parent.len() as u64;
    node.charge_comparisons(n * (n.max(2).ilog2() as u64) * positions.len() as u64);
    // Accumulate duplicates created by the projection.
    let mut out: Cells = Vec::new();
    for (k, a) in projected {
        match out.last_mut() {
            Some((pk, pa)) if *pk == k => pa.merge(&a),
            _ => out.push((k, a)),
        }
    }
    node.charge_agg_updates(n);
    out
}

/// The pipelined scan: one pass over `input` (sorted by `head_order`)
/// computing every member simultaneously — member `i` is the prefix of
/// length `member_len[i]` of the head's order.
#[allow(clippy::too_many_arguments)]
fn run_pipeline<S: CellSink>(
    input: &Cells,
    members: &[CuboidMask],
    plan: &PipeSortPlan,
    query: &IcebergQuery,
    consumers: &HashMap<CuboidMask, usize>,
    node: &mut SimNode,
    sink: &mut S,
    materialized: &mut HashMap<CuboidMask, Cells>,
) {
    let mut outputs: Vec<Cells> = vec![Cells::new(); members.len()];
    let lens: Vec<usize> = members.iter().map(|m| m.dim_count()).collect();
    debug_assert!(lens.windows(2).all(|w| w[0] == w[1] + 1));
    let mut running: Vec<(Vec<u32>, Aggregate)> = lens
        .iter()
        .map(|&l| (vec![u32::MAX; l], Aggregate::empty()))
        .collect();
    for (key, agg) in input {
        for (mi, &len) in lens.iter().enumerate() {
            let prefix = &key[..len];
            if running[mi].0.as_slice() != prefix {
                if running[mi].1.count > 0 {
                    let (k, a) =
                        std::mem::replace(&mut running[mi], (prefix.to_vec(), Aggregate::empty()));
                    outputs[mi].push((k, a));
                } else {
                    running[mi].0.clear();
                    running[mi].0.extend_from_slice(prefix);
                }
            }
            running[mi].1.merge(agg);
        }
        node.charge_agg_updates(lens.len() as u64);
    }
    for (mi, (k, a)) in running.into_iter().enumerate() {
        if a.count > 0 {
            outputs[mi].push((k, a));
        }
    }
    // Emit qualifying cells; keys are in the member's *planned* order,
    // which may differ from ascending-dimension order — normalize on emit.
    for (mi, member) in members.iter().enumerate() {
        let order = &plan.nodes[member].order;
        let member_dims = member.dims();
        let remap: Vec<usize> = member_dims
            .iter()
            .map(|d| order.iter().position(|o| o == d).expect("same dims"))
            .collect();
        let mut emitted = 0u64;
        let mut cell_key = vec![0u32; member_dims.len()];
        for (k, a) in &outputs[mi] {
            if a.meets(query.minsup) {
                for (slot, &p) in cell_key.iter_mut().zip(&remap) {
                    *slot = k[p];
                }
                sink.emit(*member, &cell_key, a);
                emitted += 1;
            }
        }
        if emitted > 0 {
            node.write_cells(
                member.bits() as u64,
                emitted * Cell::disk_bytes(member_dims.len()),
                emitted,
            );
        }
        // Materialize only cuboids some later pipeline reads.
        if consumers.get(member).copied().unwrap_or(0) > 0 {
            let cells = std::mem::take(&mut outputs[mi]);
            node.alloc(cells_bytes(&cells));
            materialized.insert(*member, cells);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run(rel: &Relation, minsup: u64) -> Vec<Cell> {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        pipesort(rel, &q, &mut cluster.nodes[0], &mut sink);
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        cells
    }

    #[test]
    fn matches_naive_on_sales() {
        let rel = sales();
        for minsup in [1, 2, 3, 6] {
            let got = run(&rel, minsup);
            let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(3, minsup));
            assert_eq!(got, want, "minsup {minsup}");
        }
    }

    #[test]
    fn matches_naive_on_synthetic() {
        for seed in [0, 7] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3] {
                let got = run(&rel, minsup);
                let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, minsup));
                assert_eq!(got, want, "seed {seed} minsup {minsup}");
            }
        }
    }

    #[test]
    fn plan_shares_sorts() {
        // With shared sorts, far fewer pipelines than cuboids.
        let cards = presets::baseline().cardinalities;
        let p = plan(9, &cards, 176_631);
        let pipelines = p.pipeline_count();
        assert!(pipelines < 511, "pipelines {pipelines}");
        // Lower bound: at least C(9, 4) = 126 pipelines are needed to
        // cover the widest lattice level (each pipeline crosses a level
        // at most once).
        assert!(pipelines >= 126, "pipelines {pipelines}");
    }

    #[test]
    fn plan_orders_are_consistent() {
        let p = plan(4, &[4, 3, 5, 2], 1000);
        let l = Lattice::new(4);
        for g in l.cuboids() {
            let order = p.order_of(g).expect("every cuboid planned");
            assert_eq!(order.len(), g.dim_count());
            let mut dims: Vec<usize> = order.to_vec();
            dims.sort_unstable();
            assert_eq!(dims, g.dims(), "order must permute the cuboid's dims");
        }
    }

    #[test]
    fn pipelined_members_are_prefixes_of_their_parents() {
        let p = plan(5, &[6, 5, 4, 3, 2], 5000);
        for (g, n) in &p.nodes {
            if n.pipelined {
                let parent = n.parent.expect("pipelined implies parent");
                let porder = p.order_of(parent).unwrap();
                let order = p.order_of(*g).unwrap();
                assert_eq!(&porder[..order.len()], order, "cuboid {g}");
            }
        }
    }

    #[test]
    fn plans_are_valid_for_many_shapes() {
        // Property-style sweep without proptest's RNG (plans are pure
        // functions of the shape): for a range of dimensionalities and
        // cardinality profiles, every plan must permute each cuboid's
        // dims, make every pipelined child a strict order-prefix of its
        // parent, and chain every cuboid up to a head.
        for d in 2..=7usize {
            for profile in 0..4u32 {
                let cards: Vec<u32> = (0..d)
                    .map(|i| 2 + ((i as u32 + 1) * (profile + 3)) % 97)
                    .collect();
                let p = plan(d, &cards, 10_000);
                let l = Lattice::new(d);
                for g in l.cuboids() {
                    let order = p.order_of(g).unwrap_or_else(|| panic!("{g} unplanned"));
                    let mut sorted: Vec<usize> = order.to_vec();
                    sorted.sort_unstable();
                    assert_eq!(sorted, g.dims(), "order must permute {g}");
                }
                for (g, n) in &p.nodes {
                    if n.pipelined {
                        let parent = n.parent.expect("pipelined implies parent");
                        let porder = p.order_of(parent).unwrap();
                        let order = p.order_of(*g).unwrap();
                        assert_eq!(&porder[..order.len()], order, "{g} under {parent}");
                    }
                }
                assert!(p.pipeline_count() <= l.cuboid_count());
            }
        }
    }

    #[test]
    fn sort_sharing_reduces_comparisons_vs_always_resorting() {
        let rel = presets::tiny(3).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(2));
        let mut sink = CellBuf::counting();
        pipesort(&rel, &q, &mut cluster.nodes[0], &mut sink);
        // Re-sorting at every cuboid would be >= one n log n per cuboid.
        let n = rel.len() as u64;
        let always = 15 * n * (n.ilog2() as u64);
        assert!(cluster.nodes[0].stats.cpu_ns < always * 8);
    }
}
