//! A sequential share-sort top-down baseline (the PipeSort/PipeHash
//! lineage of Section 2.4.1).
//!
//! Top-down algorithms compute each group-by from a *parent* one level up,
//! exploiting two facts the paper reviews: a smaller parent is cheaper to
//! aggregate than the raw data (*smallest parent*), and a parent sorted
//! with the child's dimensions as a prefix needs no re-sort (*share-sorts*).
//! This implementation materializes cuboids down the processing tree of
//! Figure 2.4(b): every cuboid is computed from its
//! [`topdown_parent`](icecube_lattice::Lattice::topdown_parent); when the
//! child is a prefix of the parent a single accumulate-runs scan suffices,
//! otherwise the parent's cells are re-sorted first.
//!
//! Top-down traversal cannot prune on minimum support (a cell below the
//! threshold still feeds qualifying ancestors), which is exactly why BUC
//! wins on iceberg queries — this baseline exists to exhibit that contrast
//! and to serve ASL's precomputation mode.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::query::IcebergQuery;
use icecube_cluster::SimNode;
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, Lattice};

/// A materialized cuboid: cells sorted by key, *unfiltered* (top-down must
/// keep sub-threshold cells because they feed ancestors).
#[derive(Debug, Clone)]
struct Materialized {
    cuboid: CuboidMask,
    cells: Vec<(Vec<u32>, Aggregate)>,
}

/// Computes the iceberg cube top-down with sort sharing, charging costs to
/// `node` and emitting qualifying cells to `sink`.
pub fn topdown_shared<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    node: &mut SimNode,
    sink: &mut S,
) {
    assert_eq!(
        query.dims,
        rel.arity(),
        "query dims must match the relation"
    );
    if rel.is_empty() {
        return;
    }
    let lattice = Lattice::new(query.dims);
    // Children of each node in the top-down processing tree.
    let mut children: Vec<Vec<CuboidMask>> = vec![Vec::new(); 1 << query.dims];
    for g in lattice.cuboids() {
        if let Some(p) = lattice.topdown_parent(g) {
            children[p.bits() as usize].push(g);
        }
    }
    // The top cuboid comes from the raw data.
    let top = build_top(rel, lattice.top(), node);
    emit(&top, query.minsup, node, sink);
    descend(&top, &children, query.minsup, node, sink);
}

fn descend<S: CellSink>(
    parent: &Materialized,
    children: &[Vec<CuboidMask>],
    minsup: u64,
    node: &mut SimNode,
    sink: &mut S,
) {
    for &child in &children[parent.cuboid.bits() as usize] {
        let m = aggregate_from_parent(parent, child, node);
        emit(&m, minsup, node, sink);
        descend(&m, children, minsup, node, sink);
    }
}

/// Sorts the raw data and aggregates the most detailed cuboid.
fn build_top(rel: &Relation, top: CuboidMask, node: &mut SimNode) -> Materialized {
    let d = rel.arity();
    let mut idx: Vec<u32> = (0..rel.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| rel.row(a as usize).cmp(rel.row(b as usize)));
    // n log n comparisons of d-element keys.
    let n = rel.len() as u64;
    node.charge_comparisons(n * n.max(2).ilog2() as u64 * d as u64);
    let mut cells: Vec<(Vec<u32>, Aggregate)> = Vec::new();
    for &i in &idx {
        let row = rel.row(i as usize);
        match cells.last_mut() {
            Some((key, agg)) if key.as_slice() == row => agg.update(rel.measure(i as usize)),
            _ => cells.push((row.to_vec(), Aggregate::of(rel.measure(i as usize)))),
        }
    }
    node.charge_agg_updates(n);
    Materialized { cuboid: top, cells }
}

/// Computes `child` from a materialized parent, re-sorting only when the
/// child is not a prefix of the parent (share-sorts).
fn aggregate_from_parent(
    parent: &Materialized,
    child: CuboidMask,
    node: &mut SimNode,
) -> Materialized {
    let positions: Vec<usize> = {
        // Position of each child dim within the parent's key.
        let pdims = parent.cuboid.dims();
        child
            .dims()
            .iter()
            .map(|d| pdims.iter().position(|p| p == d).expect("child ⊆ parent"))
            .collect()
    };
    let is_prefix = positions.iter().copied().eq(0..positions.len());
    let n = parent.cells.len() as u64;
    let project = |key: &[u32]| -> Vec<u32> { positions.iter().map(|&p| key[p]).collect() };

    let mut cells: Vec<(Vec<u32>, Aggregate)> = Vec::new();
    if is_prefix {
        // Share-sort: parent order is already child order — one scan.
        for (key, agg) in &parent.cells {
            let ckey = project(key);
            match cells.last_mut() {
                Some((k, a)) if *k == ckey => a.merge(agg),
                _ => cells.push((ckey, *agg)),
            }
        }
        node.charge_comparisons(n * positions.len() as u64);
    } else {
        // Re-sort the parent's cells by the child key, then accumulate.
        let mut projected: Vec<(Vec<u32>, Aggregate)> =
            parent.cells.iter().map(|(k, a)| (project(k), *a)).collect();
        projected.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        node.charge_comparisons(n * n.max(2).ilog2() as u64 * positions.len() as u64);
        for (ckey, agg) in projected {
            match cells.last_mut() {
                Some((k, a)) if *k == ckey => a.merge(&agg),
                _ => cells.push((ckey, agg)),
            }
        }
    }
    node.charge_agg_updates(n);
    Materialized {
        cuboid: child,
        cells,
    }
}

/// Writes a materialized cuboid's qualifying cells (breadth-first: one
/// contiguous write).
fn emit<S: CellSink>(m: &Materialized, minsup: u64, node: &mut SimNode, sink: &mut S) {
    let mut count = 0u64;
    for (key, agg) in &m.cells {
        if agg.meets(minsup) {
            sink.emit(m.cuboid, key, agg);
            count += 1;
        }
    }
    if count > 0 {
        node.write_cells(
            m.cuboid.bits() as u64,
            count * Cell::disk_bytes(m.cuboid.dim_count()),
            count,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run(rel: &Relation, minsup: u64) -> (Vec<Cell>, SimCluster) {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        topdown_shared(rel, &q, &mut cluster.nodes[0], &mut sink);
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        (cells, cluster)
    }

    #[test]
    fn matches_naive_on_sales() {
        let rel = sales();
        for minsup in [1, 2, 3, 6] {
            let (cells, _) = run(&rel, minsup);
            let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(3, minsup));
            assert_eq!(cells, want, "minsup {minsup}");
        }
    }

    #[test]
    fn matches_naive_on_synthetic() {
        for seed in [0, 4] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3] {
                let (cells, _) = run(&rel, minsup);
                let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, minsup));
                assert_eq!(cells, want, "seed {seed} minsup {minsup}");
            }
        }
    }

    #[test]
    fn no_pruning_means_minsup_does_not_cut_compute() {
        // Top-down cannot prune: CPU cost is (nearly) the same at any
        // minsup; only output I/O shrinks. This is the structural contrast
        // with BUC the paper draws.
        let rel = presets::tiny(1).generate().unwrap();
        let (_, loose) = run(&rel, 1);
        let (_, tight) = run(&rel, 10);
        // The aggregation work is identical; only the per-cell emission
        // overhead (and I/O) shrinks with the threshold.
        let (l, t) = (loose.nodes[0].stats.cpu_ns, tight.nodes[0].stats.cpu_ns);
        assert!(t <= l && t * 10 > l * 8, "loose {l} vs tight {t}");
        assert!(tight.nodes[0].stats.bytes_written < loose.nodes[0].stats.bytes_written);
    }

    #[test]
    fn empty_input_is_fine() {
        let rel = Relation::new(icecube_data::Schema::from_cardinalities(&[2, 2]).unwrap());
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        topdown_shared(
            &rel,
            &IcebergQuery::count_cube(2, 1),
            &mut cluster.nodes[0],
            &mut sink,
        );
        assert_eq!(sink.count, 0);
    }
}
