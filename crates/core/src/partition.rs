//! Counting-sort partitioning, the workhorse of the BUC family.
//!
//! BUC repeatedly splits a run of tuples into groups by one attribute
//! (Figure 2.10). Dimension values are dictionary-encoded and dense, so the
//! split is a counting sort — linear in the run length, no comparisons —
//! exactly the "Partition" primitive of the original BUC paper. The
//! partitioner owns reusable scratch buffers so recursion does not
//! re-allocate, and charges the simulated node per tuple scanned and moved.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use icecube_cluster::SimNode;
use icecube_data::Relation;

/// A `[start, end)` run of the index array holding one partition.
pub type Group = (u32, u32);

/// Reusable counting-sort state.
#[derive(Debug, Default)]
pub struct Partitioner {
    counts: Vec<u32>,
    scratch: Vec<u32>,
    touched: Vec<u32>,
    /// Dimension values captured during the count pass, so the scatter
    /// pass reads them sequentially instead of chasing the row-major
    /// relation a second time (the dominant cache-miss source on wide
    /// relations).
    vals: Vec<u32>,
}

impl Partitioner {
    /// Creates a partitioner with empty scratch space.
    pub fn new() -> Self {
        Partitioner::default()
    }

    /// Counting-sorts `idx[start..end)` by `dim`, appending the resulting
    /// non-empty groups to `out`. Tuples with equal `dim` values become
    /// contiguous; group order follows the value order.
    ///
    /// Charges one scan pass plus one move per tuple to `node`.
    pub fn split(
        &mut self,
        rel: &Relation,
        idx: &mut [u32],
        range: Group,
        dim: usize,
        node: &mut SimNode,
        out: &mut Vec<Group>,
    ) {
        let (start, end) = (range.0 as usize, range.1 as usize);
        debug_assert!(start <= end && end <= idx.len());
        let len = end - start;
        if len == 0 {
            return;
        }
        let card = rel.schema().cardinality(dim) as usize;
        if self.counts.len() < card {
            self.counts.resize(card, 0);
        }
        self.touched.clear();
        self.vals.clear();
        // Count occurrences of each value in the run, remembering each
        // tuple's value for the scatter pass.
        for &row in &idx[start..end] {
            let v = rel.value(row as usize, dim);
            self.vals.push(v);
            let v = v as usize;
            if self.counts[v] == 0 {
                self.touched.push(v as u32);
            }
            self.counts[v] += 1;
        }
        node.charge_scan(len as u64);
        // Values must come out in ascending order for deterministic output.
        self.touched.sort_unstable();
        // Prefix sums over the touched values only (cardinality can exceed
        // the run length by orders of magnitude on sparse cubes).
        let mut offset = 0u32;
        for &v in &self.touched {
            let c = self.counts[v as usize];
            self.counts[v as usize] = offset;
            out.push((range.0 + offset, range.0 + offset + c));
            offset += c;
        }
        // Scatter into scratch, then copy back. The scratch is grown but
        // never zeroed: the prefix sums above make `counts[v]` a bijection
        // from run positions onto `0..len`, so the scatter writes every
        // slot of `scratch[..len]` exactly once and stale contents from a
        // previous (possibly longer) call can never leak through.
        if self.scratch.len() < len {
            self.scratch.resize(len, 0);
        }
        for (&row, &v) in idx[start..end].iter().zip(&self.vals) {
            let v = v as usize;
            self.scratch[self.counts[v] as usize] = row;
            self.counts[v] += 1;
        }
        idx[start..end].copy_from_slice(&self.scratch[..len]);
        node.charge_moves(len as u64);
        // Reset the touched counters for the next call.
        for &v in &self.touched {
            self.counts[v as usize] = 0;
        }
    }

    /// Refines every group of `groups` by `dim`, appending the finer groups
    /// to `out` (BPP-BUC's "sort R according to the attributes ordered in
    /// prefix" — the data is already grouped by the previous prefix, so
    /// only a per-group counting sort on the new attribute is needed).
    pub fn refine(
        &mut self,
        rel: &Relation,
        idx: &mut [u32],
        groups: &[Group],
        dim: usize,
        node: &mut SimNode,
        out: &mut Vec<Group>,
    ) {
        for &g in groups {
            self.split(rel, idx, g, dim, node, out);
        }
    }

    /// Like [`refine`](Self::refine), but counting-sorts each group of
    /// `arena[..dst_base]` directly into the region starting at `dst_base`
    /// instead of permuting in place — the zero-clone arena kernel's way of
    /// giving a child recursion frame its own copy of the parent's tuples
    /// with a single move per tuple (in-place refine plus a host-side
    /// `Vec` clone used to cost three).
    ///
    /// Every group must lie below `dst_base`, and the destination region
    /// must have room for the groups' total length. Refined groups are
    /// appended to `out` packed contiguously from `dst_base`, in group
    /// order. Charges are identical to [`refine`](Self::refine): one scan
    /// pass plus one move per tuple of each non-empty group.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter_refine(
        &mut self,
        rel: &Relation,
        arena: &mut [u32],
        groups: &[Group],
        dst_base: u32,
        dim: usize,
        node: &mut SimNode,
        out: &mut Vec<Group>,
    ) {
        let (src, dst) = arena.split_at_mut(dst_base as usize);
        let mut dpos = dst_base;
        for &(s, e) in groups {
            let (start, end) = (s as usize, e as usize);
            debug_assert!(start <= end && end <= src.len());
            let len = end - start;
            if len == 0 {
                continue;
            }
            let card = rel.schema().cardinality(dim) as usize;
            if self.counts.len() < card {
                self.counts.resize(card, 0);
            }
            self.touched.clear();
            self.vals.clear();
            for &row in &src[start..end] {
                let v = rel.value(row as usize, dim);
                self.vals.push(v);
                let v = v as usize;
                if self.counts[v] == 0 {
                    self.touched.push(v as u32);
                }
                self.counts[v] += 1;
            }
            node.charge_scan(len as u64);
            self.touched.sort_unstable();
            let mut offset = 0u32;
            for &v in &self.touched {
                let c = self.counts[v as usize];
                self.counts[v as usize] = offset;
                out.push((dpos + offset, dpos + offset + c));
                offset += c;
            }
            let slot = (dpos - dst_base) as usize;
            let dst = &mut dst[slot..slot + len];
            for (&row, &v) in src[start..end].iter().zip(&self.vals) {
                let v = v as usize;
                dst[self.counts[v] as usize] = row;
                self.counts[v] += 1;
            }
            node.charge_moves(len as u64);
            for &v in &self.touched {
                self.counts[v as usize] = 0;
            }
            dpos += len as u32;
        }
    }
}

/// Builds the identity index array `0..n` for a relation.
///
/// Row indices are `u32` throughout the kernel; [`Relation`] enforces its
/// `MAX_ROWS` cap at construction time, so the cast below cannot truncate.
pub fn full_index(rel: &Relation) -> Vec<u32> {
    debug_assert!(rel.len() <= icecube_data::Relation::MAX_ROWS);
    // check:allow(alloc-hot-path): the identity index is built once per
    // sort-cache prepare, not per partition step; ROADMAP item 1 pools it.
    (0..rel.len() as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::{Relation, Schema};

    fn test_node() -> SimCluster {
        SimCluster::new(ClusterConfig::fast_ethernet(1))
    }

    fn rel() -> Relation {
        let schema = Schema::from_cardinalities(&[4, 3]).unwrap();
        let mut r = Relation::new(schema);
        for (a, b) in [(2, 1), (0, 2), (2, 0), (1, 1), (0, 0), (2, 1)] {
            r.push_row(&[a, b], 1).unwrap();
        }
        r
    }

    #[test]
    fn split_groups_by_value_in_order() {
        let r = rel();
        let mut c = test_node();
        let mut idx = full_index(&r);
        let mut p = Partitioner::new();
        let mut groups = Vec::new();
        p.split(&r, &mut idx, (0, 6), 0, &mut c.nodes[0], &mut groups);
        assert_eq!(groups, vec![(0, 2), (2, 3), (3, 6)]);
        let vals: Vec<u32> = idx.iter().map(|&i| r.value(i as usize, 0)).collect();
        assert_eq!(vals, vec![0, 0, 1, 2, 2, 2]);
    }

    #[test]
    fn split_is_stable_within_runs_after_scatter() {
        // Rows 0, 2, 5 have value 2 in dim 0; original order is preserved.
        let r = rel();
        let mut c = test_node();
        let mut idx = full_index(&r);
        let mut p = Partitioner::new();
        let mut groups = Vec::new();
        p.split(&r, &mut idx, (0, 6), 0, &mut c.nodes[0], &mut groups);
        assert_eq!(&idx[3..6], &[0, 2, 5]);
    }

    #[test]
    fn refine_respects_group_boundaries() {
        let r = rel();
        let mut c = test_node();
        let mut idx = full_index(&r);
        let mut p = Partitioner::new();
        let mut level1 = Vec::new();
        p.split(&r, &mut idx, (0, 6), 0, &mut c.nodes[0], &mut level1);
        let mut level2 = Vec::new();
        p.refine(&r, &mut idx, &level1, 1, &mut c.nodes[0], &mut level2);
        // Groups for (a=0): b values 0 and 2; (a=1): b=1; (a=2): b=0, b=1×2.
        assert_eq!(level2.len(), 5);
        let sizes: Vec<u32> = level2.iter().map(|g| g.1 - g.0).collect();
        assert_eq!(sizes, vec![1, 1, 1, 1, 2]);
        // Each level-2 group is homogeneous on both dims.
        for &(s, e) in &level2 {
            let first = r.row(idx[s as usize] as usize).to_vec();
            for &i in &idx[s as usize..e as usize] {
                assert_eq!(r.row(i as usize), &first[..]);
            }
        }
    }

    #[test]
    fn empty_range_is_a_noop() {
        let r = rel();
        let mut c = test_node();
        let mut idx = full_index(&r);
        let mut p = Partitioner::new();
        let mut groups = Vec::new();
        p.split(&r, &mut idx, (3, 3), 0, &mut c.nodes[0], &mut groups);
        assert!(groups.is_empty());
    }

    #[test]
    fn costs_are_charged() {
        let r = rel();
        let mut c = test_node();
        let mut idx = full_index(&r);
        let mut p = Partitioner::new();
        let mut groups = Vec::new();
        p.split(&r, &mut idx, (0, 6), 0, &mut c.nodes[0], &mut groups);
        assert!(c.nodes[0].stats.cpu_ns > 0);
    }

    #[test]
    fn reuse_across_calls_stays_correct() {
        // The counters must be properly reset between calls.
        let r = rel();
        let mut c = test_node();
        let mut p = Partitioner::new();
        for _ in 0..3 {
            let mut idx = full_index(&r);
            let mut groups = Vec::new();
            p.split(&r, &mut idx, (0, 6), 0, &mut c.nodes[0], &mut groups);
            assert_eq!(groups.len(), 3);
        }
    }
}
