//! Overlap (Naughton et al.; reviewed in Section 2.4.1) — the third
//! top-down baseline: maximize *sort-order overlap* instead of minimizing
//! sorts.
//!
//! Overlap's observation: if a child group-by shares a prefix of GROUP BY
//! attributes with its parent, the parent consists of one partition per
//! prefix value, and each partition can be sorted *independently* on the
//! child's remaining attributes — many small sorts instead of one big one.
//! The planner therefore picks, for every cuboid, the parent sharing the
//! longest attribute prefix (ties: the smallest parent), and the root sort
//! order propagates so every subsequent sort is a suffix sort within
//! partitions.
//!
//! Like all top-down algorithms it cannot prune on minimum support; the
//! paper cites [14]'s criticism that it still produces heavy intermediate
//! I/O on sparse cubes — visible here in the materialized-cells traffic.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.
// check:allow-file(unordered-collections): hash tables here are
// build-side internals; every cell set is canonically sorted before
// it leaves this module, so iteration order cannot reach results
// (the cross-algorithm equivalence tests pin this).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::query::IcebergQuery;
use icecube_cluster::SimNode;
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, Lattice};
use std::collections::HashMap;

type Cells = Vec<(Vec<u32>, Aggregate)>;

/// Estimated cuboid size, shared with the other planners.
fn est_size(g: CuboidMask, cards: &[u32], tuples: usize) -> u64 {
    let mut prod = 1u64;
    for d in g.iter_dims() {
        prod = prod.saturating_mul(cards[d] as u64);
        if prod >= tuples as u64 {
            return tuples as u64;
        }
    }
    prod.min(tuples as u64)
}

/// The Overlap plan: for every cuboid, its parent and the length of the
/// shared sort-order prefix.
#[derive(Debug, Clone)]
pub struct OverlapPlan {
    /// parent and shared-prefix length per cuboid (top excluded).
    parents: HashMap<CuboidMask, (CuboidMask, usize)>,
    /// Every cuboid's attribute order (ascending-dimension convention:
    /// Overlap fixes one root order and every order is a subsequence).
    orders: HashMap<CuboidMask, Vec<usize>>,
}

impl OverlapPlan {
    /// The planned parent of `g` and the shared prefix length.
    pub fn parent_of(&self, g: CuboidMask) -> Option<(CuboidMask, usize)> {
        self.parents.get(&g).copied()
    }

    /// Average shared-prefix length over all edges — the "overlap" the
    /// algorithm maximizes.
    pub fn mean_overlap(&self) -> f64 {
        if self.parents.is_empty() {
            return 0.0;
        }
        let total: usize = self.parents.values().map(|&(_, p)| p).sum();
        total as f64 / self.parents.len() as f64
    }
}

/// Plans Overlap: root order = ascending dimensions; each cuboid keeps its
/// dimensions in that order ("all subsequent sorts are some suffix of this
/// order"), and picks the parent with the longest shared prefix, breaking
/// ties toward the smallest parent.
pub fn plan(dims: usize, cards: &[u32], tuples: usize) -> OverlapPlan {
    let lattice = Lattice::new(dims);
    let mut parents = HashMap::new();
    let mut orders = HashMap::new();
    for g in lattice.cuboids() {
        orders.insert(g, g.dims());
        if g.dim_count() == dims {
            continue;
        }
        let best = lattice
            .cuboids()
            .filter(|&p| p.dim_count() == g.dim_count() + 1 && g.is_subset_of(p))
            .map(|p| {
                let shared = g.shared_prefix_len(p);
                (shared, std::cmp::Reverse(est_size(p, cards, tuples)), p)
            })
            .max_by_key(|&(shared, size, p)| (shared, size, std::cmp::Reverse(p)))
            .expect("every non-top cuboid has a parent");
        parents.insert(g, (best.2, best.0));
    }
    OverlapPlan { parents, orders }
}

/// Runs Overlap, emitting qualifying cells and charging the node.
pub fn overlap<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    node: &mut SimNode,
    sink: &mut S,
) {
    assert_eq!(
        query.dims,
        rel.arity(),
        "query dims must match the relation"
    );
    if rel.is_empty() {
        return;
    }
    let cards = rel.schema().cardinalities();
    let the_plan = plan(query.dims, &cards, rel.len());
    let lattice = Lattice::new(query.dims);

    // The top cuboid from the raw data, sorted in the root order.
    let mut materialized: HashMap<CuboidMask, Cells> = HashMap::new();
    let top = lattice.top();
    let top_cells = sort_aggregate_raw(rel, node);
    emit(&top_cells, top, query.minsup, node, sink);
    materialized.insert(top, top_cells);

    // Remaining consumers per cuboid, to free memory as soon as possible.
    let mut consumers: HashMap<CuboidMask, usize> = HashMap::new();
    for (&_, &(p, _)) in &the_plan.parents {
        *consumers.entry(p).or_insert(0) += 1;
    }

    // Top-down by level.
    let mut order_by_level: Vec<CuboidMask> = lattice.cuboids().filter(|&g| g != top).collect();
    order_by_level.sort_unstable_by(|a, b| b.dim_count().cmp(&a.dim_count()).then(a.cmp(b)));
    for g in order_by_level {
        let (p, shared) = the_plan.parents[&g];
        let parent_cells = materialized.get(&p).expect("parent computed first");
        let cells = from_parent(parent_cells, p, g, shared, node);
        emit(&cells, g, query.minsup, node, sink);
        let remaining = consumers.get_mut(&p).expect("counted");
        *remaining -= 1;
        if *remaining == 0 {
            materialized.remove(&p);
        }
        if consumers.get(&g).copied().unwrap_or(0) > 0 {
            materialized.insert(g, cells);
        }
    }
    let _ = the_plan.orders;
}

/// Sorts the raw data ascending and pre-aggregates the top cuboid.
fn sort_aggregate_raw(rel: &Relation, node: &mut SimNode) -> Cells {
    let mut idx: Vec<u32> = (0..rel.len() as u32).collect();
    idx.sort_unstable_by(|&a, &b| rel.row(a as usize).cmp(rel.row(b as usize)));
    let n = rel.len() as u64;
    node.charge_comparisons(n * n.max(2).ilog2() as u64 * rel.arity() as u64);
    let mut out: Cells = Vec::new();
    for &i in &idx {
        let row = rel.row(i as usize);
        match out.last_mut() {
            Some((k, agg)) if k.as_slice() == row => agg.update(rel.measure(i as usize)),
            _ => out.push((row.to_vec(), Aggregate::of(rel.measure(i as usize)))),
        }
    }
    node.charge_agg_updates(n);
    out
}

/// Computes a child from its parent, sorting only within shared-prefix
/// partitions (Overlap's core trick). `shared` is the number of leading
/// attributes the two orders have in common.
fn from_parent(
    parent: &Cells,
    p: CuboidMask,
    child: CuboidMask,
    shared: usize,
    node: &mut SimNode,
) -> Cells {
    let pdims = p.dims();
    let positions: Vec<usize> = child
        .dims()
        .iter()
        .map(|d| pdims.iter().position(|x| x == d).expect("child ⊆ parent"))
        .collect();
    let project = |k: &[u32]| -> Vec<u32> { positions.iter().map(|&q| k[q]).collect() };

    // Partition boundaries: runs of equal shared prefix in the parent.
    let mut out: Cells = Vec::new();
    let mut start = 0usize;
    let n = parent.len() as u64;
    let mut sorted_elems = 0u64;
    while start < parent.len() {
        let prefix = &parent[start].0[..shared];
        let mut end = start + 1;
        while end < parent.len() && &parent[end].0[..shared] == prefix {
            end += 1;
        }
        // Project and sort this partition independently on the suffix.
        let mut part: Cells = parent[start..end]
            .iter()
            .map(|(k, a)| (project(k), *a))
            .collect();
        part.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let m = (end - start) as u64;
        sorted_elems += m * m.max(2).ilog2() as u64;
        // Accumulate duplicates (the projection merges cells).
        for (k, a) in part {
            match out.last_mut() {
                Some((pk, pa)) if *pk == k => pa.merge(&a),
                _ => out.push((k, a)),
            }
        }
        start = end;
    }
    node.charge_comparisons(sorted_elems * positions.len().max(1) as u64);
    node.charge_agg_updates(n);
    out
}

/// Writes a finished cuboid contiguously.
fn emit<S: CellSink>(cells: &Cells, g: CuboidMask, minsup: u64, node: &mut SimNode, sink: &mut S) {
    let mut emitted = 0u64;
    for (k, a) in cells {
        if a.meets(minsup) {
            sink.emit(g, k, a);
            emitted += 1;
        }
    }
    if emitted > 0 {
        node.write_cells(
            g.bits() as u64,
            emitted * Cell::disk_bytes(g.dim_count()),
            emitted,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run(rel: &Relation, minsup: u64) -> (Vec<Cell>, SimCluster) {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        overlap(rel, &q, &mut cluster.nodes[0], &mut sink);
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        (cells, cluster)
    }

    #[test]
    fn matches_naive() {
        let rel = sales();
        for minsup in [1, 2, 6] {
            let (got, _) = run(&rel, minsup);
            let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(3, minsup));
            assert_eq!(got, want, "minsup {minsup}");
        }
        for seed in [2, 9] {
            let rel = presets::tiny(seed).generate().unwrap();
            let (got, _) = run(&rel, 2);
            let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, 2));
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn plan_maximizes_prefix_overlap() {
        // For AB in a 4-dim cube, parents are ABC, ABD (prefix 2) and …
        // none other; ABС-sized tie-break goes to the smaller.
        let p = plan(4, &[10, 10, 2, 1000], 100_000);
        let ab = CuboidMask::from_dims(&[0, 1]);
        let (parent, shared) = p.parent_of(ab).unwrap();
        assert_eq!(shared, 2);
        // ABC (est 200) is smaller than ABD (est 100·10·1000 capped).
        assert_eq!(parent, CuboidMask::from_dims(&[0, 1, 2]));
        // BD's best parents: ABD (shared 0) vs BCD (shared 1) → BCD.
        let bd = CuboidMask::from_dims(&[1, 3]);
        assert_eq!(
            p.parent_of(bd).unwrap().0,
            CuboidMask::from_dims(&[1, 2, 3])
        );
        assert!(p.mean_overlap() > 0.5);
    }

    #[test]
    fn partition_sorts_are_cheaper_than_full_resorts() {
        // Overlap's suffix sorts within partitions should beat the
        // PipeSort-style full re-sorts in comparison counts on data with
        // good prefix sharing.
        let rel = presets::tiny(6).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let mut a = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::counting();
        overlap(&rel, &q, &mut a.nodes[0], &mut sink);
        let mut b = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink2 = CellBuf::counting();
        crate::topdown::topdown_shared(&rel, &q, &mut b.nodes[0], &mut sink2);
        assert_eq!(sink.count, sink2.count);
        // Same outputs; Overlap's CPU should not exceed the plain
        // share-sort baseline by much (and usually undercuts it).
        assert!(a.nodes[0].stats.cpu_ns <= b.nodes[0].stats.cpu_ns * 3 / 2);
    }

    #[test]
    fn memory_is_freed_as_consumers_finish() {
        let rel = presets::tiny(7).generate().unwrap();
        let (_, cluster) = run(&rel, 1);
        // The run must finish without panicking on missing parents, which
        // exercises the consumer-count bookkeeping.
        assert!(cluster.nodes[0].stats.cells_written > 0);
    }
}
