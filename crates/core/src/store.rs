//! A queryable store for computed iceberg cubes: the precomputation side
//! of the paper's motivating workflow.
//!
//! Section 2.1: analysts iterate — *drill-down* ("the previous query
//! returned too few results, GROUP BY on more attributes") and *roll-up*
//! ("too much detail, GROUP BY on fewer"). Precomputing the iceberg cube
//! and serving those navigations from the stored cells is precisely what
//! the parallel algorithms exist for; Chapter 5 adds the caveat this store
//! enforces: a stored cube computed at minimum support `s` can only answer
//! queries with threshold `>= s` (anything lower needs recomputation or
//! online aggregation — see `icecube-online`).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::algorithms::RunOutcome;
use crate::cell::Cell;
use crate::error::AlgoError;
use icecube_lattice::CuboidMask;
use std::collections::BTreeMap;

/// File magic for the persisted store format.
const MAGIC: &[u8; 8] = b"ICECUBE1";

/// One cuboid's cells, sorted by key for binary search.
#[derive(Debug, Clone, Default)]
struct StoredCuboid {
    /// Concatenated keys, stride = cuboid arity.
    keys: Vec<u32>,
    aggs: Vec<Aggregate>,
    arity: usize,
}

impl StoredCuboid {
    fn key(&self, i: usize) -> &[u32] {
        &self.keys[i * self.arity..(i + 1) * self.arity]
    }

    fn len(&self) -> usize {
        self.aggs.len()
    }

    fn find(&self, key: &[u32]) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.key(mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }
}

/// Counters from one [`CubeStore::merge_cells`] delta merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Existing cells whose aggregate absorbed at least one delta cell.
    pub updated: usize,
    /// Cells the merge created (keys the store had not seen).
    pub inserted: usize,
    /// Cells whose count crossed `watch_minsup` upward during this merge
    /// (appears atomically in the next thresholded snapshot).
    pub promoted: usize,
    /// Cuboids the delta touched — the lattice region
    /// `Σ_g |π_g(batch)| > 0` the merge was bounded to.
    pub touched_cuboids: usize,
}

/// A precomputed iceberg cube, indexed by cuboid, answering point lookups,
/// slices, drill-downs and roll-ups.
///
/// ```
/// use icecube_core::fixtures::sales;
/// use icecube_core::{run_parallel, Algorithm, CubeStore, IcebergQuery};
/// use icecube_cluster::ClusterConfig;
/// use icecube_lattice::CuboidMask;
///
/// let rel = sales();
/// let q = IcebergQuery::count_cube(3, 2);
/// let out = run_parallel(Algorithm::Pt, &rel, &q,
///                        &ClusterConfig::fast_ethernet(2)).unwrap();
/// let store = CubeStore::from_outcome(3, 2, out);
/// // Drill Chevy (model=0) down by year: three qualifying cells.
/// let by_model = CuboidMask::from_dims(&[0]);
/// assert_eq!(store.drill_down(by_model, &[0], 1).unwrap().len(), 3);
/// // A lower threshold than the precomputation used is not answerable.
/// assert!(!store.can_answer(1));
/// ```
#[derive(Debug, Clone)]
pub struct CubeStore {
    dims: usize,
    minsup: u64,
    cuboids: BTreeMap<CuboidMask, StoredCuboid>,
}

impl CubeStore {
    /// Builds a store from canonically sortable cells computed at
    /// `minsup` over a `dims`-dimensional cube.
    pub fn from_cells(dims: usize, minsup: u64, mut cells: Vec<Cell>) -> Self {
        crate::cell::sort_cells(&mut cells);
        let mut cuboids: BTreeMap<CuboidMask, StoredCuboid> = BTreeMap::new();
        for cell in cells {
            let entry = cuboids.entry(cell.cuboid).or_insert_with(|| StoredCuboid {
                arity: cell.cuboid.dim_count(),
                ..StoredCuboid::default()
            });
            entry.keys.extend_from_slice(&cell.key);
            entry.aggs.push(cell.agg);
        }
        CubeStore {
            dims,
            minsup,
            cuboids,
        }
    }

    /// Builds a store from a parallel run's outcome (which must have been
    /// collected with [`crate::RunOptions::collect_cells`] on).
    pub fn from_outcome(dims: usize, minsup: u64, outcome: RunOutcome) -> Self {
        CubeStore::from_cells(dims, minsup, outcome.cells)
    }

    /// Number of cube dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The minimum support the cube was computed at: the lowest threshold
    /// this store can answer.
    pub fn minsup(&self) -> u64 {
        self.minsup
    }

    /// Total stored cells.
    pub fn len(&self) -> usize {
        self.cuboids.values().map(StoredCuboid::len).sum()
    }

    /// True when the cube held no qualifying cells at all.
    pub fn is_empty(&self) -> bool {
        self.cuboids.is_empty()
    }

    /// Whether an iceberg query with threshold `minsup` is answerable from
    /// this store (Section 5: "if the threshold set by online queries
    /// differs from what the precomputation assumed, precomputed cuboids
    /// can no longer be used").
    pub fn can_answer(&self, minsup: u64) -> bool {
        minsup >= self.minsup
    }

    fn cuboid_or_err(&self, g: CuboidMask) -> Result<Option<&StoredCuboid>, AlgoError> {
        if g.max_dim().is_some_and(|m| m >= self.dims) {
            return Err(AlgoError::DimensionMismatch {
                query_dims: g.max_dim().unwrap_or(0) + 1,
                relation_dims: self.dims,
            });
        }
        Ok(self.cuboids.get(&g))
    }

    /// Point lookup: the aggregate of one cell.
    pub fn get(&self, g: CuboidMask, key: &[u32]) -> Option<&Aggregate> {
        let stored = self.cuboids.get(&g)?;
        stored.find(key).map(|i| &stored.aggs[i])
    }

    /// All qualifying cells of one group-by at threshold `minsup`.
    ///
    /// Thresholds below [`CubeStore::minsup`] are not answerable from a
    /// precomputed iceberg cube (the sub-threshold cells were pruned at
    /// computation time) and return [`AlgoError::ThresholdTooLow`] — a
    /// typed error rather than a panic, so a serving layer can map it to a
    /// clean error response instead of unwinding a worker thread.
    pub fn query(
        &self,
        g: CuboidMask,
        minsup: u64,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, AlgoError> {
        if !self.can_answer(minsup) {
            return Err(AlgoError::ThresholdTooLow {
                stored: self.minsup,
                requested: minsup,
            });
        }
        let Some(stored) = self.cuboid_or_err(g)? else {
            return Ok(Vec::new());
        };
        Ok((0..stored.len())
            .filter(|&i| stored.aggs[i].meets(minsup))
            .map(|i| (stored.key(i).to_vec(), stored.aggs[i]))
            .collect())
    }

    /// Slice: cells of group-by `g` whose value on `dim` equals `value`.
    ///
    /// Returns [`AlgoError::DimensionNotInGroupBy`] when `dim` does not
    /// belong to `g` — a typed error rather than a panic, so a serving
    /// worker answering a malformed request never unwinds.
    pub fn slice(
        &self,
        g: CuboidMask,
        dim: usize,
        value: u32,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, AlgoError> {
        let Some(pos) = g.iter_dims().position(|d| d == dim) else {
            return Err(AlgoError::DimensionNotInGroupBy { dim });
        };
        let Some(stored) = self.cuboid_or_err(g)? else {
            return Ok(Vec::new());
        };
        Ok((0..stored.len())
            .filter(|&i| stored.key(i)[pos] == value)
            .map(|i| (stored.key(i).to_vec(), stored.aggs[i]))
            .collect())
    }

    /// Drill-down from one cell: the finer cells obtained by adding
    /// dimension `dim` to the group-by ("GROUP BY on more attributes").
    ///
    /// Returns the qualifying refinements of `(g, key)` in `g ∪ {dim}`,
    /// or [`AlgoError::DimensionAlreadyInGroupBy`] when `dim` already
    /// belongs to `g`.
    pub fn drill_down(
        &self,
        g: CuboidMask,
        key: &[u32],
        dim: usize,
    ) -> Result<Vec<(Vec<u32>, Aggregate)>, AlgoError> {
        if g.contains(dim) {
            return Err(AlgoError::DimensionAlreadyInGroupBy { dim });
        }
        let child = g.with_dim(dim);
        let Some(stored) = self.cuboid_or_err(child)? else {
            return Ok(Vec::new());
        };
        // Position of every original dimension inside the child's key:
        // `g ⊂ child` by construction, and both dimension lists ascend,
        // so filtering the child's dimensions down to `g`'s keeps them
        // aligned with `key`'s order.
        let child_dims = child.dims();
        let positions: Vec<usize> = child_dims
            .iter()
            .enumerate()
            .filter(|&(_, d)| g.contains(*d))
            .map(|(p, _)| p)
            .collect();
        Ok((0..stored.len())
            .filter(|&i| {
                let ck = stored.key(i);
                positions.iter().zip(key).all(|(&p, &v)| ck[p] == v)
            })
            .map(|i| (stored.key(i).to_vec(), stored.aggs[i]))
            .collect())
    }

    /// Roll-up from one cell: the coarser cell obtained by removing
    /// dimension `dim` ("GROUP BY on fewer attributes"). `None` when the
    /// coarser cell was itself pruned — impossible for count-based iceberg
    /// cubes, where support only grows upward, unless the roll-up target is
    /// the "all" node (not stored). Returns
    /// [`AlgoError::DimensionNotInGroupBy`] when `dim` does not belong
    /// to `g`.
    pub fn roll_up(
        &self,
        g: CuboidMask,
        key: &[u32],
        dim: usize,
    ) -> Result<Option<(Vec<u32>, Aggregate)>, AlgoError> {
        let Some(pos) = g.iter_dims().position(|d| d == dim) else {
            return Err(AlgoError::DimensionNotInGroupBy { dim });
        };
        let parent = g.without_dim(dim);
        if parent.is_all() {
            return Ok(None);
        }
        let mut pkey = key.to_vec();
        pkey.remove(pos);
        let Some(stored) = self.cuboid_or_err(parent)? else {
            return Ok(None);
        };
        Ok(stored.find(&pkey).map(|i| (pkey, stored.aggs[i])))
    }

    /// Serializes the store into a writer (a small versioned binary
    /// format: header, then per cuboid its mask, cell count, keys and
    /// aggregates). This is the "precompute, save to disks" step of the
    /// paper's workflow.
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        let w64 = |out: &mut W, v: u64| out.write_all(&v.to_le_bytes());
        let wi64 = |out: &mut W, v: i64| out.write_all(&v.to_le_bytes());
        out.write_all(MAGIC)?;
        w64(out, 1)?; // format version
        w64(out, self.dims as u64)?;
        w64(out, self.minsup)?;
        w64(out, self.cuboids.len() as u64)?;
        // BTreeMap iteration is ascending by mask: files come out
        // byte-for-byte reproducible with no extra sort.
        for (mask, stored) in &self.cuboids {
            w64(out, mask.bits() as u64)?;
            w64(out, stored.len() as u64)?;
            for &k in &stored.keys {
                out.write_all(&k.to_le_bytes())?;
            }
            for a in &stored.aggs {
                w64(out, a.count)?;
                wi64(out, a.sum)?;
                wi64(out, a.min)?;
                wi64(out, a.max)?;
            }
        }
        Ok(())
    }

    /// Deserializes a store written by [`CubeStore::write_to`].
    ///
    /// Hardened against hostile or damaged input: every malformed prefix of
    /// a valid serialized store yields an `io::Error` (never a panic), and
    /// allocation is bounded by the bytes actually present in the input —
    /// a corrupt length field cannot force a huge up-front reservation.
    pub fn read_from<R: std::io::Read>(input: &mut R) -> std::io::Result<CubeStore> {
        use std::io::{Error, ErrorKind, Read};
        // Upper bound on any single up-front reservation; vectors grow
        // beyond it only as real input bytes arrive.
        const RESERVE_CAP: usize = 1 << 16;
        fn r64<R: Read>(input: &mut R) -> std::io::Result<u64> {
            let mut buf = [0u8; 8];
            input.read_exact(&mut buf)?;
            Ok(u64::from_le_bytes(buf))
        }
        fn ri64<R: Read>(input: &mut R) -> std::io::Result<i64> {
            let mut buf = [0u8; 8];
            input.read_exact(&mut buf)?;
            Ok(i64::from_le_bytes(buf))
        }
        fn bad(msg: impl Into<String>) -> Error {
            Error::new(ErrorKind::InvalidData, msg.into())
        }
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if magic != *MAGIC {
            return Err(bad("not an icecube store"));
        }
        let version = r64(input)?;
        if version != 1 {
            return Err(bad(format!("unsupported store version {version}")));
        }
        let dims64 = r64(input)?;
        if dims64 == 0 || dims64 > 26 {
            return Err(bad("corrupt dimension count"));
        }
        let dims = dims64 as usize;
        let minsup = r64(input)?;
        let cuboid_count64 = r64(input)?;
        if cuboid_count64 > 1 << dims {
            return Err(bad("corrupt cuboid count"));
        }
        let cuboid_count = cuboid_count64 as usize;
        let mut cuboids = BTreeMap::new();
        for _ in 0..cuboid_count {
            let bits = r64(input)?;
            if bits == 0 || bits >= 1 << dims {
                return Err(bad(format!(
                    "cuboid mask {bits:#x} outside {dims} dimensions"
                )));
            }
            let mask = CuboidMask::from_bits(bits as u32);
            let arity = mask.dim_count();
            let cells64 = r64(input)?;
            let Some(key_words) = cells64.checked_mul(arity as u64) else {
                return Err(bad("corrupt cell count"));
            };
            let cells = usize::try_from(cells64).map_err(|_| bad("corrupt cell count"))?;
            let key_words = usize::try_from(key_words).map_err(|_| bad("corrupt cell count"))?;
            let mut keys = Vec::with_capacity(key_words.min(RESERVE_CAP));
            for _ in 0..key_words {
                let mut buf = [0u8; 4];
                input.read_exact(&mut buf)?;
                keys.push(u32::from_le_bytes(buf));
            }
            let mut aggs = Vec::with_capacity(cells.min(RESERVE_CAP));
            for _ in 0..cells {
                aggs.push(Aggregate {
                    count: r64(input)?,
                    sum: ri64(input)?,
                    min: ri64(input)?,
                    max: ri64(input)?,
                });
            }
            // Binary search over a cuboid requires strictly ascending keys;
            // enforce it here so a length-consistent but scrambled file
            // cannot produce a store that silently misses cells.
            for i in 1..cells {
                if keys[(i - 1) * arity..i * arity] >= keys[i * arity..(i + 1) * arity] {
                    return Err(bad("cuboid keys not strictly ascending"));
                }
            }
            if cuboids
                .insert(mask, StoredCuboid { keys, aggs, arity })
                .is_some()
            {
                return Err(bad("duplicate cuboid mask"));
            }
        }
        Ok(CubeStore {
            dims,
            minsup,
            cuboids,
        })
    }

    /// Iterates all stored cells, ascending by cuboid mask and then by
    /// key within each cuboid — a fully deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        self.cuboids.iter().flat_map(|(&cuboid, stored)| {
            (0..stored.len()).map(move |i| Cell {
                cuboid,
                key: stored.key(i).to_vec(),
                agg: stored.aggs[i],
            })
        })
    }

    /// Masks of every stored cuboid, ascending — the deterministic
    /// iteration order sharding and serialization rely on.
    pub fn cuboid_masks(&self) -> Vec<CuboidMask> {
        self.cuboids.keys().copied().collect()
    }

    /// Number of cells stored for one cuboid (0 when absent).
    pub fn cuboid_len(&self, g: CuboidMask) -> usize {
        self.cuboids.get(&g).map_or(0, StoredCuboid::len)
    }

    /// Whether cuboid `g` was materialized in this store.
    pub fn has_cuboid(&self, g: CuboidMask) -> bool {
        self.cuboids.contains_key(&g)
    }

    /// Iterates one cuboid's cells in ascending key order (empty iterator
    /// when the cuboid is absent).
    pub fn cells_of(&self, g: CuboidMask) -> impl Iterator<Item = (&[u32], Aggregate)> + '_ {
        self.cuboids
            .get(&g)
            .into_iter()
            .flat_map(|s| (0..s.len()).map(move |i| (s.key(i), s.aggs[i])))
    }

    /// Merges delta cells into the store, cuboid by cuboid.
    ///
    /// This is the incremental-maintenance kernel: the delta-BUC pass
    /// aggregates just an append batch (at minimum support 1) and this
    /// merge folds the resulting partials into the stored cuboids with
    /// [`Aggregate::merge`]. COUNT/SUM/MIN/MAX are all distributive over
    /// a disjoint row union, so for append-only ingest the merged store is
    /// byte-identical to recomputing from the concatenated relation.
    ///
    /// Work is bounded to exactly the lattice region the batch touches:
    /// only cuboids with at least one delta cell are rebuilt (a linear
    /// two-pointer merge each); untouched cuboids are not visited.
    ///
    /// `watch_minsup` is the serving threshold used for the promotion
    /// counter in the returned [`MergeStats`] (merging appends can only
    /// grow counts, so cells cross it upward only). Every cell is
    /// validated before any mutation — on error the store is unchanged.
    pub fn merge_cells(
        &mut self,
        mut cells: Vec<Cell>,
        watch_minsup: u64,
    ) -> Result<MergeStats, AlgoError> {
        for cell in &cells {
            if cell.cuboid.max_dim().is_some_and(|m| m >= self.dims) {
                return Err(AlgoError::DimensionMismatch {
                    query_dims: cell.cuboid.max_dim().unwrap_or(0) + 1,
                    relation_dims: self.dims,
                });
            }
            if cell.key.len() != cell.cuboid.dim_count() {
                return Err(AlgoError::CellArity {
                    expected: cell.cuboid.dim_count(),
                    got: cell.key.len(),
                });
            }
        }
        crate::cell::sort_cells(&mut cells);
        let mut stats = MergeStats::default();
        let mut i = 0usize;
        while i < cells.len() {
            let cuboid = cells[i].cuboid;
            let mut j = i;
            while j < cells.len() && cells[j].cuboid == cuboid {
                j += 1;
            }
            let run = &cells[i..j];
            stats.touched_cuboids += 1;
            let arity = cuboid.dim_count();
            let entry = self.cuboids.entry(cuboid).or_insert_with(|| StoredCuboid {
                arity,
                ..StoredCuboid::default()
            });
            let old_len = entry.len();
            let mut keys = Vec::with_capacity(entry.keys.len() + run.len() * arity);
            let mut aggs = Vec::with_capacity(old_len + run.len());
            let (mut oi, mut di) = (0usize, 0usize);
            while oi < old_len || di < run.len() {
                let take_old = match (oi < old_len, di < run.len()) {
                    (true, true) => entry.key(oi) <= run[di].key.as_slice(),
                    (has_old, _) => has_old,
                };
                if take_old {
                    let key = entry.key(oi);
                    let before = entry.aggs[oi];
                    let mut agg = before;
                    let mut absorbed = false;
                    while di < run.len() && run[di].key.as_slice() == key {
                        agg.merge(&run[di].agg);
                        absorbed = true;
                        di += 1;
                    }
                    if absorbed {
                        stats.updated += 1;
                        if !before.meets(watch_minsup) && agg.meets(watch_minsup) {
                            stats.promoted += 1;
                        }
                    }
                    keys.extend_from_slice(key);
                    aggs.push(agg);
                    oi += 1;
                } else {
                    let cell = &run[di];
                    let mut agg = cell.agg;
                    di += 1;
                    // Absorb duplicate keys within the delta itself (a
                    // well-formed delta pass emits unique cells, but the
                    // merge must not rely on it).
                    while di < run.len() && run[di].key == cell.key {
                        agg.merge(&run[di].agg);
                        di += 1;
                    }
                    stats.inserted += 1;
                    if agg.meets(watch_minsup) {
                        stats.promoted += 1;
                    }
                    keys.extend_from_slice(&cell.key);
                    aggs.push(agg);
                }
            }
            entry.keys = keys;
            entry.aggs = aggs;
            i = j;
        }
        Ok(stats)
    }

    /// A thresholded snapshot: the cells meeting `minsup`, as a standalone
    /// store computed *at* `minsup`.
    ///
    /// This is how a maintained floor store (full partials at minimum
    /// support 1) becomes a servable iceberg cube: cells below the
    /// threshold are simply not copied (no tombstones), and cuboids left
    /// with no qualifying cell are dropped entirely — so the snapshot is
    /// byte-identical to a from-scratch [`CubeStore::from_cells`] build
    /// over the same relation at `minsup`.
    pub fn thresholded(&self, minsup: u64) -> CubeStore {
        let mut cuboids = BTreeMap::new();
        for (&mask, stored) in &self.cuboids {
            let mut keys = Vec::new();
            let mut aggs = Vec::new();
            for i in 0..stored.len() {
                if stored.aggs[i].meets(minsup) {
                    keys.extend_from_slice(stored.key(i));
                    aggs.push(stored.aggs[i]);
                }
            }
            if !aggs.is_empty() {
                cuboids.insert(
                    mask,
                    StoredCuboid {
                        keys,
                        aggs,
                        arity: stored.arity,
                    },
                );
            }
        }
        CubeStore {
            dims: self.dims,
            minsup,
            cuboids,
        }
    }

    /// Even-quantile split keys dividing cuboid `g`'s cells into `parts`
    /// contiguous key ranges, for range sharding: returns at most
    /// `parts - 1` ascending keys; range `j` owns keys `k` with
    /// `splits[j-1] <= k < splits[j]`. Duplicate split keys collapse, so
    /// fewer than `parts - 1` keys can come back for tiny cuboids. Zero
    /// parts is treated as one (no split keys either way).
    pub fn split_points(&self, g: CuboidMask, parts: usize) -> Vec<Vec<u32>> {
        let parts = parts.max(1);
        let Some(stored) = self.cuboids.get(&g) else {
            return Vec::new();
        };
        let n = stored.len();
        let mut splits: Vec<Vec<u32>> = Vec::with_capacity(parts.saturating_sub(1));
        if n == 0 {
            return splits;
        }
        for j in 1..parts {
            let pos = (j * n / parts).min(n - 1);
            let key = stored.key(pos);
            if splits.last().map(Vec::as_slice) != Some(key) {
                splits.push(key.to_vec());
            }
        }
        splits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run_parallel, Algorithm};
    use crate::fixtures::sales;
    use crate::query::IcebergQuery;
    use icecube_cluster::ClusterConfig;
    use proptest::prelude::*;

    fn store(minsup: u64) -> CubeStore {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, minsup);
        let out = run_parallel(Algorithm::Pt, &rel, &q, &ClusterConfig::fast_ethernet(2)).unwrap();
        CubeStore::from_outcome(3, minsup, out)
    }

    #[test]
    fn point_lookup_matches_published_sums() {
        let s = store(1);
        let model = CuboidMask::from_dims(&[0]);
        assert_eq!(s.get(model, &[0]).unwrap().sum, 508); // Chevy
        assert_eq!(s.get(model, &[1]).unwrap().sum, 433); // Ford
        assert_eq!(s.get(model, &[7]), None);
        assert_eq!(s.len(), 47);
    }

    #[test]
    fn query_respects_threshold_floor() {
        let s = store(2);
        assert!(s.can_answer(2));
        assert!(s.can_answer(10));
        assert!(!s.can_answer(1));
        let my = CuboidMask::from_dims(&[0, 1]);
        let cells = s.query(my, 3).unwrap();
        assert_eq!(cells.len(), 6); // every (model, year) has support 3
        let cells = s.query(my, 4).unwrap();
        assert!(cells.is_empty());
    }

    #[test]
    fn lower_threshold_is_a_typed_error() {
        let s = store(2);
        match s.query(CuboidMask::from_dims(&[0]), 1) {
            Err(AlgoError::ThresholdTooLow {
                stored: 2,
                requested: 1,
            }) => {}
            other => panic!("expected ThresholdTooLow, got {other:?}"),
        }
        // The error carries the old panic message's wording for operators.
        let e = s.query(CuboidMask::from_dims(&[0]), 1).unwrap_err();
        assert!(e.to_string().contains("cannot answer threshold"));
    }

    #[test]
    fn drill_down_refines_one_cell() {
        let s = store(1);
        // Chevy (model=0) drilled down by year → three cells.
        let refined = s.drill_down(CuboidMask::from_dims(&[0]), &[0], 1).unwrap();
        assert_eq!(refined.len(), 3);
        let total: i64 = refined.iter().map(|(_, a)| a.sum).sum();
        assert_eq!(total, 508, "drill-down partitions the parent cell");
    }

    #[test]
    fn roll_up_recovers_the_parent() {
        let s = store(1);
        let my = CuboidMask::from_dims(&[0, 1]);
        let (pkey, agg) = s.roll_up(my, &[0, 2], 1).unwrap().unwrap();
        assert_eq!(pkey, vec![0]);
        assert_eq!(agg.sum, 508);
        // Rolling up the last dimension reaches "all", which is special.
        assert_eq!(
            s.roll_up(CuboidMask::from_dims(&[0]), &[0], 0).unwrap(),
            None
        );
    }

    #[test]
    fn slice_filters_on_one_dimension() {
        let s = store(1);
        let myc = CuboidMask::from_dims(&[0, 1, 2]);
        let white_1991 = s
            .slice(myc, 2, 1)
            .unwrap()
            .into_iter()
            .filter(|(k, _)| k[1] == 1)
            .collect::<Vec<_>>();
        assert_eq!(white_1991.len(), 2); // Chevy & Ford, 1991, white
    }

    #[test]
    fn out_of_range_dimension_is_an_error() {
        let s = store(1);
        assert!(s.query(CuboidMask::from_dims(&[9]), 1).is_err());
    }

    #[test]
    fn navigation_on_wrong_dimensions_is_a_typed_error() {
        let s = store(1);
        let my = CuboidMask::from_dims(&[0, 1]);
        match s.slice(my, 2, 0) {
            Err(AlgoError::DimensionNotInGroupBy { dim: 2 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match s.roll_up(my, &[0, 2], 2) {
            Err(AlgoError::DimensionNotInGroupBy { dim: 2 }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match s.drill_down(my, &[0, 2], 1) {
            Err(AlgoError::DimensionAlreadyInGroupBy { dim: 1 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn persistence_roundtrips() {
        let s = store(2);
        let mut buf = Vec::new();
        s.write_to(&mut buf).unwrap();
        let again = CubeStore::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(again.dims(), s.dims());
        assert_eq!(again.minsup(), s.minsup());
        assert_eq!(again.len(), s.len());
        let g = CuboidMask::from_dims(&[0, 1]);
        assert_eq!(again.query(g, 2).unwrap(), s.query(g, 2).unwrap());
        assert_eq!(
            again.get(CuboidMask::from_dims(&[0]), &[0]),
            s.get(CuboidMask::from_dims(&[0]), &[0])
        );
    }

    #[test]
    fn persistence_rejects_garbage() {
        assert!(CubeStore::read_from(&mut &b"not a store"[..]).is_err());
        let mut buf = Vec::new();
        store(1).write_to(&mut buf).unwrap();
        buf[8] = 9; // wrong version
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
        let mut buf2 = Vec::new();
        store(1).write_to(&mut buf2).unwrap();
        buf2.truncate(buf2.len() - 3); // truncated file
        assert!(CubeStore::read_from(&mut buf2.as_slice()).is_err());
    }

    #[test]
    fn every_truncated_prefix_is_an_io_error() {
        // The hardening satellite: any malformed prefix of a valid
        // serialized store must fail cleanly — no panic, no over-allocation.
        let mut buf = Vec::new();
        store(1).write_to(&mut buf).unwrap();
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_ok());
        for cut in 0..buf.len() {
            let prefix = &buf[..cut];
            assert!(
                CubeStore::read_from(&mut &prefix[..]).is_err(),
                "prefix of {cut}/{} bytes parsed successfully",
                buf.len()
            );
        }
    }

    #[test]
    fn corrupt_lengths_do_not_overallocate() {
        // A header claiming u64::MAX cells must fail at EOF, not reserve.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ICECUBE1");
        let w = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        w(&mut buf, 1); // version
        w(&mut buf, 3); // dims
        w(&mut buf, 1); // minsup
        w(&mut buf, 1); // one cuboid
        w(&mut buf, 0b011); // mask {0,1}
        w(&mut buf, u64::MAX); // absurd cell count
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_masks_and_orderings_are_rejected() {
        let header = |cuboids: u64| {
            let mut buf = Vec::new();
            buf.extend_from_slice(b"ICECUBE1");
            for v in [1u64, 3, 1, cuboids] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            buf
        };
        let w64 = |buf: &mut Vec<u8>, v: u64| buf.extend_from_slice(&v.to_le_bytes());
        let w32 = |buf: &mut Vec<u8>, v: u32| buf.extend_from_slice(&v.to_le_bytes());
        let agg = |buf: &mut Vec<u8>| {
            for v in [1u64, 0, 0, 0] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        // Mask naming dimension 3 in a 3-dimensional store.
        let mut buf = header(1);
        w64(&mut buf, 0b1000);
        w64(&mut buf, 0);
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
        // The empty ("all") mask is never written by write_to.
        let mut buf = header(1);
        w64(&mut buf, 0);
        w64(&mut buf, 0);
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
        // Descending keys break the binary-search invariant.
        let mut buf = header(1);
        w64(&mut buf, 0b001);
        w64(&mut buf, 2);
        w32(&mut buf, 5);
        w32(&mut buf, 4);
        agg(&mut buf);
        agg(&mut buf);
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
        // Duplicate cuboid masks.
        let mut buf = header(2);
        for _ in 0..2 {
            w64(&mut buf, 0b001);
            w64(&mut buf, 1);
            w32(&mut buf, 5);
            agg(&mut buf);
        }
        assert!(CubeStore::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn cuboid_hooks_expose_sorted_cells() {
        let s = store(1);
        let masks = s.cuboid_masks();
        assert_eq!(masks.len(), 7, "3 dims -> 7 non-empty cuboids at minsup 1");
        assert!(masks.windows(2).all(|w| w[0] < w[1]));
        let total: usize = masks.iter().map(|&m| s.cuboid_len(m)).sum();
        assert_eq!(total, s.len());
        for &m in &masks {
            assert!(s.has_cuboid(m));
            let keys: Vec<&[u32]> = s.cells_of(m).map(|(k, _)| k).collect();
            assert_eq!(keys.len(), s.cuboid_len(m));
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "cells sorted by key");
        }
        assert_eq!(s.cuboid_len(CuboidMask::from_bits(0b1000_0000)), 0);
        assert!(s
            .cells_of(CuboidMask::from_bits(0b1000_0000))
            .next()
            .is_none());
    }

    #[test]
    fn split_points_partition_the_key_space() {
        let s = store(1);
        for &m in &s.cuboid_masks() {
            for parts in 1..=5 {
                let splits = s.split_points(m, parts);
                assert!(splits.len() < parts);
                assert!(splits.windows(2).all(|w| w[0] < w[1]));
                // Routing every stored key through the splits loses nothing.
                let mut per_range = vec![0usize; parts];
                for (key, _) in s.cells_of(m) {
                    let r = splits.partition_point(|sp| sp.as_slice() <= key);
                    per_range[r] += 1;
                }
                assert_eq!(per_range.iter().sum::<usize>(), s.cuboid_len(m));
            }
        }
        assert!(s
            .split_points(CuboidMask::from_bits(0b1000_0000), 4)
            .is_empty());
    }

    #[test]
    fn iter_roundtrips_through_from_cells() {
        let s = store(2);
        let again = CubeStore::from_cells(3, 2, s.iter().collect());
        assert_eq!(again.len(), s.len());
        let g = CuboidMask::from_dims(&[0, 1]);
        assert_eq!(again.query(g, 2).unwrap(), s.query(g, 2).unwrap());
    }

    proptest! {
        #[test]
        fn persistence_roundtrips_arbitrary_cells(
            raw in proptest::collection::vec(
                (1u32..15, proptest::collection::vec(0u32..9, 0..4), 1u64..50, -99i64..99),
                0..60,
            )
        ) {
            // Build arbitrary (well-formed) cells: the cuboid mask's arity
            // is forced to match the key length.
            let mut unique = std::collections::BTreeMap::new();
            for (bits, key, count, m) in raw {
                let dims: Vec<usize> = (0..4).filter(|i| bits & (1 << i) != 0).collect();
                let dims = if dims.is_empty() { vec![0] } else { dims };
                let key: Vec<u32> =
                    (0..dims.len()).map(|i| key.get(i).copied().unwrap_or(0)).collect();
                let mut agg = Aggregate::empty();
                for _ in 0..count {
                    agg.update(m);
                }
                let cuboid = CuboidMask::from_dims(&dims);
                unique.insert((cuboid, key.clone()), Cell { cuboid, key, agg });
            }
            let cells: Vec<Cell> = unique.into_values().collect();
            let store = CubeStore::from_cells(4, 1, cells);
            let mut buf = Vec::new();
            store.write_to(&mut buf).unwrap();
            let again = CubeStore::read_from(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(again.len(), store.len());
            for cell in store.iter() {
                prop_assert_eq!(again.get(cell.cuboid, &cell.key), Some(&cell.agg));
            }
        }
    }
}
