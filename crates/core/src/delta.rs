//! Incremental cube maintenance under streaming ingest.
//!
//! The paper computes each iceberg cube once from a frozen relation; this
//! module keeps a cube live under append batches, HaCube-style: the stored
//! cube reuses its materialization by *merging* delta aggregates instead of
//! rebuilding. A [`MaintainedCube`] owns a **floor** store — full partial
//! aggregates at minimum support 1 — and serves thresholded snapshots at
//! its current serving minsup:
//!
//! * **Ingest** counting-sorts just the batch (a BUC pass at minsup 1, no
//!   pruning — the floor needs every partial so sub-threshold cells can be
//!   promoted later) and merges the resulting cells into the floor with
//!   [`CubeStore::merge_cells`]. The merge touches exactly the lattice
//!   region the batch's cells project into (`Σ_g |π_g(batch)|` cells over
//!   the cuboids with at least one delta cell) — never the whole cube.
//! * **Promotion/demotion is tombstone-free.** The floor always holds the
//!   truth; [`MaintainedCube::visible`] simply does not copy cells below
//!   the serving threshold. A cell crossing minsup upward (ingest) appears,
//!   and one crossing downward ([`MaintainedCube::set_minsup`] raising the
//!   threshold — append-only counts never shrink) retires, atomically with
//!   the epoch bump that publishes the next snapshot.
//! * **Equivalence contract** (the tier-1 oracle in
//!   `tests/incremental_equivalence.rs`): after any batch sequence, the
//!   visible snapshot is byte-identical to a from-scratch recompute over
//!   the concatenated relation at the same minsup. COUNT/SUM/MIN/MAX are
//!   all distributive over a disjoint row union, so append-only merges
//!   lose nothing; retractions are out of scope by design.
//! * **Fault dimension**: [`MaintainedCube::ingest_on_cluster`] runs the
//!   delta pass through [`run_parallel`], where the PR-3 self-healing
//!   scheduler (crash sweeps, `TaskGuard` rollback, bounded RPC retry)
//!   already guarantees bit-identical cells under seeded fault plans. The
//!   floor is only touched on a successful run, so a refresh that dies
//!   completely ([`AlgoError::ClusterExhausted`]) leaves the previous
//!   epoch fully intact.
//!
//! The memory trade-off is deliberate and documented in DESIGN §13: the
//! floor stores the *full* cube (minsup 1) so promotion needs no
//! recomputation — the classic iceberg space saving moves from the store
//! to the serving snapshot.

use crate::algorithms::{run_parallel, Algorithm};
use crate::cell::Cell;
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::sequential::{run_sequential, SeqAlgorithm};
use crate::store::{CubeStore, MergeStats};
use icecube_cluster::ClusterConfig;
use icecube_data::{DeltaBatch, Relation};

/// What one maintenance step did: merge counters, the new epoch and the
/// virtual time the delta pass cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Epoch after this step (unchanged for an empty batch).
    pub epoch: u64,
    /// Existing floor cells whose aggregate absorbed delta partials.
    pub updated: usize,
    /// Floor cells the step created.
    pub inserted: usize,
    /// Cells that crossed the serving minsup upward — they appear in the
    /// next visible snapshot.
    pub promoted: usize,
    /// Cells that dropped below the serving minsup — only a threshold
    /// raise can cause this (append-only counts never shrink).
    pub retired: usize,
    /// Cuboids the delta touched (the lattice-region bound).
    pub touched_cuboids: usize,
    /// Virtual time of the delta aggregation pass in nanoseconds (0 when
    /// the cells were precomputed or the step was metadata-only).
    pub clock_ns: u64,
}

/// An iceberg cube kept current under append batches.
#[derive(Debug, Clone)]
pub struct MaintainedCube {
    dims: usize,
    minsup: u64,
    epoch: u64,
    floor: CubeStore,
}

impl MaintainedCube {
    /// An empty maintained cube over `dims` dimensions serving at
    /// `minsup` (clamped to at least 1).
    pub fn new(dims: usize, minsup: u64) -> Result<Self, AlgoError> {
        if dims == 0 {
            return Err(AlgoError::NoDimensions);
        }
        Ok(MaintainedCube {
            dims,
            minsup: minsup.max(1),
            epoch: 0,
            floor: CubeStore::from_cells(dims, 1, Vec::new()),
        })
    }

    /// Builds a maintained cube from an initial relation (the frozen-table
    /// starting point every batch sequence extends).
    pub fn from_relation(rel: &Relation, minsup: u64) -> Result<Self, AlgoError> {
        let mut cube = MaintainedCube::new(rel.arity(), minsup)?;
        cube.ingest(rel)?;
        Ok(cube)
    }

    /// Number of cube dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The serving minimum support.
    pub fn minsup(&self) -> u64 {
        self.minsup
    }

    /// The current epoch: bumped once per successful mutation, so two
    /// snapshots with the same epoch are the same cube.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The floor store: full partials at minimum support 1.
    pub fn floor(&self) -> &CubeStore {
        &self.floor
    }

    /// The servable snapshot at the current serving minsup — byte-identical
    /// to a from-scratch build over everything ingested so far.
    pub fn visible(&self) -> CubeStore {
        self.floor.thresholded(self.minsup)
    }

    /// Ingests an append batch of raw rows: counting-sorts just the batch
    /// (BUC at minsup 1 on one simulated node) and merges the partials
    /// into the floor. An empty batch is a no-op (epoch unchanged).
    pub fn ingest(&mut self, batch: &Relation) -> Result<DeltaReport, AlgoError> {
        self.ingest_with(batch, &ClusterConfig::fast_ethernet(1))
    }

    /// [`MaintainedCube::ingest`] with an explicit cost model for the
    /// single-node delta pass (the refresh-latency sweep varies this).
    pub fn ingest_with(
        &mut self,
        batch: &Relation,
        config: &ClusterConfig,
    ) -> Result<DeltaReport, AlgoError> {
        if batch.is_empty() {
            return Ok(self.noop_report());
        }
        let query = IcebergQuery {
            dims: self.dims,
            minsup: 1,
        };
        let out = run_sequential(SeqAlgorithm::BppBuc, batch, &query, config)?;
        self.merge(out.cells, out.clock_ns)
    }

    /// Ingests a dictionary-aware [`DeltaBatch`] (built against the base
    /// relation's schema; see `icecube_data::delta`).
    pub fn ingest_batch(&mut self, batch: &DeltaBatch) -> Result<DeltaReport, AlgoError> {
        let rel = batch.to_relation()?;
        self.ingest(&rel)
    }

    /// Merges precomputed delta cells (a minsup-1 aggregation of the batch,
    /// e.g. from a cluster run collected elsewhere).
    pub fn ingest_cells(&mut self, cells: Vec<Cell>) -> Result<DeltaReport, AlgoError> {
        if cells.is_empty() {
            return Ok(self.noop_report());
        }
        self.merge(cells, 0)
    }

    /// Runs the delta pass for `batch` on a simulated cluster — fault plans
    /// and all — and merges on success.
    ///
    /// The self-healing scheduler makes the collected cells bit-identical
    /// to a fault-free run under any seeded `FaultPlan` with a survivor, so
    /// a crash mid-refresh reconverges exactly. If the whole cluster dies
    /// ([`AlgoError::ClusterExhausted`]) nothing is merged: the previous
    /// epoch stays intact and the refresh can simply be retried.
    pub fn ingest_on_cluster(
        &mut self,
        algorithm: Algorithm,
        batch: &Relation,
        config: &ClusterConfig,
    ) -> Result<DeltaReport, AlgoError> {
        if batch.is_empty() {
            return Ok(self.noop_report());
        }
        let query = IcebergQuery {
            dims: self.dims,
            minsup: 1,
        };
        let out = run_parallel(algorithm, batch, &query, config)?;
        let clock_ns = out.stats.makespan_ns();
        self.merge(out.cells, clock_ns)
    }

    /// Re-thresholds the serving minsup (clamped to at least 1), counting
    /// the cells that appear (threshold lowered) and retire (raised). The
    /// floor is untouched — promotion and demotion are pure visibility
    /// changes, atomic with the epoch bump.
    pub fn set_minsup(&mut self, minsup: u64) -> DeltaReport {
        let minsup = minsup.max(1);
        let mut promoted = 0usize;
        let mut retired = 0usize;
        for cell in self.floor.iter() {
            let was = cell.agg.meets(self.minsup);
            let now = cell.agg.meets(minsup);
            promoted += usize::from(!was && now);
            retired += usize::from(was && !now);
        }
        if minsup != self.minsup {
            self.minsup = minsup;
            self.epoch += 1;
        }
        DeltaReport {
            epoch: self.epoch,
            promoted,
            retired,
            ..DeltaReport::default()
        }
    }

    fn noop_report(&self) -> DeltaReport {
        DeltaReport {
            epoch: self.epoch,
            ..DeltaReport::default()
        }
    }

    fn merge(&mut self, cells: Vec<Cell>, clock_ns: u64) -> Result<DeltaReport, AlgoError> {
        let MergeStats {
            updated,
            inserted,
            promoted,
            touched_cuboids,
        } = self.floor.merge_cells(cells, self.minsup)?;
        self.epoch += 1;
        Ok(DeltaReport {
            epoch: self.epoch,
            updated,
            inserted,
            promoted,
            retired: 0,
            touched_cuboids,
            clock_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_iceberg_cube;
    use icecube_data::Schema;

    fn rel(rows: &[(&[u32], i64)], cards: &[u32]) -> Relation {
        let mut r = Relation::new(Schema::from_cardinalities(cards).unwrap());
        for &(row, m) in rows {
            r.push_row(row, m).unwrap();
        }
        r
    }

    fn scratch(rel: &Relation, minsup: u64) -> CubeStore {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        CubeStore::from_cells(rel.arity(), minsup, naive_iceberg_cube(rel, &q))
    }

    fn bytes(store: &CubeStore) -> Vec<u8> {
        let mut buf = Vec::new();
        store.write_to(&mut buf).unwrap();
        buf
    }

    #[test]
    fn incremental_equals_scratch_byte_for_byte() {
        let cards = [3, 2, 4];
        let base = rel(
            &[(&[0, 0, 1], 5), (&[1, 1, 3], -2), (&[0, 0, 1], 7)],
            &cards,
        );
        let batch = rel(&[(&[0, 0, 1], 1), (&[2, 1, 0], 9)], &cards);
        let mut maintained = MaintainedCube::from_relation(&base, 2).unwrap();
        let report = maintained.ingest(&batch).unwrap();
        assert_eq!(report.epoch, 2);
        assert!(report.clock_ns > 0, "delta pass must cost virtual time");
        let mut concat = base.clone();
        concat.extend_from(&batch).unwrap();
        assert_eq!(bytes(&maintained.visible()), bytes(&scratch(&concat, 2)));
        // The floor equals the full cube at minsup 1 too.
        assert_eq!(bytes(maintained.floor()), bytes(&scratch(&concat, 1)));
    }

    #[test]
    fn promotion_appears_atomically() {
        let cards = [2, 2];
        let base = rel(&[(&[0, 0], 1)], &cards);
        let mut maintained = MaintainedCube::from_relation(&base, 2).unwrap();
        // Support 1 everywhere: nothing visible at minsup 2.
        assert!(maintained.visible().is_empty());
        let report = maintained.ingest(&rel(&[(&[0, 0], 1)], &cards)).unwrap();
        // (0,0) and its projections all crossed the threshold.
        assert_eq!(report.promoted, 3);
        assert_eq!(report.retired, 0);
        assert_eq!(maintained.visible().len(), 3);
    }

    #[test]
    fn threshold_raise_retires_without_tombstones() {
        let cards = [2, 2];
        let base = rel(&[(&[0, 0], 1), (&[0, 0], 2), (&[1, 1], 3)], &cards);
        let mut maintained = MaintainedCube::from_relation(&base, 1).unwrap();
        let all_visible = maintained.visible().len();
        let report = maintained.set_minsup(2);
        assert_eq!(report.promoted, 0);
        assert!(report.retired > 0);
        assert_eq!(
            maintained.visible().len(),
            all_visible - report.retired,
            "retired cells vanish from the snapshot, floor keeps them"
        );
        assert_eq!(maintained.floor().len(), all_visible);
        // Lowering it back promotes the same cells again.
        let back = maintained.set_minsup(1);
        assert_eq!(back.promoted, report.retired);
        // And the snapshot still equals scratch at each threshold.
        assert_eq!(bytes(&maintained.visible()), bytes(&scratch(&base, 1)));
    }

    #[test]
    fn delta_batches_flow_end_to_end() {
        let base = rel(&[(&[0, 0], 10)], &[2, 2]);
        let mut maintained = MaintainedCube::from_relation(&base, 1).unwrap();
        // A dictionary-extending batch: dimension 0 grows a new code.
        let mut batch = DeltaBatch::against(base.schema());
        batch.push_row(&[2, 1], 20).unwrap();
        maintained.ingest_batch(&batch).unwrap();
        let mut concat = base.clone();
        concat.apply_delta(&batch).unwrap();
        assert_eq!(bytes(&maintained.visible()), bytes(&scratch(&concat, 1)));
    }

    #[test]
    fn empty_batches_are_noops() {
        let base = rel(&[(&[0, 0], 1)], &[2, 2]);
        let mut maintained = MaintainedCube::from_relation(&base, 1).unwrap();
        let before = maintained.epoch();
        let report = maintained
            .ingest(&Relation::new(base.schema().clone()))
            .unwrap();
        assert_eq!(report.epoch, before);
        assert_eq!(maintained.epoch(), before);
        let report = maintained.ingest_cells(Vec::new()).unwrap();
        assert_eq!(report.epoch, before);
        // Setting the same minsup does not publish a new epoch either.
        assert_eq!(maintained.set_minsup(1).epoch, before);
    }

    #[test]
    fn malformed_cells_leave_the_floor_untouched() {
        let base = rel(&[(&[0, 0], 1)], &[2, 2]);
        let mut maintained = MaintainedCube::from_relation(&base, 1).unwrap();
        let before = bytes(maintained.floor());
        let epoch = maintained.epoch();
        let bad = Cell {
            cuboid: icecube_lattice::CuboidMask::from_dims(&[0, 1]),
            key: vec![1],
            agg: crate::agg::Aggregate::empty(),
        };
        assert!(matches!(
            maintained.ingest_cells(vec![bad]),
            Err(AlgoError::CellArity {
                expected: 2,
                got: 1
            })
        ));
        assert_eq!(bytes(maintained.floor()), before);
        assert_eq!(maintained.epoch(), epoch);
        let wide = Cell {
            cuboid: icecube_lattice::CuboidMask::from_dims(&[5]),
            key: vec![0],
            agg: crate::agg::Aggregate::empty(),
        };
        assert!(matches!(
            maintained.ingest_cells(vec![wide]),
            Err(AlgoError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_dimensions_is_a_typed_error() {
        assert!(matches!(
            MaintainedCube::new(0, 1),
            Err(AlgoError::NoDimensions)
        ));
        // Zero minsup clamps to 1 rather than erroring.
        assert_eq!(MaintainedCube::new(2, 0).unwrap().minsup(), 1);
    }
}
