//! Algorithm AHT — Affinity Hash Table (Section 3.5.2, Figure 3.13).
//!
//! AHT is ASL's sibling with a hash table as the cell store. Each CUBE
//! attribute is assigned a number of index bits; a cell's bucket is the
//! concatenation of its values' low bits (the paper's "naive MOD hash").
//! The payoff is the **collapse** operation: when a new task's dimensions
//! are a subset of the previous task's, buckets differing only in the
//! dropped attributes' bits merge — no re-read of the data, no sorting
//! ever (a cuboid is "post-sorted" only if a user asks).
//!
//! The cost is the index: the total bits are capped by the table size
//! (the paper fixes the bucket count to the tuple count), so at high
//! dimensionality or sparseness each attribute gets too few bits,
//! collisions pile up in the chains, and performance degrades — the
//! behaviour Figures 4.4 and 4.6 show. The chains are real here, so the
//! degradation emerges rather than being modelled.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::algorithms::{finish, load_replicated, Algorithm, RunOptions, RunOutcome};
use crate::asl::{chained_tasks, cuboid_tasks, reinsert_sorted};
use crate::backend::charge_replicated_load;
use crate::cell::{Cell, CellBuf, CellSink};
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::recover::TaskGuard;
use icecube_cluster::{run_demand_steps_healing, ClusterConfig, SimCluster, SimNode, StepEvent};
use icecube_data::Relation;
use icecube_exec::{TaskSpec, Workload};
use icecube_lattice::CuboidMask;
use std::rc::Rc;

/// The bucket-index function AHT uses (Section 4.9.2 suggests replacing
/// the naive MOD hash with "a more sophisticated hash function" to relieve
/// AHT on sparse, high-dimensional cubes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AhtHash {
    /// The thesis' implementation: concatenate each value's low bits.
    #[default]
    NaiveMod,
    /// Fibonacci (multiplicative) hashing of the whole key — the
    /// suggested improvement, which mixes high bits into the index.
    Fibonacci,
}

/// Recycled backing storage of one [`AffinityHashTable`]: bucket chains
/// (entry indices, sorted by key), the flat key arena, and the aggregate
/// column. Chains keep their capacity across tables, so a warm
/// [`AhtPool`] serves collapse after collapse without touching the
/// allocator — retiring the per-cell `Box` key and per-table bucket
/// headers the pre-arena implementation allocated.
#[derive(Debug, Default)]
struct TableStorage {
    /// Ascending dimensions of the owning table's cuboid.
    dims: Vec<usize>,
    /// Cardinalities of those dimensions (for bit re-assignment on
    /// collapse).
    cards: Vec<u32>,
    /// Index bits granted to each dimension (aligned with `dims`).
    bits: Vec<u8>,
    /// Per-bucket chains of entry indices, sorted by key. The physical
    /// vector never shrinks; a table uses the first `bucket_count`.
    chains: Vec<Vec<u32>>,
    /// Concatenated cell keys; entry `e` owns
    /// `entry_keys[e*dims.len()..(e+1)*dims.len()]`.
    entry_keys: Vec<u32>,
    /// Aggregate of entry `e`.
    entry_aggs: Vec<Aggregate>,
}

/// A free list of retired table storage plus the collapse/build scratch
/// buffers, threaded through every AHT table construction so the per-cell
/// loops run allocation-free on a warm pool.
#[derive(Debug, Default)]
pub struct AhtPool {
    spares: Vec<TableStorage>,
    /// Kept source-key positions during a collapse.
    keep: Vec<usize>,
    /// Projected keys of every source cell, in source emission order.
    proj: Vec<u32>,
    /// Source entry index of every cell, aligned with `proj`.
    src: Vec<u32>,
    /// Target bucket of every cell, aligned with `proj`.
    bucket_of: Vec<u32>,
    /// Cells per target bucket.
    counts: Vec<u32>,
    /// Scatter cursors (one past each bucket's region after the scatter).
    cursor: Vec<u32>,
    /// Cell ordinals grouped by target bucket, arrival order preserved.
    order: Vec<u32>,
    /// Projected-key buffer for raw-relation builds.
    key: Vec<u32>,
}

impl AhtPool {
    /// An empty pool; storage is grown on first use and recycled after.
    pub fn new() -> Self {
        AhtPool::default()
    }

    /// Returns a retired table's storage to the pool. Used chains are
    /// cleared here (capacity kept) so acquisition stays allocation-free.
    pub fn release(&mut self, table: AffinityHashTable) {
        let mut s = table.s;
        for chain in &mut s.chains[..table.bucket_count] {
            chain.clear();
        }
        self.spares.push(s);
    }
}

/// A collapsible, bit-indexed hash table holding one cuboid's cells.
#[derive(Debug)]
pub struct AffinityHashTable {
    cuboid: CuboidMask,
    /// The fixed bucket budget every table is sized to (the paper pins it
    /// to the tuple count of R).
    target_buckets: usize,
    /// Buckets in use: `2^(total index bits)`; the storage may hold more.
    bucket_count: usize,
    hash: AhtHash,
    len: usize,
    probes: u64,
    key_cmps: u64,
    s: TableStorage,
}

impl AffinityHashTable {
    /// Distributes index bits over the attributes: each starts at
    /// `ceil(log2 cardinality)` and the widest attributes shed bits until
    /// the table fits `target_buckets` (the paper sizes tables to the
    /// tuple count). Every attribute keeps at least one bit.
    pub fn assign_bits(cards: &[u32], target_buckets: usize) -> Vec<u8> {
        let mut bits = Vec::with_capacity(cards.len());
        Self::assign_bits_into(cards, target_buckets, &mut bits);
        bits
    }

    /// [`AffinityHashTable::assign_bits`] into a caller-provided buffer —
    /// the allocation-free form the collapse path uses.
    pub fn assign_bits_into(cards: &[u32], target_buckets: usize, bits: &mut Vec<u8>) {
        assert!(!cards.is_empty(), "need at least one attribute");
        let target_bits = (target_buckets.max(2) as f64).log2().ceil() as u32;
        bits.clear();
        for &c in cards {
            bits.push((32 - c.max(2).leading_zeros()).max(1) as u8);
        }
        loop {
            let total: u32 = bits.iter().map(|&b| b as u32).sum();
            if total <= target_bits.max(cards.len() as u32) {
                return;
            }
            // Shrink the currently widest attribute.
            let widest = bits
                .iter()
                .enumerate()
                .max_by_key(|&(i, &b)| (b, usize::MAX - i))
                .map(|(i, _)| i)
                .expect("non-empty");
            if bits[widest] <= 1 {
                return;
            }
            bits[widest] -= 1;
        }
    }

    /// Creates an empty table for `cuboid` over dimensions with the given
    /// cardinalities, sized to the fixed bucket budget: every attribute
    /// gets its share of `log2(target_buckets)` index bits.
    pub fn new(cuboid: CuboidMask, cards: Vec<u32>, target_buckets: usize) -> Self {
        Self::with_hash(cuboid, cards, target_buckets, AhtHash::NaiveMod)
    }

    /// [`AffinityHashTable::new`] with an explicit hash function.
    pub fn with_hash(
        cuboid: CuboidMask,
        cards: Vec<u32>,
        target_buckets: usize,
        hash: AhtHash,
    ) -> Self {
        let s = TableStorage {
            cards,
            ..TableStorage::default()
        };
        Self::from_storage(s, cuboid, target_buckets, hash)
    }

    /// Assembles an empty table over (possibly recycled) storage whose
    /// `cards` are already filled; everything else is reset here. The
    /// only storage that may survive a recycle is *capacity*, so a
    /// pooled table is observationally identical to a fresh one.
    fn from_storage(
        mut s: TableStorage,
        cuboid: CuboidMask,
        target_buckets: usize,
        hash: AhtHash,
    ) -> Self {
        s.dims.clear();
        for d in cuboid.iter_dims() {
            s.dims.push(d);
        }
        assert_eq!(s.dims.len(), s.cards.len(), "one cardinality per dimension");
        Self::assign_bits_into(&s.cards, target_buckets, &mut s.bits);
        let total: u32 = s.bits.iter().map(|&b| b as u32).sum();
        assert!(total <= 26, "table of 2^{total} buckets is unreasonable");
        let bucket_count = 1usize << total;
        while s.chains.len() < bucket_count {
            s.chains.push(Vec::default());
        }
        debug_assert!(
            s.chains.iter().all(Vec::is_empty),
            "recycled chains must be clear"
        );
        s.entry_keys.clear();
        s.entry_aggs.clear();
        AffinityHashTable {
            cuboid,
            target_buckets,
            bucket_count,
            hash,
            len: 0,
            probes: 0,
            key_cmps: 0,
            s,
        }
    }

    /// The per-dimension index bit widths currently in force.
    pub fn bit_widths(&self) -> &[u8] {
        &self.s.bits
    }

    /// The cuboid this table holds.
    pub fn cuboid(&self) -> CuboidMask {
        self.cuboid
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no cell has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    /// The bucket index of a key: the concatenated low bits of each value
    /// (`v mod 2^b` — the paper's naive MOD hash).
    #[inline]
    pub fn index(&self, key: &[u32]) -> usize {
        match self.hash {
            AhtHash::NaiveMod => {
                let mut idx = 0usize;
                for (&v, &b) in key.iter().zip(&self.s.bits) {
                    idx = (idx << b) | (v as usize & ((1usize << b) - 1));
                }
                idx
            }
            AhtHash::Fibonacci => {
                let total: u32 = self.s.bits.iter().map(|&b| b as u32).sum();
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &v in key {
                    h ^= v as u64;
                    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                }
                (h >> (64 - total.max(1))) as usize
            }
        }
    }

    /// Inserts or merges a cell.
    ///
    /// Chains are kept sorted and binary-searched so that the *simulation*
    /// stays fast even when the paper's naive MOD index degenerates; the
    /// comparison counter is charged with the cost a linearly probed chain
    /// (the paper's implementation) would pay — about one key element per
    /// chain entry scanned (mismatches are detected on the first element)
    /// plus a full-key compare on a hit — so the virtual-time degradation
    /// at high collision rates is faithful without being quadratic in
    /// real time.
    pub fn upsert(&mut self, key: &[u32], agg: &Aggregate) {
        debug_assert_eq!(key.len(), self.s.dims.len());
        let idx = self.index(key);
        self.probes += 1;
        let klen = key.len();
        let TableStorage {
            chains,
            entry_keys,
            entry_aggs,
            ..
        } = &mut self.s;
        let chain = &mut chains[idx];
        match chain.binary_search_by(|&e| {
            let at = e as usize * klen;
            entry_keys[at..at + klen].cmp(key)
        }) {
            Ok(pos) => {
                // Linear probe: ~half the chain fails on its first key
                // element, the hit compares the whole key.
                self.key_cmps += (chain.len() as u64).div_ceil(2) + klen as u64;
                entry_aggs[chain[pos] as usize].merge(agg);
            }
            Err(pos) => {
                self.key_cmps += chain.len() as u64;
                let entry = self.len as u32;
                entry_keys.extend_from_slice(key);
                entry_aggs.push(*agg);
                chain.insert(pos, entry);
                self.len += 1;
            }
        }
    }

    /// Builds a table from the raw relation.
    pub fn build(cuboid: CuboidMask, rel: &Relation, target_buckets: usize) -> Self {
        let dims = cuboid.dims();
        let cards: Vec<u32> = dims.iter().map(|&d| rel.schema().cardinality(d)).collect();
        Self::build_with_hash(cuboid, rel, target_buckets, AhtHash::NaiveMod, cards)
    }

    /// [`AffinityHashTable::build`] with an explicit hash function.
    pub fn build_with_hash(
        cuboid: CuboidMask,
        rel: &Relation,
        target_buckets: usize,
        hash: AhtHash,
        cards: Vec<u32>,
    ) -> Self {
        let dims = cuboid.dims();
        let mut table = Self::with_hash(cuboid, cards, target_buckets, hash);
        let mut key: Vec<u32> = std::iter::repeat_n(0u32, dims.len()).collect();
        for (row, m) in rel.rows() {
            cuboid.project_row(row, &mut key);
            table.upsert(&key, &Aggregate::of(m));
        }
        table
    }

    /// [`AffinityHashTable::build_with_hash`] over recycled pool storage —
    /// the drivers' form, allocation-free once the pool is warm.
    pub fn build_pooled(
        cuboid: CuboidMask,
        rel: &Relation,
        target_buckets: usize,
        hash: AhtHash,
        pool: &mut AhtPool,
    ) -> Self {
        let mut s = pool.spares.pop().unwrap_or_default();
        s.cards.clear();
        for d in cuboid.iter_dims() {
            s.cards.push(rel.schema().cardinality(d));
        }
        let mut table = Self::from_storage(s, cuboid, target_buckets, hash);
        let key = &mut pool.key;
        key.clear();
        key.resize(table.s.dims.len(), 0);
        for (row, m) in rel.rows() {
            cuboid.project_row(row, key);
            table.upsert(key, &Aggregate::of(m));
        }
        table
    }

    /// Collapses onto a subset of the dimensions (Figure 3.13's
    /// `subset-collapse`): cells are re-bucketed with the dropped
    /// attributes' bits removed and merged by projected key. The bucket
    /// budget is fixed (the paper pins the table size), so the kept
    /// dimensions re-share the full budget's index bits.
    ///
    /// Runs over pool storage as a counting-sort scatter: pass A projects
    /// every source cell (in source emission order) and counts its target
    /// bucket, a stable scatter groups cell ordinals per bucket, and pass
    /// B replays each bucket's sorted-chain inserts. A chain's evolution
    /// depends only on the arrival order of its *own* cells — which the
    /// stable scatter preserves — so the resulting cells and the charged
    /// probe/comparison counters are identical to cell-at-a-time upserts,
    /// while every entry's key lands contiguously in the target arena.
    pub fn collapse(&self, new_cuboid: CuboidMask, pool: &mut AhtPool) -> AffinityHashTable {
        assert!(
            new_cuboid.is_subset_of(self.cuboid),
            "collapse requires subset affinity"
        );
        let AhtPool {
            spares,
            keep,
            proj,
            src,
            bucket_of,
            counts,
            cursor,
            order,
            ..
        } = pool;
        keep.clear();
        for (i, d) in self.cuboid.iter_dims().enumerate() {
            if new_cuboid.contains(d) {
                keep.push(i);
            }
        }
        let mut s = spares.pop().unwrap_or_default();
        s.cards.clear();
        for &i in keep.iter() {
            s.cards.push(self.s.cards[i]);
        }
        let mut out = Self::from_storage(s, new_cuboid, self.target_buckets, self.hash);
        let klen = keep.len();
        let src_klen = self.s.dims.len();

        // Pass A: project each source cell, record its source entry and
        // target bucket, count cells per bucket.
        proj.clear();
        src.clear();
        bucket_of.clear();
        counts.clear();
        counts.resize(out.bucket_count, 0);
        for chain in &self.s.chains[..self.bucket_count] {
            for &e in chain {
                let base = e as usize * src_klen;
                for &i in keep.iter() {
                    proj.push(self.s.entry_keys[base + i]);
                }
                let start = proj.len() - klen;
                let idx = out.index(&proj[start..]);
                src.push(e);
                bucket_of.push(idx as u32);
                counts[idx] += 1;
            }
        }
        let ncells = bucket_of.len();

        // Stable counting-sort scatter: cell ordinals grouped by target
        // bucket, source order preserved within each bucket.
        cursor.clear();
        let mut run = 0u32;
        for &c in counts.iter() {
            cursor.push(run);
            run += c;
        }
        order.clear();
        order.resize(ncells, 0);
        for (ord, &b) in bucket_of.iter().enumerate() {
            let slot = cursor[b as usize] as usize;
            order[slot] = ord as u32;
            cursor[b as usize] += 1;
        }

        // Pass B: per-bucket sorted-chain inserts, charged with the cost a
        // linearly probed chain (the paper's implementation) would pay.
        let mut len = out.len;
        let mut key_cmps = 0u64;
        {
            let TableStorage {
                chains,
                entry_keys,
                entry_aggs,
                ..
            } = &mut out.s;
            for (b, &cnt) in counts.iter().enumerate() {
                let cnt = cnt as usize;
                if cnt == 0 {
                    continue;
                }
                let end = cursor[b] as usize;
                let chain = &mut chains[b];
                for &ord in &order[end - cnt..end] {
                    let at = ord as usize * klen;
                    let key = &proj[at..at + klen];
                    match chain.binary_search_by(|&e| {
                        let at = e as usize * klen;
                        entry_keys[at..at + klen].cmp(key)
                    }) {
                        Ok(pos) => {
                            key_cmps += (chain.len() as u64).div_ceil(2) + klen as u64;
                            entry_aggs[chain[pos] as usize]
                                .merge(&self.s.entry_aggs[src[ord as usize] as usize]);
                        }
                        Err(pos) => {
                            key_cmps += chain.len() as u64;
                            let entry = len as u32;
                            entry_keys.extend_from_slice(key);
                            entry_aggs.push(self.s.entry_aggs[src[ord as usize] as usize]);
                            chain.insert(pos, entry);
                            len += 1;
                        }
                    }
                }
            }
        }
        out.len = len;
        out.key_cmps += key_cmps;
        out.probes += ncells as u64;
        out
    }

    /// Iterates cells in bucket order (unsorted — AHT post-sorts only on
    /// demand).
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &Aggregate)> {
        let klen = self.s.dims.len();
        self.s.chains[..self.bucket_count]
            .iter()
            .flatten()
            .map(move |&e| {
                let at = e as usize * klen;
                (
                    &self.s.entry_keys[at..at + klen],
                    &self.s.entry_aggs[e as usize],
                )
            })
    }

    /// Drains the probe/comparison counters for cost charging.
    pub fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.probes),
            std::mem::take(&mut self.key_cmps),
        )
    }

    /// Longest collision chain (the degradation the paper describes).
    pub fn max_chain(&self) -> usize {
        self.s.chains[..self.bucket_count]
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Approximate memory footprint: bucket headers plus cells. A chain
    /// header is three words whether it holds boxed pairs or arena
    /// indices, and a cell is charged at its key words plus a fixed
    /// 48-byte record, so the figure is unchanged by the arena layout.
    pub fn memory_bytes(&self) -> u64 {
        (self.bucket_count * std::mem::size_of::<Vec<u32>>()) as u64
            + self.len as u64 * (self.s.dims.len() as u64 * 4 + 48)
    }
}

/// Reusable per-run scratch for [`run_aht`]: the table-storage pool and
/// collapse buffers every table construction draws from. One scratch can
/// be threaded through back-to-back runs (the executor `Workload`
/// prologue contract); outputs are identical to a cold start.
#[derive(Default)]
pub struct AhtRunScratch {
    pool: AhtPool,
}

impl AhtRunScratch {
    /// An empty scratch; arenas grow on first use and are recycled after.
    pub fn new() -> Self {
        AhtRunScratch::default()
    }
}

/// Runs AHT over a simulated cluster.
pub fn run_aht(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    run_aht_with(&mut AhtRunScratch::new(), rel, query, config, opts)
}

/// [`run_aht`] drawing table storage from a caller-held scratch, so
/// repeated runs reuse their arenas. The pool is host-side machinery
/// shared across all simulated workers; it is invisible to the simulated
/// cost model.
pub fn run_aht_with(
    scratch: &mut AhtRunScratch,
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    let AhtRunScratch { pool } = scratch;
    // check:allow(no-clone-hot-path): one-time cluster construction at
    // driver entry, not the per-tuple probe/collapse path.
    let mut cluster = SimCluster::new(config.clone());
    let n = cluster.len();
    load_replicated(&mut cluster, rel);
    let mut remaining = cuboid_tasks(query.dims);

    struct Worker {
        first: Option<Rc<AffinityHashTable>>,
        prev: Option<Rc<AffinityHashTable>>,
    }
    let mut workers: Vec<Worker> = (0..n)
        .map(|_| Worker {
            first: None,
            prev: None,
        })
        .collect();
    let mut sinks: Vec<CellBuf> = (0..n)
        .map(|_| {
            if opts.collect_cells {
                CellBuf::collecting()
            } else {
                CellBuf::counting()
            }
        })
        .collect();
    let minsup = query.minsup;
    let affinity = opts.affinity;
    let target_buckets = rel.len();

    // Self-healing bookkeeping (same scheme as ASL): the cuboid each node
    // is building or collapsing, its pre-task checkpoint, and the cuboids
    // reclaimed from crashed workers (to credit the eventual survivor).
    let mut inflight: Vec<Option<CuboidMask>> = (0..n).map(|_| None).collect();
    let mut guards: Vec<Option<TaskGuard>> = (0..n).map(|_| None).collect();
    let mut requeued: Vec<CuboidMask> = Vec::new();

    cluster.phase_start("compute");
    run_demand_steps_healing(&mut cluster, |cluster, node_id, event| {
        if event == StepEvent::Lost {
            // The dead worker's hash tables are unreachable; the cuboid
            // goes back into the sorted pool and a survivor rebuilds it
            // (re-establishing affinity from scratch if need be).
            let Some(task) = inflight[node_id].take() else {
                return false;
            };
            if let Some(guard) = guards[node_id].take() {
                guard.rollback(&mut cluster.nodes[node_id], &mut sinks[node_id]);
            }
            reinsert_sorted(&mut remaining, task);
            if !requeued.contains(&task) {
                requeued.push(task);
            }
            return true;
        }
        if remaining.is_empty() {
            return false;
        }
        let w = &mut workers[node_id];
        // AHT treats prefix affinity as ordinary subset affinity
        // (Section 3.5.2): two passes — subset of previous, subset of
        // first — then largest remaining.
        let mut choice: Option<(usize, bool)> = None; // (position, from_prev)
        if affinity {
            for (held, from_prev) in [(&w.prev, true), (&w.first, false)] {
                if let Some(t) = held {
                    if let Some(pos) = remaining.iter().position(|&c| c.is_subset_of(t.cuboid())) {
                        choice = Some((pos, from_prev));
                        break;
                    }
                }
            }
        }
        let (task, affine) = match choice {
            Some((pos, from_prev)) => (remaining.remove(pos), Some(from_prev)),
            None => (remaining.remove(0), None),
        };
        inflight[node_id] = Some(task);
        guards[node_id] = Some(TaskGuard::checkpoint(
            &cluster.nodes[node_id],
            &sinks[node_id],
        ));
        let node = &mut cluster.nodes[node_id];
        node.charge_task_overhead_for(task.bits() as u64);
        let built = match affine {
            Some(from_prev) => {
                let held = if from_prev {
                    w.prev.as_ref()
                } else {
                    w.first.as_ref()
                }
                .expect("held");
                let mut table = held.collapse(task, pool);
                node.charge_scan(held.len() as u64);
                node.charge_agg_updates(held.len() as u64);
                let (probes, cmps) = table.take_counters();
                node.charge_hash_probes(probes);
                node.charge_comparisons(cmps);
                table
            }
            None => {
                let mut table =
                    AffinityHashTable::build_pooled(task, rel, target_buckets, opts.aht_hash, pool);
                node.charge_scan(rel.len() as u64);
                node.charge_agg_updates(rel.len() as u64);
                let (probes, cmps) = table.take_counters();
                node.charge_hash_probes(probes);
                node.charge_comparisons(cmps);
                table
            }
        };
        emit_table(&built, minsup, node, &mut sinks[node_id]);
        // Install as the worker's previous (and first, if none yet).
        node.alloc(built.memory_bytes());
        if let Some(old) = w.prev.take() {
            let is_first = w.first.as_ref().is_some_and(|f| Rc::ptr_eq(f, &old));
            if !is_first {
                node.free(old.memory_bytes());
                // The superseded table is unreachable; recycle its arenas.
                if let Ok(retired) = Rc::try_unwrap(old) {
                    pool.release(retired);
                }
            }
        }
        let rc = Rc::new(built);
        if w.first.is_none() {
            w.first = Some(Rc::clone(&rc));
        }
        w.prev = Some(rc);
        if !cluster.nodes[node_id].is_dead() {
            inflight[node_id] = None;
            guards[node_id] = None;
            cluster.nodes[node_id].trace_task_end(task.bits() as u64);
            if let Some(pos) = requeued.iter().position(|&t| t == task) {
                requeued.remove(pos);
                cluster.nodes[node_id].note_task_recovered();
            }
        }
        true
    });
    cluster.phase_end("compute");
    if !remaining.is_empty() || inflight.iter().any(Option::is_some) {
        return Err(AlgoError::ClusterExhausted { nodes: n });
    }
    Ok(finish(Algorithm::Aht, &mut cluster, sinks))
}

/// Streams a finished table's qualifying cells in bucket order (no sort:
/// post-sorting is deferred to query time in AHT) and charges the write.
fn emit_table<S: CellSink>(
    built: &AffinityHashTable,
    minsup: u64,
    node: &mut SimNode,
    sink: &mut S,
) {
    let mut cells = 0u64;
    for (key, agg) in built.iter() {
        if agg.meets(minsup) {
            sink.emit(built.cuboid(), key, agg);
            cells += 1;
        }
    }
    if cells > 0 {
        node.write_cells(
            built.cuboid().bits() as u64,
            cells * Cell::disk_bytes(built.cuboid().dim_count()),
            cells,
        );
    }
}

/// Per-worker affinity state for the executor path: the first and most
/// recent tables, owned outright (the sim driver's `Rc` sharing exists
/// for memory accounting, which the executor path does not do).
pub(crate) struct AhtScratch {
    first: Option<AffinityHashTable>,
    prev: Option<AffinityHashTable>,
    pool: AhtPool,
}

/// AHT's backend-agnostic decomposition: one task per cuboid in
/// [`chained_tasks`] order, built by collapse when the worker holds a
/// superset table (subset affinity only, as in Section 3.5.2) and from
/// the raw relation otherwise. A table's final contents are the same
/// cells either way, so outputs stay byte-identical however tasks land
/// on workers.
pub(crate) struct AhtWorkload<'a> {
    rel: &'a Relation,
    minsup: u64,
    hash: AhtHash,
    affinity: bool,
    collect: bool,
    target_buckets: usize,
    tasks: Vec<CuboidMask>,
}

/// Builds AHT's executor plan for the given query.
pub(crate) fn exec_workload<'a>(
    rel: &'a Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
) -> (Vec<TaskSpec>, AhtWorkload<'a>) {
    let tasks = chained_tasks(query.dims, false);
    let specs = tasks
        .iter()
        .enumerate()
        .map(|(id, cuboid)| TaskSpec {
            id,
            affinity: cuboid.bits() as u64,
            weight: 1u64 << cuboid.dim_count(),
        })
        .collect();
    let workload = AhtWorkload {
        rel,
        minsup: query.minsup,
        hash: opts.aht_hash,
        affinity: opts.affinity,
        collect: opts.collect_cells,
        target_buckets: rel.len(),
        tasks,
    };
    (specs, workload)
}

impl AhtWorkload<'_> {
    /// Builds a cuboid's table from the raw relation, charging the scan
    /// and hashing costs — the no-affinity path and the cold-worker
    /// seed share it.
    fn build_from_relation(
        &self,
        task: CuboidMask,
        node: &mut SimNode,
        pool: &mut AhtPool,
    ) -> AffinityHashTable {
        let mut table =
            AffinityHashTable::build_pooled(task, self.rel, self.target_buckets, self.hash, pool);
        node.charge_scan(self.rel.len() as u64);
        node.charge_agg_updates(self.rel.len() as u64);
        let (probes, cmps) = table.take_counters();
        node.charge_hash_probes(probes);
        node.charge_comparisons(cmps);
        table
    }
}

impl Workload for AhtWorkload<'_> {
    type Scratch = AhtScratch;
    type Out = CellBuf;

    fn scratch(&self, _worker: usize) -> AhtScratch {
        AhtScratch {
            first: None,
            prev: None,
            pool: AhtPool::new(),
        }
    }

    fn prologue(&self, node: &mut SimNode) {
        charge_replicated_load(self.rel, node);
    }

    fn run(&self, spec: &TaskSpec, scratch: &mut AhtScratch, node: &mut SimNode) -> CellBuf {
        let task = self.tasks[spec.id];
        let mut sink = if self.collect {
            CellBuf::collecting()
        } else {
            CellBuf::counting()
        };
        // A cold worker materializes the full-lattice table before
        // anything else so the subset passes always have a donor (every
        // task collapses from the lattice root at worst, never rebuilding
        // from raw data mid-run). Contents are identical either way.
        if self.affinity && scratch.first.is_none() && task != self.tasks[0] {
            scratch.first = Some(self.build_from_relation(self.tasks[0], node, &mut scratch.pool));
        }
        // Subset-of-previous first, then subset-of-first, as the
        // simulated manager does.
        let AhtScratch { first, prev, pool } = scratch;
        let held = if self.affinity {
            [prev.as_ref(), first.as_ref()]
                .into_iter()
                .flatten()
                .find(|t| task.is_subset_of(t.cuboid()))
        } else {
            None
        };
        let built = match held {
            Some(held) => {
                let mut table = held.collapse(task, pool);
                node.charge_scan(held.len() as u64);
                node.charge_agg_updates(held.len() as u64);
                let (probes, cmps) = table.take_counters();
                node.charge_hash_probes(probes);
                node.charge_comparisons(cmps);
                table
            }
            None => self.build_from_relation(task, node, pool),
        };
        emit_table(&built, self.minsup, node, &mut sink);
        if first.is_none() {
            *first = Some(built);
        } else if let Some(old) = prev.replace(built) {
            pool.release(old);
        }
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::{naive_cuboid, naive_iceberg_cube};
    use crate::verify::assert_same_cells;
    use icecube_data::presets;

    #[test]
    fn assign_bits_respects_target_and_minimums() {
        let bits = AffinityHashTable::assign_bits(&[2000, 500, 100, 2], 1 << 12);
        let total: u32 = bits.iter().map(|&b| b as u32).sum();
        assert!(total <= 12, "total {total} bits {bits:?}");
        assert!(bits.iter().all(|&b| b >= 1));
        // A tiny target still grants one bit each.
        let bits = AffinityHashTable::assign_bits(&[1000; 8], 4);
        assert!(bits.iter().all(|&b| b == 1));
    }

    #[test]
    fn upsert_merges_duplicates() {
        let cuboid = CuboidMask::from_dims(&[0, 1]);
        let mut t = AffinityHashTable::new(cuboid, vec![4, 4], 16);
        t.upsert(&[1, 2], &Aggregate::of(10));
        t.upsert(&[1, 2], &Aggregate::of(5));
        t.upsert(&[1, 3], &Aggregate::of(1));
        assert_eq!(t.len(), 2);
        let total: u64 = t.iter().map(|(_, a)| a.count).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn colliding_keys_chain_correctly() {
        // One bit per dim: keys 0 and 2 collide (same low bit).
        let cuboid = CuboidMask::from_dims(&[0]);
        let mut t = AffinityHashTable::new(cuboid, vec![8], 2);
        t.upsert(&[0], &Aggregate::of(1));
        t.upsert(&[2], &Aggregate::of(2));
        t.upsert(&[4], &Aggregate::of(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.max_chain(), 3);
        let (_, cmps) = t.take_counters();
        assert!(cmps > 0, "chained inserts must compare keys");
    }

    #[test]
    fn collapse_equals_naive_cuboid() {
        let rel = presets::tiny(5).generate().unwrap();
        let abcd = CuboidMask::from_dims(&[0, 1, 2, 3]);
        let full = AffinityHashTable::build(abcd, &rel, rel.len());
        let mut pool = AhtPool::new();
        for target in [&[0usize, 2][..], &[1], &[0, 1, 3]] {
            let sub = CuboidMask::from_dims(target);
            let collapsed = full.collapse(sub, &mut pool);
            let mut got: Vec<Cell> = collapsed
                .iter()
                .map(|(k, a)| Cell {
                    cuboid: sub,
                    key: k.to_vec(),
                    agg: *a,
                })
                .collect();
            let mut want = Vec::new();
            naive_cuboid(&rel, sub, 1, &mut want);
            crate::cell::sort_cells(&mut got);
            crate::cell::sort_cells(&mut want);
            assert_eq!(got, want, "cuboid {sub}");
        }
    }

    #[test]
    fn pooled_collapse_is_indistinguishable_from_fresh() {
        // Recycled arenas may only carry capacity: collapsing through a
        // warm pool must yield the same cells, counters, chain shape and
        // accounted footprint as a cold pool.
        let rel = presets::tiny(7).generate().unwrap();
        let abcd = CuboidMask::from_dims(&[0, 1, 2, 3]);
        let full = AffinityHashTable::build(abcd, &rel, rel.len());
        let mut warm = AhtPool::new();
        // Warm the pool with a detour collapse, then retire it.
        let detour = full.collapse(CuboidMask::from_dims(&[1, 2, 3]), &mut warm);
        warm.release(detour);
        for target in [&[0usize, 2][..], &[1], &[0, 1, 3]] {
            let sub = CuboidMask::from_dims(target);
            let mut cold_pool = AhtPool::new();
            let mut cold = full.collapse(sub, &mut cold_pool);
            let mut reused = full.collapse(sub, &mut warm);
            assert!(cold.iter().eq(reused.iter()), "cells differ for {sub}");
            assert_eq!(cold.take_counters(), reused.take_counters());
            assert_eq!(cold.max_chain(), reused.max_chain());
            assert_eq!(cold.memory_bytes(), reused.memory_bytes());
            assert_eq!(cold.bucket_count(), reused.bucket_count());
            warm.release(reused);
        }
    }

    fn check(rel: &Relation, minsup: u64, nodes: usize) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(nodes);
        let out = run_aht(rel, &q, &cfg, &RunOptions::default()).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(want, out.cells, &format!("AHT n={nodes} minsup={minsup}"));
    }

    #[test]
    fn matches_naive_across_configurations() {
        let rel = sales();
        for nodes in [1, 2, 4] {
            check(&rel, 1, nodes);
            check(&rel, 2, nodes);
        }
        for seed in [2, 8] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3] {
                check(&rel, minsup, 3);
            }
        }
    }

    #[test]
    fn matches_naive_without_affinity() {
        let rel = presets::tiny(1).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let out = run_aht(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(2),
            &RunOptions {
                affinity: false,
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "AHT without affinity",
        );
    }

    #[test]
    fn a_crash_requeues_cuboids_and_the_cube_stays_exact() {
        use icecube_cluster::FaultPlan;
        let rel = presets::tiny(8).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let quiet = run_aht(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(3),
            &RunOptions::default(),
        )
        .unwrap();
        // Kill a worker mid-run: its hash tables (and any in-flight
        // cuboid) are lost; survivors rebuild and finish the lattice.
        let cfg = ClusterConfig::fast_ethernet(3)
            .with_faults(FaultPlan::none().crash(0, quiet.stats.makespan_ns() / 4));
        let out = run_aht(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        assert_same_cells(
            naive_iceberg_cube(&rel, &q),
            out.cells,
            "AHT with a mid-run crash",
        );
        assert_eq!(out.stats.total_crashes(), 1);
        assert!(out.stats.total_tasks_lost() >= 1, "{:?}", out.stats);
        assert!(out.stats.total_tasks_recovered() >= 1, "{:?}", out.stats);
    }

    #[test]
    fn dense_data_keeps_chains_short_sparse_grows_them() {
        // The Figure 4.6 mechanism: with cells ≪ buckets chains stay ~1;
        // when distinct cells rival the bucket budget, chains grow.
        let dense = icecube_data::SyntheticSpec::uniform(4000, vec![4, 4], 1)
            .generate()
            .unwrap();
        let t = AffinityHashTable::build(CuboidMask::from_dims(&[0, 1]), &dense, dense.len());
        assert_eq!(t.max_chain(), 1);
        let sparse = icecube_data::SyntheticSpec::uniform(4000, vec![3000, 3000], 1)
            .generate()
            .unwrap();
        let t2 = AffinityHashTable::build(CuboidMask::from_dims(&[0, 1]), &sparse, 256);
        assert!(t2.max_chain() > 4, "max chain {}", t2.max_chain());
    }
}
