//! A unified runner for the sequential algorithms (Chapter 2's cast),
//! so baselines can be compared head-to-head on one simulated node.
//!
//! This is where the paper's Chapter 2 claims become measurable: BUC's
//! pruning beats the top-down family on iceberg thresholds; PipeHash is
//! competitive only when the cube is dense; breadth-first writing beats
//! depth-first on I/O regardless of the traversal direction.

use crate::buc::{bpp_buc, buc_depth_first};
use crate::cell::{sort_cells, Cell, CellBuf, CellSink};
use crate::error::AlgoError;
use crate::naive::naive_iceberg_cube;
use crate::pipehash::pipehash;
use crate::pipesort::pipesort;
use crate::query::IcebergQuery;
use crate::topdown::topdown_shared;
use icecube_cluster::{ClusterConfig, NodeStats, SimCluster};
use icecube_data::Relation;
use icecube_lattice::TreeTask;
use std::fmt;

/// The sequential algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqAlgorithm {
    /// The brute-force reference (per-cuboid hash grouping).
    Naive,
    /// BUC with its original depth-first writing (Beyer & Ramakrishnan).
    Buc,
    /// BUC with BPP's breadth-first writing.
    BppBuc,
    /// The share-sort top-down baseline of Figure 2.4(b).
    TopDownShared,
    /// Overlap (Naughton et al.): maximize sort-order overlap, sorting
    /// within shared-prefix partitions.
    Overlap,
    /// PipeSort (Agarwal et al.): minimum-sort pipelines.
    PipeSort,
    /// PipeHash (Agarwal et al.): smallest-parent MST over hash tables.
    PipeHash,
}

impl SeqAlgorithm {
    /// Every sequential algorithm, in review order.
    pub fn all() -> [SeqAlgorithm; 7] {
        [
            SeqAlgorithm::Naive,
            SeqAlgorithm::Buc,
            SeqAlgorithm::BppBuc,
            SeqAlgorithm::TopDownShared,
            SeqAlgorithm::Overlap,
            SeqAlgorithm::PipeSort,
            SeqAlgorithm::PipeHash,
        ]
    }

    /// Whether the algorithm can prune on the minimum support during
    /// computation (the bottom-up family can; top-down cannot).
    pub fn prunes(self) -> bool {
        matches!(self, SeqAlgorithm::Buc | SeqAlgorithm::BppBuc)
    }
}

impl fmt::Display for SeqAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SeqAlgorithm::Naive => "Naive",
            SeqAlgorithm::Buc => "BUC",
            SeqAlgorithm::BppBuc => "BPP-BUC",
            SeqAlgorithm::TopDownShared => "TopDown",
            SeqAlgorithm::Overlap => "Overlap",
            SeqAlgorithm::PipeSort => "PipeSort",
            SeqAlgorithm::PipeHash => "PipeHash",
        };
        write!(f, "{name}")
    }
}

/// The result of a sequential run on one simulated node.
#[derive(Debug, Clone)]
pub struct SeqOutcome {
    /// Which algorithm ran.
    pub algorithm: SeqAlgorithm,
    /// The iceberg cells, canonically sorted.
    pub cells: Vec<Cell>,
    /// The node's accounting.
    pub stats: NodeStats,
    /// Final virtual clock (the run's wall time).
    pub clock_ns: u64,
}

/// Runs a sequential algorithm on node 0 of a fresh single-node cluster.
pub fn run_sequential(
    algorithm: SeqAlgorithm,
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
) -> Result<SeqOutcome, AlgoError> {
    crate::algorithms::validate(rel, query)?;
    let mut cluster = SimCluster::new(config.clone());
    // check:allow(panic-path): ClusterConfig asserts at least one node at
    // construction, so node 0 always exists.
    let node = &mut cluster.nodes[0];
    node.read_bytes(rel.byte_size());
    node.charge_scan(rel.len() as u64);
    node.alloc(rel.byte_size());
    let mut sink = CellBuf::collecting();
    match algorithm {
        SeqAlgorithm::Naive => {
            // Charged as d scans with hash probing — honest for the
            // reference evaluator's structure.
            let cells = naive_iceberg_cube(rel, query);
            let cuboids = (1u64 << query.dims) - 1;
            node.charge_scan(rel.len() as u64 * cuboids);
            node.charge_hash_probes(rel.len() as u64 * cuboids);
            for c in &cells {
                sink.emit(c.cuboid, &c.key, &c.agg);
            }
        }
        SeqAlgorithm::Buc => {
            buc_depth_first(
                rel,
                query.minsup,
                TreeTask::whole_lattice(query.dims),
                node,
                &mut sink,
            );
        }
        SeqAlgorithm::BppBuc => {
            bpp_buc(
                rel,
                query.minsup,
                TreeTask::whole_lattice(query.dims),
                node,
                &mut sink,
            );
        }
        SeqAlgorithm::TopDownShared => topdown_shared(rel, query, node, &mut sink),
        SeqAlgorithm::Overlap => crate::overlap::overlap(rel, query, node, &mut sink),
        SeqAlgorithm::PipeSort => pipesort(rel, query, node, &mut sink),
        SeqAlgorithm::PipeHash => {
            let budget = node.spec().mem_bytes();
            pipehash(rel, query, budget, node, &mut sink);
        }
    }
    let mut cells = sink.into_cells();
    sort_cells(&mut cells);
    // check:allow(panic-path): ClusterConfig asserts at least one node at
    // construction, so node 0 always exists.
    let node0 = &cluster.nodes[0];
    Ok(SeqOutcome {
        algorithm,
        cells,
        stats: node0.stats.clone(),
        clock_ns: node0.clock_ns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_data::presets;

    #[test]
    fn all_sequential_algorithms_agree() {
        let rel = presets::tiny(14).generate().unwrap();
        for minsup in [1u64, 2, 4] {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            let cfg = ClusterConfig::fast_ethernet(1);
            let reference = run_sequential(SeqAlgorithm::Naive, &rel, &q, &cfg).unwrap();
            for alg in SeqAlgorithm::all() {
                let out = run_sequential(alg, &rel, &q, &cfg).unwrap();
                assert_eq!(out.cells, reference.cells, "{alg} at minsup {minsup}");
            }
        }
    }

    #[test]
    fn pruning_separates_bottom_up_from_top_down() {
        // Raising the threshold must cut BUC's CPU, not TopDown's — the
        // structural claim of Section 2.4.
        let rel = presets::tiny(15).generate().unwrap();
        let cfg = ClusterConfig::fast_ethernet(1);
        let cpu = |alg, minsup| {
            let q = IcebergQuery::count_cube(rel.arity(), minsup);
            run_sequential(alg, &rel, &q, &cfg).unwrap().stats.cpu_ns
        };
        let buc_drop = cpu(SeqAlgorithm::BppBuc, 1) as f64 / cpu(SeqAlgorithm::BppBuc, 8) as f64;
        let td_drop =
            cpu(SeqAlgorithm::TopDownShared, 1) as f64 / cpu(SeqAlgorithm::TopDownShared, 8) as f64;
        assert!(
            buc_drop > td_drop,
            "BUC {buc_drop:.2}x vs TopDown {td_drop:.2}x"
        );
        assert!(SeqAlgorithm::Buc.prunes());
        assert!(!SeqAlgorithm::PipeSort.prunes());
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = SeqAlgorithm::all()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(
            names,
            ["Naive", "BUC", "BPP-BUC", "TopDown", "Overlap", "PipeSort", "PipeHash"]
        );
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let rel = presets::tiny(16).generate().unwrap();
        let q = IcebergQuery::count_cube(2, 1);
        let err = run_sequential(
            SeqAlgorithm::Buc,
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(1),
        )
        .unwrap_err();
        assert!(matches!(err, AlgoError::DimensionMismatch { .. }));
    }
}
