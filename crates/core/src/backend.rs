//! Backend-agnostic execution of the cube algorithms.
//!
//! The simulator drivers (`run_rp`, `run_bpp`, …) schedule work onto a
//! [`SimCluster`] themselves: virtual clocks, faults, recovery sweeps.
//! This module routes the *same* task decompositions through the
//! [`Executor`] abstraction instead, so a plan can run on the simulated
//! cluster ([`icecube_exec::SimExecutor`]) or on real host threads
//! ([`icecube_exec::NativeExecutor`]) and produce byte-identical cells.
//!
//! Determinism contract: every plan here is built from the query alone —
//! never from the worker count — and executors return outputs in task-id
//! order, so the merged cube is a pure function of `(relation, query,
//! options)` regardless of backend, worker count, or stealing order.

use crate::algorithms::{validate, Algorithm, RunOptions};
use crate::cell::{sort_cells, Cell, CellBuf};
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use crate::{aht, asl, bpp, pt, rp};
use icecube_cluster::SimNode;
use icecube_data::Relation;
use icecube_exec::{ExecReport, Executor, Workload};

/// Fixed decomposition width for plans whose task count is tunable (BPP's
/// partition count, PT's division target). The simulator drivers scale
/// these with the cluster size; the executor path pins them so the task
/// list — and therefore the output — is independent of how many workers
/// happen to run it.
pub const EXEC_UNITS: usize = 8;

/// Skip-list seed for ASL's executor plan. Matches the simulated
/// cluster's default RNG seed; it shapes only tower heights (search
/// cost), never which cells a list emits.
pub(crate) const EXEC_SEED: u64 = 0x1ceb_c0de;

/// Charges a node for reading its replicated copy of the dataset from
/// local disk into memory — the per-node body of
/// [`load_replicated`](crate::algorithms::load_replicated), reused as the
/// executor prologue for the replicated algorithms.
pub(crate) fn charge_replicated_load(rel: &Relation, node: &mut SimNode) {
    node.read_bytes(rel.byte_size());
    node.charge_scan(rel.len() as u64);
    node.alloc(rel.byte_size());
}

/// The result of running one algorithm through an [`Executor`].
#[derive(Debug)]
pub struct ExecOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// All iceberg cells, sorted by (cuboid, key); empty when the run
    /// counted without collecting.
    pub cells: Vec<Cell>,
    /// Total cells found (counted even when not collected).
    pub total_cells: u64,
    /// Backend, worker, and timing detail from the executor.
    pub report: ExecReport,
}

/// Runs `algorithm` over `rel` on the given executor backend.
///
/// The task decomposition is the algorithm's own (RP's subtrees, BPP's
/// chunk×subtree grid, ASL/AHT's affinity-ordered cuboids, PT's divided
/// subtrees); only the scheduling differs from the `run_*` drivers.
/// `HashTree` has no executor decomposition — it builds one shared
/// candidate structure level by level — and returns
/// [`AlgoError::SimulatorOnly`].
pub fn run_parallel_exec<E: Executor>(
    executor: &mut E,
    algorithm: Algorithm,
    rel: &Relation,
    query: &IcebergQuery,
    opts: &RunOptions,
) -> Result<ExecOutcome, AlgoError> {
    validate(rel, query)?;
    match algorithm {
        Algorithm::Rp => {
            let (specs, workload) = rp::exec_workload(rel, query, opts);
            collect(executor, algorithm, &specs, &workload)
        }
        Algorithm::Bpp => {
            let (specs, workload) = bpp::exec_workload(rel, query, opts, EXEC_UNITS);
            collect(executor, algorithm, &specs, &workload)
        }
        Algorithm::Asl => {
            let (specs, workload) = asl::exec_workload(rel, query, opts, EXEC_SEED);
            collect(executor, algorithm, &specs, &workload)
        }
        Algorithm::Pt => {
            let (specs, workload) = pt::exec_workload(rel, query, opts, EXEC_UNITS);
            collect(executor, algorithm, &specs, &workload)
        }
        Algorithm::Aht => {
            let (specs, workload) = aht::exec_workload(rel, query, opts);
            collect(executor, algorithm, &specs, &workload)
        }
        Algorithm::HashTree => Err(AlgoError::SimulatorOnly {
            algorithm: "HashTree",
        }),
    }
}

/// Runs the plan and merges per-task sinks — in task-id order, the only
/// order executors are allowed to return — into one sorted cube.
fn collect<E: Executor, W: Workload<Out = CellBuf>>(
    executor: &mut E,
    algorithm: Algorithm,
    specs: &[icecube_exec::TaskSpec],
    workload: &W,
) -> Result<ExecOutcome, AlgoError> {
    let (sinks, report) = executor.run(specs, workload)?;
    let mut cells = Vec::new();
    let mut total = 0u64;
    for sink in sinks {
        total += sink.count;
        cells.extend(sink.into_cells());
    }
    sort_cells(&mut cells);
    Ok(ExecOutcome {
        algorithm,
        cells,
        total_cells: total,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::verify::assert_same_cells;
    use icecube_exec::{Backend, NativeExecutor, SimExecutor};

    #[test]
    fn every_evaluated_algorithm_matches_naive_on_both_backends() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 2);
        let opts = RunOptions::default();
        let want = naive_iceberg_cube(&rel, &q);
        for algorithm in Algorithm::evaluated() {
            let mut sim = SimExecutor::fast_ethernet(4);
            let out = run_parallel_exec(&mut sim, algorithm, &rel, &q, &opts).unwrap();
            assert_same_cells(want.clone(), out.cells, &format!("{algorithm} on sim"));
            assert_eq!(out.report.backend, Backend::Sim);
            let mut native = NativeExecutor::new(4);
            let out = run_parallel_exec(&mut native, algorithm, &rel, &q, &opts).unwrap();
            assert_same_cells(want.clone(), out.cells, &format!("{algorithm} on native"));
            assert_eq!(out.report.backend, Backend::Native);
        }
    }

    #[test]
    fn hash_tree_is_simulator_only() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 2);
        let mut native = NativeExecutor::new(2);
        match run_parallel_exec(
            &mut native,
            Algorithm::HashTree,
            &rel,
            &q,
            &RunOptions::default(),
        ) {
            Err(AlgoError::SimulatorOnly { algorithm }) => assert_eq!(algorithm, "HashTree"),
            other => panic!("expected SimulatorOnly, got {other:?}"),
        }
    }

    #[test]
    fn counting_mode_counts_without_retaining() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let mut native = NativeExecutor::new(2);
        let out = run_parallel_exec(
            &mut native,
            Algorithm::Rp,
            &rel,
            &q,
            &RunOptions::counting(),
        )
        .unwrap();
        assert!(out.cells.is_empty());
        assert_eq!(out.total_cells, 47);
    }

    #[test]
    fn invalid_queries_are_rejected_before_spawning() {
        let rel = sales();
        let q = IcebergQuery::count_cube(5, 1);
        let mut native = NativeExecutor::new(2);
        match run_parallel_exec(
            &mut native,
            Algorithm::Bpp,
            &rel,
            &q,
            &RunOptions::default(),
        ) {
            Err(AlgoError::DimensionMismatch { .. }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }
}
