//! The algorithm catalogue: dispatch, options, outcomes, and the key
//! features of Table 1.1.

use crate::cell::{sort_cells, Cell, CellBuf};
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use icecube_cluster::{ClusterConfig, RunStats, SimCluster, TraceLog};
use icecube_data::Relation;
use std::fmt;

/// The parallel iceberg-cube algorithms the paper develops and evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Replicated Parallel BUC (Section 3.1).
    Rp,
    /// Breadth-first writing, Partitioned, Parallel BUC (Section 3.2).
    Bpp,
    /// Affinity Skip List (Section 3.3).
    Asl,
    /// Partitioned Tree (Section 3.4).
    Pt,
    /// Affinity Hash Table (Section 3.5.2).
    Aht,
    /// The Apriori-style hash-tree attempt (Section 3.5.1); fails with
    /// [`AlgoError::MemoryExhausted`] on large inputs, as the paper found.
    HashTree,
}

impl Algorithm {
    /// The five algorithms the paper evaluates in Chapter 4 (the hash-tree
    /// algorithm "lags far behind" and is excluded there, as here).
    pub fn evaluated() -> [Algorithm; 5] {
        [
            Algorithm::Rp,
            Algorithm::Bpp,
            Algorithm::Asl,
            Algorithm::Pt,
            Algorithm::Aht,
        ]
    }

    /// Every implemented algorithm.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::Rp,
            Algorithm::Bpp,
            Algorithm::Asl,
            Algorithm::Pt,
            Algorithm::Aht,
            Algorithm::HashTree,
        ]
    }

    /// Key features, reproducing Table 1.1 of the paper.
    pub fn features(self) -> AlgoFeatures {
        match self {
            Algorithm::Rp => AlgoFeatures {
                name: "RP",
                writing: "depth-first",
                load_balance: "weak",
                traversal: "bottom-up",
                decomposition: "replicated",
            },
            Algorithm::Bpp => AlgoFeatures {
                name: "BPP",
                writing: "breadth-first",
                load_balance: "weak",
                traversal: "bottom-up",
                decomposition: "partitioned",
            },
            Algorithm::Asl => AlgoFeatures {
                name: "ASL",
                writing: "breadth-first",
                load_balance: "strong",
                traversal: "top-down",
                decomposition: "replicated",
            },
            Algorithm::Pt => AlgoFeatures {
                name: "PT",
                writing: "breadth-first",
                load_balance: "strong",
                traversal: "hybrid",
                decomposition: "replicated",
            },
            Algorithm::Aht => AlgoFeatures {
                name: "AHT",
                writing: "post-sorted",
                load_balance: "strong",
                traversal: "top-down",
                decomposition: "replicated",
            },
            Algorithm::HashTree => AlgoFeatures {
                name: "HashTree",
                writing: "breadth-first",
                load_balance: "n/a",
                traversal: "bottom-up (level-wise)",
                decomposition: "replicated",
            },
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.features().name)
    }
}

/// One row of Table 1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoFeatures {
    /// Short algorithm name.
    pub name: &'static str,
    /// Writing strategy.
    pub writing: &'static str,
    /// Load-balancing quality.
    pub load_balance: &'static str,
    /// Lattice-traversal relationship between cuboids.
    pub traversal: &'static str,
    /// Data decomposition across nodes.
    pub decomposition: &'static str,
}

/// Tunables for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Retain emitted cells in the outcome (disable for paper-sized runs;
    /// counts and bytes are always tracked in the statistics).
    pub collect_cells: bool,
    /// PT's stop parameter: binary division continues until there are
    /// `pt_task_ratio × processors` tasks (the paper uses 32).
    pub pt_task_ratio: usize,
    /// Affinity scheduling on/off (ablation; the paper's algorithms always
    /// use it — disabling shows what sort-sharing buys).
    pub affinity: bool,
    /// Charge BPP's range-partitioning phase inside the run. The paper
    /// treats partitioning as a pre-processing step, so this defaults off.
    pub include_bpp_partitioning: bool,
    /// AHT's bucket-index function (Section 4.9.2 proposes improving on
    /// the thesis' naive MOD hash).
    pub aht_hash: crate::aht::AhtHash,
    /// ASL's Section 4.9.2 refinement: among subset-affine candidates,
    /// prefer the one sharing the longest key prefix with the held list
    /// (its cells stream in near-sorted order, cheapening inserts).
    pub asl_longest_prefix: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            collect_cells: true,
            pt_task_ratio: 32,
            affinity: true,
            include_bpp_partitioning: false,
            aht_hash: crate::aht::AhtHash::NaiveMod,
            asl_longest_prefix: false,
        }
    }
}

impl RunOptions {
    /// Options for paper-sized experiment runs: count cells, don't keep
    /// them.
    pub fn counting() -> Self {
        RunOptions {
            collect_cells: false,
            ..RunOptions::default()
        }
    }
}

/// The result of a parallel cube computation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// The iceberg cells, canonically sorted (empty when
    /// [`RunOptions::collect_cells`] is off).
    pub cells: Vec<Cell>,
    /// Total cells emitted cluster-wide (valid in either mode).
    pub total_cells: u64,
    /// Virtual-time statistics per node and cluster-wide.
    pub stats: RunStats,
    /// The run's event trace (`Some` iff the cluster config enabled
    /// tracing via [`ClusterConfig::with_trace`]); export it with
    /// `icecube_trace::chrome_trace_json` / `phase_cost_csv`.
    pub trace: Option<TraceLog>,
}

impl RunOutcome {
    /// The paper's "wall clock" in seconds.
    pub fn wall_secs(&self) -> f64 {
        self.stats.makespan_secs()
    }
}

/// Runs `algorithm` over `rel` on a simulated cluster with default options.
pub fn run_parallel(
    algorithm: Algorithm,
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
) -> Result<RunOutcome, AlgoError> {
    run_parallel_with(algorithm, rel, query, config, &RunOptions::default())
}

/// Runs `algorithm` with explicit options.
pub fn run_parallel_with(
    algorithm: Algorithm,
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    validate(rel, query)?;
    match algorithm {
        Algorithm::Rp => crate::rp::run_rp(rel, query, config, opts),
        Algorithm::Bpp => crate::bpp::run_bpp(rel, query, config, opts),
        Algorithm::Asl => crate::asl::run_asl(rel, query, config, opts),
        Algorithm::Pt => crate::pt::run_pt(rel, query, config, opts),
        Algorithm::Aht => crate::aht::run_aht(rel, query, config, opts),
        Algorithm::HashTree => crate::htree::run_hash_tree(rel, query, config, opts),
    }
}

/// Validates query/relation compatibility.
pub(crate) fn validate(rel: &Relation, query: &IcebergQuery) -> Result<(), AlgoError> {
    if rel.is_empty() {
        return Err(AlgoError::EmptyInput);
    }
    if query.dims != rel.arity() {
        return Err(AlgoError::DimensionMismatch {
            query_dims: query.dims,
            relation_dims: rel.arity(),
        });
    }
    Ok(())
}

/// Charges every node for reading its replicated copy of the dataset from
/// local disk into memory (the replicated algorithms' common prologue).
/// Traced as the per-node `load` phase.
pub(crate) fn load_replicated(cluster: &mut SimCluster, rel: &Relation) {
    cluster.phase_start("load");
    for node in &mut cluster.nodes {
        node.read_bytes(rel.byte_size());
        node.charge_scan(rel.len() as u64);
        node.alloc(rel.byte_size());
    }
    cluster.phase_end("load");
}

/// Gathers per-node sinks into a sorted outcome, draining the cluster's
/// trace (if tracing was enabled) into it.
pub(crate) fn finish(
    algorithm: Algorithm,
    cluster: &mut SimCluster,
    sinks: Vec<CellBuf>,
) -> RunOutcome {
    let mut cells = Vec::new();
    let mut total = 0u64;
    for sink in sinks {
        total += sink.count;
        cells.extend(sink.into_cells());
    }
    sort_cells(&mut cells);
    RunOutcome {
        algorithm,
        cells,
        total_cells: total,
        stats: cluster.run_stats(),
        trace: cluster.take_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_1_is_reproduced() {
        // The exact rows of Table 1.1.
        let rp = Algorithm::Rp.features();
        assert_eq!(
            (rp.writing, rp.load_balance, rp.traversal, rp.decomposition),
            ("depth-first", "weak", "bottom-up", "replicated")
        );
        let bpp = Algorithm::Bpp.features();
        assert_eq!(
            (
                bpp.writing,
                bpp.load_balance,
                bpp.traversal,
                bpp.decomposition
            ),
            ("breadth-first", "weak", "bottom-up", "partitioned")
        );
        let asl = Algorithm::Asl.features();
        assert_eq!(
            (
                asl.writing,
                asl.load_balance,
                asl.traversal,
                asl.decomposition
            ),
            ("breadth-first", "strong", "top-down", "replicated")
        );
        let pt = Algorithm::Pt.features();
        assert_eq!(
            (pt.writing, pt.load_balance, pt.traversal, pt.decomposition),
            ("breadth-first", "strong", "hybrid", "replicated")
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Pt.to_string(), "PT");
        assert_eq!(Algorithm::HashTree.to_string(), "HashTree");
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let rel = crate::fixtures::sales();
        let q = IcebergQuery::count_cube(4, 1);
        assert!(matches!(
            validate(&rel, &q),
            Err(AlgoError::DimensionMismatch {
                query_dims: 4,
                relation_dims: 3
            })
        ));
        let empty = Relation::new(icecube_data::Schema::from_cardinalities(&[2]).unwrap());
        assert!(matches!(
            validate(&empty, &IcebergQuery::count_cube(1, 1)),
            Err(AlgoError::EmptyInput)
        ));
    }

    #[test]
    fn default_options_match_the_paper() {
        let o = RunOptions::default();
        assert_eq!(o.pt_task_ratio, 32);
        assert!(o.affinity);
        assert!(!o.include_bpp_partitioning);
    }
}
