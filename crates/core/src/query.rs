//! The iceberg-cube query description.

/// An iceberg-cube query:
///
/// ```sql
/// SELECT dims…, SUM(measure) FROM R
/// CUBE BY dims…
/// HAVING COUNT(*) >= minsup
/// ```
///
/// The paper restricts the iceberg condition to minimum support on
/// `COUNT(*)` ("other aggregate conditions can be handled as well"); so
/// does this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcebergQuery {
    /// Number of CUBE dimensions (must equal the relation's arity).
    pub dims: usize,
    /// Minimum support: cells with `COUNT(*) < minsup` are suppressed.
    /// `minsup = 1` computes the full cube.
    pub minsup: u64,
}

impl IcebergQuery {
    /// Builds a count-condition iceberg-cube query.
    ///
    /// # Panics
    /// Panics when `dims` is zero or `minsup` is zero (support below one
    /// is meaningless — every present cell has count ≥ 1).
    pub fn count_cube(dims: usize, minsup: u64) -> Self {
        // check:allow(panic-in-lib): constructor contract documented in
        // the `# Panics` section — a zero-dimensional cube is a
        // programming error, not runtime input.
        // check:allow(panic-path): same documented constructor contract.
        assert!(dims > 0, "a cube needs at least one dimension");
        // check:allow(panic-in-lib): same documented contract as above.
        // check:allow(panic-path): same documented constructor contract.
        assert!(minsup > 0, "minimum support must be at least 1");
        IcebergQuery { dims, minsup }
    }

    /// Whether this query computes the *full* cube (no pruning possible).
    pub fn is_full_cube(&self) -> bool {
        self.minsup == 1
    }

    /// Number of group-bys the cube comprises, excluding "all".
    pub fn cuboid_count(&self) -> usize {
        (1usize << self.dims) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        let q = IcebergQuery::count_cube(9, 2);
        assert_eq!(q.cuboid_count(), 511);
        assert!(!q.is_full_cube());
        assert!(IcebergQuery::count_cube(3, 1).is_full_cube());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_minsup_rejected() {
        let _ = IcebergQuery::count_cube(3, 0);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_dims_rejected() {
        let _ = IcebergQuery::count_cube(0, 1);
    }
}
