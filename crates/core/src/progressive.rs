//! Progressive cube state: mergeable partial cells folded chunk by chunk,
//! with enough bookkeeping to bound what the unfolded remainder can still
//! change (DESIGN §14).
//!
//! The batch algorithms answer nothing until every tuple is aggregated;
//! POL (Chapter 5) answers one group-by immediately and refines. This
//! module generalizes POL's discipline to the whole cube: the relation is
//! cut into chunks, each chunk is aggregated at minimum support 1 into
//! mergeable [`Cell`]s (the distributive `Aggregate`), and a
//! [`ProgressiveCube`] folds chunks into a floor store in any order. At
//! every point it can report a [`Progress`]: how much is folded and, per
//! key-space region, an [`Envelope`] of what the unfolded chunks could
//! still contribute — rows not yet seen and the range their measures lie
//! in. An envelope is a *sound* slack: the exact aggregate of any cell is
//! always inside the bound derived from its partial aggregate plus the
//! envelope, and once every chunk is folded the envelope is empty and the
//! floor equals the batch build byte for byte.
//!
//! Chunk ownership reuses POL's range partitioning: `splits` are the
//! surviving boundary keys (duplicates collapsed), and a chunk owned by
//! range `j` must contain only rows whose *anchor* group-by key routes to
//! `j` under those splits — the same `partition_point` rule as
//! `Boundaries::owner`. That contract is what lets anchor-cuboid queries
//! use the tight per-range envelope instead of the global one.

use crate::cell::Cell;
use crate::error::AlgoError;
use crate::store::{CubeStore, MergeStats};
use icecube_lattice::CuboidMask;

/// Static description of one planned chunk: who owns it and the slack it
/// contributes while unfolded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Owning key range under the plan's splits; every row's anchor key
    /// must route here.
    pub owner: usize,
    /// Rows in the chunk.
    pub rows: u64,
    /// Smallest measure in the chunk (`i64::MAX` when empty).
    pub measure_min: i64,
    /// Largest measure in the chunk (`i64::MIN` when empty).
    pub measure_max: i64,
}

impl ChunkMeta {
    /// Describes a chunk from its owner and raw measures.
    pub fn describe(owner: usize, measures: &[i64]) -> ChunkMeta {
        ChunkMeta {
            owner,
            rows: measures.len() as u64,
            measure_min: measures.iter().copied().min().unwrap_or(i64::MAX),
            measure_max: measures.iter().copied().max().unwrap_or(i64::MIN),
        }
    }
}

/// What the unfolded remainder of a region can still contribute: at most
/// `rows` more tuples, each with a measure in `[measure_min, measure_max]`.
///
/// The empty envelope (`rows == 0`) uses the same sentinels as
/// [`crate::agg::Aggregate::empty`] so envelopes compose with `absorb`
/// exactly like aggregates do with `merge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Unseen rows that could still land in the region.
    pub rows: u64,
    /// Lower bound on any unseen measure (`i64::MAX` when `rows == 0`).
    pub measure_min: i64,
    /// Upper bound on any unseen measure (`i64::MIN` when `rows == 0`).
    pub measure_max: i64,
}

impl Envelope {
    /// The envelope of a fully-folded region: nothing can change.
    pub fn empty() -> Envelope {
        Envelope {
            rows: 0,
            measure_min: i64::MAX,
            measure_max: i64::MIN,
        }
    }

    /// True when the region is fully folded.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Widens this envelope to also cover an unfolded chunk.
    pub fn absorb(&mut self, meta: &ChunkMeta) {
        if meta.rows == 0 {
            return;
        }
        self.rows = self.rows.saturating_add(meta.rows);
        self.measure_min = self.measure_min.min(meta.measure_min);
        self.measure_max = self.measure_max.max(meta.measure_max);
    }
}

/// An immutable view of how far a progressive build has come, published
/// alongside each epoch so queries can bound their answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    anchor: CuboidMask,
    splits: Vec<Vec<u32>>,
    remaining: Vec<Envelope>,
    total: Envelope,
    chunks_total: usize,
    chunks_folded: usize,
    rows_total: u64,
    rows_folded: u64,
}

impl Progress {
    /// The anchor group-by whose keys the splits partition (the full
    /// group-by over every dimension).
    pub fn anchor(&self) -> CuboidMask {
        self.anchor
    }

    /// Chunks the plan has in total.
    pub fn chunks_total(&self) -> usize {
        self.chunks_total
    }

    /// Chunks folded so far.
    pub fn chunks_folded(&self) -> usize {
        self.chunks_folded
    }

    /// Rows the plan covers in total.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// Rows folded so far.
    pub fn rows_folded(&self) -> u64 {
        self.rows_folded
    }

    /// True when every chunk is folded: bounds are exact and the floor is
    /// byte-identical to the batch build.
    pub fn converged(&self) -> bool {
        self.chunks_folded == self.chunks_total
    }

    /// The slack envelope over everything not yet folded, regardless of
    /// region.
    pub fn total_envelope(&self) -> Envelope {
        self.total
    }

    /// The slack envelope for one cell of `cuboid` at `key`.
    ///
    /// Anchor-cuboid cells route to their owning range (the ownership
    /// contract guarantees no other range's chunks can touch them) and get
    /// that range's tight envelope; any other cuboid aggregates across
    /// ranges, so it gets the global envelope.
    pub fn envelope_for(&self, cuboid: CuboidMask, key: &[u32]) -> Envelope {
        if cuboid != self.anchor {
            return self.total;
        }
        let idx = self.splits.partition_point(|s| s.as_slice() <= key);
        self.remaining.get(idx).copied().unwrap_or(self.total)
    }
}

/// A cube being built chunk by chunk: a minimum-support-1 floor store plus
/// the plan's per-chunk slack accounting.
///
/// Chunks fold in any order, each exactly once; [`ProgressiveCube::fold`]
/// rejects out-of-range and duplicate folds with typed errors so a lost or
/// replayed chunk can never silently skew the aggregates.
#[derive(Debug, Clone)]
pub struct ProgressiveCube {
    floor: CubeStore,
    minsup: u64,
    anchor: CuboidMask,
    splits: Vec<Vec<u32>>,
    chunks: Vec<ChunkMeta>,
    folded: Vec<bool>,
    chunks_folded: usize,
    rows_folded: u64,
    rows_total: u64,
}

impl ProgressiveCube {
    /// Starts an empty progressive build over `dims` dimensions serving
    /// iceberg threshold `minsup`, with ownership `splits` (surviving
    /// boundary keys, strictly increasing) and the planned `chunks`.
    ///
    /// The number of owner ranges is `splits.len() + 1`; every chunk's
    /// owner must fall inside it.
    pub fn new(
        dims: usize,
        minsup: u64,
        splits: Vec<Vec<u32>>,
        chunks: Vec<ChunkMeta>,
    ) -> Result<ProgressiveCube, AlgoError> {
        if dims == 0 {
            return Err(AlgoError::NoDimensions);
        }
        let parts = splits.len() + 1;
        for (i, c) in chunks.iter().enumerate() {
            if c.owner >= parts {
                return Err(AlgoError::ChunkOwnerOutOfRange {
                    chunk: i,
                    owner: c.owner,
                    parts,
                });
            }
        }
        let rows_total = chunks.iter().map(|c| c.rows).sum();
        let folded = vec![false; chunks.len()];
        Ok(ProgressiveCube {
            floor: CubeStore::from_cells(dims, 1, Vec::new()),
            minsup: minsup.max(1),
            anchor: CuboidMask::full(dims),
            splits,
            chunks,
            folded,
            chunks_folded: 0,
            rows_folded: 0,
            rows_total,
        })
    }

    /// Folds chunk `index`'s minimum-support-1 cells into the floor.
    ///
    /// `cells` must be the complete cube of exactly that chunk's rows;
    /// merging is the same `merge_cells` path streaming ingest uses, so
    /// fold order cannot change the final bytes.
    pub fn fold(&mut self, index: usize, cells: Vec<Cell>) -> Result<MergeStats, AlgoError> {
        let Some(meta) = self.chunks.get(index).copied() else {
            return Err(AlgoError::ChunkOutOfRange {
                index,
                chunks: self.chunks.len(),
            });
        };
        if self.folded.get(index).copied().unwrap_or(false) {
            return Err(AlgoError::ChunkAlreadyFolded { index });
        }
        let stats = self.floor.merge_cells(cells, self.minsup)?;
        if let Some(slot) = self.folded.get_mut(index) {
            *slot = true;
        }
        self.chunks_folded += 1;
        self.rows_folded = self.rows_folded.saturating_add(meta.rows);
        Ok(stats)
    }

    /// The serving threshold the build converges to.
    pub fn minsup(&self) -> u64 {
        self.minsup
    }

    /// The minimum-support-1 floor holding every partial cell.
    pub fn floor(&self) -> &CubeStore {
        &self.floor
    }

    /// The cells currently at or above the serving threshold — the batch
    /// iceberg answer once [`Self::converged`].
    pub fn visible(&self) -> CubeStore {
        self.floor.thresholded(self.minsup)
    }

    /// True when every chunk has folded.
    pub fn converged(&self) -> bool {
        self.chunks_folded == self.chunks.len()
    }

    /// Rows folded so far.
    pub fn rows_folded(&self) -> u64 {
        self.rows_folded
    }

    /// Rows the plan covers in total.
    pub fn rows_total(&self) -> u64 {
        self.rows_total
    }

    /// A snapshot of the build's slack for publishing with an epoch.
    pub fn progress(&self) -> Progress {
        let parts = self.splits.len() + 1;
        let mut remaining = vec![Envelope::empty(); parts];
        let mut total = Envelope::empty();
        for (meta, done) in self.chunks.iter().zip(&self.folded) {
            if *done {
                continue;
            }
            if let Some(env) = remaining.get_mut(meta.owner) {
                env.absorb(meta);
            }
            total.absorb(meta);
        }
        Progress {
            anchor: self.anchor,
            splits: self.splits.clone(),
            remaining,
            total,
            chunks_total: self.chunks.len(),
            chunks_folded: self.chunks_folded,
            rows_total: self.rows_total,
            rows_folded: self.rows_folded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::Aggregate;

    fn meta(owner: usize, measures: &[i64]) -> ChunkMeta {
        ChunkMeta::describe(owner, measures)
    }

    fn cell(key: &[u32], m: i64) -> Cell {
        Cell {
            cuboid: CuboidMask::full(key.len()),
            key: key.to_vec(),
            agg: Aggregate::of(m),
        }
    }

    #[test]
    fn describe_uses_aggregate_sentinels_when_empty() {
        let m = meta(0, &[]);
        assert_eq!(m.rows, 0);
        assert_eq!(m.measure_min, i64::MAX);
        assert_eq!(m.measure_max, i64::MIN);
        let m = meta(1, &[3, -2, 7]);
        assert_eq!((m.rows, m.measure_min, m.measure_max), (3, -2, 7));
    }

    #[test]
    fn envelopes_absorb_like_aggregates_merge() {
        let mut e = Envelope::empty();
        assert!(e.is_empty());
        e.absorb(&meta(0, &[]));
        assert!(e.is_empty(), "empty chunks leave the envelope empty");
        e.absorb(&meta(0, &[5, -1]));
        e.absorb(&meta(0, &[9]));
        assert_eq!((e.rows, e.measure_min, e.measure_max), (3, -1, 9));
    }

    #[test]
    fn fold_rejects_out_of_range_duplicate_and_bad_owner() {
        let bad = ProgressiveCube::new(
            2,
            1,
            vec![vec![1, 0]],
            vec![meta(2, &[1])], // only ranges 0 and 1 exist
        );
        assert!(matches!(
            bad,
            Err(AlgoError::ChunkOwnerOutOfRange {
                chunk: 0,
                owner: 2,
                parts: 2
            })
        ));
        assert!(matches!(
            ProgressiveCube::new(0, 1, Vec::new(), Vec::new()),
            Err(AlgoError::NoDimensions)
        ));

        let mut cube =
            ProgressiveCube::new(2, 1, vec![vec![1, 0]], vec![meta(0, &[4]), meta(1, &[2])])
                .unwrap();
        assert!(matches!(
            cube.fold(5, Vec::new()),
            Err(AlgoError::ChunkOutOfRange {
                index: 5,
                chunks: 2
            })
        ));
        cube.fold(0, vec![cell(&[0, 1], 4)]).unwrap();
        assert!(matches!(
            cube.fold(0, Vec::new()),
            Err(AlgoError::ChunkAlreadyFolded { index: 0 })
        ));
        assert!(!cube.converged());
        cube.fold(1, vec![cell(&[2, 0], 2)]).unwrap();
        assert!(cube.converged());
        assert!(cube.progress().total_envelope().is_empty());
    }

    #[test]
    fn anchor_cells_get_their_range_envelope_others_the_total() {
        // Two ranges split at key [5, 0]: range 0 owns keys below it.
        let chunks = vec![meta(0, &[10, 20]), meta(1, &[-3])];
        let cube = ProgressiveCube::new(2, 2, vec![vec![5, 0]], chunks).unwrap();
        let p = cube.progress();
        let anchor = CuboidMask::full(2);
        let low = p.envelope_for(anchor, &[1, 9]);
        assert_eq!((low.rows, low.measure_min, low.measure_max), (2, 10, 20));
        let high = p.envelope_for(anchor, &[5, 0]);
        assert_eq!((high.rows, high.measure_min, high.measure_max), (1, -3, -3));
        // A coarser cuboid aggregates across ranges: global envelope.
        let coarse = p.envelope_for(CuboidMask::from_dims(&[0]), &[1]);
        assert_eq!(
            (coarse.rows, coarse.measure_min, coarse.measure_max),
            (3, -3, 20)
        );
        assert_eq!(p.total_envelope(), coarse);
    }

    #[test]
    fn folding_tightens_the_published_envelope() {
        let chunks = vec![meta(0, &[1, 1]), meta(0, &[100])];
        let mut cube = ProgressiveCube::new(1, 1, Vec::new(), chunks).unwrap();
        let before = cube.progress();
        assert_eq!(before.total_envelope().rows, 3);
        assert_eq!(before.rows_total(), 3);
        cube.fold(1, vec![cell(&[7], 100)]).unwrap();
        let after = cube.progress();
        assert_eq!(after.total_envelope().rows, 2);
        assert_eq!(after.total_envelope().measure_max, 1);
        assert_eq!(after.rows_folded(), 1);
        assert!(!after.converged());
    }

    #[test]
    fn converged_floor_matches_direct_store() {
        // Fold two single-cell chunks touching the same key; the floor
        // must equal a store built from the merged cell.
        let chunks = vec![meta(0, &[4]), meta(0, &[6])];
        let mut cube = ProgressiveCube::new(1, 2, Vec::new(), chunks).unwrap();
        cube.fold(0, vec![cell(&[3], 4)]).unwrap();
        cube.fold(1, vec![cell(&[3], 6)]).unwrap();
        assert!(cube.converged());
        let mut merged = Aggregate::of(4);
        merged.update(6);
        let want = CubeStore::from_cells(
            1,
            1,
            vec![Cell {
                cuboid: CuboidMask::full(1),
                key: vec![3],
                agg: merged,
            }],
        );
        let mut got_bytes = Vec::new();
        let mut want_bytes = Vec::new();
        cube.floor().write_to(&mut got_bytes).unwrap();
        want.write_to(&mut want_bytes).unwrap();
        assert_eq!(got_bytes, want_bytes);
        assert_eq!(cube.visible().minsup(), 2);
    }
}
