#![warn(missing_docs)]

//! Iceberg-cube computation: sequential BUC and the paper's five parallel
//! algorithms.
//!
//! An *iceberg cube* (Section 2.3) computes, for every one of the `2^d`
//! group-bys of a `d`-dimensional cube, the cells whose `COUNT(*)` meets a
//! minimum support. This crate implements:
//!
//! * the sequential substrate: a reference evaluator ([`naive`]), BUC
//!   (Beyer & Ramakrishnan, [`buc`]) in both depth-first and breadth-first
//!   writing variants, and a share-sort top-down comparator ([`topdown`]);
//! * the paper's parallel algorithms, each against the simulated cluster:
//!   * [`rp`] — Replicated Parallel BUC (coarse static subtree tasks),
//!   * [`bpp`] — Breadth-first-writing Partitioned Parallel BUC,
//!   * [`asl`] — Affinity Skip List (task = cuboid, prefix/subset affinity),
//!   * [`pt`] — Partitioned Tree (binary-divided BUC subtrees, hybrid),
//!   * [`aht`] — Affinity Hash Table (collapsible bit-indexed tables),
//!   * [`htree`] — the Apriori-style hash-tree attempt the paper reports as
//!     failing on memory (reproduced faithfully, failure included);
//! * the evaluation-driven algorithm-selection [`recipe`] (Figure 4.7).
//!
//! Entry points: [`run_parallel`] dispatches any [`Algorithm`] over a
//! relation and a [`ClusterConfig`](icecube_cluster::ClusterConfig),
//! returning the iceberg cells plus full virtual-time statistics;
//! [`run_parallel_exec`] runs the same decompositions through an
//! [`icecube_exec::Executor`] — simulated or native host threads — with
//! byte-identical cells on every backend.

pub mod agg;
pub mod aht;
pub mod algorithms;
pub mod asl;
pub mod backend;
pub mod bpp;
pub mod buc;
pub mod cell;
pub mod delta;
pub mod error;
pub mod fixtures;
pub mod htree;
pub mod naive;
pub mod overlap;
pub mod partition;
pub mod pipehash;
pub mod pipesort;
pub mod progressive;
pub mod pt;
pub mod query;
pub mod recipe;
pub mod recover;
pub mod rp;
pub mod sequential;
pub mod store;
pub mod topdown;
pub mod verify;

pub use agg::{AggClass, Aggregate};
pub use algorithms::{
    run_parallel, run_parallel_with, AlgoFeatures, Algorithm, RunOptions, RunOutcome,
};
pub use backend::{run_parallel_exec, ExecOutcome, EXEC_UNITS};
pub use cell::{Cell, CellBuf, CellMark, CellSink};
pub use delta::{DeltaReport, MaintainedCube};
pub use error::AlgoError;
pub use progressive::{ChunkMeta, Envelope, Progress, ProgressiveCube};
pub use query::IcebergQuery;
pub use recipe::{recommend, Choice, CubeProfile};
pub use recover::TaskGuard;
pub use sequential::{run_sequential, SeqAlgorithm, SeqOutcome};
pub use store::{CubeStore, MergeStats};
