//! The algorithm-selection recipe of Figure 4.7.
//!
//! The paper's key finding is that iceberg-cube computation on PC clusters
//! is not "one algorithm fits all"; its evaluation distills into a recipe:
//!
//! | situation                         | recommendation            |
//! |-----------------------------------|---------------------------|
//! | dense cubes (≲10⁸ total cells)    | AHT, ASL                  |
//! | small dimensionality (< 5)        | any (RP for simplicity)   |
//! | high dimensionality               | PT                        |
//! | less memory occupation            | BPP                       |
//! | otherwise                         | PT (AHT/ASL close behind) |
//! | online support                    | POL (Chapter 5)           |

use crate::algorithms::Algorithm;
use icecube_data::Relation;

/// What the recipe can recommend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// One of the offline cube algorithms.
    Algo(Algorithm),
    /// The online-aggregation algorithm POL (implemented in
    /// `icecube-online`).
    OnlinePol,
}

/// Workload description the recipe decides on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubeProfile {
    /// Number of CUBE dimensions.
    pub dims: usize,
    /// Estimated total cells across all cuboids (see
    /// [`estimate_total_cells`]).
    pub expected_total_cells: f64,
    /// Whether per-node memory is the binding constraint.
    pub memory_constrained: bool,
    /// Whether the user needs instant responses with progressive
    /// refinement (online aggregation).
    pub online: bool,
}

impl CubeProfile {
    /// Profiles a relation directly.
    pub fn from_relation(rel: &Relation) -> Self {
        let cards = rel.schema().cardinalities();
        CubeProfile {
            dims: rel.arity(),
            expected_total_cells: estimate_total_cells(&cards, rel.len()),
            memory_constrained: false,
            online: false,
        }
    }
}

/// Estimates the total number of cells over all `2^d − 1` cuboids: each
/// cuboid holds at most `min(∏ cardinalities, tuples)` cells. Exact
/// enumeration up to 20 dimensions; the paper's density threshold only
/// needs the order of magnitude.
pub fn estimate_total_cells(cards: &[u32], tuples: usize) -> f64 {
    let d = cards.len();
    if d == 0 {
        return 0.0; // no dimensions, no cuboids, no cells
    }
    if d <= 20 {
        let mut total = 0f64;
        for mask in 1u32..(1u32 << d) {
            let mut prod = 1f64;
            let mut bits = mask;
            while bits != 0 {
                let dim = bits.trailing_zeros() as usize;
                prod *= cards.get(dim).copied().unwrap_or(1) as f64;
                bits &= bits - 1;
                if prod > tuples as f64 {
                    break;
                }
            }
            total += prod.min(tuples as f64);
        }
        total
    } else {
        // Upper bound: every cuboid saturated at the tuple count.
        (2f64.powi(d as i32) - 1.0) * tuples as f64
    }
}

/// Dense-cube threshold from the paper: "when the total number of cells in
/// the data cube is not too high (e.g., < 10⁸)".
pub const DENSE_CELL_THRESHOLD: f64 = 1e8;

/// Dimensionality below which "almost all algorithms behave similarly".
pub const SMALL_DIMENSIONALITY: usize = 5;

/// Dimensionality from which PT's advantage is significant (the paper's
/// 13-dimension runs separate the field decisively).
pub const HIGH_DIMENSIONALITY: usize = 10;

/// Applies the Figure 4.7 recipe: returns choices in preference order
/// (first = primary recommendation).
///
/// ```
/// use icecube_core::recipe::{recommend, Choice, CubeProfile};
/// use icecube_core::Algorithm;
///
/// let profile = CubeProfile {
///     dims: 9,
///     expected_total_cells: 1e10,
///     memory_constrained: false,
///     online: false,
/// };
/// // The paper's default: PT.
/// assert_eq!(recommend(&profile)[0], Choice::Algo(Algorithm::Pt));
/// ```
pub fn recommend(p: &CubeProfile) -> Vec<Choice> {
    use Algorithm::*;
    if p.online {
        // "The last entry in Figure 4.7 concerns online support" — POL,
        // which is built on ASL.
        return vec![Choice::OnlinePol, Choice::Algo(Asl)];
    }
    if p.memory_constrained {
        // BPP is the only algorithm whose footprint is a chunk, not the
        // whole relation (Section 4.1).
        return vec![Choice::Algo(Bpp), Choice::Algo(Pt)];
    }
    if p.dims >= HIGH_DIMENSIONALITY {
        // "For cubes of high dimensionality, there is significant
        // difference … and PT should be used."
        return vec![Choice::Algo(Pt)];
    }
    if p.expected_total_cells < DENSE_CELL_THRESHOLD && p.dims >= SMALL_DIMENSIONALITY {
        // "AHT and ASL dominate all other algorithms when the cube is
        // dense" — AHT first (it wins outright when collisions are rare),
        // ASL as the robust second.
        return vec![Choice::Algo(Aht), Choice::Algo(Asl), Choice::Algo(Pt)];
    }
    if p.dims < SMALL_DIMENSIONALITY {
        // "almost all algorithms behave similarly. RP may have a slight
        // edge in that it is the simplest to implement."
        return vec![
            Choice::Algo(Rp),
            Choice::Algo(Pt),
            Choice::Algo(Asl),
            Choice::Algo(Aht),
        ];
    }
    // "For all other situations … PT, AHT and ASL are relatively close,
    // with PT typically a constant factor faster."
    vec![Choice::Algo(Pt), Choice::Algo(Aht), Choice::Algo(Asl)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use Algorithm::*;

    fn profile(dims: usize, cells: f64) -> CubeProfile {
        CubeProfile {
            dims,
            expected_total_cells: cells,
            memory_constrained: false,
            online: false,
        }
    }

    #[test]
    fn online_chooses_pol() {
        let mut p = profile(12, 1e12);
        p.online = true;
        assert_eq!(recommend(&p)[0], Choice::OnlinePol);
    }

    #[test]
    fn memory_constrained_chooses_bpp() {
        let mut p = profile(9, 1e12);
        p.memory_constrained = true;
        assert_eq!(recommend(&p)[0], Choice::Algo(Bpp));
    }

    #[test]
    fn high_dimensionality_chooses_pt() {
        assert_eq!(recommend(&profile(13, 1e12)), vec![Choice::Algo(Pt)]);
    }

    #[test]
    fn dense_cubes_choose_aht_then_asl() {
        let r = recommend(&profile(8, 1e6));
        assert_eq!(&r[..2], &[Choice::Algo(Aht), Choice::Algo(Asl)]);
    }

    #[test]
    fn small_dimensionality_allows_rp() {
        let r = recommend(&profile(4, 1e5));
        assert_eq!(r[0], Choice::Algo(Rp));
    }

    #[test]
    fn default_is_pt() {
        let r = recommend(&profile(9, 1e10));
        assert_eq!(r[0], Choice::Algo(Pt));
    }

    #[test]
    fn estimate_counts_small_cubes_exactly() {
        // cards [2,3]: cuboids A (2), B (3), AB (6) → 11 with many tuples.
        assert_eq!(estimate_total_cells(&[2, 3], 1000), 11.0);
        // With only 4 tuples each cuboid caps at 4: 2 + 3 + 4 = 9.
        assert_eq!(estimate_total_cells(&[2, 3], 4), 9.0);
    }

    #[test]
    fn estimate_handles_the_baseline_shape() {
        let cards = icecube_data::presets::baseline().cardinalities;
        let cells = estimate_total_cells(&cards, 176_631);
        // Sparse: hundreds of millions of potential cells → not "dense".
        assert!(cells > DENSE_CELL_THRESHOLD / 10.0, "cells {cells}");
    }

    #[test]
    fn profile_from_relation() {
        let rel = crate::fixtures::sales();
        let p = CubeProfile::from_relation(&rel);
        assert_eq!(p.dims, 3);
        assert!(p.expected_total_cells < 100.0);
        assert_eq!(recommend(&p)[0], Choice::Algo(Rp));
    }
}
