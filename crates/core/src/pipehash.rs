//! PipeHash (Agarwal et al., VLDB 1996) — the hash-based top-down baseline
//! the paper reviews in Section 2.4.1.
//!
//! PipeHash needs no sorting: every cuboid's cells live in a hash table,
//! and each cuboid is computed from its *smallest parent* — the
//! minimum-estimated-size cuboid one level up, which makes the processing
//! tree a minimum spanning tree of the lattice (Figure 2.7a).
//!
//! Its weakness, which the paper leans on, is memory: "requiring re-hash
//! for every group-by and requiring a significant amount of memory…
//! it can only outperform PipeSort as the data is dense." When the tables
//! would not fit, PipeHash partitions the input on one attribute and
//! processes each fragment independently for the cuboids containing that
//! attribute (share-partitions, Figure 2.7b/c); the remaining cuboids are
//! computed afterwards from materialized parents. This implementation
//! reproduces both modes, with real memory accounting on the simulated
//! node.

// check:allow-file(panic-in-lib): asserts and expects in this module
// guard internal algorithm invariants; a violation is a bug in the
// cubing algorithm itself, never caller input, and must abort the run
// loudly rather than launder a wrong cube into a typed error.
// check:allow-file(unordered-collections): hash tables here are
// build-side internals; every cell set is canonically sorted before
// it leaves this module, so iteration order cannot reach results
// (the cross-algorithm equivalence tests pin this).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::cell::{Cell, CellSink};
use crate::query::IcebergQuery;
use icecube_cluster::SimNode;
use icecube_data::Relation;
use icecube_lattice::{CuboidMask, Lattice};
use std::collections::HashMap;

/// A materialized cuboid: a hash table of its cells.
type Table = HashMap<Vec<u32>, Aggregate>;

/// Estimated cuboid size (same basis as PipeSort's planner).
fn est_size(g: CuboidMask, cards: &[u32], tuples: usize) -> u64 {
    let mut prod = 1u64;
    for d in g.iter_dims() {
        prod = prod.saturating_mul(cards[d] as u64);
        if prod >= tuples as u64 {
            return tuples as u64;
        }
    }
    prod.min(tuples as u64)
}

/// The smallest-parent MST: for every cuboid, the minimum-estimated-size
/// parent one level up (`None` for the top cuboid, fed by the raw data).
pub fn smallest_parent_tree(
    dims: usize,
    cards: &[u32],
    tuples: usize,
) -> HashMap<CuboidMask, Option<CuboidMask>> {
    let lattice = Lattice::new(dims);
    lattice
        .cuboids()
        .map(|c| {
            if c.dim_count() == dims {
                return (c, None);
            }
            let parent = lattice
                .cuboids()
                .filter(|&p| p.dim_count() == c.dim_count() + 1 && c.is_subset_of(p))
                .min_by_key(|&p| (est_size(p, cards, tuples), p))
                .expect("every non-top cuboid has a parent");
            (c, Some(parent))
        })
        .collect()
}

/// Rough in-memory bytes of one hash-table cell.
fn cell_mem(arity: usize) -> u64 {
    (arity * 4 + 64) as u64
}

/// Runs PipeHash, emitting qualifying cells and charging the node. When
/// the estimated tables exceed `memory_budget` bytes, the input is
/// range-partitioned on the highest-cardinality attribute (the one that
/// fragments the data most) and the attribute-containing cuboids are
/// computed fragment by fragment.
pub fn pipehash<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    memory_budget: u64,
    node: &mut SimNode,
    sink: &mut S,
) {
    assert_eq!(
        query.dims,
        rel.arity(),
        "query dims must match the relation"
    );
    if rel.is_empty() {
        return;
    }
    let cards = rel.schema().cardinalities();
    let tree = smallest_parent_tree(query.dims, &cards, rel.len());
    let lattice = Lattice::new(query.dims);
    let estimated_total: u64 = lattice
        .cuboids()
        .map(|g| est_size(g, &cards, rel.len()) * cell_mem(g.dim_count()))
        .sum();

    let mut tables: HashMap<CuboidMask, Table> = HashMap::new();
    if estimated_total <= memory_budget {
        // Everything fits: one scan builds the top table; the MST feeds
        // every other cuboid from its (materialized) smallest parent.
        build_all(rel, &tree, lattice, query, node, sink, &mut tables, None);
    } else {
        // Share-partitions: split on the widest attribute; cuboids
        // containing it are computed per fragment (their cells are
        // fragment-disjoint); the rest from materialized parents after.
        let split_dim = (0..query.dims)
            .max_by_key(|&d| cards[d])
            .expect("at least one dimension");
        let fragments = (estimated_total / memory_budget.max(1) + 1)
            .min(cards[split_dim] as u64)
            .max(2) as usize;
        let parts = rel.range_partition(split_dim, fragments);
        node.charge_scan(rel.len() as u64);
        node.charge_moves(rel.len() as u64);
        for part in &parts {
            if part.is_empty() {
                continue;
            }
            let mut frag_tables: HashMap<CuboidMask, Table> = HashMap::new();
            build_all(
                part,
                &tree,
                lattice,
                query,
                node,
                sink,
                &mut frag_tables,
                Some(split_dim),
            );
            // Keep the fragment's *top* cells merged into the full top
            // table: it feeds the cuboids that drop the split attribute.
            let top = lattice.top();
            if let Some(frag_top) = frag_tables.remove(&top) {
                node.free(frag_top.len() as u64 * cell_mem(query.dims));
                let merged = tables.entry(top).or_default();
                for (k, a) in frag_top {
                    node.charge_hash_probes(1);
                    merged.entry(k).or_insert_with(Aggregate::empty).merge(&a);
                }
            }
            // The fragment's other tables are dropped here; release their
            // accounted memory so the peak reflects the partitioning.
            let freed: u64 = frag_tables
                .iter()
                .map(|(g, t)| t.len() as u64 * cell_mem(g.dim_count()))
                .sum();
            node.free(freed);
        }
        node.alloc(
            tables
                .get(&lattice.top())
                .map_or(0, |t| t.len() as u64 * cell_mem(query.dims)),
        );
        // Now the cuboids NOT containing the split attribute, top-down by
        // level from their MST parents (re-rooted through the top table).
        let mut rest: Vec<CuboidMask> = lattice
            .cuboids()
            .filter(|g| !g.contains(split_dim))
            .collect();
        rest.sort_unstable_by(|a, b| b.dim_count().cmp(&a.dim_count()).then(a.cmp(b)));
        for g in rest {
            // Parent: prefer the MST parent if materialized, else the top.
            let parent = match tree[&g] {
                Some(p) if tables.contains_key(&p) => p,
                _ => lattice.top(),
            };
            let table = aggregate_from(&tables[&parent], parent, g, node);
            emit_table(&table, g, query.minsup, node, sink);
            node.alloc(table.len() as u64 * cell_mem(g.dim_count()));
            tables.insert(g, table);
        }
    }
}

/// Builds every cuboid reachable in the MST from the raw data (optionally
/// restricted to cuboids containing `only_with`), emitting as it goes.
#[allow(clippy::too_many_arguments)]
fn build_all<S: CellSink>(
    rel: &Relation,
    tree: &HashMap<CuboidMask, Option<CuboidMask>>,
    lattice: Lattice,
    query: &IcebergQuery,
    node: &mut SimNode,
    sink: &mut S,
    tables: &mut HashMap<CuboidMask, Table>,
    only_with: Option<usize>,
) {
    // The top cuboid from the raw data.
    let top = lattice.top();
    let mut top_table: Table = HashMap::with_capacity(rel.len());
    for (row, m) in rel.rows() {
        top_table
            .entry(row.to_vec())
            .or_insert_with(Aggregate::empty)
            .update(m);
    }
    node.charge_scan(rel.len() as u64);
    node.charge_hash_probes(rel.len() as u64);
    node.charge_agg_updates(rel.len() as u64);
    node.alloc(top_table.len() as u64 * cell_mem(query.dims));
    // The top cuboid always contains the split attribute, so in
    // partitioned mode its per-fragment cells are disjoint and emitting
    // them fragment by fragment is exact.
    emit_table(&top_table, top, query.minsup, node, sink);
    tables.insert(top, top_table);

    // Remaining cuboids by descending level, each from its MST parent.
    let mut order: Vec<CuboidMask> = lattice
        .cuboids()
        .filter(|&g| g != top)
        .filter(|&g| only_with.is_none_or(|d| g.contains(d)))
        .collect();
    order.sort_unstable_by(|a, b| b.dim_count().cmp(&a.dim_count()).then(a.cmp(b)));
    for g in order {
        let parent = match tree[&g] {
            // Under the restriction the MST parent may be outside the
            // restricted set; re-route through any in-set parent.
            Some(p) if tables.contains_key(&p) => p,
            _ => lattice
                .cuboids()
                .filter(|&p| {
                    p.dim_count() == g.dim_count() + 1
                        && g.is_subset_of(p)
                        && tables.contains_key(&p)
                })
                .min_by_key(|&p| (tables[&p].len(), p))
                .unwrap_or(top),
        };
        let table = aggregate_from(&tables[&parent], parent, g, node);
        emit_table(&table, g, query.minsup, node, sink);
        node.alloc(table.len() as u64 * cell_mem(g.dim_count()));
        tables.insert(g, table);
    }
}

/// Re-hashes a parent table into a child (the "re-hash for every group-by"
/// the paper criticizes).
fn aggregate_from(parent: &Table, p: CuboidMask, child: CuboidMask, node: &mut SimNode) -> Table {
    debug_assert!(child.is_subset_of(p));
    let pdims = p.dims();
    let positions: Vec<usize> = child
        .dims()
        .iter()
        .map(|d| pdims.iter().position(|x| x == d).expect("child ⊆ parent"))
        .collect();
    let mut out: Table = HashMap::with_capacity(parent.len() / 2 + 1);
    let mut key = vec![0u32; positions.len()];
    for (k, a) in parent {
        for (slot, &pos) in key.iter_mut().zip(&positions) {
            *slot = k[pos];
        }
        out.entry(key.clone())
            .or_insert_with(Aggregate::empty)
            .merge(a);
    }
    node.charge_scan(parent.len() as u64);
    node.charge_hash_probes(parent.len() as u64);
    node.charge_agg_updates(parent.len() as u64);
    out
}

/// Writes a finished cuboid (unsorted hash order; one contiguous write).
fn emit_table<S: CellSink>(
    table: &Table,
    g: CuboidMask,
    minsup: u64,
    node: &mut SimNode,
    sink: &mut S,
) {
    let mut emitted = 0u64;
    for (k, a) in table {
        if a.meets(minsup) {
            sink.emit(g, k, a);
            emitted += 1;
        }
    }
    if emitted > 0 {
        node.write_cells(
            g.bits() as u64,
            emitted * Cell::disk_bytes(g.dim_count()),
            emitted,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{sort_cells, CellBuf};
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use icecube_cluster::{ClusterConfig, SimCluster};
    use icecube_data::presets;

    fn run(rel: &Relation, minsup: u64, budget: u64) -> Vec<Cell> {
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::collecting();
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        pipehash(rel, &q, budget, &mut cluster.nodes[0], &mut sink);
        let mut cells = sink.into_cells();
        sort_cells(&mut cells);
        cells
    }

    #[test]
    fn matches_naive_when_memory_is_plentiful() {
        let rel = sales();
        for minsup in [1, 2, 3] {
            let got = run(&rel, minsup, u64::MAX);
            let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(3, minsup));
            assert_eq!(got, want, "minsup {minsup}");
        }
    }

    #[test]
    fn matches_naive_under_partitioning() {
        // A budget small enough to force share-partitions mode.
        for seed in [0, 5] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 2] {
                let got = run(&rel, minsup, 4_000);
                let want = naive_iceberg_cube(&rel, &IcebergQuery::count_cube(4, minsup));
                assert_eq!(got, want, "seed {seed} minsup {minsup}");
            }
        }
    }

    #[test]
    fn smallest_parent_tree_picks_minimum_sizes() {
        // cards [2, 100, 3]: A's parent candidates are AB (est 200) and
        // AC (est 6) → AC.
        let tree = smallest_parent_tree(3, &[2, 100, 3], 10_000);
        let a = CuboidMask::from_dims(&[0]);
        assert_eq!(tree[&a], Some(CuboidMask::from_dims(&[0, 2])));
        // The top has no parent.
        assert_eq!(tree[&CuboidMask::full(3)], None);
        // B's candidates: AB (200) vs BC (300) → AB.
        let b = CuboidMask::from_dims(&[1]);
        assert_eq!(tree[&b], Some(CuboidMask::from_dims(&[0, 1])));
    }

    #[test]
    fn partitioned_mode_is_memory_bounded() {
        let rel = presets::tiny(1).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let mut plentiful = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::counting();
        pipehash(&rel, &q, u64::MAX, &mut plentiful.nodes[0], &mut sink);
        let mut scarce = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink2 = CellBuf::counting();
        pipehash(&rel, &q, 2_000, &mut scarce.nodes[0], &mut sink2);
        assert_eq!(sink.count, sink2.count);
        assert!(
            scarce.nodes[0].stats.peak_mem_bytes < plentiful.nodes[0].stats.peak_mem_bytes,
            "partitioning must lower the peak ({} vs {})",
            scarce.nodes[0].stats.peak_mem_bytes,
            plentiful.nodes[0].stats.peak_mem_bytes
        );
    }

    #[test]
    fn no_sorting_is_charged() {
        // PipeHash never sorts: the comparison counter stays at zero.
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 1);
        let mut cluster = SimCluster::new(ClusterConfig::fast_ethernet(1));
        let mut sink = CellBuf::counting();
        let before = cluster.nodes[0].stats.cpu_ns;
        pipehash(&rel, &q, u64::MAX, &mut cluster.nodes[0], &mut sink);
        assert!(cluster.nodes[0].stats.cpu_ns > before);
        // Hash probes dominate; there is no n·log n comparison term — we
        // can't observe counters separately, but probes were charged:
        assert!(cluster.nodes[0].stats.cpu_ns > 0);
    }
}
