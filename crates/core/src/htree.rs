//! The hash-tree (Apriori-style) cube algorithm (Section 3.5.1) — including
//! its failure mode.
//!
//! The paper noticed that finding frequent itemsets and computing an
//! iceberg cube are the same problem "if we imagine items are attributes
//! with only one value", and ported Apriori: treat every (dimension,
//! value) pair as an item, enumerate candidate itemsets level-wise
//! (breadth-first, bottom-up), store candidates in a hash tree for fast
//! per-tuple subset counting, and prune candidates with an infrequent
//! subset.
//!
//! The paper's verdict: "Breadth-first searching creates too many
//! candidates … the global index table contains too many items, exactly
//! the sum of the cardinalities of all CUBE attributes … the hash tree is
//! still a huge burden before pruning, and quickly consumes all available
//! memory. Unfortunately, we had to admit this attempt failed." This
//! implementation is faithful to that: it is correct on small inputs and
//! returns [`AlgoError::MemoryExhausted`] when the candidate set would
//! exceed the node's physical memory — which it does on the paper-sized
//! datasets.

// check:allow-file(unordered-collections): hash tables here are
// build-side internals; every cell set is canonically sorted before
// it leaves this module, so iteration order cannot reach results
// (the cross-algorithm equivalence tests pin this).

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use crate::agg::Aggregate;
use crate::algorithms::{finish, Algorithm, RunOptions, RunOutcome};
use crate::cell::{Cell, CellBuf, CellSink};
use crate::error::AlgoError;
use crate::query::IcebergQuery;
use icecube_cluster::{ClusterConfig, SimCluster, SimNode};
use icecube_data::Relation;
use icecube_lattice::CuboidMask;
use std::collections::HashMap;

/// Max candidates per hash-tree leaf before it splits.
const LEAF_CAP: usize = 8;

/// Accounting estimate of one candidate's in-memory size at level `k`.
fn candidate_bytes(k: usize) -> u64 {
    (k * 4 + 40) as u64
}

/// A node of the candidate hash tree (Figure 3.12): internal nodes hash on
/// the item at the node's depth; leaves hold candidate indices.
enum HNode {
    Internal(HashMap<u32, HNode>),
    Leaf(Vec<usize>),
}

/// The candidate hash tree for one Apriori level.
struct HashTree {
    root: HNode,
    /// Structure-walk operations, for CPU charging.
    visits: u64,
}

impl HashTree {
    fn build(candidates: &[Vec<u32>], k: usize) -> Self {
        let mut tree = HashTree {
            root: HNode::Leaf(Vec::new()),
            visits: 0,
        };
        for (ci, _) in candidates.iter().enumerate() {
            Self::insert(&mut tree.root, candidates, ci, 0, k);
        }
        tree
    }

    fn insert(node: &mut HNode, candidates: &[Vec<u32>], ci: usize, depth: usize, k: usize) {
        match node {
            HNode::Internal(children) => {
                let item = candidates[ci][depth];
                let child = children
                    .entry(item)
                    .or_insert_with(|| HNode::Leaf(Vec::new()));
                Self::insert(child, candidates, ci, depth + 1, k);
            }
            HNode::Leaf(list) => {
                list.push(ci);
                if list.len() > LEAF_CAP && depth < k {
                    // Split: redistribute by the item at this depth.
                    let moved = std::mem::take(list);
                    *node = HNode::Internal(HashMap::new());
                    if let HNode::Internal(ch) = node {
                        for mi in moved {
                            let item = candidates[mi][depth];
                            let child = ch.entry(item).or_insert_with(|| HNode::Leaf(Vec::new()));
                            Self::insert(child, candidates, mi, depth + 1, k);
                        }
                    }
                }
            }
        }
    }

    /// The subset operation (Figure 3.12): count every candidate that is a
    /// subset of the tuple's item list.
    fn count_subsets(&mut self, items: &[u32], candidates: &[Vec<u32>], counts: &mut [u64]) {
        Self::walk(&self.root, items, 0, candidates, counts, &mut self.visits);
    }

    fn walk(
        node: &HNode,
        items: &[u32],
        start: usize,
        candidates: &[Vec<u32>],
        counts: &mut [u64],
        visits: &mut u64,
    ) {
        *visits += 1;
        match node {
            HNode::Internal(children) => {
                for (i, &item) in items.iter().enumerate().skip(start) {
                    if let Some(child) = children.get(&item) {
                        Self::walk(child, items, i + 1, candidates, counts, visits);
                    }
                }
            }
            HNode::Leaf(list) => {
                for &ci in list {
                    *visits += 1;
                    if is_subset(&candidates[ci], items) {
                        counts[ci] += 1;
                    }
                }
            }
        }
    }
}

/// True when the sorted `needle` is a subsequence of the sorted `hay`.
fn is_subset(needle: &[u32], hay: &[u32]) -> bool {
    let mut h = 0usize;
    'outer: for &n in needle {
        while h < hay.len() {
            match hay[h].cmp(&n) {
                std::cmp::Ordering::Less => h += 1,
                std::cmp::Ordering::Equal => {
                    h += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Runs the hash-tree algorithm. Executes on node 0 only — the paper never
/// obtained a viable parallel version, and excludes it from the Chapter 4
/// evaluation because "its performance lags far behind".
pub fn run_hash_tree(
    rel: &Relation,
    query: &IcebergQuery,
    config: &ClusterConfig,
    opts: &RunOptions,
) -> Result<RunOutcome, AlgoError> {
    let mut cluster = SimCluster::new(config.clone());
    let mut sink = if opts.collect_cells {
        CellBuf::collecting()
    } else {
        CellBuf::counting()
    };
    cluster.phase_start("compute");
    let result = {
        let node = &mut cluster.nodes[0];
        node.read_bytes(rel.byte_size());
        node.charge_scan(rel.len() as u64);
        node.alloc(rel.byte_size());
        apriori(rel, query, node, &mut sink)
    };
    cluster.phase_end("compute");
    result?;
    let end = cluster.makespan_ns();
    for node in &mut cluster.nodes {
        node.wait_until(end);
    }
    let mut sinks: Vec<CellBuf> = (1..cluster.len()).map(|_| CellBuf::counting()).collect();
    sinks.insert(0, sink);
    Ok(finish(Algorithm::HashTree, &mut cluster, sinks))
}

fn apriori<S: CellSink>(
    rel: &Relation,
    query: &IcebergQuery,
    node: &mut SimNode,
    sink: &mut S,
) -> Result<(), AlgoError> {
    let d = rel.arity();
    // The global index table: item id = dim offset + value.
    let offsets: Vec<u32> = {
        let mut acc = 0u32;
        let mut v = Vec::with_capacity(d);
        for dim in 0..d {
            v.push(acc);
            acc += rel.schema().cardinality(dim);
        }
        v
    };
    let total_items = offsets[d - 1] + rel.schema().cardinality(d - 1);
    let dim_of = |item: u32| -> usize { offsets.partition_point(|&o| o <= item) - 1 };

    // Level 1: count every item in one scan.
    let mut item_aggs: Vec<Aggregate> = vec![Aggregate::empty(); total_items as usize];
    let mut tuple_items: Vec<Vec<u32>> = Vec::with_capacity(rel.len());
    for (row, m) in rel.rows() {
        let items: Vec<u32> = row
            .iter()
            .enumerate()
            .map(|(dim, &v)| offsets[dim] + v)
            .collect();
        for &it in &items {
            item_aggs[it as usize].update(m);
        }
        tuple_items.push(items);
    }
    node.charge_scan(rel.len() as u64 * d as u64);
    node.alloc(total_items as u64 * 32 + rel.byte_size());

    let mut frequent: Vec<Vec<u32>> = Vec::new();
    for (item, agg) in item_aggs.iter().enumerate() {
        if agg.meets(query.minsup) {
            let itemset = vec![item as u32];
            emit_itemset(&itemset, agg, &offsets, dim_of(item as u32), node, sink);
            frequent.push(itemset);
        }
    }
    let mut frequent_set: std::collections::HashSet<Vec<u32>> = frequent.iter().cloned().collect();

    // Levels 2..=d: candidate generation, hash-tree counting, pruning.
    for k in 2..=d {
        let mut candidates: Vec<Vec<u32>> = Vec::new();
        let mut mem_estimate = 0u64;
        for i in 0..frequent.len() {
            for j in i + 1..frequent.len() {
                let (a, b) = (&frequent[i], &frequent[j]);
                if a[..k - 2] != b[..k - 2] {
                    continue;
                }
                let (la, lb) = (a[k - 2], b[k - 2]);
                if la >= lb || dim_of(la) == dim_of(lb) {
                    continue;
                }
                let mut cand = a.clone();
                cand.push(lb);
                // Apriori pruning: every (k-1)-subset must be frequent.
                let prunable = (0..k).any(|drop| {
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    !frequent_set.contains(&sub)
                });
                if prunable {
                    continue;
                }
                mem_estimate += candidate_bytes(k);
                if node.would_exceed_memory(mem_estimate) {
                    // The paper's observed failure: the candidate set (and
                    // with it the hash tree) no longer fits in memory.
                    return Err(AlgoError::MemoryExhausted {
                        node: node.id(),
                        required_bytes: node.mem_used() + mem_estimate,
                        available_bytes: node.spec().mem_bytes(),
                    });
                }
                candidates.push(cand);
            }
        }
        if candidates.is_empty() {
            break;
        }
        node.alloc(mem_estimate);
        node.charge_hash_probes(candidates.len() as u64);

        let mut tree = HashTree::build(&candidates, k);
        let mut counts = vec![0u64; candidates.len()];
        for items in &tuple_items {
            tree.count_subsets(items, &candidates, &mut counts);
        }
        node.charge_hash_probes(tree.visits);

        // Second pass for the measure aggregates of the frequent ones.
        let survivors: Vec<usize> = (0..candidates.len())
            .filter(|&i| counts[i] >= query.minsup)
            .collect();
        let mut aggs: HashMap<&[u32], Aggregate> = survivors
            .iter()
            .map(|&i| (candidates[i].as_slice(), Aggregate::empty()))
            .collect();
        if !survivors.is_empty() {
            for (items, (_, m)) in tuple_items.iter().zip(rel.rows()) {
                for (key, agg) in aggs.iter_mut() {
                    if is_subset(key, items) {
                        agg.update(m);
                    }
                }
            }
            node.charge_agg_updates(rel.len() as u64 * survivors.len() as u64);
        }

        let mut next: Vec<Vec<u32>> = Vec::with_capacity(survivors.len());
        for &i in &survivors {
            let itemset = &candidates[i];
            let agg = aggs[itemset.as_slice()];
            emit_itemset(itemset, &agg, &offsets, usize::MAX, node, sink);
            next.push(itemset.clone());
        }
        node.free(mem_estimate);
        frequent = next;
        frequent_set = frequent.iter().cloned().collect();
        if frequent.is_empty() {
            break;
        }
    }
    Ok(())
}

/// Decodes an itemset back into a cube cell and writes it.
fn emit_itemset<S: CellSink>(
    itemset: &[u32],
    agg: &Aggregate,
    offsets: &[u32],
    hint_dim: usize,
    node: &mut SimNode,
    sink: &mut S,
) {
    let mut mask = CuboidMask::ALL;
    let mut key = Vec::with_capacity(itemset.len());
    for &item in itemset {
        let dim = if itemset.len() == 1 && hint_dim != usize::MAX {
            hint_dim
        } else {
            offsets.partition_point(|&o| o <= item) - 1
        };
        mask = mask.with_dim(dim);
        key.push(item - offsets[dim]);
    }
    sink.emit(mask, &key, agg);
    node.write_cells(mask.bits() as u64, Cell::disk_bytes(key.len()), 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::sales;
    use crate::naive::naive_iceberg_cube;
    use crate::verify::assert_same_cells;
    use icecube_cluster::NodeSpec;
    use icecube_data::presets;

    #[test]
    fn is_subset_handles_edges() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[4], &[1, 2, 3]));
        assert!(!is_subset(&[1, 2], &[2, 3]));
        assert!(!is_subset(&[1], &[]));
    }

    fn check(rel: &Relation, minsup: u64) {
        let q = IcebergQuery::count_cube(rel.arity(), minsup);
        let cfg = ClusterConfig::fast_ethernet(2);
        let out = run_hash_tree(rel, &q, &cfg, &RunOptions::default()).unwrap();
        let want = naive_iceberg_cube(rel, &q);
        assert_same_cells(want, out.cells, &format!("HashTree minsup={minsup}"));
    }

    #[test]
    fn matches_naive_on_small_inputs() {
        let rel = sales();
        for minsup in [1, 2, 3, 6] {
            check(&rel, minsup);
        }
        let rel = presets::tiny(3).generate().unwrap();
        for minsup in [2, 4] {
            check(&rel, minsup);
        }
    }

    #[test]
    fn runs_out_of_memory_on_large_sparse_inputs() {
        // The paper's finding, reproduced: give the node a realistically
        // small memory and a high-cardinality dataset; candidate
        // generation at level 2 must abort.
        let spec = icecube_data::SyntheticSpec::uniform(20_000, vec![4000, 4000, 4000, 4000], 5);
        let rel = spec.generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let mut cfg = ClusterConfig::fast_ethernet(1);
        cfg.nodes[0] = NodeSpec {
            mhz: 500,
            mem_mb: 8,
        };
        let err = run_hash_tree(&rel, &q, &cfg, &RunOptions::default()).unwrap_err();
        assert!(
            matches!(err, AlgoError::MemoryExhausted { .. }),
            "expected OOM, got {err}"
        );
    }

    #[test]
    fn matches_naive_across_seeds_and_supports() {
        // Wider sweep than the smoke test above: several synthetic
        // datasets, supports from "keep everything" up past the point
        // where whole levels die out.
        for seed in [1, 5, 9] {
            let rel = presets::tiny(seed).generate().unwrap();
            for minsup in [1, 3, 8] {
                check(&rel, minsup);
            }
        }
    }

    #[test]
    fn minsup_above_relation_size_yields_empty_cube() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, rel.len() as u64 + 1);
        let out = run_hash_tree(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(1),
            &RunOptions::default(),
        )
        .unwrap();
        assert!(out.cells.is_empty());
        assert_eq!(out.total_cells, 0);
    }

    #[test]
    fn memory_exhaustion_is_a_documented_error_not_a_panic() {
        // The failure carries enough to diagnose it: which node, how much
        // it needed, and how much it had — and needing more than it had.
        let spec = icecube_data::SyntheticSpec::uniform(20_000, vec![4000, 4000, 4000, 4000], 5);
        let rel = spec.generate().unwrap();
        let q = IcebergQuery::count_cube(4, 1);
        let mut cfg = ClusterConfig::fast_ethernet(2);
        cfg.nodes[0] = NodeSpec {
            mhz: 500,
            mem_mb: 8,
        };
        match run_hash_tree(&rel, &q, &cfg, &RunOptions::default()) {
            Err(AlgoError::MemoryExhausted {
                node,
                required_bytes,
                available_bytes,
            }) => {
                assert_eq!(node, 0, "only node 0 computes");
                assert!(
                    required_bytes > available_bytes,
                    "required {required_bytes} must exceed available {available_bytes}"
                );
                assert_eq!(available_bytes, 8 * 1024 * 1024);
            }
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn counting_mode_matches_collecting_totals() {
        let rel = presets::tiny(4).generate().unwrap();
        let q = IcebergQuery::count_cube(4, 2);
        let cfg = ClusterConfig::fast_ethernet(2);
        let collected = run_hash_tree(&rel, &q, &cfg, &RunOptions::default()).unwrap();
        let counted = run_hash_tree(&rel, &q, &cfg, &RunOptions::counting()).unwrap();
        assert!(counted.cells.is_empty());
        assert_eq!(counted.total_cells, collected.cells.len() as u64);
        assert_eq!(counted.stats.makespan_ns(), collected.stats.makespan_ns());
    }

    #[test]
    fn only_node_zero_works() {
        let rel = sales();
        let q = IcebergQuery::count_cube(3, 2);
        let out = run_hash_tree(
            &rel,
            &q,
            &ClusterConfig::fast_ethernet(4),
            &RunOptions::default(),
        )
        .unwrap();
        let stats = out.stats.nodes();
        assert!(stats[0].cpu_ns > 0);
        assert_eq!(stats[1].cells_written, 0);
        assert!(out.stats.imbalance() > 3.0, "no parallelism at all");
    }
}
