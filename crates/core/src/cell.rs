//! Cube cells and cell sinks.

use crate::agg::Aggregate;
use icecube_lattice::CuboidMask;

/// One iceberg cell: a group-by, its key values (in ascending dimension
/// order), and the aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The cuboid (group-by) this cell belongs to.
    pub cuboid: CuboidMask,
    /// Values of the cuboid's dimensions, ascending by dimension index.
    pub key: Vec<u32>,
    /// The cell's aggregate.
    pub agg: Aggregate,
}

impl Cell {
    /// On-disk size accounting used by the simulated disk: four bytes per
    /// key value plus count and sum (the fields the paper's output format
    /// carries).
    pub fn disk_bytes(key_len: usize) -> u64 {
        (key_len * 4 + 16) as u64
    }

    /// This cell's on-disk size.
    pub fn byte_size(&self) -> u64 {
        Cell::disk_bytes(self.key.len())
    }
}

/// Receives cells as an algorithm emits them.
///
/// Disk and CPU costs are charged by the algorithms through their
/// [`SimNode`](icecube_cluster::SimNode); sinks only observe the stream
/// (collection for verification, counting for large experiment runs).
pub trait CellSink {
    /// Called once per emitted cell.
    fn emit(&mut self, cuboid: CuboidMask, key: &[u32], agg: &Aggregate);
}

/// The standard sink: counts every cell, optionally keeping them.
///
/// Experiments over the paper-sized datasets emit millions of cells, so
/// collection is opt-in.
#[derive(Debug, Default)]
pub struct CellBuf {
    /// Whether cells are retained in `cells`.
    pub collect: bool,
    /// Retained cells (empty when `collect` is false).
    pub cells: Vec<Cell>,
    /// Number of cells observed.
    pub count: u64,
    /// Total on-disk bytes of observed cells.
    pub bytes: u64,
}

impl CellBuf {
    /// A sink that retains every cell.
    pub fn collecting() -> Self {
        CellBuf {
            collect: true,
            ..CellBuf::default()
        }
    }

    /// A sink that only counts.
    pub fn counting() -> Self {
        CellBuf::default()
    }

    /// Moves the retained cells out.
    pub fn into_cells(self) -> Vec<Cell> {
        self.cells
    }

    /// Checkpoints the sink's current position, so the cells a task emits
    /// can be rolled back if its node crashes mid-task.
    pub fn mark(&self) -> CellMark {
        CellMark {
            len: self.cells.len(),
            count: self.count,
            bytes: self.bytes,
        }
    }

    /// Rolls the sink back to a checkpoint taken with [`CellBuf::mark`],
    /// discarding everything emitted since.
    pub fn truncate(&mut self, mark: &CellMark) {
        self.cells.truncate(mark.len);
        self.count = mark.count;
        self.bytes = mark.bytes;
    }
}

/// A position in a [`CellBuf`], taken before a task starts so the task's
/// output can be discarded if its node dies (see `crate::recover`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellMark {
    len: usize,
    count: u64,
    bytes: u64,
}

impl CellSink for CellBuf {
    fn emit(&mut self, cuboid: CuboidMask, key: &[u32], agg: &Aggregate) {
        self.count += 1;
        self.bytes += Cell::disk_bytes(key.len());
        if self.collect {
            self.cells.push(Cell {
                cuboid,
                key: key.to_vec(),
                agg: *agg,
            });
        }
    }
}

impl<S: CellSink + ?Sized> CellSink for &mut S {
    fn emit(&mut self, cuboid: CuboidMask, key: &[u32], agg: &Aggregate) {
        (**self).emit(cuboid, key, agg);
    }
}

/// Sorts cells canonically (by cuboid, then key) — the normal form used to
/// compare algorithm outputs.
pub fn sort_cells(cells: &mut [Cell]) {
    cells.sort_unstable_by(|a, b| a.cuboid.cmp(&b.cuboid).then_with(|| a.key.cmp(&b.key)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(Cell::disk_bytes(0), 16);
        assert_eq!(Cell::disk_bytes(9), 52);
        let c = Cell {
            cuboid: CuboidMask::from_dims(&[0, 2]),
            key: vec![1, 2],
            agg: Aggregate::of(5),
        };
        assert_eq!(c.byte_size(), 24);
    }

    #[test]
    fn counting_sink_does_not_retain() {
        let mut s = CellBuf::counting();
        s.emit(CuboidMask::from_dims(&[0]), &[1], &Aggregate::of(2));
        s.emit(CuboidMask::from_dims(&[1]), &[3], &Aggregate::of(4));
        assert_eq!(s.count, 2);
        assert_eq!(s.bytes, 40);
        assert!(s.cells.is_empty());
    }

    #[test]
    fn collecting_sink_retains_in_order() {
        let mut s = CellBuf::collecting();
        s.emit(CuboidMask::from_dims(&[1]), &[3], &Aggregate::of(4));
        s.emit(CuboidMask::from_dims(&[0]), &[1], &Aggregate::of(2));
        assert_eq!(s.cells.len(), 2);
        assert_eq!(s.cells[0].key, vec![3]);
    }

    #[test]
    fn sort_orders_by_cuboid_then_key() {
        let mk = |dims: &[usize], key: &[u32]| Cell {
            cuboid: CuboidMask::from_dims(dims),
            key: key.to_vec(),
            agg: Aggregate::of(1),
        };
        let mut cells = vec![mk(&[1], &[5]), mk(&[0], &[9]), mk(&[0], &[2])];
        sort_cells(&mut cells);
        assert_eq!(cells[0].key, vec![2]);
        assert_eq!(cells[1].key, vec![9]);
        assert_eq!(cells[2].key, vec![5]);
    }
}
