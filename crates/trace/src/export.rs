//! Exporters: Chrome `trace_event` JSON and a per-phase/per-node cost CSV.
//!
//! Both exporters are pure functions of the [`TraceLog`]: no wall clock,
//! no locale, fixed decimal widths — so two logs that compare equal render
//! to byte-identical strings, and two same-seed runs therefore export
//! byte-identical files.

use std::fmt::Write as _;

use crate::event::{CostSnapshot, EventKind};
use crate::log::TraceLog;

/// Formats virtual nanoseconds as the microsecond decimal the Chrome
/// trace viewer expects, with exactly three fraction digits so the output
/// is byte-stable.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the log in Chrome's `trace_event` JSON format.
///
/// Load it at `chrome://tracing` (or Perfetto) for a per-node Gantt view
/// of load balance: `pid` 0 is the cluster, `tid` is the node id. Task
/// and phase spans become duration events (`B`/`E`); messages, faults and
/// BUC depth markers become instant events with their payload in `args`.
/// A `B` without a matching `E` marks a task cut short by a crash — the
/// viewer renders it to the end of the track, which is exactly the right
/// picture.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for node in 0..log.node_count() {
        for e in log.node(node) {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = micros(e.ts_ns);
            let _ = match e.kind {
                EventKind::TaskStart { task } => write!(
                    out,
                    "\n{{\"name\":\"task {task:#x}\",\"cat\":\"task\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::TaskEnd { task } => write!(
                    out,
                    "\n{{\"name\":\"task {task:#x}\",\"cat\":\"task\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::PhaseStart { name } => write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::PhaseEnd { name, .. } => write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::MsgSend { to, bytes } => write!(
                    out,
                    "\n{{\"name\":\"send\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node},\"args\":{{\"to\":{to},\"bytes\":{bytes}}}}}"
                ),
                EventKind::MsgRecv { from, bytes } => write!(
                    out,
                    "\n{{\"name\":\"recv\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node},\"args\":{{\"from\":{from},\"bytes\":{bytes}}}}}"
                ),
                EventKind::Rpc { bytes } => write!(
                    out,
                    "\n{{\"name\":\"rpc\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node},\"args\":{{\"bytes\":{bytes}}}}}"
                ),
                EventKind::Crash => write!(
                    out,
                    "\n{{\"name\":\"crash\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::TaskLost => write!(
                    out,
                    "\n{{\"name\":\"task lost\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::TaskRecovered => write!(
                    out,
                    "\n{{\"name\":\"task recovered\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node}}}"
                ),
                EventKind::Depth { depth } => write!(
                    out,
                    "\n{{\"name\":\"depth\",\"cat\":\"buc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{node},\"args\":{{\"depth\":{depth}}}}}"
                ),
            };
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Header row of [`phase_cost_csv`], public so consumers can locate
/// columns without parsing.
pub const PHASE_COST_HEADER: &str = "node,phase,span_ns,cpu_ns,disk_write_ns,disk_read_ns,net_ns,idle_ns,bytes_sent,bytes_read,messages,tasks,cells_written";

/// Renders a per-phase/per-node cost table as CSV.
///
/// One row per completed phase per node, in node order then phase-end
/// order. Cost columns are *deltas* against the node's previous phase
/// end, so each row is what that phase alone cost; `bytes_sent` is the
/// row's communication volume. `span_ns` is the phase's virtual wall
/// span on that node (0 if the matching start marker is missing).
pub fn phase_cost_csv(log: &TraceLog) -> String {
    let mut out = String::from(PHASE_COST_HEADER);
    out.push('\n');
    for node in 0..log.node_count() {
        let mut open: Vec<(&'static str, u64)> = Vec::new();
        let mut prev = CostSnapshot::default();
        for e in log.node(node) {
            match e.kind {
                EventKind::PhaseStart { name } => open.push((name, e.ts_ns)),
                EventKind::PhaseEnd { name, costs } => {
                    let start = open
                        .iter()
                        .rposition(|&(n, _)| n == name)
                        .map(|i| open.remove(i).1);
                    let span = start.map_or(0, |s| e.ts_ns.saturating_sub(s));
                    let d = costs.delta(&prev);
                    prev = costs;
                    let _ = writeln!(
                        out,
                        "{node},{name},{span},{},{},{},{},{},{},{},{},{},{}",
                        d.cpu_ns,
                        d.disk_write_ns,
                        d.disk_read_ns,
                        d.net_ns,
                        d.idle_ns,
                        d.bytes_sent,
                        d.bytes_read,
                        d.messages,
                        d.tasks,
                        d.cells_written,
                    );
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuffer;

    fn tagged(cpu: u64, sent: u64) -> CostSnapshot {
        CostSnapshot {
            cpu_ns: cpu,
            bytes_sent: sent,
            ..CostSnapshot::default()
        }
    }

    fn sample() -> TraceLog {
        let mut a = TraceBuffer::new();
        a.record(0, EventKind::PhaseStart { name: "load" });
        a.record(3, EventKind::TaskStart { task: 5 });
        a.record(4, EventKind::Depth { depth: 2 });
        a.record(7, EventKind::TaskEnd { task: 5 });
        a.record(
            10,
            EventKind::PhaseEnd {
                name: "load",
                costs: tagged(8, 100),
            },
        );
        a.record(10, EventKind::PhaseStart { name: "compute" });
        a.record(
            30,
            EventKind::PhaseEnd {
                name: "compute",
                costs: tagged(25, 160),
            },
        );
        let mut b = TraceBuffer::new();
        b.record(2, EventKind::MsgSend { to: 0, bytes: 64 });
        b.record(6, EventKind::Crash);
        TraceLog::from_buffers(vec![a, b])
    }

    #[test]
    fn micros_formatting_is_fixed_width() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(5_000_042), "5000.042");
    }

    #[test]
    fn chrome_export_is_valid_shape_and_deterministic() {
        let log = sample();
        let a = chrome_trace_json(&log);
        let b = chrome_trace_json(&log);
        assert_eq!(a, b, "pure function of the log");
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.trim_end().ends_with('}'));
        assert!(a.contains("\"name\":\"task 0x5\""));
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"crash\""));
        assert!(a.contains("\"args\":{\"to\":0,\"bytes\":64}"));
        // Braces balance — cheap well-formedness check without a parser.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn cost_csv_reports_per_phase_deltas() {
        let csv = phase_cost_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(PHASE_COST_HEADER));
        // load: absolute first snapshot; compute: the delta 25-8 / 160-100.
        assert_eq!(lines.next(), Some("0,load,10,8,0,0,0,0,100,0,0,0,0"));
        assert_eq!(lines.next(), Some("0,compute,20,17,0,0,0,0,60,0,0,0,0"));
        assert_eq!(lines.next(), None, "node 1 completed no phases");
    }
}
