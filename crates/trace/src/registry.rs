//! A unified, deterministic metrics registry.
//!
//! `serve::metrics` keeps live atomic histograms; `cluster::stats` keeps
//! end-of-run counters. Both sides know how to pour themselves into a
//! [`Registry`] (see their `register_into` methods), which then offers
//! one name-ordered snapshot/CSV surface for dashboards and tests —
//! instead of two bespoke struct layouts.

use std::collections::BTreeMap;

/// A flat, name-ordered map of integer metrics.
///
/// Names are dotted paths by convention (`cluster.node00.cpu_ns`,
/// `serve.latency.p99_ns`). Backed by a `BTreeMap` so iteration — and
/// therefore every export — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    values: BTreeMap<String, u64>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Sets gauge `name` to `value`, creating it if absent.
    pub fn set(&mut self, name: &str, value: u64) {
        self.values.insert(name.to_string(), value);
    }

    /// Adds `value` to counter `name` (treated as 0 if absent).
    pub fn add(&mut self, name: &str, value: u64) {
        *self.values.entry(name.to_string()).or_insert(0) += value;
    }

    /// Reads metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Serializes as `metric,value` CSV, rows name-sorted (byte-stable).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (k, v) in &self.values {
            out.push_str(k);
            out.push(',');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_add_get() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.set("a.gauge", 7);
        r.add("a.counter", 3);
        r.add("a.counter", 5);
        assert_eq!(r.get("a.gauge"), Some(7));
        assert_eq!(r.get("a.counter"), Some(8));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn snapshot_and_csv_are_name_ordered() {
        let mut r = Registry::new();
        r.set("z.last", 1);
        r.set("a.first", 2);
        r.set("m.mid", 3);
        let names: Vec<String> = r.snapshot().into_iter().map(|(k, _)| k).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(r.to_csv(), "metric,value\na.first,2\nm.mid,3\nz.last,1\n");
    }
}
