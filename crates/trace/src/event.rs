//! Typed trace events stamped with the cluster's virtual clock, and the
//! per-node buffer that records them.

/// A snapshot of a node's cumulative cost counters, captured at phase
/// boundaries so exporters can report per-phase deltas.
///
/// Fields mirror the subset of `cluster::stats::NodeStats` that the
/// paper's evaluation decomposes runs along: the time axes (CPU, disk,
/// network, idle) and the volume axes (bytes moved, messages, tasks,
/// cells written).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Cumulative CPU time charged, in virtual nanoseconds.
    pub cpu_ns: u64,
    /// Cumulative disk-write time, in virtual nanoseconds.
    pub disk_write_ns: u64,
    /// Cumulative disk-read time, in virtual nanoseconds.
    pub disk_read_ns: u64,
    /// Cumulative network time, in virtual nanoseconds.
    pub net_ns: u64,
    /// Cumulative idle (barrier/skew) time, in virtual nanoseconds.
    pub idle_ns: u64,
    /// Cumulative bytes sent to other nodes.
    pub bytes_sent: u64,
    /// Cumulative bytes read from disk.
    pub bytes_read: u64,
    /// Cumulative messages sent.
    pub messages: u64,
    /// Cumulative tasks started.
    pub tasks: u64,
    /// Cumulative iceberg cells written.
    pub cells_written: u64,
}

impl CostSnapshot {
    /// Component-wise `self − earlier`, saturating at zero so a snapshot
    /// pair taken out of order cannot underflow.
    pub fn delta(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            cpu_ns: self.cpu_ns.saturating_sub(earlier.cpu_ns),
            disk_write_ns: self.disk_write_ns.saturating_sub(earlier.disk_write_ns),
            disk_read_ns: self.disk_read_ns.saturating_sub(earlier.disk_read_ns),
            net_ns: self.net_ns.saturating_sub(earlier.net_ns),
            idle_ns: self.idle_ns.saturating_sub(earlier.idle_ns),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            messages: self.messages.saturating_sub(earlier.messages),
            tasks: self.tasks.saturating_sub(earlier.tasks),
            cells_written: self.cells_written.saturating_sub(earlier.cells_written),
        }
    }
}

/// What happened at one instant of a node's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A scheduled task began on this node.
    TaskStart {
        /// Lattice-node identifier: the task's cuboid or subtree-root
        /// mask bits, unique within one algorithm run.
        task: u64,
    },
    /// The task completed on this node (absent if the node died mid-task).
    TaskEnd {
        /// The same identifier the matching [`EventKind::TaskStart`] carried.
        task: u64,
    },
    /// This node sent a message (recorded once per wire attempt, so
    /// retransmits appear as repeated sends).
    MsgSend {
        /// Destination node id.
        to: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// This node received a message.
    MsgRecv {
        /// Source node id.
        from: usize,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// One manager/worker control round trip charged to this node
    /// (recorded once per round trip, so RPC retries under fault
    /// injection appear as repeated events).
    Rpc {
        /// Total bytes on the wire for the round trip (request + reply).
        bytes: u64,
    },
    /// The fault plan killed this node (recorded at the virtual instant
    /// of death; exactly one per crashed node).
    Crash,
    /// The scheduler detected that a task assigned to this node was lost
    /// to a crash.
    TaskLost,
    /// A previously lost task was recovered (re-derived or re-queued).
    TaskRecovered,
    /// The BUC engine entered a recursion level on this node.
    Depth {
        /// Recursion depth (number of dimensions fixed so far).
        depth: u32,
    },
    /// A named per-node phase (e.g. `load`, `partition`, `compute`,
    /// `recover`) began.
    PhaseStart {
        /// Phase name; `'static` so recording never allocates for it.
        name: &'static str,
    },
    /// The named phase ended; carries the node's cumulative cost counters
    /// at that instant so exporters can compute per-phase deltas.
    PhaseEnd {
        /// The same name the matching [`EventKind::PhaseStart`] carried.
        name: &'static str,
        /// Cumulative costs at phase end.
        costs: CostSnapshot,
    },
}

/// One trace record: an [`EventKind`] stamped with the owning node's
/// virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event, nanoseconds since the run started.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A per-node, single-owner event buffer.
///
/// Each simulated node owns its buffer exclusively, so recording is a
/// plain `Vec::push` — lock-free by construction — and events within a
/// node are stored in exactly the order the node's virtual clock produced
/// them. When a node has no buffer attached, the cluster records nothing
/// and charges nothing, so untraced runs stay byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Appends an event stamped with virtual time `ts_ns`.
    pub fn record(&mut self, ts_ns: u64, kind: EventKind) {
        self.events.push(TraceEvent { ts_ns, kind });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Borrows the recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding its events in record order.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_keeps_record_order() {
        let mut b = TraceBuffer::new();
        assert!(b.is_empty());
        b.record(5, EventKind::Crash);
        b.record(9, EventKind::TaskLost);
        assert_eq!(b.len(), 2);
        assert_eq!(b.events()[0].ts_ns, 5);
        let ev = b.into_events();
        assert_eq!(ev[1].kind, EventKind::TaskLost);
    }

    #[test]
    fn snapshot_delta_is_componentwise_and_saturating() {
        let a = CostSnapshot {
            cpu_ns: 10,
            bytes_sent: 100,
            tasks: 3,
            ..CostSnapshot::default()
        };
        let b = CostSnapshot {
            cpu_ns: 25,
            bytes_sent: 140,
            tasks: 4,
            ..CostSnapshot::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.cpu_ns, 15);
        assert_eq!(d.bytes_sent, 40);
        assert_eq!(d.tasks, 1);
        // Out-of-order pairs saturate instead of wrapping.
        assert_eq!(a.delta(&b).cpu_ns, 0);
    }
}
