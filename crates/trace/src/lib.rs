#![warn(missing_docs)]

//! Deterministic, virtual-time tracing for the simulated cluster.
//!
//! The cluster in `icecube-cluster` advances a *virtual* clock: every cost
//! is an explicit charge, so the same seed replays the same run to the
//! nanosecond. This crate records that run as typed, timestamped events —
//! task spans with lattice-node ids, message sends and receives with byte
//! counts, fault injection/detection/recovery, BUC recursion depth
//! markers, and per-algorithm phase boundaries — and exports it in two
//! forms:
//!
//! * [`chrome_trace_json`] — Chrome `trace_event` JSON, one track per
//!   node, giving the per-node Gantt view of load balance;
//! * [`phase_cost_csv`] — a per-phase/per-node cost table (CPU, disk,
//!   network, idle, bytes, tasks) from which communication volume per
//!   phase falls out directly.
//!
//! Because every timestamp is virtual, both exports are **bit-for-bit
//! reproducible** across runs with the same seed; `tests/trace_determinism.rs`
//! in the workspace root enforces this. Recording is a plain `Vec::push`
//! into a single-owner per-node [`TraceBuffer`] — no locks, no atomics —
//! and when no buffer is attached the cluster skips recording entirely,
//! so untraced runs are byte-identical to runs before this crate existed.
//!
//! [`Registry`] complements the event layer with a flat, name-ordered
//! metrics map that unifies `serve::metrics` histogram summaries and
//! `cluster::stats` counters behind one snapshot/export API.

pub mod event;
pub mod export;
pub mod log;
pub mod registry;

pub use event::{CostSnapshot, EventKind, TraceBuffer, TraceEvent};
pub use export::{chrome_trace_json, phase_cost_csv, PHASE_COST_HEADER};
pub use log::TraceLog;
pub use registry::Registry;
