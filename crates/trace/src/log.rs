//! A complete run's trace: one virtual-clock-ordered event stream per node.

use crate::event::{EventKind, TraceBuffer, TraceEvent};

/// All events recorded during one cluster run, indexed by node id.
///
/// Built by draining every node's [`TraceBuffer`] once the run finishes;
/// carried on `RunOutcome` so callers can export or inspect it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    nodes: Vec<Vec<TraceEvent>>,
}

impl TraceLog {
    /// Assembles a log from per-node buffers (vector index = node id).
    pub fn from_buffers(buffers: Vec<TraceBuffer>) -> Self {
        TraceLog {
            nodes: buffers.into_iter().map(TraceBuffer::into_events).collect(),
        }
    }

    /// Number of nodes the run had.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Node `id`'s events in virtual-clock order (empty if out of range).
    pub fn node(&self, id: usize) -> &[TraceEvent] {
        self.nodes.get(id).map_or(&[], Vec::as_slice)
    }

    /// Total events across all nodes.
    pub fn total_events(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Per-node counts of events whose kind matches `pred`.
    pub fn count_per_node(&self, pred: impl Fn(&EventKind) -> bool) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|ev| ev.iter().filter(|e| pred(&e.kind)).count() as u64)
            .collect()
    }

    /// Total count across all nodes of events whose kind matches `pred`.
    pub fn count_total(&self, pred: impl Fn(&EventKind) -> bool) -> u64 {
        self.count_per_node(pred).iter().sum()
    }

    /// Per-node `TaskStart` counts — one per task span opened, which the
    /// cluster keeps in lockstep with its `NodeStats::tasks` counter.
    pub fn task_spans_per_node(&self) -> Vec<u64> {
        self.count_per_node(|k| matches!(k, EventKind::TaskStart { .. }))
    }

    /// The run's total communication volume: the sum of every `MsgSend`
    /// payload plus every `Rpc` round trip, retransmits and retries
    /// included (the bytes that actually hit the wire). `MsgRecv` is
    /// deliberately excluded — each delivery's bytes are already counted
    /// on the sending side.
    pub fn comm_volume_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .flat_map(|ev| ev.iter())
            .map(|e| match e.kind {
                EventKind::MsgSend { bytes, .. } | EventKind::Rpc { bytes } => bytes,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        let mut a = TraceBuffer::new();
        a.record(0, EventKind::TaskStart { task: 1 });
        a.record(10, EventKind::MsgSend { to: 1, bytes: 64 });
        a.record(20, EventKind::TaskEnd { task: 1 });
        let mut b = TraceBuffer::new();
        b.record(12, EventKind::MsgRecv { from: 0, bytes: 64 });
        b.record(15, EventKind::MsgSend { to: 0, bytes: 8 });
        b.record(22, EventKind::Rpc { bytes: 128 });
        b.record(30, EventKind::Crash);
        TraceLog::from_buffers(vec![a, b])
    }

    #[test]
    fn per_node_access_and_counts() {
        let log = sample();
        assert_eq!(log.node_count(), 2);
        assert_eq!(log.total_events(), 7);
        assert_eq!(log.node(0).len(), 3);
        assert!(log.node(7).is_empty());
        assert_eq!(log.task_spans_per_node(), vec![1, 0]);
        assert_eq!(log.count_total(|k| matches!(k, EventKind::Crash)), 1);
    }

    #[test]
    fn comm_volume_sums_sends_and_rpcs_not_receipts() {
        assert_eq!(sample().comm_volume_bytes(), 72 + 128);
    }
}
