//! The native backend: a std-only work-stealing thread pool on host
//! cores.
//!
//! Scheduling: the plan is injected as contiguous id blocks, one block
//! per worker, so lattice-adjacent tasks (the affinity the plans encode
//! in id order) start on the same worker. Each worker pops its own deque
//! from the front; an idle worker steals from the *back* of the first
//! non-empty neighbour deque, taking the work its owner would reach
//! last. Tasks never spawn tasks, so a worker whose scan of every deque
//! comes up empty can retire — no spinning, no condition variables.
//!
//! Every worker owns a throwaway [`SimNode`] so kernels keep their
//! uniform `&mut SimNode` cost-charging signature; the charges are
//! integer arithmetic against a discarded virtual clock, cheap enough to
//! run inline. Wall-clock task spans are recorded per worker and merged
//! into a [`TraceLog`](icecube_trace::TraceLog), giving the native pool
//! the same Gantt view the simulator gets from virtual time.
//
// check:allow-file(thread-spawn): this module is the one sanctioned
// thread owner in the workspace's execution path — the whole point of
// the crate. Threads are scoped, joined before `run` returns, and panic
// of any worker surfaces as `ExecError::WorkerPanicked`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use icecube_cluster::{CpuCosts, DiskModel, EventKind, NetModel, NodeSpec, SimNode};
use icecube_trace::{TraceBuffer, TraceLog};

use crate::{validate_plan, Backend, ExecError, ExecReport, Executor, TaskSpec, Workload};

/// Runs plans on a work-stealing pool of host threads.
#[derive(Debug, Clone)]
pub struct NativeExecutor {
    workers: usize,
}

impl NativeExecutor {
    /// A pool of exactly `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        NativeExecutor {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the host's available parallelism (1 if unknown).
    pub fn host_parallelism() -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        NativeExecutor::new(workers)
    }
}

/// The shared scheduling state: one deque per worker plus a steal tally.
struct Pool {
    queues: Vec<Mutex<VecDeque<usize>>>,
    steals: AtomicU64,
}

/// Locks a deque, recovering the guard if a panicking worker poisoned
/// it — the deque holds plain task indices, which cannot be left in a
/// broken state, and the panic itself is reported at join time.
fn lock(queue: &Mutex<VecDeque<usize>>) -> MutexGuard<'_, VecDeque<usize>> {
    queue.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Takes the next task index for `worker`: own deque front first, then a
/// steal from the back of the first non-empty other deque. `None` means
/// every deque was observed empty — with no task spawning, that worker
/// can retire (a task still in flight elsewhere is owned by its runner).
fn next_task(worker: usize, pool: &Pool) -> Option<usize> {
    if let Some(task) = lock(&pool.queues[worker]).pop_front() {
        return Some(task);
    }
    let n = pool.queues.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        if let Some(task) = lock(&pool.queues[victim]).pop_back() {
            // relaxed: an independent statistics tally — no other memory
            // access is ordered against it, and it is only read after
            // every worker has been joined.
            pool.steals.fetch_add(1, Ordering::Relaxed);
            return Some(task);
        }
    }
    None
}

/// What one worker hands back at join: `(id, output)` pairs in
/// completion order plus its wall-clock span buffer.
type WorkerYield<O> = (Vec<(usize, O)>, TraceBuffer);

/// One worker's life: build scratch, absorb the prologue on a throwaway
/// accounting node, then drain tasks until every deque is empty.
fn worker_loop<W: Workload>(
    worker: usize,
    pool: &Pool,
    tasks: &[TaskSpec],
    workload: &W,
    started: Instant,
) -> WorkerYield<W::Out> {
    let mut scratch = workload.scratch(worker);
    let mut node = SimNode::new(
        worker,
        NodeSpec::FAST,
        DiskModel::COMMODITY,
        NetModel::FAST_ETHERNET,
        CpuCosts::PIII_500,
    );
    workload.prologue(&mut node);
    let mut outputs = Vec::new();
    let mut spans = TraceBuffer::new();
    while let Some(index) = next_task(worker, pool) {
        let spec = &tasks[index];
        spans.record(
            started.elapsed().as_nanos() as u64,
            EventKind::TaskStart {
                task: spec.affinity,
            },
        );
        let out = workload.run(spec, &mut scratch, &mut node);
        spans.record(
            started.elapsed().as_nanos() as u64,
            EventKind::TaskEnd {
                task: spec.affinity,
            },
        );
        outputs.push((spec.id, out));
    }
    (outputs, spans)
}

impl Executor for NativeExecutor {
    fn backend(&self) -> Backend {
        Backend::Native
    }

    fn workers(&self) -> usize {
        self.workers
    }

    fn run<W: Workload>(
        &mut self,
        tasks: &[TaskSpec],
        workload: &W,
    ) -> Result<(Vec<W::Out>, ExecReport), ExecError> {
        validate_plan(tasks)?;
        let workers = self.workers;
        // Contiguous id blocks preserve the plans' id-order affinity:
        // worker w starts on tasks [w·per, (w+1)·per).
        let per = tasks.len().div_ceil(workers).max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for index in 0..tasks.len() {
            queues[(index / per).min(workers - 1)].push_back(index);
        }
        let pool = Pool {
            queues: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        };
        let pool = &pool;
        let started = Instant::now();
        let joined: Vec<std::thread::Result<WorkerYield<W::Out>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    scope.spawn(move || worker_loop(worker, pool, tasks, workload, started))
                })
                .collect();
            handles.into_iter().map(|handle| handle.join()).collect()
        });
        let wall_ns = started.elapsed().as_nanos() as u64;
        let mut outputs: Vec<Option<W::Out>> = (0..tasks.len()).map(|_| None).collect();
        let mut tasks_per_worker = vec![0u64; workers];
        let mut buffers = Vec::with_capacity(workers);
        for (worker, result) in joined.into_iter().enumerate() {
            let (outs, spans) = result.map_err(|_| ExecError::WorkerPanicked { worker })?;
            tasks_per_worker[worker] = outs.len() as u64;
            for (id, out) in outs {
                outputs[id] = Some(out);
            }
            buffers.push(spans);
        }
        let merged: Vec<W::Out> = outputs
            .into_iter()
            .enumerate()
            .map(|(id, out)| out.ok_or(ExecError::TaskAbandoned { id }))
            .collect::<Result<_, _>>()?;
        let report = ExecReport {
            backend: Backend::Native,
            workers,
            tasks: tasks.len(),
            wall_ns,
            // relaxed: final read of the statistics tally; every
            // `fetch_add` happened-before the worker joins above.
            steals: pool.steals.load(Ordering::Relaxed),
            tasks_per_worker,
            trace: Some(TraceLog::from_buffers(buffers)),
        };
        Ok((merged, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squares its affinity after spinning proportionally to weight, so
    /// uneven plans actually exercise stealing.
    struct Square;

    impl Workload for Square {
        type Scratch = u64;
        type Out = u64;

        fn scratch(&self, _worker: usize) -> u64 {
            0
        }

        fn run(&self, spec: &TaskSpec, scratch: &mut u64, _node: &mut SimNode) -> u64 {
            for _ in 0..spec.weight * 1000 {
                *scratch = scratch.wrapping_add(1);
            }
            spec.affinity * spec.affinity
        }
    }

    fn plan(len: usize) -> Vec<TaskSpec> {
        (0..len)
            .map(|id| TaskSpec {
                id,
                affinity: id as u64 + 1,
                weight: if id == 0 { 500 } else { 1 },
            })
            .collect()
    }

    #[test]
    fn outputs_come_back_in_task_id_order_for_any_worker_count() {
        let want: Vec<u64> = (1..=40).map(|v: u64| v * v).collect();
        for workers in [1, 2, 3, 8, 64] {
            let (out, report) = NativeExecutor::new(workers)
                .run(&plan(40), &Square)
                .unwrap();
            assert_eq!(out, want, "workers={workers}");
            assert_eq!(report.workers, workers);
            assert_eq!(report.tasks_per_worker.iter().sum::<u64>(), 40);
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let mut exec = NativeExecutor::new(0);
        assert_eq!(exec.workers(), 1);
        let (out, report) = exec.run(&plan(5), &Square).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(report.steals, 0, "one worker has nobody to steal from");
    }

    #[test]
    fn empty_plans_complete() {
        let (out, report) = NativeExecutor::new(4).run(&[], &Square).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.tasks, 0);
    }

    #[test]
    fn wall_clock_spans_cover_every_task() {
        let (_, report) = NativeExecutor::new(3).run(&plan(12), &Square).unwrap();
        let log = report.trace.expect("native always traces spans");
        assert_eq!(log.task_spans_per_node().iter().sum::<u64>(), 12);
    }

    #[test]
    fn bad_plans_are_rejected() {
        let mut tasks = plan(4);
        tasks[2].id = 9;
        let err = NativeExecutor::new(2).run(&tasks, &Square).unwrap_err();
        assert_eq!(err, ExecError::BadPlan { id: 9 });
    }

    #[test]
    fn worker_panics_surface_as_errors() {
        struct Bomb;
        impl Workload for Bomb {
            type Scratch = ();
            type Out = ();
            fn scratch(&self, _worker: usize) {}
            fn run(&self, spec: &TaskSpec, _scratch: &mut (), _node: &mut SimNode) {
                assert!(spec.id != 3, "boom");
            }
        }
        let err = NativeExecutor::new(2).run(&plan(8), &Bomb).unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanicked { .. }));
    }
}
