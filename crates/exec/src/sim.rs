//! The virtual-time backend: a thin adapter over [`SimCluster`] demand
//! scheduling.
//!
//! Tasks are handed out in id order by the simulated manager
//! ([`run_demand`]), so node speeds, fault injection and lost-task
//! recovery sweeps all behave exactly as in the hand-written cluster
//! drivers. Outputs are still slotted by task id — a re-run of a task
//! reclaimed from a crashed node simply overwrites the victim's partial
//! slot, which is how recovery stays invisible in the merged result.

use icecube_cluster::{run_demand, ClusterConfig, EventKind, SimCluster};

use crate::{validate_plan, Backend, ExecError, ExecReport, Executor, TaskSpec, Workload};

/// Runs plans on the deterministic cluster simulator.
#[derive(Debug, Clone)]
pub struct SimExecutor {
    config: ClusterConfig,
}

impl SimExecutor {
    /// An executor simulating the given cluster (node specs, disk, net,
    /// fault plan and tracing all come from the config).
    pub fn new(config: ClusterConfig) -> Self {
        SimExecutor { config }
    }

    /// Convenience: `n` paper-baseline nodes on Fast Ethernet.
    pub fn fast_ethernet(n: usize) -> Self {
        SimExecutor::new(ClusterConfig::fast_ethernet(n))
    }

    /// The simulated cluster configuration this executor runs on.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }
}

impl Executor for SimExecutor {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn workers(&self) -> usize {
        self.config.nodes.len()
    }

    fn run<W: Workload>(
        &mut self,
        tasks: &[TaskSpec],
        workload: &W,
    ) -> Result<(Vec<W::Out>, ExecReport), ExecError> {
        validate_plan(tasks)?;
        let mut cluster = SimCluster::new(self.config.clone());
        let n = cluster.len();
        cluster.phase_start("load");
        for node in &mut cluster.nodes {
            workload.prologue(node);
        }
        cluster.phase_end("load");
        let mut scratches: Vec<W::Scratch> = (0..n).map(|w| workload.scratch(w)).collect();
        let mut outputs: Vec<Option<W::Out>> = (0..tasks.len()).map(|_| None).collect();
        let mut queue = tasks.iter().copied();
        let mut source = move |_node: usize, _prev: Option<&TaskSpec>| queue.next();
        cluster.phase_start("compute");
        let history = run_demand(
            &mut cluster,
            &mut source,
            |cluster, node, spec: &TaskSpec, _prev| {
                let sim = &mut cluster.nodes[node];
                sim.trace_event(EventKind::TaskStart {
                    task: spec.affinity,
                });
                let out = workload.run(spec, &mut scratches[node], sim);
                sim.trace_task_end(spec.affinity);
                outputs[spec.id] = Some(out);
            },
        );
        cluster.phase_end("compute");
        let tasks_per_worker: Vec<u64> = history.iter().map(|h| h.len() as u64).collect();
        let report = ExecReport {
            backend: Backend::Sim,
            workers: n,
            tasks: tasks.len(),
            wall_ns: cluster.makespan_ns(),
            steals: 0,
            tasks_per_worker,
            trace: cluster.take_trace(),
        };
        let merged: Vec<W::Out> = outputs
            .into_iter()
            .enumerate()
            .map(|(id, out)| out.ok_or(ExecError::TaskAbandoned { id }))
            .collect::<Result<_, _>>()?;
        Ok((merged, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icecube_cluster::SimNode;

    /// Each task squares its affinity; scratch counts invocations.
    struct Square;

    impl Workload for Square {
        type Scratch = u64;
        type Out = u64;

        fn scratch(&self, _worker: usize) -> u64 {
            0
        }

        fn run(&self, spec: &TaskSpec, scratch: &mut u64, node: &mut SimNode) -> u64 {
            *scratch += 1;
            node.charge_cpu(1_000_000);
            spec.affinity * spec.affinity
        }
    }

    fn plan(len: usize) -> Vec<TaskSpec> {
        (0..len)
            .map(|id| TaskSpec {
                id,
                affinity: id as u64 + 1,
                weight: 1,
            })
            .collect()
    }

    #[test]
    fn outputs_come_back_in_task_id_order() {
        let mut exec = SimExecutor::fast_ethernet(3);
        assert_eq!(exec.backend(), Backend::Sim);
        assert_eq!(exec.workers(), 3);
        let (out, report) = exec.run(&plan(10), &Square).unwrap();
        assert_eq!(out, (1..=10).map(|v: u64| v * v).collect::<Vec<_>>());
        assert_eq!(report.tasks, 10);
        assert_eq!(report.steals, 0);
        assert_eq!(report.tasks_per_worker.iter().sum::<u64>(), 10);
        assert!(report.wall_ns > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let go = || {
            let (out, report) = SimExecutor::fast_ethernet(4)
                .run(&plan(33), &Square)
                .unwrap();
            (out, report.wall_ns, report.tasks_per_worker)
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn faults_recover_without_changing_outputs() {
        use icecube_cluster::FaultPlan;
        let quiet = SimExecutor::fast_ethernet(4)
            .run(&plan(16), &Square)
            .unwrap()
            .0;
        let config =
            ClusterConfig::fast_ethernet(4).with_faults(FaultPlan::none().crash(1, 2_000_000));
        let faulty = SimExecutor::new(config).run(&plan(16), &Square).unwrap().0;
        assert_eq!(quiet, faulty);
    }

    #[test]
    fn bad_plans_are_rejected() {
        let mut tasks = plan(4);
        tasks[3].id = 0;
        let err = SimExecutor::fast_ethernet(2)
            .run(&tasks, &Square)
            .unwrap_err();
        assert_eq!(err, ExecError::BadPlan { id: 0 });
    }

    #[test]
    fn tracing_config_yields_task_spans() {
        let config = ClusterConfig::fast_ethernet(2).with_trace();
        let (_, report) = SimExecutor::new(config).run(&plan(6), &Square).unwrap();
        let log = report.trace.expect("tracing enabled");
        assert_eq!(log.task_spans_per_node().iter().sum::<u64>(), 6);
    }
}
