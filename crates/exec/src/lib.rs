//! Execution backends for cube plans.
//!
//! The cluster algorithms (RP, BPP, ASL, PT, AHT in `icecube-core`)
//! decompose a cube query into lattice-subtree task units. This crate
//! separates that decomposition from the engine that runs it:
//!
//! * [`SimExecutor`] drives the plan on the deterministic virtual-time
//!   simulator (`icecube-cluster`), inheriting demand scheduling, fault
//!   injection and lost-task recovery sweeps. It is the correctness
//!   oracle and the only backend whose cost statistics are meaningful.
//! * [`NativeExecutor`] drives the same plan on real host cores with a
//!   std-only work-stealing thread pool — per-worker deques seeded by a
//!   contiguous-block injection, idle workers stealing from the back of
//!   their neighbours' queues. It measures wall clock, not virtual time.
//!
//! # The deterministic merge rule
//!
//! Both backends return task outputs **in task-id order**, never in
//! completion order. A task's output is a pure function of the plan (the
//! relation, the query, the task's lattice position), so the assignment
//! of tasks to workers — and therefore stealing order, worker count and
//! thread interleaving — cannot leak into the merged result. This is
//! what makes the simulator a byte-identity oracle for the native pool.

#![warn(missing_docs)]

pub mod native;
pub mod sim;

use std::fmt;

use icecube_cluster::SimNode;
use icecube_trace::{Registry, TraceLog};

pub use native::NativeExecutor;
pub use sim::SimExecutor;

/// Which execution engine ran (or should run) a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The deterministic virtual-time cluster simulator.
    #[default]
    Sim,
    /// The native work-stealing thread pool on host cores.
    Native,
}

impl Backend {
    /// Stable lower-case name, as used in CLI flags and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        }
    }

    /// Parses the stable name back; `None` for anything else.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "sim" => Some(Backend::Sim),
            "native" => Some(Backend::Native),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One backend-agnostic unit of cube work.
///
/// The spec carries only scheduling metadata; what the task *does* lives
/// in the [`Workload`] that interprets `id`. Plans hand the executor a
/// slice of specs whose ids are exactly `0..len` (any order); outputs
/// come back indexed by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Dense plan-local identifier; output slot `id` receives this
    /// task's result.
    pub id: usize,
    /// Affinity hint: the task's lattice position (cuboid or subtree
    /// root mask bits). Tasks with related hints benefit from running
    /// consecutively on one worker; also the trace-span identifier.
    pub affinity: u64,
    /// Relative size hint (e.g. subtree node count or chunk tuples);
    /// purely advisory.
    pub weight: u64,
}

/// A backend-agnostic task decomposition: per-worker scratch plus a pure
/// per-task function.
///
/// `run` must be a pure function of the plan and `spec.id` — it may use
/// `scratch` only as a cache whose contents never change the produced
/// output (arena reuse, affinity-held lists whose reuse is exact). That
/// purity is load-bearing: it is what lets both backends merge outputs
/// in task-id order and come out byte-identical.
pub trait Workload: Sync {
    /// Per-worker reusable state (arenas, affinity caches). Created once
    /// per worker, threaded through every task that worker runs.
    type Scratch: Send;
    /// Per-task output, collected in task-id order.
    type Out: Send;

    /// Builds worker `worker`'s scratch state.
    fn scratch(&self, worker: usize) -> Self::Scratch;

    /// Per-worker setup charged once before any task runs (e.g. the
    /// replicated-relation load). Only affects virtual-time accounting;
    /// the default does nothing.
    fn prologue(&self, node: &mut SimNode) {
        let _ = node;
    }

    /// Executes one task, charging its cost to `node` (virtual time on
    /// the simulator; a throwaway accounting node on the native pool).
    fn run(&self, spec: &TaskSpec, scratch: &mut Self::Scratch, node: &mut SimNode) -> Self::Out;
}

/// Why an executor run failed. Executors never panic in library code;
/// every failure surfaces here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan's task ids are not a permutation of `0..len` (duplicate
    /// or out-of-range id).
    BadPlan {
        /// The offending task id.
        id: usize,
    },
    /// A native worker thread panicked; the run's outputs are gone.
    WorkerPanicked {
        /// Index of the worker whose thread died.
        worker: usize,
    },
    /// A task produced no output — possible only on the simulator when
    /// every node dies before the task can run (hand-built fault plans;
    /// seeded plans always leave a survivor).
    TaskAbandoned {
        /// Id of the task that never completed.
        id: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadPlan { id } => {
                write!(f, "plan task ids must be a permutation of 0..len (id {id})")
            }
            ExecError::WorkerPanicked { worker } => {
                write!(f, "native worker {worker} panicked")
            }
            ExecError::TaskAbandoned { id } => {
                write!(f, "task {id} was abandoned (all nodes dead)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// What a run cost and how its work was distributed.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Which engine ran the plan.
    pub backend: Backend,
    /// Worker (or simulated node) count.
    pub workers: usize,
    /// Total tasks executed.
    pub tasks: usize,
    /// Virtual makespan (sim) or host wall clock (native), nanoseconds.
    /// The two are **not** comparable to each other: one models a
    /// PIII-500 cluster, the other measures this machine.
    pub wall_ns: u64,
    /// Successful steals from another worker's deque (native only;
    /// always 0 on the simulator, where the manager assigns on demand).
    pub steals: u64,
    /// Tasks completed per worker, indexed by worker id.
    pub tasks_per_worker: Vec<u64>,
    /// Per-worker task spans: virtual-time spans on the simulator (when
    /// the cluster config enables tracing), host wall-clock spans on the
    /// native pool (always recorded).
    pub trace: Option<TraceLog>,
}

impl ExecReport {
    /// Publishes the report's scalar facts into a metrics registry under
    /// the `exec.` prefix.
    pub fn register_into(&self, registry: &mut Registry) {
        registry.set("exec.workers", self.workers as u64);
        registry.set("exec.tasks", self.tasks as u64);
        registry.set("exec.wall_ns", self.wall_ns);
        registry.set("exec.steals", self.steals);
        for (worker, &tasks) in self.tasks_per_worker.iter().enumerate() {
            registry.set(&format!("exec.worker{worker:02}.tasks"), tasks);
        }
    }
}

/// An engine that runs a [`Workload`]'s plan to completion.
pub trait Executor {
    /// Which engine this is.
    fn backend(&self) -> Backend;

    /// How many workers (or simulated nodes) the engine schedules over.
    fn workers(&self) -> usize;

    /// Runs every task in `tasks`, returning outputs **in task-id
    /// order** (index `i` holds the output of the spec with `id == i`,
    /// regardless of which worker ran it or when) plus a cost report.
    fn run<W: Workload>(
        &mut self,
        tasks: &[TaskSpec],
        workload: &W,
    ) -> Result<(Vec<W::Out>, ExecReport), ExecError>;
}

/// Checks that the plan's ids are a permutation of `0..len`, the
/// contract both backends rely on for slot-addressed output merging.
pub(crate) fn validate_plan(tasks: &[TaskSpec]) -> Result<(), ExecError> {
    let mut seen = vec![false; tasks.len()];
    for spec in tasks {
        if spec.id >= tasks.len() || seen[spec.id] {
            return Err(ExecError::BadPlan { id: spec.id });
        }
        seen[spec.id] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Sim, Backend::Native] {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("warp"), None);
    }

    #[test]
    fn plan_validation_rejects_duplicates_and_gaps() {
        let spec = |id| TaskSpec {
            id,
            affinity: 0,
            weight: 1,
        };
        assert!(validate_plan(&[spec(0), spec(1)]).is_ok());
        assert!(validate_plan(&[]).is_ok());
        assert_eq!(
            validate_plan(&[spec(0), spec(0)]),
            Err(ExecError::BadPlan { id: 0 })
        );
        assert_eq!(
            validate_plan(&[spec(1), spec(2)]),
            Err(ExecError::BadPlan { id: 2 })
        );
    }

    #[test]
    fn report_registers_scalar_metrics() {
        let report = ExecReport {
            backend: Backend::Native,
            workers: 2,
            tasks: 5,
            wall_ns: 1234,
            steals: 3,
            tasks_per_worker: vec![4, 1],
            trace: None,
        };
        let mut registry = Registry::new();
        report.register_into(&mut registry);
        assert_eq!(registry.get("exec.workers"), Some(2));
        assert_eq!(registry.get("exec.tasks"), Some(5));
        assert_eq!(registry.get("exec.wall_ns"), Some(1234));
        assert_eq!(registry.get("exec.steals"), Some(3));
        assert_eq!(registry.get("exec.worker00.tasks"), Some(4));
        assert_eq!(registry.get("exec.worker01.tasks"), Some(1));
    }

    #[test]
    fn errors_render_their_context() {
        assert!(format!("{}", ExecError::BadPlan { id: 7 }).contains('7'));
        assert!(format!("{}", ExecError::WorkerPanicked { worker: 3 }).contains('3'));
        assert!(format!("{}", ExecError::TaskAbandoned { id: 9 }).contains('9'));
    }
}
