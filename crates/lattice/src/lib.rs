#![warn(missing_docs)]

//! The cube lattice: cuboid identities, processing trees, and PT's binary
//! division.
//!
//! Every CUBE algorithm in the paper views the `2^d` group-bys of a
//! `d`-dimensional cube as a lattice (Figure 2.4a) and converts it into a
//! *processing tree* deciding which group-by is computed from which. This
//! crate provides:
//!
//! * [`CuboidMask`] — a cuboid (group-by) as a bitmask over dimensions, with
//!   the subset/prefix relations that drive ASL's and PT's affinity
//!   scheduling,
//! * [`Lattice`] — enumeration of cuboids by level, lattice edges, and the
//!   bottom-up (BUC, Figure 2.4c) and top-down (Figure 2.4b) tree shapes,
//! * [`TreeTask`] — PT's unit of work: a subtree of the BUC processing tree
//!   produced by recursive binary division (Section 3.4, Figure 3.9).

pub mod mask;
pub mod tree;

pub use mask::CuboidMask;
pub use tree::{divide_tasks, TreeTask};

/// The cube lattice over `d` dimensions.
///
/// Dimensions are indexed `0..d` and, when displayed, named `A`, `B`, `C`, …
/// as the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lattice {
    d: usize,
}

impl Lattice {
    /// Creates the lattice for `d` dimensions.
    ///
    /// # Panics
    /// Panics unless `1 <= d <= 26` (masks are 32-bit; names run A..Z).
    pub fn new(d: usize) -> Self {
        // check:allow(panic-path): constructor contract documented in the
        // `# Panics` section; dimensionality is fixed at configuration time.
        assert!((1..=26).contains(&d), "supported dimensionality is 1..=26");
        Lattice { d }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Number of group-bys, excluding the special "all" node: `2^d - 1`.
    pub fn cuboid_count(&self) -> usize {
        (1usize << self.d) - 1
    }

    /// Iterates every non-empty cuboid mask (the "all" node is handled
    /// specially by all algorithms, as in the paper).
    pub fn cuboids(&self) -> impl Iterator<Item = CuboidMask> {
        (1u32..(1u32 << self.d)).map(CuboidMask::from_bits)
    }

    /// Iterates the cuboids with exactly `k` dimensions.
    pub fn level(&self, k: usize) -> impl Iterator<Item = CuboidMask> + '_ {
        self.cuboids().filter(move |c| c.dim_count() == k)
    }

    /// The single most-detailed cuboid (all dimensions).
    pub fn top(&self) -> CuboidMask {
        CuboidMask::full(self.d)
    }

    /// Children of `g` in the BUC (bottom-up) processing tree of
    /// Figure 2.4(c): `g ∪ {k}` for every dimension `k` greater than `g`'s
    /// largest. The empty mask's children are the `d` single-dimension
    /// cuboids, i.e. the roots of the independent subtrees RP distributes.
    pub fn buc_children(&self, g: CuboidMask) -> impl Iterator<Item = CuboidMask> + '_ {
        let start = g.max_dim().map_or(0, |m| m + 1);
        (start..self.d).map(move |k| g.with_dim(k))
    }

    /// Parent of `g` in the BUC processing tree (`g` without its largest
    /// dimension); `None` for the empty mask.
    pub fn buc_parent(&self, g: CuboidMask) -> Option<CuboidMask> {
        g.max_dim().map(|m| g.without_dim(m))
    }

    /// Size of the full BUC subtree rooted at `g`: `2^(d - 1 - max_dim(g))`.
    pub fn buc_subtree_size(&self, g: CuboidMask) -> usize {
        let start = g.max_dim().map_or(0, |m| m + 1);
        1usize << (self.d - start)
    }

    /// All cuboids in the full BUC subtree rooted at `g`, in depth-first
    /// (BUC visiting) order.
    pub fn buc_subtree(&self, g: CuboidMask) -> Vec<CuboidMask> {
        let mut out = Vec::with_capacity(self.buc_subtree_size(g));
        self.collect_subtree(g, &mut out);
        out
    }

    fn collect_subtree(&self, g: CuboidMask, out: &mut Vec<CuboidMask>) {
        out.push(g);
        for c in self.buc_children(g) {
            self.collect_subtree(c, out);
        }
    }

    /// Parent of `g` in the share-sort top-down processing tree of
    /// Figure 2.4(b): the cuboid `g ∪ {k}` that shares the longest prefix —
    /// namely `g` extended with the smallest absent dimension larger than
    /// every present one, falling back to extending at the tail.
    ///
    /// Concretely: `ABD`'s parent is `ABCD`? No — the top-down tree computes
    /// each node from a parent one level up with `g` as a *prefix* when one
    /// exists (so `AB` ← `ABC`, `AD` ← `ABD`… the paper's Figure 2.4(b)
    /// draws `AD` ← `ABD`? it draws AD from ABD's sibling ACD). We use the
    /// canonical choice: append the smallest dimension not in `g` that keeps
    /// the result sorted after `g`'s last dimension if possible, otherwise
    /// the smallest absent dimension overall.
    pub fn topdown_parent(&self, g: CuboidMask) -> Option<CuboidMask> {
        if g.dim_count() == self.d {
            return None; // the top cuboid is computed from the raw data
        }
        // Prefer a parent that has g as a prefix: add the smallest absent
        // dimension greater than max(g).
        let start = g.max_dim().map_or(0, |m| m + 1);
        for k in start..self.d {
            if !g.contains(k) {
                return Some(g.with_dim(k));
            }
        }
        // Otherwise add the smallest absent dimension (subset sharing only).
        (0..self.d).find(|&k| !g.contains(k)).map(|k| g.with_dim(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_powers_of_two() {
        let l = Lattice::new(4);
        assert_eq!(l.cuboid_count(), 15);
        assert_eq!(l.cuboids().count(), 15);
        assert_eq!(l.level(2).count(), 6);
        assert_eq!(l.top().dim_count(), 4);
    }

    #[test]
    fn buc_children_extend_past_max_dim() {
        let l = Lattice::new(4);
        let a = CuboidMask::from_dims(&[0]);
        let kids: Vec<String> = l.buc_children(a).map(|c| c.to_string()).collect();
        assert_eq!(kids, vec!["AB", "AC", "AD"]);
        let bc = CuboidMask::from_dims(&[1, 2]);
        let kids: Vec<String> = l.buc_children(bc).map(|c| c.to_string()).collect();
        assert_eq!(kids, vec!["BCD"]);
    }

    #[test]
    fn buc_parent_inverts_children() {
        let l = Lattice::new(5);
        for g in l.cuboids() {
            for c in l.buc_children(g) {
                assert_eq!(l.buc_parent(c), Some(g));
            }
        }
    }

    #[test]
    fn buc_subtree_sizes_match_the_thesis_example() {
        // For d=4: T_A has 8 nodes, T_B 4, T_C 2, T_D 1 (Figure 2.4c).
        let l = Lattice::new(4);
        let sizes: Vec<usize> = (0..4)
            .map(|k| l.buc_subtree_size(CuboidMask::from_dims(&[k])))
            .collect();
        assert_eq!(sizes, vec![8, 4, 2, 1]);
        assert_eq!(l.buc_subtree(CuboidMask::from_dims(&[1])).len(), 4);
    }

    #[test]
    fn buc_subtree_visits_depth_first() {
        let l = Lattice::new(4);
        let t: Vec<String> = l
            .buc_subtree(CuboidMask::from_dims(&[0]))
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(t, vec!["A", "AB", "ABC", "ABCD", "ABD", "AC", "ACD", "AD"]);
    }

    #[test]
    fn subtrees_partition_the_lattice() {
        let l = Lattice::new(6);
        let mut seen = std::collections::HashSet::new();
        for k in 0..6 {
            for g in l.buc_subtree(CuboidMask::from_dims(&[k])) {
                assert!(seen.insert(g), "duplicate {g}");
            }
        }
        assert_eq!(seen.len(), l.cuboid_count());
    }

    #[test]
    fn topdown_parent_prefers_prefix_extension() {
        let l = Lattice::new(4);
        let ab = CuboidMask::from_dims(&[0, 1]);
        assert_eq!(l.topdown_parent(ab).unwrap().to_string(), "ABC");
        let ad = CuboidMask::from_dims(&[0, 3]);
        // No dimension after D exists, so fall back to smallest absent (B).
        assert_eq!(l.topdown_parent(ad).unwrap().to_string(), "ABD");
        assert_eq!(l.topdown_parent(l.top()), None);
    }

    #[test]
    fn topdown_parents_form_a_tree_rooted_at_top() {
        let l = Lattice::new(5);
        for g in l.cuboids() {
            let mut cur = g;
            let mut steps = 0;
            while let Some(p) = l.topdown_parent(cur) {
                assert_eq!(p.dim_count(), cur.dim_count() + 1);
                cur = p;
                steps += 1;
                assert!(steps <= 5, "no cycle allowed");
            }
            assert_eq!(cur, l.top());
        }
    }

    #[test]
    #[should_panic(expected = "1..=26")]
    fn rejects_oversized_lattice() {
        let _ = Lattice::new(27);
    }
}
