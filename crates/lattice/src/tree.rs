//! PT's unit of work: BUC-processing-tree subtrees from binary division.
//!
//! Section 3.4: PT creates tasks "by a recursive binary division of a tree
//! into two subtrees, each having an equal number of nodes … achieved by
//! simply cutting the farthest left edge emitted from the root". Repeating
//! the division until there are `ratio × processors` tasks trades pruning
//! against load balance (the paper settles on 32·n).
//!
//! A (possibly chopped) subtree is fully described by its root group-by `g`
//! and the first dimension `from_dim` the root is still allowed to extend
//! with: the members are `g ∪ S` for every `S ⊆ {from_dim, …, d-1}`. Cutting
//! the leftmost edge splits `(g, j)` into the full child subtree
//! `(g ∪ {j}, j+1)` and the chopped remainder `(g, j+1)` — two halves of
//! exactly equal node count.

use crate::mask::CuboidMask;
use std::collections::BinaryHeap;

/// A subtree of the BUC processing tree, PT's task granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeTask {
    /// The root group-by of the subtree.
    pub root: CuboidMask,
    /// First dimension the root may be extended with; dimensions
    /// `from_dim..d` generate the subtree.
    pub from_dim: usize,
    /// Total cube dimensionality.
    pub d: usize,
}

impl TreeTask {
    /// The task covering the whole lattice of a `d`-dimensional cube
    /// (every group-by except the special "all" node).
    pub fn whole_lattice(d: usize) -> Self {
        // check:allow(panic-path): constructor contract — dimensionality is
        // fixed at configuration time, not per-tuple runtime input.
        assert!((1..=26).contains(&d), "supported dimensionality is 1..=26");
        TreeTask {
            root: CuboidMask::ALL,
            from_dim: 0,
            d,
        }
    }

    /// A full subtree rooted at `g` (all extensions by dimensions greater
    /// than `g`'s largest) — RP's task granule.
    pub fn full_subtree(g: CuboidMask, d: usize) -> Self {
        let from = g.max_dim().map_or(0, |m| m + 1);
        TreeTask {
            root: g,
            from_dim: from,
            d,
        }
    }

    /// Number of group-bys the task covers (the "all" node never counts).
    pub fn size(&self) -> usize {
        let n = 1usize << (self.d - self.from_dim);
        if self.root.is_all() {
            n - 1
        } else {
            n
        }
    }

    /// True when the subtree can still be divided.
    pub fn splittable(&self) -> bool {
        self.from_dim < self.d && self.size() > 1
    }

    /// Cuts the leftmost edge from the root, yielding the full child
    /// subtree and the chopped remainder. Returns `None` when the task is a
    /// single cuboid.
    pub fn split(&self) -> Option<(TreeTask, TreeTask)> {
        if !self.splittable() {
            return None;
        }
        let child = TreeTask {
            root: self.root.with_dim(self.from_dim),
            from_dim: self.from_dim + 1,
            d: self.d,
        };
        let rest = TreeTask {
            root: self.root,
            from_dim: self.from_dim + 1,
            d: self.d,
        };
        Some((child, rest))
    }

    /// Whether the task covers cuboid `g`.
    pub fn contains(&self, g: CuboidMask) -> bool {
        if !self.root.is_subset_of(g) {
            return false;
        }
        let extra = CuboidMask::from_bits(g.bits() & !self.root.bits());
        if g == self.root {
            return !g.is_all();
        }
        extra.min_dim().is_some_and(|m| m >= self.from_dim) && !g.is_all()
    }

    /// Enumerates the task's cuboids in BUC depth-first order (the order a
    /// bottom-up pass visits them). The "all" node is skipped.
    pub fn members(&self) -> Vec<CuboidMask> {
        let mut out = Vec::with_capacity(self.size());
        if !self.root.is_all() {
            out.push(self.root);
        }
        self.collect(self.root, self.from_dim, &mut out);
        out
    }

    fn collect(&self, g: CuboidMask, from: usize, out: &mut Vec<CuboidMask>) {
        for k in from..self.d {
            let child = g.with_dim(k);
            out.push(child);
            self.collect(child, k + 1, out);
        }
    }
}

impl std::fmt::Display for TreeTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T({} +{}..{})", self.root, self.from_dim, self.d)
    }
}

/// Recursive binary division of the whole lattice into at least
/// `target_tasks` tasks (PT's planning stage; the paper uses
/// `target_tasks = 32 × processors`).
///
/// Always splits the currently largest task, so task sizes stay within a
/// factor of two of each other. Stops early if every task is down to a
/// single cuboid. The returned tasks partition the `2^d − 1` group-bys.
pub fn divide_tasks(d: usize, target_tasks: usize) -> Vec<TreeTask> {
    // check:allow(panic-path): zero tasks is a scheduler-configuration bug
    // caught at startup, not runtime input.
    assert!(target_tasks > 0, "need at least one task");
    // Max-heap ordered by size.
    let mut heap: BinaryHeap<(usize, TreeTask)> = BinaryHeap::new();
    let whole = TreeTask::whole_lattice(d);
    heap.push((whole.size(), whole));
    let mut done: Vec<TreeTask> = Vec::new();
    while heap.len() + done.len() < target_tasks {
        let Some((_, task)) = heap.pop() else { break };
        match task.split() {
            Some((a, b)) => {
                for t in [a, b] {
                    if t.size() == 0 {
                        continue;
                    }
                    if t.splittable() {
                        heap.push((t.size(), t));
                    } else {
                        done.push(t);
                    }
                }
            }
            None => done.push(task),
        }
    }
    done.extend(heap.into_iter().map(|(_, t)| t));
    // Deterministic order: larger tasks first, ties by root mask — the
    // scheduler hands out big tasks early, a classic LPT heuristic.
    done.sort_by(|a, b| {
        b.size()
            .cmp(&a.size())
            .then(a.root.cmp(&b.root))
            .then(a.from_dim.cmp(&b.from_dim))
    });
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn whole_lattice_counts_all_cuboids() {
        let t = TreeTask::whole_lattice(4);
        assert_eq!(t.size(), 15);
        assert_eq!(t.members().len(), 15);
    }

    #[test]
    fn first_split_matches_the_thesis_figure() {
        // Figure 3.9 (d=4): first division yields T_A and T_all − T_A;
        // further divisions give T_AB, T_A − T_AB, T_B, T_all − T_A − T_B.
        let whole = TreeTask::whole_lattice(4);
        let (ta, rest) = whole.split().unwrap();
        assert_eq!(ta.root.to_string(), "A");
        assert_eq!(ta.size(), 8);
        assert_eq!(rest.size(), 7);

        let (tab, ta_rest) = ta.split().unwrap();
        let (tb, all_rest) = rest.split().unwrap();
        assert_eq!(tab.root.to_string(), "AB");
        assert_eq!(tab.size(), 4);
        assert_eq!(ta_rest.size(), 4);
        assert_eq!(tb.root.to_string(), "B");
        assert_eq!(tb.size(), 4);
        assert_eq!(all_rest.size(), 3);

        // The thesis' four tasks: {AB-subtree}, {A, AC, ACD, AD},
        // {B-subtree}, {C, CD, D}.
        let names =
            |t: &TreeTask| -> Vec<String> { t.members().iter().map(|m| m.to_string()).collect() };
        assert_eq!(names(&tab), vec!["AB", "ABC", "ABCD", "ABD"]);
        assert_eq!(names(&ta_rest), vec!["A", "AC", "ACD", "AD"]);
        assert_eq!(names(&tb), vec!["B", "BC", "BCD", "BD"]);
        assert_eq!(names(&all_rest), vec!["C", "CD", "D"]);
    }

    #[test]
    fn split_halves_are_equal_for_non_all_roots() {
        let t = TreeTask::full_subtree(CuboidMask::from_dims(&[1]), 6);
        let (a, b) = t.split().unwrap();
        assert_eq!(a.size(), b.size());
        assert_eq!(a.size() + b.size(), t.size());
    }

    #[test]
    fn contains_matches_members() {
        let t = TreeTask {
            root: CuboidMask::from_dims(&[0]),
            from_dim: 2,
            d: 4,
        };
        let members: std::collections::HashSet<_> = t.members().into_iter().collect();
        let l = crate::Lattice::new(4);
        for g in l.cuboids() {
            assert_eq!(t.contains(g), members.contains(&g), "cuboid {g}");
        }
        assert!(!t.contains(CuboidMask::ALL));
    }

    #[test]
    fn divide_reaches_target_and_partitions() {
        for d in 3..=8usize {
            for target in [1, 2, 4, 7, 32] {
                let tasks = divide_tasks(d, target);
                let total = (1usize << d) - 1;
                assert_eq!(
                    tasks.iter().map(TreeTask::size).sum::<usize>(),
                    total,
                    "d={d} target={target}"
                );
                assert!(tasks.len() >= target.min(total), "d={d} target={target}");
                // No cuboid may appear in two tasks.
                let mut seen = std::collections::HashSet::new();
                for t in &tasks {
                    for m in t.members() {
                        assert!(seen.insert(m), "duplicate {m} (d={d} target={target})");
                    }
                }
                assert_eq!(seen.len(), total);
            }
        }
    }

    #[test]
    fn divide_is_balanced_within_factor_two() {
        let tasks = divide_tasks(9, 32);
        let max = tasks.iter().map(TreeTask::size).max().unwrap();
        let min = tasks.iter().map(TreeTask::size).min().unwrap();
        assert!(max <= 2 * min.max(1) * 2, "max {max} min {min}");
    }

    #[test]
    fn divide_saturates_at_single_cuboids() {
        let tasks = divide_tasks(3, 1000);
        assert_eq!(tasks.len(), 7);
        assert!(tasks.iter().all(|t| t.size() == 1));
    }

    #[test]
    fn display_formats() {
        let t = TreeTask {
            root: CuboidMask::from_dims(&[0]),
            from_dim: 2,
            d: 4,
        };
        assert_eq!(t.to_string(), "T(A +2..4)");
    }

    proptest! {
        #[test]
        fn split_preserves_membership(d in 2usize..8, target in 1usize..40) {
            let tasks = divide_tasks(d, target);
            let l = crate::Lattice::new(d);
            for g in l.cuboids() {
                let owners = tasks.iter().filter(|t| t.contains(g)).count();
                prop_assert_eq!(owners, 1, "cuboid {} owned by {} tasks", g, owners);
            }
        }
    }
}
