//! Cuboid identities as bitmasks over dimensions.

// check:allow-file(panic-path): slice indexing and asserts in this
// module guard simulation-internal invariants over indices the module
// itself constructs; a violation is a bug, not runtime input. Tracked
// by the panic-path triage note in DESIGN section 12.

use std::fmt;

/// A cuboid (one group-by of the cube) as a bitmask: bit `i` set means
/// dimension `i` is a GROUP BY attribute.
///
/// Dimensions are displayed `A`, `B`, `C`, … as in the paper, so the mask
/// `{0,1,3}` of a 4-dimensional cube prints as `ABD`. The empty mask is the
/// special "all" node (total aggregate).
///
/// ```
/// use icecube_lattice::CuboidMask;
///
/// let abc = CuboidMask::from_dims(&[0, 1, 2]);
/// let ab = CuboidMask::from_dims(&[0, 1]);
/// let bc = CuboidMask::from_dims(&[1, 2]);
/// assert_eq!(abc.to_string(), "ABC");
/// // AB is a *prefix* of ABC (cheap scan); BC is only a *subset*.
/// assert!(ab.is_prefix_of(abc));
/// assert!(bc.is_subset_of(abc) && !bc.is_prefix_of(abc));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CuboidMask(u32);

impl CuboidMask {
    /// The empty mask — the "all" group-by.
    pub const ALL: CuboidMask = CuboidMask(0);

    /// Builds a mask from raw bits.
    pub fn from_bits(bits: u32) -> Self {
        CuboidMask(bits)
    }

    /// Raw bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Builds a mask containing the given dimensions.
    pub fn from_dims(dims: &[usize]) -> Self {
        let mut bits = 0u32;
        for &d in dims {
            assert!(d < 32, "dimension index out of range");
            bits |= 1 << d;
        }
        CuboidMask(bits)
    }

    /// The mask of all `d` dimensions.
    pub fn full(d: usize) -> Self {
        assert!(d <= 32, "dimension count out of range");
        if d == 32 {
            CuboidMask(u32::MAX)
        } else {
            CuboidMask((1u32 << d) - 1)
        }
    }

    /// True when the mask is the "all" node.
    pub fn is_all(self) -> bool {
        self.0 == 0
    }

    /// Number of dimensions in the group-by.
    pub fn dim_count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether dimension `d` participates.
    pub fn contains(self, d: usize) -> bool {
        d < 32 && self.0 & (1 << d) != 0
    }

    /// This mask with dimension `d` added.
    pub fn with_dim(self, d: usize) -> Self {
        assert!(d < 32, "dimension index out of range");
        CuboidMask(self.0 | (1 << d))
    }

    /// This mask with dimension `d` removed.
    pub fn without_dim(self, d: usize) -> Self {
        assert!(d < 32, "dimension index out of range");
        CuboidMask(self.0 & !(1 << d))
    }

    /// Smallest dimension, if any.
    pub fn min_dim(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Largest dimension, if any.
    pub fn max_dim(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(31 - self.0.leading_zeros() as usize)
        }
    }

    /// Dimensions in ascending order.
    pub fn dims(self) -> Vec<usize> {
        // check:allow(alloc-hot-path): at most 32 entries, sized exactly;
        // kernel callers hoist the result out of their per-tuple loops.
        let mut out = Vec::with_capacity(self.dim_count());
        let mut bits = self.0;
        while bits != 0 {
            let d = bits.trailing_zeros() as usize;
            out.push(d);
            bits &= bits - 1;
        }
        out
    }

    /// Iterates dimensions in ascending order without allocating.
    pub fn iter_dims(self) -> DimsIter {
        DimsIter(self.0)
    }

    /// True when every dimension of `self` also belongs to `other` — the
    /// *subset affinity* relation of ASL and AHT (Section 3.3.2): a skip
    /// list or hash table built for `other` can produce `self` by
    /// aggregation/collapse.
    pub fn is_subset_of(self, other: CuboidMask) -> bool {
        self.0 & other.0 == self.0
    }

    /// True when `self`'s dimensions are exactly the smallest `k`
    /// dimensions of `other` — the *prefix affinity* relation
    /// (Section 3.3.2): a cell store sorted for `other` is already sorted
    /// for `self`, so `self` falls out by a single scan with no re-sort.
    ///
    /// A mask is a prefix of itself; `ALL` is a prefix of everything.
    pub fn is_prefix_of(self, other: CuboidMask) -> bool {
        if !self.is_subset_of(other) {
            return false;
        }
        match self.max_dim() {
            None => true,
            Some(m) => {
                // Every dimension of `other` at or below m must be in self.
                let below = if m == 31 {
                    u32::MAX
                } else {
                    (1u32 << (m + 1)) - 1
                };
                other.0 & below == self.0
            }
        }
    }

    /// The number of leading dimensions `self` and `other` share (length of
    /// the common prefix of their ascending dimension lists) — used by the
    /// "longest possible prefix" improvement the paper suggests in §4.9.2.
    pub fn shared_prefix_len(self, other: CuboidMask) -> usize {
        let mut a = self.iter_dims();
        let mut b = other.iter_dims();
        let mut n = 0;
        loop {
            match (a.next(), b.next()) {
                (Some(x), Some(y)) if x == y => n += 1,
                _ => return n,
            }
        }
    }

    /// Projects a full-arity row onto this cuboid's dimensions, writing into
    /// `out` (which must have length `dim_count()`).
    pub fn project_row(self, row: &[u32], out: &mut [u32]) {
        debug_assert_eq!(out.len(), self.dim_count());
        for (slot, d) in out.iter_mut().zip(self.iter_dims()) {
            *slot = row[d];
        }
    }
}

/// Ascending iterator over the dimensions of a mask.
pub struct DimsIter(u32);

impl Iterator for DimsIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let d = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(d)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DimsIter {}

impl fmt::Display for CuboidMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_all() {
            return write!(f, "all");
        }
        for d in self.iter_dims() {
            if d < 26 {
                write!(f, "{}", (b'A' + d as u8) as char)?;
            } else {
                write!(f, "[{d}]")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_display() {
        let abd = CuboidMask::from_dims(&[0, 1, 3]);
        assert_eq!(abd.to_string(), "ABD");
        assert_eq!(abd.dim_count(), 3);
        assert_eq!(abd.dims(), vec![0, 1, 3]);
        assert_eq!(CuboidMask::ALL.to_string(), "all");
        assert_eq!(CuboidMask::full(3).to_string(), "ABC");
    }

    #[test]
    fn min_max_dims() {
        let m = CuboidMask::from_dims(&[2, 5, 9]);
        assert_eq!(m.min_dim(), Some(2));
        assert_eq!(m.max_dim(), Some(9));
        assert_eq!(CuboidMask::ALL.min_dim(), None);
        assert_eq!(CuboidMask::ALL.max_dim(), None);
    }

    #[test]
    fn subset_relation() {
        let ab = CuboidMask::from_dims(&[0, 1]);
        let abc = CuboidMask::from_dims(&[0, 1, 2]);
        let bd = CuboidMask::from_dims(&[1, 3]);
        assert!(ab.is_subset_of(abc));
        assert!(!abc.is_subset_of(ab));
        assert!(!bd.is_subset_of(abc));
        assert!(CuboidMask::ALL.is_subset_of(ab));
        assert!(ab.is_subset_of(ab));
    }

    #[test]
    fn prefix_relation_matches_the_papers_examples() {
        // Section 3.3.2: after ABCD, task ABC has prefix affinity;
        // task BCD has only subset affinity.
        let abcd = CuboidMask::from_dims(&[0, 1, 2, 3]);
        let abc = CuboidMask::from_dims(&[0, 1, 2]);
        let bcd = CuboidMask::from_dims(&[1, 2, 3]);
        assert!(abc.is_prefix_of(abcd));
        assert!(!bcd.is_prefix_of(abcd));
        assert!(bcd.is_subset_of(abcd));
        assert!(CuboidMask::ALL.is_prefix_of(abcd));
        assert!(abcd.is_prefix_of(abcd));
        // AC is a subset of ABC but not a prefix (B is missing).
        let ac = CuboidMask::from_dims(&[0, 2]);
        assert!(ac.is_subset_of(abc));
        assert!(!ac.is_prefix_of(abc));
    }

    #[test]
    fn shared_prefix_lengths() {
        let abc = CuboidMask::from_dims(&[0, 1, 2]);
        let abd = CuboidMask::from_dims(&[0, 1, 3]);
        let bcd = CuboidMask::from_dims(&[1, 2, 3]);
        assert_eq!(abc.shared_prefix_len(abd), 2);
        assert_eq!(abc.shared_prefix_len(bcd), 0);
        assert_eq!(abc.shared_prefix_len(abc), 3);
    }

    #[test]
    fn project_row_picks_dimensions_in_order() {
        let m = CuboidMask::from_dims(&[1, 3]);
        let mut out = [0u32; 2];
        m.project_row(&[10, 20, 30, 40], &mut out);
        assert_eq!(out, [20, 40]);
    }

    #[test]
    fn with_without_roundtrip() {
        let m = CuboidMask::from_dims(&[4]);
        assert!(m.with_dim(7).contains(7));
        assert_eq!(m.with_dim(7).without_dim(7), m);
    }

    proptest! {
        #[test]
        fn prefix_implies_subset(a in 0u32..1024, b in 0u32..1024) {
            let (a, b) = (CuboidMask::from_bits(a), CuboidMask::from_bits(b));
            if a.is_prefix_of(b) {
                prop_assert!(a.is_subset_of(b));
                prop_assert_eq!(a.shared_prefix_len(b), a.dim_count());
            }
        }

        #[test]
        fn dims_roundtrip(bits in 0u32..(1 << 20)) {
            let m = CuboidMask::from_bits(bits);
            prop_assert_eq!(CuboidMask::from_dims(&m.dims()), m);
            prop_assert_eq!(m.iter_dims().count(), m.dim_count());
        }
    }
}
