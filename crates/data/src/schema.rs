//! Table metadata: dimension names and cardinalities.

use crate::error::DataError;

/// One CUBE dimension (a GROUP BY attribute in the paper's terminology).
///
/// Values of a dimension are dictionary-encoded into the dense range
/// `0..cardinality`, which lets the cube algorithms partition with counting
/// sort and lets AHT assign index bits per attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Human-readable attribute name.
    pub name: String,
    /// Number of distinct values the dimension may take.
    pub cardinality: u32,
}

impl Dimension {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cardinality: u32) -> Self {
        Dimension {
            name: name.into(),
            cardinality,
        }
    }
}

/// Schema of a fact table: an ordered list of dimensions plus one numeric
/// measure (the paper aggregates a single `Sales`-like field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    dims: Vec<Dimension>,
    measure_name: String,
}

impl Schema {
    /// Builds a schema, validating that it is non-empty and every dimension
    /// has non-zero cardinality.
    pub fn new(dims: Vec<Dimension>, measure_name: impl Into<String>) -> Result<Self, DataError> {
        if dims.is_empty() {
            return Err(DataError::EmptySchema);
        }
        for (i, d) in dims.iter().enumerate() {
            if d.cardinality == 0 {
                return Err(DataError::ZeroCardinality { dim: i });
            }
        }
        Ok(Schema {
            dims,
            measure_name: measure_name.into(),
        })
    }

    /// Builds a schema from bare cardinalities, naming dimensions `d0..dN`.
    pub fn from_cardinalities(cards: &[u32]) -> Result<Self, DataError> {
        let dims = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Dimension::new(format!("d{i}"), c))
            .collect();
        Schema::new(dims, "measure")
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions, in declaration order.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Cardinality of dimension `i`.
    pub fn cardinality(&self, i: usize) -> u32 {
        // check:allow(panic-path): dimension indices come from the caller's
        // own cuboid mask over this schema; out-of-range is a caller bug.
        self.dims[i].cardinality
    }

    /// All cardinalities, in declaration order.
    pub fn cardinalities(&self) -> Vec<u32> {
        self.dims.iter().map(|d| d.cardinality).collect()
    }

    /// Name of the measure attribute.
    pub fn measure_name(&self) -> &str {
        &self.measure_name
    }

    /// Product of the cardinalities, saturating at `u128::MAX`.
    ///
    /// The paper calls a cube *sparse* when this product is large relative to
    /// the tuple count; Figure 4.6 sweeps its order of magnitude.
    pub fn cardinality_product(&self) -> u128 {
        self.dims
            .iter()
            .fold(1u128, |acc, d| acc.saturating_mul(d.cardinality as u128))
    }

    /// Base-10 exponent of the cardinality product (the x-axis of Fig 4.6).
    pub fn cardinality_exponent(&self) -> f64 {
        self.dims
            .iter()
            .map(|d| (d.cardinality as f64).log10())
            .sum()
    }

    /// Returns a schema restricted to the given dimensions (in the given
    /// order). Used by projections and by the dimensionality sweep.
    pub fn project(&self, dims: &[usize]) -> Result<Schema, DataError> {
        let picked = dims.iter().map(|&i| self.dims[i].clone()).collect();
        Schema::new(picked, self.measure_name.clone())
    }

    /// Returns a copy of this schema with every dimension widened to the
    /// given cardinalities, keeping names and the measure.
    ///
    /// Streaming ingest extends dictionaries but never reshuffles them, so
    /// widening is the only schema evolution a [`crate::DeltaBatch`] can
    /// cause. Shrinking any dimension is rejected with
    /// [`DataError::CardinalityShrunk`]; an arity change is an
    /// [`DataError::ArityMismatch`].
    pub fn widen_to(&self, cards: &[u32]) -> Result<Schema, DataError> {
        if cards.len() != self.dims.len() {
            return Err(DataError::ArityMismatch {
                expected: self.dims.len(),
                got: cards.len(),
            });
        }
        let mut dims = self.dims.clone();
        for (i, (d, &to)) in dims.iter_mut().zip(cards).enumerate() {
            if to < d.cardinality {
                return Err(DataError::CardinalityShrunk {
                    dim: i,
                    from: d.cardinality,
                    to,
                });
            }
            d.cardinality = to;
        }
        Schema::new(dims, self.measure_name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_cardinality() {
        assert!(matches!(
            Schema::new(vec![], "m"),
            Err(DataError::EmptySchema)
        ));
        let dims = vec![Dimension::new("a", 3), Dimension::new("b", 0)];
        assert!(matches!(
            Schema::new(dims, "m"),
            Err(DataError::ZeroCardinality { dim: 1 })
        ));
    }

    #[test]
    fn cardinality_product_and_exponent() {
        let s = Schema::from_cardinalities(&[10, 100, 1000]).unwrap();
        assert_eq!(s.cardinality_product(), 1_000_000);
        assert!((s.cardinality_exponent() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn cardinality_product_saturates() {
        let s = Schema::from_cardinalities(&[u32::MAX; 8]).unwrap();
        // (2^32)^8 > u128::MAX so it must saturate rather than wrap.
        assert!(s.cardinality_product() > 0);
    }

    #[test]
    fn widen_to_grows_but_never_shrinks() {
        let s = Schema::from_cardinalities(&[2, 3, 5]).unwrap();
        let w = s.widen_to(&[2, 4, 5]).unwrap();
        assert_eq!(w.cardinalities(), vec![2, 4, 5]);
        assert_eq!(w.dims()[1].name, "d1");
        assert!(matches!(
            s.widen_to(&[2, 2, 5]),
            Err(DataError::CardinalityShrunk {
                dim: 1,
                from: 3,
                to: 2
            })
        ));
        assert!(matches!(
            s.widen_to(&[2, 3]),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection_picks_and_reorders() {
        let s = Schema::from_cardinalities(&[2, 3, 5, 7]).unwrap();
        let p = s.project(&[3, 1]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.cardinality(0), 7);
        assert_eq!(p.cardinality(1), 3);
    }
}
