//! Append batches for streaming ingest.
//!
//! A [`DeltaBatch`] is a block of new fact rows built against a snapshot of
//! a relation's schema. Batches are the unit of incremental cube
//! maintenance: the delta-BUC pass in `icecube-core` counting-sorts just the
//! batch and merges its partial aggregates into the stored cube, so a batch
//! must *extend, never reshuffle*, the dictionary encoding of the relation
//! it targets — existing codes keep their meaning, and codes for values
//! first seen in the batch are assigned past the snapshot cardinalities.
//!
//! Two construction paths keep that invariant:
//!
//! * [`DeltaBatch::push_row`] accepts pre-encoded codes and widens the
//!   batch's cardinalities to cover them (the caller owns code assignment,
//!   e.g. a replicated ingest log),
//! * [`DeltaBatch::encode_row`] routes raw string values through the same
//!   per-dimension [`Dictionary`] set the base relation was encoded with,
//!   so repeated values reuse their codes and fresh values extend densely.
//!
//! Applying a batch ([`Relation::apply_delta`]) checks the snapshot still
//! matches the live relation and is all-or-nothing.

use crate::dictionary::Dictionary;
use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::Schema;

/// A validated block of append rows bound to a base-schema snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaBatch {
    /// The schema the batch was built against (names travel with it).
    base: Schema,
    /// Per-dimension cardinalities after this batch: elementwise `>=` the
    /// base's, widened as rows introduce codes past the snapshot.
    cards: Vec<u32>,
    /// Row-major dimension codes, stride = arity.
    dims: Vec<u32>,
    /// One measure per row.
    measures: Vec<i64>,
}

impl DeltaBatch {
    /// Starts an empty batch against a snapshot of `schema`.
    pub fn against(schema: &Schema) -> Self {
        DeltaBatch {
            cards: schema.cardinalities(),
            base: schema.clone(),
            dims: Vec::new(),
            measures: Vec::new(),
        }
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.base.arity()
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.measures.len()
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.measures.is_empty()
    }

    /// Cardinalities of the schema snapshot the batch was built against.
    pub fn base_cardinalities(&self) -> Vec<u32> {
        self.base.cardinalities()
    }

    /// Per-dimension cardinalities after this batch (elementwise `>=` the
    /// base's; codes the batch introduced extend each dimension densely
    /// from its snapshot cardinality).
    pub fn cardinalities(&self) -> &[u32] {
        &self.cards
    }

    /// The row-major dimension codes (stride = arity).
    pub fn dim_values(&self) -> &[u32] {
        &self.dims
    }

    /// The per-row measures.
    pub fn measure_values(&self) -> &[i64] {
        &self.measures
    }

    /// Appends a pre-encoded row, widening the batch cardinalities to cover
    /// any code past the current bound.
    ///
    /// Rejects arity mismatches, the reserved sentinel code
    /// ([`Relation::RESERVED_CODE`]) and batches outgrowing the relation
    /// row budget. Validation precedes mutation: a failed push leaves the
    /// batch unchanged.
    pub fn push_row(&mut self, values: &[u32], measure: i64) -> Result<(), DataError> {
        Relation::check_row_budget(self.len(), 1)?;
        if values.len() != self.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        for (dim, &v) in values.iter().enumerate() {
            if v == Relation::RESERVED_CODE {
                return Err(DataError::ReservedCode { dim });
            }
        }
        for (dim, &v) in values.iter().enumerate() {
            if v >= self.cards[dim] {
                self.cards[dim] = v + 1;
            }
        }
        self.dims.extend_from_slice(values);
        self.measures.push(measure);
        Ok(())
    }

    /// Encodes a row of raw string values through the shared per-dimension
    /// dictionaries and appends it.
    ///
    /// `dicts` must be the same dictionaries the base relation was encoded
    /// with (one per dimension): values already seen reuse their codes, and
    /// fresh values are assigned the next dense code — extending, never
    /// reshuffling, the base encoding.
    pub fn encode_row(
        &mut self,
        dicts: &mut [Dictionary],
        values: &[&str],
        measure: i64,
    ) -> Result<(), DataError> {
        if dicts.len() != self.arity() || values.len() != self.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.arity(),
                got: if dicts.len() != self.arity() {
                    dicts.len()
                } else {
                    values.len()
                },
            });
        }
        let mut codes = vec![0u32; self.arity()];
        for (dim, (&value, dict)) in values.iter().zip(dicts.iter_mut()).enumerate() {
            // A dictionary that has grown to 2^32 - 1 entries would assign
            // the sentinel next; refuse before inserting.
            if dict.get(value).is_none() && dict.len() == Relation::RESERVED_CODE {
                return Err(DataError::ReservedCode { dim });
            }
            codes[dim] = dict.encode(value);
        }
        self.push_row(&codes, measure)
    }

    /// Materializes the batch as a standalone [`Relation`] under the
    /// widened schema (base dimension names preserved). This is what the
    /// delta-BUC pass counting-sorts: just the batch, not the base table.
    pub fn to_relation(&self) -> Result<Relation, DataError> {
        let schema = self.base.widen_to(&self.cards)?;
        let mut rel = Relation::with_capacity(schema, self.len());
        // `max(1)` keeps the chunk size nonzero; a schema always has at
        // least one dimension, so it never actually engages.
        let arity = self.arity().max(1);
        for (codes, &m) in self.dims.chunks_exact(arity).zip(self.measures.iter()) {
            rel.push_row_unchecked(codes, m);
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_schema() -> Schema {
        Schema::from_cardinalities(&[3, 2]).unwrap()
    }

    #[test]
    fn push_widens_cardinalities_extend_only() {
        let mut b = DeltaBatch::against(&base_schema());
        b.push_row(&[2, 1], 10).unwrap();
        assert_eq!(b.cardinalities(), &[3, 2]);
        // A code past the snapshot widens that dimension.
        b.push_row(&[5, 0], 20).unwrap();
        assert_eq!(b.cardinalities(), &[6, 2]);
        assert_eq!(b.base_cardinalities(), vec![3, 2]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn push_rejects_sentinel_and_arity() {
        let mut b = DeltaBatch::against(&base_schema());
        assert!(matches!(
            b.push_row(&[0], 1),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            b.push_row(&[0, Relation::RESERVED_CODE], 1),
            Err(DataError::ReservedCode { dim: 1 })
        ));
        assert!(b.is_empty(), "failed push must not mutate the batch");
        assert_eq!(b.cardinalities(), &[3, 2]);
    }

    #[test]
    fn encode_row_reuses_and_extends_dictionary_codes() {
        // Base encoding: d0 saw {van=0, sea=1, pdx=2}, d1 saw {a=0, b=1}.
        let mut dicts = vec![Dictionary::new(), Dictionary::new()];
        for v in ["van", "sea", "pdx"] {
            dicts[0].encode(v);
        }
        for v in ["a", "b"] {
            dicts[1].encode(v);
        }
        let mut b = DeltaBatch::against(&base_schema());
        b.encode_row(&mut dicts, &["sea", "b"], 7).unwrap();
        assert_eq!(&b.dim_values()[0..2], &[1, 1]);
        // A fresh value gets the next dense code and widens the batch.
        b.encode_row(&mut dicts, &["yvr", "a"], 8).unwrap();
        assert_eq!(&b.dim_values()[2..4], &[3, 0]);
        assert_eq!(b.cardinalities(), &[4, 2]);
        // The shared dictionary kept existing codes stable.
        assert_eq!(dicts[0].get("van"), Some(0));
        assert_eq!(dicts[0].get("yvr"), Some(3));
    }

    #[test]
    fn to_relation_carries_widened_schema_and_rows() {
        let mut b = DeltaBatch::against(&base_schema());
        b.push_row(&[4, 1], 10).unwrap();
        b.push_row(&[0, 0], 20).unwrap();
        let rel = b.to_relation().unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.schema().cardinalities(), vec![5, 2]);
        assert_eq!(rel.schema().dims()[0].name, "d0");
        assert_eq!(rel.row(0), &[4, 1]);
        assert_eq!(rel.measure(1), 20);
    }

    #[test]
    fn apply_delta_widens_schema_and_appends() {
        let mut r = Relation::new(base_schema());
        r.push_row(&[0, 0], 1).unwrap();
        let mut b = DeltaBatch::against(r.schema());
        b.push_row(&[4, 1], 2).unwrap();
        r.apply_delta(&b).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().cardinalities(), vec![5, 2]);
        assert_eq!(r.row(1), &[4, 1]);
        // A second batch built against the *widened* schema applies too.
        let mut b2 = DeltaBatch::against(r.schema());
        b2.push_row(&[4, 0], 3).unwrap();
        r.apply_delta(&b2).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn apply_delta_rejects_stale_base() {
        let mut r = Relation::new(base_schema());
        r.push_row(&[0, 0], 1).unwrap();
        let stale = DeltaBatch::against(&Schema::from_cardinalities(&[2, 2]).unwrap());
        assert!(matches!(
            r.apply_delta(&stale),
            Err(DataError::StaleDelta {
                dim: 0,
                relation: 3,
                batch: 2,
            })
        ));
        // Two batches against the same base: applying the first makes the
        // second stale iff it widened the schema.
        let mut a = DeltaBatch::against(r.schema());
        a.push_row(&[3, 0], 1).unwrap();
        let mut b = DeltaBatch::against(r.schema());
        b.push_row(&[3, 1], 2).unwrap();
        r.apply_delta(&a).unwrap();
        assert!(matches!(
            r.apply_delta(&b),
            Err(DataError::StaleDelta { .. })
        ));
        assert_eq!(r.len(), 2, "rejected batch must not append rows");
    }
}
