//! Error type for data loading and construction.

use std::fmt;

/// Errors raised while building, loading or validating relations.
#[derive(Debug)]
pub enum DataError {
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Number of dimensions the schema declares.
        expected: usize,
        /// Number of dimension values the row supplied.
        got: usize,
    },
    /// An encoded dimension value is outside the declared cardinality.
    ValueOutOfRange {
        /// Index of the offending dimension.
        dim: usize,
        /// The encoded value.
        value: u32,
        /// Declared cardinality of that dimension.
        cardinality: u32,
    },
    /// A relation would exceed the kernel-wide row budget. Row indices are
    /// `u32` throughout the cube kernels; silently truncating (and thereby
    /// aliasing) indices of an oversized relation would corrupt every
    /// downstream partition, so construction refuses it up front.
    TooManyRows {
        /// The row count that was requested.
        rows: usize,
        /// The largest supported row count ([`crate::Relation::MAX_ROWS`]).
        max: usize,
    },
    /// An encoded dimension value collides with the reserved sentinel code
    /// ([`crate::Relation::RESERVED_CODE`]). The cube kernels use `u32::MAX`
    /// as an in-band NIL/fill marker (skiplist links, pipesort padding), so
    /// a real dictionary code must never equal it; ingest paths reject such
    /// rows instead of corrupting kernel state.
    ReservedCode {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// A delta batch was built against a schema snapshot that no longer
    /// matches the relation it is being applied to. Batches extend, never
    /// reshuffle, the dictionary encoding — applying a batch whose base
    /// cardinalities disagree with the live relation would let two batches
    /// assign the same code to different values.
    StaleDelta {
        /// Index of the first disagreeing dimension.
        dim: usize,
        /// Cardinality the relation currently has.
        relation: u32,
        /// Cardinality the batch snapshotted as its base.
        batch: u32,
    },
    /// A widened cardinality vector tried to shrink a dimension. Dictionary
    /// encodings only grow; shrinking would orphan already-encoded rows.
    CardinalityShrunk {
        /// Index of the offending dimension.
        dim: usize,
        /// The current (larger) cardinality.
        from: u32,
        /// The requested (smaller) cardinality.
        to: u32,
    },
    /// A schema with zero dimensions was supplied.
    EmptySchema,
    /// A dimension was declared with cardinality zero.
    ZeroCardinality {
        /// Index of the offending dimension.
        dim: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            DataError::ValueOutOfRange {
                dim,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} out of range for dimension {dim} (cardinality {cardinality})"
            ),
            DataError::TooManyRows { rows, max } => {
                write!(
                    f,
                    "relation of {rows} rows exceeds the supported maximum of {max}"
                )
            }
            DataError::ReservedCode { dim } => write!(
                f,
                "dimension {dim} value collides with the reserved sentinel code {}",
                u32::MAX
            ),
            DataError::StaleDelta {
                dim,
                relation,
                batch,
            } => write!(
                f,
                "delta batch base cardinality {batch} for dimension {dim} does not match \
                 the relation's current cardinality {relation}; rebuild the batch against \
                 the live schema"
            ),
            DataError::CardinalityShrunk { dim, from, to } => write!(
                f,
                "dimension {dim} cardinality cannot shrink from {from} to {to}; \
                 dictionary encodings are extend-only"
            ),
            DataError::EmptySchema => write!(f, "schema must declare at least one dimension"),
            DataError::ZeroCardinality { dim } => {
                write!(f, "dimension {dim} declared with cardinality zero")
            }
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("arity 2"));
        let e = DataError::ValueOutOfRange {
            dim: 1,
            value: 9,
            cardinality: 4,
        };
        assert!(e.to_string().contains("dimension 1"));
        let e = DataError::Csv {
            line: 7,
            message: "bad int".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
