#![warn(missing_docs)]

//! Relations, dictionary encoding and synthetic workload generation for
//! iceberg-cube experiments.
//!
//! This crate is the data substrate of the reproduction of *Iceberg-cube
//! computation with PC clusters* (SIGMOD 2001). The paper's experiments run
//! over a real weather dataset; this crate provides:
//!
//! * [`Relation`] — a dictionary-encoded, row-major fact table with the
//!   operations the cube algorithms need (lexicographic sorting, range
//!   partitioning, sampling, projection),
//! * [`Dictionary`] / [`Schema`] — value encoding and table metadata,
//! * [`generator`] — a Zipf-skewed synthetic generator whose dials (tuple
//!   count, per-dimension cardinality, per-dimension skew) are exactly the
//!   parameters the paper's evaluation sweeps,
//! * [`presets`] — ready-made configurations matching each experiment in the
//!   paper (the 176,631-tuple / 9-dimension baseline, the sparseness sweep of
//!   Figure 4.6, the 1M-tuple online dataset of Chapter 5, ...),
//! * [`csv`] — a small loader/saver so the examples can run on user data.

pub mod csv;
pub mod delta;
pub mod dictionary;
pub mod error;
pub mod generator;
pub mod presets;
pub mod relation;
pub mod schema;

pub use delta::DeltaBatch;
pub use dictionary::Dictionary;
pub use error::DataError;
pub use generator::{SyntheticSpec, Zipf};
pub use relation::{Relation, RowsIter};
pub use schema::{Dimension, Schema};
