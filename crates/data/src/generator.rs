//! Zipf-skewed synthetic workload generation.
//!
//! The paper evaluates on a real weather dataset whose relevant properties
//! are its *shape*: tuple count, dimension count, per-dimension cardinality
//! (their product is the sparseness axis of Figure 4.6) and per-dimension
//! skew (range-partitioning the real data on one dimension yields a 40×
//! size imbalance, which is what breaks BPP's load balance). This module
//! generates datasets with exactly those dials.

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::Schema;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Zipf(θ) sampler over ranks `0..n` using an explicit CDF table.
///
/// P(rank = k) ∝ 1 / (k+1)^θ. θ = 0 is uniform; θ ≥ 1 is heavily skewed.
/// Sampling is a binary search over the CDF — O(log n) and deterministic
/// given the RNG, which keeps every experiment reproducible.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: u32, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift so sampling can never fall off
        // the end of the table.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// True when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // partition_point returns the count of elements < u, i.e. the first
        // index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u) as u32
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: u32) -> f64 {
        let k = k as usize;
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// Specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Cardinality of each dimension.
    pub cardinalities: Vec<u32>,
    /// Zipf exponent for each dimension (0 = uniform). Must be the same
    /// length as `cardinalities`.
    pub skews: Vec<f64>,
    /// Range of the integer measure, inclusive-exclusive.
    pub measure_range: (i64, i64),
    /// RNG seed — every generated dataset is a pure function of its spec.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A uniform (skew-free) spec.
    pub fn uniform(tuples: usize, cardinalities: Vec<u32>, seed: u64) -> Self {
        let skews = vec![0.0; cardinalities.len()];
        SyntheticSpec {
            tuples,
            cardinalities,
            skews,
            measure_range: (1, 1000),
            seed,
        }
    }

    /// Overrides the skew vector.
    pub fn with_skews(mut self, skews: Vec<f64>) -> Self {
        assert_eq!(
            skews.len(),
            self.cardinalities.len(),
            "one skew per dimension"
        );
        self.skews = skews;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Result<Relation, DataError> {
        assert_eq!(
            self.skews.len(),
            self.cardinalities.len(),
            "one skew per dimension"
        );
        let schema = Schema::from_cardinalities(&self.cardinalities)?;
        // Reject oversized requests before allocating anything: the cube
        // kernels index rows with `u32`.
        if self.tuples > Relation::MAX_ROWS {
            return Err(DataError::TooManyRows {
                rows: self.tuples,
                max: Relation::MAX_ROWS,
            });
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let samplers: Vec<Zipf> = self
            .cardinalities
            .iter()
            .zip(&self.skews)
            .map(|(&c, &t)| Zipf::new(c, t))
            .collect();
        // Scatter Zipf ranks over the value domain with a per-dimension
        // multiplicative permutation, so that "popular" values are not all
        // clustered at the low end of the domain. Range partitioning then
        // sees realistic skew anywhere in the domain rather than always in
        // the first chunk.
        let scatter: Vec<u64> = self
            .cardinalities
            .iter()
            .map(|&c| Self::coprime_multiplier(c))
            .collect();
        let mut rel = Relation::with_capacity(schema, self.tuples);
        let mut row = vec![0u32; self.cardinalities.len()];
        let (lo, hi) = self.measure_range;
        for _ in 0..self.tuples {
            for (d, sampler) in samplers.iter().enumerate() {
                let rank = sampler.sample(&mut rng) as u64;
                let card = self.cardinalities[d] as u64;
                row[d] = ((rank * scatter[d]) % card) as u32;
            }
            let m = if hi > lo { rng.gen_range(lo..hi) } else { lo };
            rel.push_row_unchecked(&row, m);
        }
        Ok(rel)
    }

    /// Picks a multiplier coprime with `card` for the scatter permutation.
    fn coprime_multiplier(card: u32) -> u64 {
        if card <= 2 {
            return 1;
        }
        // A fixed odd constant; walk upward until coprime with card.
        let mut m = (card as u64 / 2) | 1;
        while gcd(m, card as u64) != 1 {
            m += 2;
        }
        m
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_uniform_is_flat() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(z.pmf(4), 0.0);
    }

    #[test]
    fn zipf_skewed_front_loads_mass() {
        let z = Zipf::new(100, 1.2);
        assert!(z.pmf(0) > 10.0 * z.pmf(50));
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_pmf_roughly() {
        let z = Zipf::new(8, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 40_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for k in 0u32..8 {
            let expected = z.pmf(k) * n as f64;
            let got = counts[k as usize] as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "rank {k}: expected {expected}, got {got}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero_ranks() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = SyntheticSpec::uniform(500, vec![10, 20, 5], 99);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn generator_respects_cardinalities() {
        let spec = SyntheticSpec::uniform(2000, vec![3, 7], 5).with_skews(vec![1.5, 0.0]);
        let r = spec.generate().unwrap();
        for (row, _) in r.rows() {
            assert!(row[0] < 3);
            assert!(row[1] < 7);
        }
    }

    #[test]
    fn skewed_dimension_produces_partition_imbalance() {
        let spec = SyntheticSpec::uniform(50_000, vec![64, 64], 11).with_skews(vec![1.4, 0.0]);
        let r = spec.generate().unwrap();
        // The skewed dimension should partition far less evenly than the
        // uniform one.
        assert!(r.partition_skew(0, 8) > 4.0 * r.partition_skew(1, 8));
    }

    #[test]
    fn measure_range_is_respected() {
        let mut spec = SyntheticSpec::uniform(100, vec![4], 1);
        spec.measure_range = (5, 6);
        let r = spec.generate().unwrap();
        assert!(r.rows().all(|(_, m)| m == 5));
    }

    #[test]
    fn coprime_multiplier_is_coprime() {
        for card in 2..200u32 {
            let m = SyntheticSpec::coprime_multiplier(card);
            assert_eq!(gcd(m, card as u64), 1, "card {card} multiplier {m}");
        }
    }
}
