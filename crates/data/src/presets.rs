//! Dataset presets matching each experimental configuration in the paper.
//!
//! The thesis' baseline configuration (Section 4.2) is: eight 500 MHz
//! processors, 176,631 tuples of real weather data, 9 dimensions chosen so
//! the product of cardinalities is roughly 10^13, and minimum support 2.
//! Chapter 5 uses a larger 1,000,000-tuple weather set. These presets
//! synthesize datasets with the same shapes (see `DESIGN.md` §2 for the
//! substitution rationale).

use crate::generator::SyntheticSpec;

/// Tuple count of the baseline configuration (Section 4.2).
pub const BASELINE_TUPLES: usize = 176_631;

/// Minimum support of the baseline configuration.
pub const BASELINE_MINSUP: u64 = 2;

/// Tuple count of the online-aggregation dataset (Section 5.4).
pub const ONLINE_TUPLES: usize = 1_000_000;

/// Cardinalities of the 20-dimension weather-like table. Dimension 10 (the
/// paper's "11th dimension") is generated with heavy skew so that range
/// partitioning it produces the ≈40× chunk imbalance the paper reports.
pub const WEATHER_CARDS: [u32; 20] = [
    2000, // station
    500,  // date
    100,  // temperature
    50,   // dew point
    20,   // visibility
    10,   // sky cover
    5,    // precipitation class
    2,    // day/night flag
    2,    // land/sea flag
    30,   // wind direction (sector)
    40,   // wind speed
    15,   // snow depth class
    25,   // pressure class
    12,   // month
    8,    // cloud (low)
    6,    // cloud (mid)
    4,    // cloud (high)
    60,   // humidity class
    18,   // gust class
    3,    // quality flag
];

/// Zipf exponents paired with [`WEATHER_CARDS`]. Mostly mild skew with a few
/// hot dimensions; dimension 10 is the pathological one.
pub const WEATHER_SKEWS: [f64; 20] = [
    0.6, 0.9, 0.4, 0.3, 0.8, 0.2, 0.5, 0.3, 0.1, 0.7, 1.6, 0.4, 0.5, 0.2, 0.3, 0.2, 0.1, 0.6, 0.4,
    0.2,
];

fn weather_spec(dims: &[usize], tuples: usize, seed: u64) -> SyntheticSpec {
    let cards: Vec<u32> = dims.iter().map(|&i| WEATHER_CARDS[i]).collect();
    let skews: Vec<f64> = dims.iter().map(|&i| WEATHER_SKEWS[i]).collect();
    SyntheticSpec::uniform(tuples, cards, seed).with_skews(skews)
}

/// The baseline 9-dimension configuration of Section 4.2: 176,631 tuples and
/// a cardinality product of roughly 10^13.
pub fn baseline() -> SyntheticSpec {
    // First nine weather dimensions: product
    // 2000·500·100·50·20·10·5·2·2 = 2·10^13.
    weather_spec(&[0, 1, 2, 3, 4, 5, 6, 7, 8], BASELINE_TUPLES, 0x1ceb)
}

/// Baseline shape with a different tuple count (Figure 4.3 sweeps size).
pub fn sized(tuples: usize) -> SyntheticSpec {
    let mut s = baseline();
    s.tuples = tuples;
    s
}

/// A `d`-dimension configuration for the dimensionality sweep of Figure 4.4
/// (the paper sweeps 5..=13 dimensions of the 20-dimension weather table).
///
/// # Panics
/// Panics if `d` is 0 or exceeds 20.
pub fn with_dims(d: usize) -> SyntheticSpec {
    assert!((1..=WEATHER_CARDS.len()).contains(&d), "1..=20 dimensions");
    let dims: Vec<usize> = (0..d).collect();
    weather_spec(&dims, BASELINE_TUPLES, 0x1ceb)
}

/// A 9-dimension configuration whose cardinality product is roughly
/// `10^exponent` (the sparseness axis of Figure 4.6, 10^6..10^22).
///
/// Cardinalities are derived by scaling the baseline's log-cardinality
/// profile to the requested exponent, so the *relative* shape stays
/// weather-like while total sparseness varies.
pub fn with_sparseness(exponent: f64) -> SyntheticSpec {
    assert!(exponent > 0.0, "exponent must be positive");
    let base: Vec<f64> = WEATHER_CARDS[..9]
        .iter()
        .map(|&c| (c as f64).log10())
        .collect();
    let total: f64 = base.iter().sum();
    let cards: Vec<u32> = base
        .iter()
        .map(|&w| 10f64.powf(w / total * exponent).round().max(2.0) as u32)
        .collect();
    let skews = WEATHER_SKEWS[..9].to_vec();
    SyntheticSpec::uniform(BASELINE_TUPLES, cards, 0x1ceb).with_skews(skews)
}

/// The 1,000,000-tuple, 20-dimension dataset used for online aggregation
/// (Section 5.4). It is skewed more heavily than the Chapter 4 data so
/// that the paper's 12-dimension query (see [`pol_query_dims`]) produces
/// roughly the group count the thesis reports: its run "created a huge
/// skip list with 924,585 nodes" from 1M tuples — i.e. ~92% of the tuples
/// form distinct groups and the rest aggregate.
pub fn online() -> SyntheticSpec {
    let dims: Vec<usize> = (0..20).collect();
    let mut spec = weather_spec(&dims, ONLINE_TUPLES, 0x901);
    for s in spec.skews.iter_mut() {
        *s += 0.85;
    }
    spec
}

/// The 12 dimensions POL's experiments group by (Section 5.4.1): the
/// twelve lowest-cardinality weather attributes, whose combined key space
/// reproduces the paper's ~92% distinct-group ratio over [`online`].
pub fn pol_query_dims() -> Vec<usize> {
    let mut order: Vec<usize> = (0..WEATHER_CARDS.len()).collect();
    order.sort_by_key(|&i| (WEATHER_CARDS[i], i));
    let mut dims = order[..12].to_vec();
    dims.sort_unstable();
    dims
}

/// A small configuration for unit/integration tests: fast to compute yet
/// non-trivial (skew, repeated values, prunable cells).
pub fn tiny(seed: u64) -> SyntheticSpec {
    SyntheticSpec::uniform(300, vec![6, 4, 5, 3], seed).with_skews(vec![0.8, 0.0, 1.2, 0.3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_shape() {
        let spec = baseline();
        assert_eq!(spec.tuples, 176_631);
        assert_eq!(spec.cardinalities.len(), 9);
        let product: f64 = spec.cardinalities.iter().map(|&c| (c as f64).log10()).sum();
        // "roughly equal to 10^13"
        assert!((12.5..14.0).contains(&product), "exponent {product}");
    }

    #[test]
    fn with_dims_prefixes_are_consistent() {
        let d9 = with_dims(9);
        assert_eq!(d9.cardinalities, baseline().cardinalities);
        let d13 = with_dims(13);
        assert_eq!(d13.cardinalities.len(), 13);
        assert_eq!(&d13.cardinalities[..9], &d9.cardinalities[..]);
    }

    #[test]
    fn sparseness_hits_requested_exponent() {
        for target in [6.0, 10.0, 14.0, 18.0, 22.0] {
            let spec = with_sparseness(target);
            let got: f64 = spec.cardinalities.iter().map(|&c| (c as f64).log10()).sum();
            // Rounding and the >=2 clamp allow some slack at the low end.
            assert!(
                (got - target).abs() < 1.6,
                "target {target} got {got} cards {:?}",
                spec.cardinalities
            );
        }
    }

    #[test]
    fn pol_query_dims_are_twelve_ascending() {
        let dims = pol_query_dims();
        assert_eq!(dims.len(), 12);
        assert!(dims.windows(2).all(|w| w[0] < w[1]));
        assert!(dims.iter().all(|&d| d < 20));
    }

    #[test]
    fn skewed_dimension_partitions_unevenly() {
        // Dimension 10 of the full weather table is the pathological one:
        // range partitioning it should produce an imbalance of roughly the
        // 40x the paper reports for the real data.
        let mut spec = online();
        spec.tuples = 60_000; // keep the test fast; skew is scale-free
        let rel = spec.generate().unwrap();
        let skew = rel.partition_skew(10, 8);
        assert!(skew > 10.0, "partition skew {skew} too mild");
    }

    #[test]
    fn tiny_generates_prunable_cells() {
        let rel = tiny(3).generate().unwrap();
        assert_eq!(rel.len(), 300);
        assert_eq!(rel.arity(), 4);
    }
}
